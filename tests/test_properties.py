"""Cross-cutting property-based tests (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import Database, Relation, Trie
from repro.distributed import (
    HypercubeGrid,
    dup_factor,
    hcube_shuffle,
    optimize_shares,
)
from repro.query import Predicate, SPJQuery, evaluate_spj, paper_query
from repro.wcoj import leapfrog_join, yannakakis_join
from repro.workloads import graph_database_for

edge_arrays = st.lists(
    st.tuples(st.integers(0, 8), st.integers(0, 8)),
    min_size=1, max_size=50,
).map(lambda rows: np.array(rows, dtype=np.int64))


def rel(name, attrs, data):
    return Relation(name, attrs, data)


class TestRelationAlgebraProperties:
    @settings(max_examples=40, deadline=None)
    @given(a=edge_arrays, b=edge_arrays)
    def test_join_commutative_up_to_schema(self, a, b):
        r = rel("R", ("x", "y"), a)
        s = rel("S", ("y", "z"), b)
        left = r.natural_join(s)
        right = s.natural_join(r).reorder(("x", "y", "z"))
        assert left == right

    @settings(max_examples=40, deadline=None)
    @given(a=edge_arrays, b=edge_arrays, c=edge_arrays)
    def test_join_associative(self, a, b, c):
        r = rel("R", ("x", "y"), a)
        s = rel("S", ("y", "z"), b)
        t = rel("T", ("z", "w"), c)
        left = r.natural_join(s).natural_join(t)
        right = r.natural_join(s.natural_join(t))
        assert left == right

    @settings(max_examples=40, deadline=None)
    @given(a=edge_arrays, b=edge_arrays)
    def test_semijoin_idempotent(self, a, b):
        r = rel("R", ("x", "y"), a)
        s = rel("S", ("y", "z"), b)
        once = r.semijoin(s)
        twice = once.semijoin(s)
        assert once == twice

    @settings(max_examples=40, deadline=None)
    @given(a=edge_arrays, b=edge_arrays)
    def test_semijoin_equals_join_projection(self, a, b):
        r = rel("R", ("x", "y"), a)
        s = rel("S", ("y", "z"), b)
        semi = r.semijoin(s)
        via_join = r.natural_join(s).project(("x", "y"))
        assert semi.as_set() == via_join.as_set()

    @settings(max_examples=30, deadline=None)
    @given(a=edge_arrays)
    def test_trie_merge_of_split_is_identity(self, a):
        r = rel("R", ("x", "y"), a)
        half = len(r) // 2
        t1 = Trie(Relation("R", ("x", "y"), r.data[:half], dedup=False))
        t2 = Trie(Relation("R", ("x", "y"), r.data[half:], dedup=False))
        merged = Trie.merge([t1, t2])
        assert np.array_equal(merged.data, Trie(r).data)


class TestEngineEquivalenceProperties:
    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(0, 10_000),
           qname=st.sampled_from(["Q1", "Q4", "Q9", "Q11"]))
    def test_yannakakis_equals_leapfrog(self, seed, qname):
        q = paper_query(qname)
        rng = np.random.default_rng(seed)
        db = graph_database_for(q, rng.integers(0, 10, size=(60, 2)))
        assert len(yannakakis_join(q, db)) == leapfrog_join(q, db).count

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_valid_orders_all_agree(self, seed):
        from repro.ghd import optimal_hypertree
        q = paper_query("Q4")
        rng = np.random.default_rng(seed)
        db = graph_database_for(q, rng.integers(0, 8, size=(50, 2)))
        tree = optimal_hypertree(q)
        counts = set()
        for order in list(tree.valid_attribute_orders())[:6]:
            counts.add(leapfrog_join(q, db, order).count)
        assert len(counts) == 1


class TestHCubeProperties:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000), workers=st.integers(1, 6))
    def test_locality_on_q4(self, seed, workers):
        q = paper_query("Q4")
        rng = np.random.default_rng(seed)
        db = graph_database_for(q, rng.integers(0, 9, size=(50, 2)))
        sizes = {a.relation: len(db[a.relation]) for a in q.atoms}
        shares = optimize_shares(q, sizes, num_cubes=workers)
        grid = HypercubeGrid(q, shares, workers)
        res = hcube_shuffle(q, db, grid)
        total = sum(leapfrog_join(res.local_query, cdb).count
                    for cdb in res.cube_databases)
        assert total == leapfrog_join(q, db).count

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000), workers=st.integers(1, 6),
           impl=st.sampled_from(["push", "pull", "merge"]),
           qname=st.sampled_from(["Q1", "Q4"]))
    def test_routing_equals_materializing_shuffle(self, seed, workers,
                                                  impl, qname):
        """Routing-only shuffle ≡ materializing shuffle, oracle-checked.

        Same partitions (each routed row set reproduces the relation
        slice whose block id matches the cube's coordinate — recomputed
        here independently of the shuffle code path) and the same
        ``ShuffleStats`` accounting.
        """
        from repro.distributed import hcube_route
        from repro.distributed.hcube import local_atom_name
        q = paper_query(qname)
        rng = np.random.default_rng(seed)
        db = graph_database_for(q, rng.integers(0, 9, size=(50, 2)))
        sizes = {a.relation: len(db[a.relation]) for a in q.atoms}
        shares = optimize_shares(q, sizes, num_cubes=workers)
        grid = HypercubeGrid(q, shares, workers)
        routing = hcube_route(q, db, grid, impl=impl)
        shuffle = hcube_shuffle(q, db, grid, impl=impl)
        assert routing.stats.tuple_copies == shuffle.stats.tuple_copies
        assert routing.stats.bytes_copied == shuffle.stats.bytes_copied
        assert routing.worker_loads == shuffle.worker_loads
        coords = [grid.coordinate_of(c) for c in range(grid.num_cubes)]
        for ai, atom in enumerate(q.atoms):
            data = db[atom.relation].data
            blocks = grid.tuple_block_ids(atom, data)
            for cube in range(grid.num_cubes):
                routed = data[routing.atom_rows[ai][cube]]
                # Independent oracle: direct block-id membership filter.
                want = data[blocks == grid.cube_block_id(atom,
                                                         coords[cube])]
                assert np.array_equal(np.sort(routed, axis=0),
                                      np.sort(want, axis=0))
                # And the materialized partition is exactly that slice.
                local = shuffle.cube_databases[cube][
                    local_atom_name(atom, ai)]
                assert np.array_equal(local.data, routed)

    @settings(max_examples=25, deadline=None)
    @given(rows=st.integers(0, 30), arity=st.integers(1, 4),
           seed=st.integers(0, 10_000), whole=st.booleans())
    def test_shm_roundtrip_bit_for_bit(self, rows, arity, seed, whole):
        """shm publish/resolve preserves arrays exactly (incl. empty,
        arity-1, and extreme int64 values)."""
        from repro.runtime import SharedMemoryTransport, resolve_array_ref
        rng = np.random.default_rng(seed)
        arr = rng.integers(np.iinfo(np.int64).min,
                           np.iinfo(np.int64).max,
                           size=(rows, arity), dtype=np.int64)
        sel = None if whole else rng.integers(
            0, max(rows, 1), size=rng.integers(0, rows + 1)) % max(rows, 1)
        if not whole and rows == 0:
            sel = np.empty(0, dtype=np.int64)
        with SharedMemoryTransport() as t:
            out = resolve_array_ref(t.make_ref(t.publish("a", arr), sel))
        want = arr if sel is None else arr[sel]
        assert out.dtype == np.int64
        assert np.array_equal(out, want)

    @settings(max_examples=20, deadline=None)
    @given(sizes=st.tuples(st.integers(1, 10_000), st.integers(1, 10_000),
                           st.integers(1, 10_000)),
           cubes=st.sampled_from([2, 4, 6, 8, 12]))
    def test_share_optimum_never_worse_than_uniform(self, sizes, cubes):
        """The optimizer beats (or matches) any hand-rolled vector."""
        q = paper_query("Q1")
        size_map = {f"R{i + 1}": s for i, s in enumerate(sizes)}
        best = optimize_shares(q, size_map, num_cubes=cubes)
        naive = {q.attributes[0]: cubes, q.attributes[1]: 1,
                 q.attributes[2]: 1}
        naive_copies = sum(
            size_map[a.relation] * dup_factor(a.attributes, naive)
            for a in q.atoms)
        assert best.tuple_copies <= naive_copies


class TestSPJProperties:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000),
           threshold=st.integers(0, 12),
           op=st.sampled_from(["<", "<=", ">", ">=", "=", "!="]))
    def test_pushdown_equals_postfilter(self, seed, threshold, op):
        q = paper_query("Q1")
        rng = np.random.default_rng(seed)
        db = graph_database_for(q, rng.integers(0, 12, size=(70, 2)))
        spj = SPJQuery(q, selections=(Predicate("b", op, threshold),))
        pushed = evaluate_spj(spj, db)
        full = leapfrog_join(q, db, materialize=True).relation
        import operator as _op
        fn = {"<": _op.lt, "<=": _op.le, ">": _op.gt, ">=": _op.ge,
              "=": _op.eq, "!=": _op.ne}[op]
        expected = {t for t in full.as_set() if fn(t[1], threshold)}
        assert pushed.as_set() == expected

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_projection_subset_of_full(self, seed):
        q = paper_query("Q1")
        rng = np.random.default_rng(seed)
        db = graph_database_for(q, rng.integers(0, 10, size=(60, 2)))
        spj = SPJQuery(q, projection=("b", "c"))
        out = evaluate_spj(spj, db)
        full = leapfrog_join(q, db, materialize=True).relation
        assert out.as_set() == {(t[1], t[2]) for t in full.as_set()}


class TestEstimatorProperties:
    @settings(max_examples=20, deadline=None)
    @given(p=st.floats(0.01, 0.9), delta=st.floats(0.01, 0.5))
    def test_required_samples_positive_and_monotone(self, p, delta):
        from repro.core import required_samples
        k = required_samples(p, delta)
        assert k >= 1
        assert required_samples(p / 2, delta) >= k
