"""Tests for repro.runtime: executors, scheduler, worker tasks, failures.

Process-backend tests use small pools and small inputs; the crash tests
assert that a dying worker task surfaces as a clean engine failure
(:class:`WorkerCrashed` / ``failure="crash"``) rather than a hang.
"""

import os

import numpy as np
import pytest

from repro.data import Database, Relation
from repro.distributed import Cluster, HypercubeGrid, hcube_shuffle
from repro.engines import (
    ADJ,
    BigJoin,
    HCubeJ,
    HCubeJCache,
    SparkSQLJoin,
    YannakakisJoin,
    run_engine_safely,
)
from repro.errors import BudgetExceeded, ConfigError, WorkerCrashed
from repro.query import paper_query
from repro.runtime import (
    ProcessExecutor,
    RuntimeTelemetry,
    SerialExecutor,
    ThreadExecutor,
    WorkerTask,
    available_parallelism,
    build_worker_tasks,
    create_executor,
    execute_worker_task,
    executor_for,
    merge_task_results,
    run_worker_tasks,
)
from repro.wcoj import leapfrog_join

BACKENDS = ("serial", "threads", "processes")
TRANSPORTS = ("pickle", "shm")


def graph_case(query_name, seed=0, n=300, dom=40):
    query = paper_query(query_name)
    rng = np.random.default_rng(seed)
    edges = rng.integers(0, dom, size=(n, 2))
    db = Database(Relation(a.relation, ("x", "y"), edges)
                  for a in query.atoms)
    return query, db


# -- top-level task functions (picklable for process backends) ----------------

def _ok_task(x):
    return x * 2


def _raise_task(x):
    raise RuntimeError(f"boom on {x}")


def _exit_task(x):
    os._exit(13)  # simulates a worker process dying mid-task


def _slow_or_boom(x):
    if x == "boom":
        raise RuntimeError("boom fast")
    import time
    time.sleep(5)
    return x


# -- executors ----------------------------------------------------------------

class TestExecutors:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_map_preserves_order(self, backend):
        with create_executor(backend, 2) as ex:
            assert ex.map_tasks(_ok_task, [1, 2, 3]) == [2, 4, 6]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_task_exception_becomes_worker_crashed(self, backend):
        with create_executor(backend, 2) as ex:
            with pytest.raises(WorkerCrashed, match="boom"):
                ex.map_tasks(_raise_task, [7])

    def test_failure_reported_before_slow_healthy_tasks(self):
        """The crashed task is named, without waiting out healthy ones."""
        import time
        start = time.perf_counter()
        with ThreadExecutor(2) as ex:
            with pytest.raises(WorkerCrashed, match="boom fast") as info:
                ex.map_tasks(_slow_or_boom, [0, "boom"])
        assert info.value.worker == 1
        assert time.perf_counter() - start < 5.0

    def test_dead_process_is_clean_failure_not_hang(self):
        with ProcessExecutor(2) as ex:
            with pytest.raises(WorkerCrashed):
                ex.map_tasks(_exit_task, [1])

    def test_empty_task_list(self):
        with create_executor("threads", 2) as ex:
            assert ex.map_tasks(_ok_task, []) == []

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigError):
            create_executor("quantum")

    def test_executor_for_cluster_hint(self):
        assert executor_for(Cluster(num_workers=2)).name == "serial"
        ex = executor_for(Cluster(num_workers=2, runtime="threads"))
        assert ex.name == "threads"
        # Pool backends are capped at the CPUs the process may use —
        # surplus threads are pure GIL contention.
        assert ex.max_workers == min(2, available_parallelism())
        ex = executor_for(Cluster(num_workers=64, runtime="threads"))
        assert ex.max_workers <= max(available_parallelism(), 1)
        ex = executor_for(Cluster(num_workers=64, runtime="processes"))
        assert ex.max_workers <= max(available_parallelism(), 1)

    def test_reuse_after_map(self):
        with create_executor("threads", 2) as ex:
            assert ex.map_tasks(_ok_task, [1]) == [2]
            assert ex.map_tasks(_ok_task, [2]) == [4]


# -- scheduler + worker tasks -------------------------------------------------

class TestScheduler:
    def _tasks(self, query_name="Q1", budget=None, workers=4):
        query, db = graph_case(query_name)
        shares = {a: 1 for a in query.attributes}
        shares[query.attributes[0]] = 2
        shares[query.attributes[1]] = 2
        grid = HypercubeGrid(query, shares, workers)
        shuffle = hcube_shuffle(query, db, grid)
        return (build_worker_tasks(shuffle, query.attributes,
                                   budget=budget),
                leapfrog_join(query, db).count, query)

    def test_tasks_cover_all_cubes(self):
        tasks, _, query = self._tasks()
        assert sum(len(t.cubes) for t in tasks) == 4
        assert sorted({t.worker for t in tasks}) == sorted(
            t.worker for t in tasks)

    def test_worker_evaluation_reproduces_global_count(self):
        tasks, truth, query = self._tasks()
        results = [execute_worker_task(t) for t in tasks]
        merged = merge_task_results(results, query.num_attributes)
        assert merged.count == truth
        assert merged.level_tuples[-1] == truth

    def test_merged_levels_match_global_leapfrog(self):
        query, db = graph_case("Q9")
        grid = HypercubeGrid(query, {a: 1 for a in query.attributes[:-1]}
                             | {query.attributes[-1]: 3}, 3)
        shuffle = hcube_shuffle(query, db, grid)
        tasks = build_worker_tasks(shuffle, query.attributes)
        merged = merge_task_results(
            [execute_worker_task(t) for t in tasks], query.num_attributes)
        assert merged.count == leapfrog_join(query, db).count

    def test_budget_exceeded_raised_from_tasks(self):
        tasks, _, query = self._tasks(budget=5)
        results = [execute_worker_task(t) for t in tasks]
        assert any(r.failure == "budget" for r in results)
        with pytest.raises(BudgetExceeded):
            merge_task_results(results, query.num_attributes, budget=5)

    def test_crashed_task_raises_worker_crashed(self):
        tasks, _, query = self._tasks()
        # Corrupt one payload: arity mismatch makes the worker fail.
        tasks[0].cubes[0] = tuple(
            arr[:, :1] for arr in tasks[0].cubes[0])
        results = [execute_worker_task(t) for t in tasks]
        assert any(r.failure == "crash" for r in results)
        with pytest.raises(WorkerCrashed):
            merge_task_results(results, query.num_attributes)

    def test_task_result_records_phase_seconds(self):
        tasks, _, _ = self._tasks()
        res = execute_worker_task(tasks[0])
        assert res.ok
        assert res.total_seconds >= 0.0
        assert res.build_seconds >= 0.0 and res.join_seconds >= 0.0

    def test_run_worker_tasks_fills_telemetry(self):
        tasks, truth, query = self._tasks()
        telemetry = RuntimeTelemetry(backend="serial", num_workers=4)
        with SerialExecutor(4) as ex:
            results = run_worker_tasks(ex, tasks, telemetry=telemetry)
        merged = merge_task_results(results, query.num_attributes)
        assert merged.count == truth
        assert "local_join" in telemetry.phase_seconds
        assert telemetry.tasks_executed == len(tasks)
        assert telemetry.straggler_seconds <= telemetry.worker_cpu_seconds


# -- engines across backends --------------------------------------------------

class TestEngineBackends:
    @pytest.mark.parametrize("query_name", ["Q1", "Q9"])
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_backends_match_serial_counts(self, query_name, backend):
        """Triangle and 4-cycle counts are identical on every backend."""
        query, db = graph_case(query_name, seed=2)
        truth = leapfrog_join(query, db).count
        cluster = Cluster(num_workers=3)
        with create_executor(backend, 3) as ex:
            for engine in (HCubeJ(), BigJoin(), SparkSQLJoin()):
                result = run_engine_safely(engine, query, db, cluster,
                                           executor=ex)
                assert result.ok, (engine.name, result.failure)
                assert result.count == truth, (engine.name, backend)

    def test_runtime_path_matches_inline_modeled_costs(self):
        query, db = graph_case("Q1", seed=3)
        cluster = Cluster(num_workers=4)
        inline = HCubeJ().run(query, db, cluster)
        with SerialExecutor(4) as ex:
            routed = HCubeJ().run(query, db, cluster, executor=ex)
        assert routed.count == inline.count
        assert routed.breakdown.total == pytest.approx(
            inline.breakdown.total)
        assert routed.extra["level_tuples"] == inline.extra["level_tuples"]

    def test_telemetry_attached_only_with_executor(self):
        query, db = graph_case("Q1", seed=4)
        cluster = Cluster(num_workers=2)
        assert HCubeJ().run(query, db, cluster).telemetry is None
        with ThreadExecutor(2) as ex:
            result = HCubeJ().run(query, db, cluster, executor=ex)
        tel = result.telemetry
        assert tel is not None and tel.backend == "threads"
        assert "shuffle" in tel.phase_seconds
        assert "local_join" in tel.phase_seconds
        assert result.measured_seconds == pytest.approx(tel.total)

    def test_cache_engine_accepts_and_ignores_executor(self):
        query, db = graph_case("Q1", seed=5)
        cluster = Cluster(num_workers=2)
        truth = leapfrog_join(query, db).count
        with ThreadExecutor(2) as ex:
            result = HCubeJCache().run(query, db, cluster, executor=ex)
        assert result.count == truth

    def test_adj_runs_on_executor(self):
        query, db = graph_case("Q1", seed=6, n=150, dom=25)
        cluster = Cluster(num_workers=2)
        truth = leapfrog_join(query, db).count
        with ThreadExecutor(2) as ex:
            result = ADJ(num_samples=20).run(query, db, cluster,
                                             executor=ex)
        assert result.count == truth
        assert result.telemetry is not None

    def test_work_budget_fails_cleanly_on_executor(self):
        query, db = graph_case("Q1", seed=7)
        cluster = Cluster(num_workers=2)
        with ThreadExecutor(2) as ex:
            result = run_engine_safely(HCubeJ(work_budget=3), query, db,
                                       cluster, executor=ex)
        assert result.failure == "budget"

    @pytest.mark.parametrize("query_name", ["Q1", "Q9"])
    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_all_engines_agree_across_transports(self, query_name,
                                                 transport):
        """Counts and modeled costs are transport-independent (all six
        engines, triangle and 4-cycle)."""
        query, db = graph_case(query_name, seed=11, n=200, dom=30)
        truth = leapfrog_join(query, db).count
        cluster = Cluster(num_workers=3)
        inline_totals = {}
        for engine in (HCubeJ(), HCubeJCache(), BigJoin(), SparkSQLJoin(),
                       YannakakisJoin(), ADJ(num_samples=15)):
            inline = run_engine_safely(engine, query, db, cluster)
            inline_totals[engine.name] = inline.breakdown.total
            assert inline.count == truth
        with create_executor("serial", 3, transport=transport) as ex:
            for engine in (HCubeJ(), HCubeJCache(), BigJoin(),
                           SparkSQLJoin(), YannakakisJoin(),
                           ADJ(num_samples=15)):
                result = run_engine_safely(engine, query, db, cluster,
                                           executor=ex)
                assert result.ok, (engine.name, transport, result.failure)
                assert result.count == truth, (engine.name, transport)
                assert result.breakdown.total == pytest.approx(
                    inline_totals[engine.name]), (engine.name, transport)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_yannakakis_and_cache_run_end_to_end(self, backend):
        """The two formerly coordinator-only engines now use the
        executor; counts are identical on every backend."""
        query, db = graph_case("Q9", seed=12, n=200, dom=30)
        truth = leapfrog_join(query, db).count
        cluster = Cluster(num_workers=3)
        with create_executor(backend, 3, transport="shm") as ex:
            for engine in (YannakakisJoin(), HCubeJCache()):
                result = run_engine_safely(engine, query, db, cluster,
                                           executor=ex)
                assert result.ok, (engine.name, backend, result.failure)
                assert result.count == truth, (engine.name, backend)
                assert result.telemetry is not None
                # Physical movement is reported and worker attribution
                # stays within the cluster even with more tasks/bags.
                plane = result.extra["data_plane"]
                assert plane["transport"] == "shm"
                assert plane["shipped_bytes"] > 0
                assert all(0 <= w < 3 for w in
                           result.telemetry.worker_seconds)

    def test_cache_hit_stats_match_inline(self):
        """Worker-local caches reproduce the inline hit/miss counters."""
        query, db = graph_case("Q1", seed=13)
        cluster = Cluster(num_workers=2)
        inline = HCubeJCache().run(query, db, cluster)
        with create_executor("serial", 2, transport="shm") as ex:
            routed = HCubeJCache().run(query, db, cluster, executor=ex)
        assert routed.count == inline.count
        assert routed.extra["cache_hits"] == inline.extra["cache_hits"]
        assert routed.extra["cache_misses"] == \
            inline.extra["cache_misses"]
        assert inline.extra["cache_hits"] + \
            inline.extra["cache_misses"] > 0

    def test_shm_ships_fewer_coordinator_bytes(self):
        """Regression: under shm, the data plane's ``bytes_copied`` is
        descriptor bytes (rows + header), not full array bytes."""
        query, db = graph_case("Q1", seed=14)
        cluster = Cluster(num_workers=3)
        planes = {}
        for transport in TRANSPORTS:
            with create_executor("serial", 3, transport=transport) as ex:
                result = HCubeJ().run(query, db, cluster, executor=ex)
            planes[transport] = result.extra["data_plane"]
        assert planes["shm"]["transport"] == "shm"
        assert planes["shm"]["shipped_refs"] == \
            planes["pickle"]["shipped_refs"]
        assert 0 < planes["shm"]["shipped_bytes"] < \
            planes["pickle"]["shipped_bytes"]
        # Sources are staged once under shm, never under pickle.
        assert planes["pickle"]["published_bytes"] == 0
        assert planes["shm"]["published_bytes"] == sum(
            db[a.relation].nbytes for a in query.atoms)

    def test_crashed_worker_is_clean_engine_failure(self, monkeypatch):
        """A worker that dies mid-run must yield failure='crash'."""
        import repro.runtime.scheduler as scheduler_mod

        def crashing_run(executor, tasks, telemetry=None):
            raise WorkerCrashed(0, "simulated death")

        import repro.engines.one_round as one_round_mod
        monkeypatch.setattr(one_round_mod, "run_worker_tasks",
                            crashing_run)
        monkeypatch.setattr(one_round_mod, "run_streamed_tasks",
                            crashing_run)
        query, db = graph_case("Q1", seed=8)
        cluster = Cluster(num_workers=2)
        with SerialExecutor(2) as ex:
            result = run_engine_safely(HCubeJ(), query, db, cluster,
                                       executor=ex)
        assert result.failure == "crash"
        assert "simulated death" in result.extra["crash_reason"]


# -- cluster / config satellites ----------------------------------------------

class TestClusterRuntime:
    def test_with_workers_keeps_new_fields(self):
        c = Cluster(num_workers=4, memory_tuples_per_worker=123.0,
                    runtime="threads")
        c2 = c.with_workers(9)
        assert c2.num_workers == 9
        assert c2.runtime == "threads"
        assert c2.memory_tuples_per_worker == 123.0
        assert c2.params is c.params

    def test_with_runtime(self):
        c = Cluster(num_workers=4).with_runtime("processes")
        assert c.runtime == "processes" and c.num_workers == 4

    def test_bad_runtime_rejected(self):
        with pytest.raises(ConfigError):
            Cluster(num_workers=2, runtime="teleport")

    def test_default_workers_non_integer_is_config_error(self, monkeypatch):
        from repro.distributed import default_workers
        monkeypatch.setenv("REPRO_WORKERS", "eight")
        with pytest.raises(ConfigError, match="REPRO_WORKERS"):
            default_workers()
        # ConfigError doubles as ValueError for legacy callers.
        with pytest.raises(ValueError):
            default_workers()


class TestTelemetry:
    def test_measure_context(self):
        tel = RuntimeTelemetry(backend="serial", num_workers=1)
        with tel.measure("phase_a"):
            pass
        with tel.measure("phase_a"):
            pass
        assert tel.phase_seconds["phase_a"] >= 0.0
        assert tel.total == pytest.approx(sum(tel.phase_seconds.values()))

    def test_as_row_and_str(self):
        tel = RuntimeTelemetry(backend="threads", num_workers=2)
        tel.record("shuffle", 0.5)
        row = tel.as_row()
        assert row["measured_shuffle"] == 0.5
        assert row["measured_total"] == 0.5
        assert "threads" in str(tel)

    def test_modeled_vs_measured(self):
        from repro.distributed import CostBreakdown
        from repro.runtime import modeled_vs_measured
        tel = RuntimeTelemetry(backend="processes", num_workers=2)
        tel.record("local_join", 1.0)
        rec = modeled_vs_measured(CostBreakdown(computation=2.0), tel)
        assert rec["modeled_seconds"] == 2.0
        assert rec["measured_seconds"] == 1.0
        rec = modeled_vs_measured(CostBreakdown(), None)
        assert rec["measured_seconds"] is None


class TestWorkerTaskPayload:
    def test_num_tuples(self):
        query, db = graph_case("Q1")
        task = WorkerTask(worker=0, query=query, order=query.attributes,
                          cubes=[tuple(db[a.relation].data
                                       for a in query.atoms)])
        assert task.num_tuples == sum(
            len(db[a.relation]) for a in query.atoms)

    def test_worker_task_roundtrips_through_pickle(self):
        import pickle
        query, db = graph_case("Q1", n=50)
        task = WorkerTask(worker=1, query=query, order=query.attributes,
                          cubes=[tuple(db[a.relation].data
                                       for a in query.atoms)])
        clone = pickle.loads(pickle.dumps(task))
        res = execute_worker_task(clone)
        assert res.ok and res.count == leapfrog_join(query, db).count
