"""Tests for repro.ghd: fractional covers and hypertree decompositions."""

import pytest

from repro.errors import DecompositionError, PlanError
from repro.ghd import (
    Hypertree,
    enumerate_ghds,
    fractional_cover_number,
    fractional_edge_cover,
    log_agm_exponent,
    optimal_hypertree,
    vertex_cover_lp,
)
from repro.query import Hypergraph, JoinQuery, example_query, paper_query, parse_query


class TestFractionalCover:
    def test_triangle_is_three_halves(self):
        h = Hypergraph.of_query(paper_query("Q1"))
        assert fractional_cover_number(h) == pytest.approx(1.5)

    def test_single_edge(self):
        h = Hypergraph(["a", "b"], [{"a", "b"}])
        assert fractional_cover_number(h) == pytest.approx(1.0)

    def test_restricted_vertices(self):
        h = Hypergraph.of_query(paper_query("Q1"))
        assert fractional_cover_number(h, ("a", "b")) == pytest.approx(1.0)

    def test_empty_vertex_set(self):
        h = Hypergraph.of_query(paper_query("Q1"))
        assert fractional_cover_number(h, ()) == 0.0

    def test_uncoverable_vertex_rejected(self):
        h = Hypergraph(["a", "b", "z"], [{"a", "b"}, {"z"}])
        cover = fractional_edge_cover(h, ("a", "z"))
        assert cover.objective == pytest.approx(2.0)
        bad = Hypergraph(["a", "b"], [{"a"}])
        with pytest.raises(DecompositionError):
            fractional_edge_cover(bad, ("b",))

    def test_duality(self):
        # rho*(H) equals the fractional vertex packing optimum.
        for name in ("Q1", "Q2", "Q4", "Q5"):
            h = Hypergraph.of_query(paper_query(name))
            assert fractional_cover_number(h) == pytest.approx(
                vertex_cover_lp(h), abs=1e-6)

    def test_support(self):
        h = Hypergraph.of_query(paper_query("Q1"))
        cover = fractional_edge_cover(h)
        assert set(cover.support()) == {0, 1, 2}
        assert all(w == pytest.approx(0.5) for w in cover.weights)

    def test_log_weights(self):
        h = Hypergraph.of_query(paper_query("Q1"))
        cover = log_agm_exponent(h, [10, 10, 10])
        import math
        assert cover.objective == pytest.approx(1.5 * math.log(10))

    def test_weight_count_mismatch_rejected(self):
        h = Hypergraph.of_query(paper_query("Q1"))
        with pytest.raises(DecompositionError):
            fractional_edge_cover(h, edge_weights=[1.0])


class TestHypertreeSearch:
    def test_example_query_matches_fig5(self):
        """The paper's Fig. 5 decomposition: {R1}, {R2,R3}, {R4,R5}."""
        t = optimal_hypertree(example_query())
        bag_sets = {frozenset(b.atom_indices) for b in t.bags}
        assert bag_sets == {frozenset({0}), frozenset({1, 2}),
                            frozenset({3, 4})}
        assert t.width == pytest.approx(1.5)

    def test_all_ghds_valid(self):
        q = paper_query("Q4")
        for t in enumerate_ghds(q):
            t.check_valid()  # must not raise

    def test_single_bag_always_exists(self):
        for name in ("Q1", "Q2", "Q4"):
            q = paper_query(name)
            trees = list(enumerate_ghds(q))
            assert any(t.num_bags == 1 for t in trees)

    def test_optimal_width_minimal(self):
        q = paper_query("Q5")
        best = optimal_hypertree(q)
        for t in enumerate_ghds(q):
            assert best.width <= t.width + 1e-9

    def test_disconnected_query_rejected(self):
        q = parse_query("R(a,b), S(x,y)")
        with pytest.raises(DecompositionError):
            optimal_hypertree(q)

    def test_acyclic_path_gets_width_one(self):
        q = parse_query("R1(a,b), R2(b,c), R3(c,d)")
        t = optimal_hypertree(q)
        assert t.width == pytest.approx(1.0)

    def test_widths_match_clique_theory(self):
        # fhw of the k-clique is k/2 (no decomposition beats one bag).
        assert optimal_hypertree(paper_query("Q1")).width == \
            pytest.approx(1.5)
        assert optimal_hypertree(paper_query("Q2")).width == \
            pytest.approx(2.0)


class TestTraversalOrders:
    @pytest.fixture()
    def tree(self):
        return optimal_hypertree(example_query())

    def test_all_traversals_are_connected_expansions(self, tree):
        for order in tree.traversal_orders():
            assert tree.is_traversal_order(order)

    def test_traversal_count(self, tree):
        # Fig. 5 tree is the path va - vc - va? (v0-v2, v1-v2 or similar):
        # a path of three bags has 4 connected expansions... verify
        # against brute force.
        import itertools
        indices = [b.index for b in tree.bags]
        expected = sum(1 for p in itertools.permutations(indices)
                       if tree.is_traversal_order(p))
        assert len(list(tree.traversal_orders())) == expected

    def test_invalid_traversal_rejected(self, tree):
        import itertools
        indices = [b.index for b in tree.bags]
        invalid = [p for p in itertools.permutations(indices)
                   if not tree.is_traversal_order(p)]
        if invalid:
            with pytest.raises(PlanError):
                tree.attribute_order(invalid[0])

    def test_attribute_order_valid_shape(self, tree):
        for traversal in tree.traversal_orders():
            order = tree.attribute_order(traversal)
            assert set(order) == set(tree.query.attributes)
            assert tree.is_valid_attribute_order(order)

    def test_paper_example_orders(self):
        """Sec. III-A: for Fig. 5's T with traversal va < vb < vc,
        a<b<c<d<e is valid and a<b<e<d<c is invalid."""
        t = optimal_hypertree(example_query())
        assert t.is_valid_attribute_order(("a", "b", "c", "d", "e"))
        assert not t.is_valid_attribute_order(("a", "b", "e", "d", "c"))

    def test_inner_orders_respected(self, tree):
        traversal = next(tree.traversal_orders())
        first_bag = next(b for b in tree.bags if b.index == traversal[0])
        new_attrs = tuple(sorted(first_bag.attributes))
        order = tree.attribute_order(
            traversal, inner_orders={traversal[0]: new_attrs})
        assert order[:len(new_attrs)] == new_attrs

    def test_bad_inner_order_rejected(self, tree):
        traversal = next(tree.traversal_orders())
        with pytest.raises(PlanError):
            tree.attribute_order(traversal,
                                 inner_orders={traversal[0]: ("zz",)})

    def test_valid_orders_subset_of_permutations(self, tree):
        import itertools
        valid = set(tree.valid_attribute_orders())
        n_all = len(list(itertools.permutations(tree.query.attributes)))
        assert 0 < len(valid) < n_all

    def test_is_valid_rejects_wrong_attrs(self, tree):
        assert not tree.is_valid_attribute_order(("a", "b"))
