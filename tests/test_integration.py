"""Cross-module integration tests, including the paper's worked examples."""

import numpy as np
import pytest

from repro.core import CardinalityEstimator, optimize_plan
from repro.data import Database, Relation
from repro.distributed import (
    Cluster,
    HypercubeGrid,
    hcube_shuffle,
    modulo_hash,
    optimize_shares,
)
from repro.engines import (
    ADJ,
    BigJoin,
    HCubeJ,
    HCubeJCache,
    SparkSQLJoin,
    one_round_execute,
)
from repro.query import Atom, JoinQuery, example_query, paper_query
from repro.wcoj import binary_plan_join, brute_force_join, leapfrog_join
from repro.workloads import graph_database_for


@pytest.fixture(scope="module")
def qex_db():
    """A database for the running example (R1 ternary, R2-R5 binary)."""
    rng = np.random.default_rng(11)
    return Database([
        Relation("R1", ("x", "y", "z"), rng.integers(0, 9, size=(150, 3))),
        Relation("R2", ("x", "y"), rng.integers(0, 9, size=(70, 2))),
        Relation("R3", ("x", "y"), rng.integers(0, 9, size=(70, 2))),
        Relation("R4", ("x", "y"), rng.integers(0, 9, size=(70, 2))),
        Relation("R5", ("x", "y"), rng.integers(0, 9, size=(70, 2))),
    ])


class TestPaperExample2:
    """Sec. II, Example 2: hypercube routing with p = (1,2,2,1,1)."""

    def test_tuple_routed_by_matching_coordinates(self, qex_db):
        query = example_query()
        shares = {"a": 1, "b": 2, "c": 2, "d": 1, "e": 1}
        grid = HypercubeGrid(query, shares, num_workers=4,
                             hash_fn=modulo_hash)
        assert grid.num_cubes == 4
        # A tuple (1, 2, 2) of R1(a,b,c): h_a(1)=0, h_b(2)=0, h_c(2)=0,
        # so it belongs to every cube with coordinate (0,0,0,*,*).
        atom = query.atoms[0]
        t = np.array([[1, 2, 2]], dtype=np.int64)
        block = grid.tuple_block_ids(atom, t)[0]
        receiving = [c for c in range(grid.num_cubes)
                     if grid.cube_block_id(atom, grid.coordinate_of(c))
                     == block]
        expected = [c for c in range(grid.num_cubes)
                    if grid.coordinate_of(c)[1] == 0
                    and grid.coordinate_of(c)[2] == 0]
        assert receiving == expected

    def test_union_of_cubes_is_exact(self, qex_db):
        query = example_query()
        shares = {"a": 1, "b": 2, "c": 2, "d": 1, "e": 1}
        grid = HypercubeGrid(query, shares, num_workers=4,
                             hash_fn=modulo_hash)
        res = hcube_shuffle(query, qex_db, grid)
        total = sum(leapfrog_join(res.local_query, cdb).count
                    for cdb in res.cube_databases)
        assert total == leapfrog_join(query, qex_db).count


class TestExampleQueryEndToEnd:
    def test_all_engines_agree_on_ternary_query(self, qex_db):
        query = example_query()
        cluster = Cluster(num_workers=4)
        expected = leapfrog_join(query, qex_db).count
        engines = [SparkSQLJoin(), BigJoin(), HCubeJ(), HCubeJCache(),
                   ADJ(num_samples=40)]
        for engine in engines:
            assert engine.run(query, qex_db, cluster).count == expected, \
                engine.name

    def test_adj_precomputes_fig5_bags_when_computation_heavy(self, qex_db):
        """With expensive computation, the optimizer should reach for the
        Fig. 5 candidates R2><R3 and/or R4><R5."""
        from repro.distributed import CostModelParams
        params = CostModelParams(alpha_push=1e12, alpha_pull=1e12,
                                 alpha_merge=1e12, block_latency=0.0,
                                 beta_work=1e3)
        cluster = Cluster(num_workers=4, params=params)
        query = example_query()
        report = optimize_plan(
            query, qex_db, cluster,
            estimator=CardinalityEstimator(qex_db, num_samples=40, seed=0))
        names = {c.name for c in report.plan.candidates}
        assert names <= {"R2_R3", "R4_R5"}
        assert names, "expected at least one pre-computed bag"


class TestOneRoundImplEquivalence:
    @pytest.mark.parametrize("impl", ["push", "pull", "merge"])
    def test_impls_agree(self, impl):
        query = paper_query("Q1")
        rng = np.random.default_rng(3)
        db = graph_database_for(query, rng.integers(0, 20, size=(150, 2)))
        cluster = Cluster(num_workers=4)
        ledger = cluster.new_ledger()
        outcome = one_round_execute(query, db, cluster, query.attributes,
                                    ledger, impl=impl)
        assert outcome.count == leapfrog_join(query, db).count


class TestAllCatalogQueriesAgainstOracle:
    @pytest.mark.parametrize("qname", ["Q1", "Q2", "Q4", "Q5", "Q6",
                                       "Q7", "Q8", "Q9", "Q10", "Q11"])
    def test_leapfrog_vs_binary_join(self, qname):
        query = paper_query(qname)
        rng = np.random.default_rng(17)
        db = graph_database_for(query, rng.integers(0, 12, size=(90, 2)))
        assert leapfrog_join(query, db).count == \
            len(binary_plan_join(query, db))

    def test_q3_small_instance(self):
        # The 5-clique has 10 atoms: the Cartesian oracle is hopeless
        # (25^10 combos), so cross-validate against the binary-join plan.
        query = paper_query("Q3")
        rng = np.random.default_rng(5)
        db = graph_database_for(query, rng.integers(0, 6, size=(30, 2)))
        assert leapfrog_join(query, db).count == \
            len(binary_plan_join(query, db))


class TestMemoryConstrainedCluster:
    def test_share_optimizer_spreads_under_memory_pressure(self):
        """Eq. 3: a tight memory budget forces higher shares."""
        query = paper_query("Q1")
        sizes = {f"R{i}": 8000 for i in (1, 2, 3)}
        free = optimize_shares(query, sizes, num_cubes=8)
        tight = optimize_shares(query, sizes, num_cubes=8,
                                memory_tuples=8000)
        assert tight.max_server_load <= 8000
        assert tight.max_server_load <= free.max_server_load + 1e-9

    def test_engines_succeed_with_adequate_memory(self):
        query = paper_query("Q1")
        rng = np.random.default_rng(23)
        db = graph_database_for(query, rng.integers(0, 30, size=(300, 2)))
        cluster = Cluster(num_workers=4, memory_tuples_per_worker=2000)
        r = HCubeJ().run(query, db, cluster)
        assert r.count == leapfrog_join(query, db).count


class TestSelfJoinSupport:
    def test_two_atoms_one_stored_relation(self):
        """Atoms may reference the same stored graph (true self-join)."""
        query = JoinQuery([Atom("E", ("a", "b")), Atom("E", ("b", "c")),
                           Atom("E", ("a", "c"))], name="tri")
        rng = np.random.default_rng(29)
        db = graph_database_for(query, rng.integers(0, 15, size=(120, 2)))
        assert len(db) == 1
        cluster = Cluster(num_workers=3)
        expected = leapfrog_join(query, db).count
        for engine in (HCubeJ(), ADJ(num_samples=20)):
            assert engine.run(query, db, cluster).count == expected
