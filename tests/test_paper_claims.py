"""The paper's headline claims, verified at unit-test scale.

Each test encodes one qualitative claim from the paper so that the full
claim set is checked on every CI run, independent of the (slower)
benches that regenerate the actual figures.
"""

import numpy as np
import pytest

from repro.core import CardinalityEstimator, optimize_plan
from repro.data import Database, Relation
from repro.distributed import (
    Cluster,
    HypercubeGrid,
    hcube_shuffle,
    optimize_shares,
)
from repro.engines import ADJ, HCubeJ, SparkSQLJoin, run_engine_safely
from repro.ghd import optimal_hypertree
from repro.query import paper_query
from repro.wcoj import IntersectionCache, leapfrog_join
from repro.workloads import make_testcase


@pytest.fixture(scope="module")
def lj_q5():
    return make_testcase("lj", "Q5", scale=1.2e-5)


@pytest.fixture(scope="module")
def cluster():
    return Cluster(num_workers=8)


class TestIntroductionClaims:
    def test_one_round_shuffles_less_fig1a(self, lj_q5, cluster):
        """Fig. 1(a): one-round joins shuffle far fewer tuples."""
        q, db = lj_q5
        multi = run_engine_safely(SparkSQLJoin(), q, db, cluster)
        one = run_engine_safely(HCubeJ(), q, db, cluster)
        assert multi.ok and one.ok
        assert multi.shuffled_tuples > 5 * one.shuffled_tuples

    def test_computation_dominates_comm_first_fig1b(self, lj_q5, cluster):
        """Fig. 1(b): under comm-first, computation is not negligible
        next to communication on a dense cyclic query."""
        q, db = lj_q5
        r = HCubeJ().run(q, db, cluster)
        assert r.breakdown.computation > 0.2 * r.breakdown.communication

    def test_co_optimization_reduces_computation(self, lj_q5, cluster):
        q, db = lj_q5
        hc = HCubeJ().run(q, db, cluster)
        adj = ADJ(num_samples=30).run(q, db, cluster)
        assert adj.count == hc.count
        assert adj.breakdown.computation < hc.breakdown.computation


class TestSectionIIIClaims:
    def test_search_space_reduction(self):
        """Sec. III-A: 2^m joins x n! orders shrink to 2^{n*} x n*!."""
        import math
        q = paper_query("Q5")
        tree = optimal_hypertree(q)
        full_orders = math.factorial(q.num_attributes)
        valid_orders = len(set(tree.valid_attribute_orders()))
        assert valid_orders < full_orders
        candidates = 2 ** sum(1 for b in tree.bags if not b.is_single_atom)
        assert candidates <= 2 ** tree.num_bags < 2 ** q.num_atoms

    def test_deepest_levels_dominate_fig6(self, lj_q5):
        """Fig. 6: the last traversed node produces most tuples."""
        q, db = lj_q5
        tree = optimal_hypertree(q)
        traversal = next(tree.traversal_orders())
        order = tree.attribute_order(traversal)
        stats = leapfrog_join(q, db, order).stats
        bags = {b.index: b for b in tree.bags}
        seen: set[str] = set()
        shares = []
        for idx in traversal:
            depths = [d for d, a in enumerate(order)
                      if a in bags[idx].attributes and a not in seen]
            seen |= {order[d] for d in depths}
            shares.append(sum(stats.level_tuples[d] for d in depths))
        assert shares[-1] == max(shares)

    def test_lemma1_quadratic_exploration(self, lj_q5, cluster):
        q, db = lj_q5
        est = CardinalityEstimator(db, num_samples=20, seed=0)
        report = optimize_plan(q, db, cluster, estimator=est)
        n_star = report.plan.hypertree.num_bags
        assert report.explored_configurations <= \
            (2 * n_star) * (2 * n_star - 1) // 2


class TestSectionVClaims:
    def test_pull_beats_push_and_merge_beats_pull_fig9(self):
        """Fig. 9: comm(pull) < comm(push), comm(merge) <= comm(pull)."""
        q, db = make_testcase("lj", "Q2", scale=1.2e-5)
        cluster = Cluster(num_workers=8)
        sizes = {a.relation: len(db[a.relation]) for a in q.atoms}
        shares = optimize_shares(q, sizes, cluster.num_workers)
        grid = HypercubeGrid(q, shares, cluster.num_workers)
        seconds = {}
        for impl in ("push", "pull", "merge"):
            ledger = cluster.new_ledger()
            ledger.charge_shuffle(
                hcube_shuffle(q, db, grid, impl=impl).stats, impl)
            seconds[impl] = ledger.comm_seconds
        assert seconds["pull"] < seconds["push"]
        assert seconds["merge"] <= seconds["pull"]

    def test_block_level_trie_prebuild_saves_computation(self):
        """Merge's pre-built tries: the charged trie-construction rate is
        an order of magnitude faster."""
        from repro.distributed import CostModelParams
        p = CostModelParams()
        assert p.trie_merge_rate >= 10 * p.trie_build_rate


class TestSectionIVClaims:
    def test_sampling_beats_sketches_strawman(self):
        """Sec. IV: per-attribute independence estimates err by orders of
        magnitude on cyclic joins; sampling does not."""
        q, db = make_testcase("lj", "Q1", scale=1.2e-5)
        true = leapfrog_join(q, db).count
        if true == 0:
            pytest.skip("degenerate instance")
        # Sketch strawman: |R|^3 / (distinct^2 per join attribute) -
        # classic System-R independence.
        rel = db["R1"]
        import numpy as np
        distinct = max(1, len(np.unique(rel.data[:, 0])))
        sketch = len(rel) ** 3 / distinct ** 4
        sampled = CardinalityEstimator(db, num_samples=2000,
                                       seed=0).estimate(q).estimate
        sketch_err = max(sketch, true) / max(1.0, min(sketch, true))
        sample_err = max(sampled, true) / max(1.0, min(sampled, true))
        assert sample_err < sketch_err

    def test_convergence_beyond_1e4_fig10(self):
        """Fig. 10: D converges to ~1 with enough samples."""
        q, db = make_testcase("lj", "Q4", scale=8e-6)
        true = leapfrog_join(q, db).count
        est = CardinalityEstimator(db, num_samples=10_000,
                                   seed=0).estimate(q)
        hi = max(est.estimate, float(true), 1.0)
        lo = max(1.0, min(est.estimate, float(true)))
        assert hi / lo < 1.05


class TestSectionVIIClaims:
    def test_sparksql_fails_beyond_q1_with_paper_budgets(self, cluster):
        """Fig. 12: SparkSQL survives Q1 but not the denser queries.

        The budget mirrors the paper's fixed 12-hour wall, which is a
        roughly input-relative allowance — here 40x the input tuples.
        """
        q1, db1 = make_testcase("as", "Q1", scale=1.2e-5)
        budget = 40 * sum(len(db1[a.relation]) for a in q1.atoms)
        ok = run_engine_safely(SparkSQLJoin(budget_tuples=budget),
                               q1, db1, cluster)
        assert ok.ok
        q5, db5 = make_testcase("as", "Q5", scale=1.2e-5)
        budget = 40 * sum(len(db5[a.relation]) for a in q5.atoms)
        fail = run_engine_safely(SparkSQLJoin(budget_tuples=budget),
                                 q5, db5, cluster)
        assert not fail.ok

    def test_adj_completes_all_hard_queries(self, cluster):
        """Fig. 12(d-f): ADJ handles every hard query."""
        for qname in ("Q1", "Q2", "Q4"):
            q, db = make_testcase("as", qname, scale=8e-6)
            r = run_engine_safely(ADJ(num_samples=20), q, db, cluster)
            assert r.ok, qname

    def test_cache_engine_degrades_with_tight_memory(self):
        """Fig. 12(e): with memory consumed by the shuffle, caching
        stops helping (HCubeJ+Cache ~ HCubeJ on LJ)."""
        from repro.engines import HCubeJCache
        q, db = make_testcase("lj", "Q4", scale=8e-6)
        roomy = Cluster(num_workers=4)
        r_roomy = HCubeJCache().run(q, db, roomy)
        # memory just above the shuffle footprint: nothing left to cache
        load = max(r_roomy.extra.get("cache_hits", 0), 0)
        tight = Cluster(num_workers=4,
                        memory_tuples_per_worker=10 ** 9)
        # tight cache capacity simulated through a cluster whose budget
        # leaves no slack: worker load ~ budget.
        hc_plain = HCubeJ().run(q, db, roomy)
        assert r_roomy.count == hc_plain.count
        if load:
            assert (r_roomy.extra["leapfrog_work"]
                    <= hc_plain.extra["leapfrog_work"])
