"""Tests for the pluggable data plane (repro.runtime.transport).

Covers: bit-for-bit round-trips through both transports (including empty
relations and arity-1 edge cases), descriptor-bytes accounting, segment
lifetime/cleanup rules (teardown is provable and idempotent, crash paths
included), and the REPRO_TRANSPORT environment default.
"""

import numpy as np
import pytest

from repro.data import Database, Relation
from repro.distributed import Cluster, HypercubeGrid, hcube_route
from repro.engines import HCubeJ, run_engine_safely
from repro.errors import ConfigError, WorkerCrashed
from repro.query import paper_query
from repro.runtime import (
    PickleTransport,
    SerialExecutor,
    SharedMemoryTransport,
    ThreadExecutor,
    build_routed_tasks,
    create_executor,
    create_transport,
    execute_worker_task,
    merge_task_results,
    resolve_array_ref,
)
from repro.runtime.transport import REF_HEADER_BYTES
from repro.wcoj import leapfrog_join

TRANSPORTS = ("pickle", "shm")


def attach_fails(name: str) -> bool:
    from multiprocessing import shared_memory
    try:
        seg = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return True
    seg.close()
    return False


class TestRoundTrip:
    @pytest.mark.parametrize("transport_name", TRANSPORTS)
    @pytest.mark.parametrize("shape", [(7, 2), (5, 1), (0, 2), (0, 1),
                                       (1, 3)])
    def test_whole_array_bit_for_bit(self, transport_name, shape):
        rng = np.random.default_rng(0)
        arr = rng.integers(-2**40, 2**40, size=shape).astype(np.int64)
        with create_transport(transport_name) as t:
            key = t.publish("a", arr)
            out = resolve_array_ref(t.make_ref(key))
            assert out.dtype == arr.dtype
            assert np.array_equal(out, arr)

    @pytest.mark.parametrize("transport_name", TRANSPORTS)
    def test_row_subsets(self, transport_name):
        arr = np.arange(24, dtype=np.int64).reshape(12, 2)
        for rows in ([], [0], [11, 0, 5], list(range(12))):
            rows = np.asarray(rows, dtype=np.int64)
            with create_transport(transport_name) as t:
                key = t.publish("a", arr)
                out = resolve_array_ref(t.make_ref(key, rows))
                assert np.array_equal(out, arr[rows])

    def test_resolved_array_survives_teardown(self):
        arr = np.arange(10, dtype=np.int64).reshape(5, 2)
        t = SharedMemoryTransport()
        ref = t.make_ref(t.publish("a", arr), np.array([3, 1]))
        out = resolve_array_ref(ref)
        t.teardown()
        assert np.array_equal(out, arr[[3, 1]])  # never aliases the segment

    def test_plain_ndarray_passthrough(self):
        arr = np.ones((3, 2), dtype=np.int64)
        assert resolve_array_ref(arr) is arr


class TestAccounting:
    def test_pickle_ships_partition_bytes(self):
        arr = np.arange(40, dtype=np.int64).reshape(20, 2)
        t = PickleTransport()
        ref = t.make_ref(t.publish("a", arr), np.arange(6))
        assert ref.payload_bytes == REF_HEADER_BYTES + 6 * 2 * 8
        assert t.stats.shipped_bytes == ref.payload_bytes
        assert t.stats.published_bytes == 0  # nothing staged out-of-band

    def test_shm_ships_descriptor_bytes(self):
        arr = np.arange(40, dtype=np.int64).reshape(20, 2)
        t = SharedMemoryTransport()
        key = t.publish("a", arr)
        ref = t.make_ref(key, np.arange(6))
        # Descriptor: header + row indices only — not the 6x2 matrix.
        assert ref.payload_bytes == REF_HEADER_BYTES + 6 * 8
        assert t.stats.shipped_bytes == ref.payload_bytes
        assert t.stats.published_bytes == arr.nbytes
        assert t.stats.published_blocks == 1
        t.teardown()

    def test_publish_is_idempotent_per_key(self):
        arr = np.arange(8, dtype=np.int64).reshape(4, 2)
        t = SharedMemoryTransport()
        t.publish("a", arr)
        t.publish("a", arr)
        assert t.stats.published_blocks == 1
        assert len(t.active_segments) == 1
        t.teardown()


class TestLifetime:
    def test_teardown_unlinks_segments(self):
        arr = np.arange(8, dtype=np.int64).reshape(4, 2)
        t = SharedMemoryTransport()
        t.publish("a", arr)
        names = t.active_segments
        assert names
        t.teardown()
        assert t.active_segments == ()
        assert all(attach_fails(n) for n in names)

    def test_teardown_idempotent_and_restartable(self):
        arr = np.arange(8, dtype=np.int64).reshape(4, 2)
        t = SharedMemoryTransport()
        t.publish("a", arr)
        t.teardown()
        t.teardown()
        # A new epoch works after teardown.
        out = resolve_array_ref(t.make_ref(t.publish("a", arr)))
        assert np.array_equal(out, arr)
        t.teardown()

    def test_executor_close_tears_down_transport(self):
        t = SharedMemoryTransport()
        with SerialExecutor(2, transport=t) as ex:
            assert ex.transport is t
            t.publish("a", np.ones((3, 2), dtype=np.int64))
            assert t.active_segments
        assert t.active_segments == ()

    def test_empty_arrays_need_no_segment(self):
        t = SharedMemoryTransport()
        key = t.publish("e", np.empty((0, 2), dtype=np.int64))
        assert t.active_segments == ()
        out = resolve_array_ref(t.make_ref(key))
        assert out.shape == (0, 2)
        t.teardown()


class TestEnvDefault:
    def test_env_selects_transport(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRANSPORT", "shm")
        assert create_transport().name == "shm"
        ex = create_executor("serial", 1)
        assert ex.transport.name == "shm"

    def test_invalid_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRANSPORT", "carrier-pigeon")
        with pytest.raises(ConfigError):
            create_transport()

    def test_unknown_transport_rejected(self):
        with pytest.raises(ConfigError):
            create_transport("quantum")


class TestRoutedTasks:
    def _routing(self, query_name="Q1", workers=4):
        query = paper_query(query_name)
        rng = np.random.default_rng(3)
        edges = rng.integers(0, 40, size=(300, 2))
        db = Database(Relation(a.relation, ("x", "y"), edges)
                      for a in query.atoms)
        shares = {a: 1 for a in query.attributes}
        shares[query.attributes[0]] = 2
        shares[query.attributes[1]] = 2
        grid = HypercubeGrid(query, shares, workers)
        return query, db, hcube_route(query, db, grid)

    @pytest.mark.parametrize("transport_name", TRANSPORTS)
    def test_routed_tasks_reproduce_global_count(self, transport_name):
        query, db, routing = self._routing()
        truth = leapfrog_join(query, db).count
        with create_transport(transport_name) as t:
            tasks = build_routed_tasks(routing, db, query.attributes,
                                       transport=t)
            results = [execute_worker_task(task) for task in tasks]
        merged = merge_task_results(results, query.num_attributes)
        assert merged.count == truth

    def test_shm_cleanup_survives_worker_crash(self, monkeypatch):
        """Segments are released even when the run dies mid-flight."""
        import repro.engines.one_round as one_round_mod

        def crashing_run(executor, tasks, telemetry=None):
            raise WorkerCrashed(0, "simulated death")

        monkeypatch.setattr(one_round_mod, "run_worker_tasks",
                            crashing_run)
        monkeypatch.setattr(one_round_mod, "run_streamed_tasks",
                            crashing_run)
        query, db, _ = self._routing()
        t = SharedMemoryTransport()
        with ThreadExecutor(2, transport=t) as ex:
            result = run_engine_safely(HCubeJ(), query, db,
                                       Cluster(num_workers=2), executor=ex)
        assert result.failure == "crash"
        assert t.active_segments == ()
