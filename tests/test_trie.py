"""Unit tests for repro.data.trie."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import Relation, Trie
from repro.errors import SchemaError


def make_trie(rows, attrs=("a", "b"), order=None):
    rel = Relation.from_tuples("R", attrs, rows)
    return Trie(rel, order=order)


class TestTrieBuild:
    def test_sorted_and_deduped(self):
        t = make_trie([(2, 1), (1, 2), (1, 2), (1, 1)])
        assert t.data.tolist() == [[1, 1], [1, 2], [2, 1]]
        assert len(t) == 3

    def test_order_permutes_columns(self):
        t = make_trie([(1, 9), (2, 8)], order=("b", "a"))
        assert t.attributes == ("b", "a")
        assert t.data.tolist() == [[8, 2], [9, 1]]

    def test_bad_order_rejected(self):
        rel = Relation.from_tuples("R", ("a", "b"), [(1, 2)])
        with pytest.raises(SchemaError):
            Trie(rel, order=("a", "z"))

    def test_root_span(self):
        t = make_trie([(1, 1), (2, 2)])
        assert t.root == (0, 2)

    def test_data_readonly(self):
        t = make_trie([(1, 1)])
        with pytest.raises(ValueError):
            t.data[0, 0] = 5


class TestNavigation:
    def test_candidates_at_root(self):
        t = make_trie([(1, 5), (1, 6), (3, 1), (2, 2)])
        assert t.candidates(0, *t.root).tolist() == [1, 2, 3]

    def test_candidates_within_range(self):
        t = make_trie([(1, 5), (1, 6), (2, 2)])
        lo, hi = t.child_range(0, *t.root, 1)
        assert t.candidates(1, lo, hi).tolist() == [5, 6]

    def test_child_range_missing_value_empty(self):
        t = make_trie([(1, 5), (2, 2)])
        lo, hi = t.child_range(0, *t.root, 7)
        assert lo == hi

    def test_children_spans_partition_parent(self):
        t = make_trie([(1, 5), (1, 6), (2, 2), (3, 3), (3, 4)])
        values, starts, ends = t.children(0, *t.root)
        assert values.tolist() == [1, 2, 3]
        assert starts[0] == 0
        assert ends[-1] == len(t)
        assert (starts[1:] == ends[:-1]).all()

    def test_children_empty_range(self):
        t = make_trie([(1, 5)])
        values, starts, ends = t.children(0, 1, 1)
        assert values.shape == (0,)

    def test_count_distinct(self):
        t = make_trie([(1, 5), (1, 6), (2, 2)])
        assert t.count_distinct(0, *t.root) == 2

    def test_prefix_count(self):
        t = make_trie([(1, 5), (1, 6), (2, 2)])
        assert t.prefix_count(0) == 1
        assert t.prefix_count(1) == 2
        assert t.prefix_count(2) == 3

    def test_prefix_count_empty(self):
        t = Trie(Relation("R", ("a", "b")))
        assert t.prefix_count(0) == 0
        assert t.prefix_count(1) == 0


class TestMerge:
    def test_merge_equals_union(self):
        t1 = make_trie([(1, 1), (2, 2)])
        t2 = make_trie([(2, 2), (3, 3)])
        merged = Trie.merge([t1, t2])
        assert merged.data.tolist() == [[1, 1], [2, 2], [3, 3]]

    def test_merge_schema_mismatch(self):
        t1 = make_trie([(1, 1)])
        t2 = make_trie([(1, 1)], attrs=("a", "c"))
        with pytest.raises(SchemaError):
            Trie.merge([t1, t2])

    def test_merge_empty_list(self):
        with pytest.raises(SchemaError):
            Trie.merge([])


class TestTrieIterator:
    def test_walk_enumerates_all_tuples(self):
        rows = [(1, 5), (1, 6), (2, 2), (3, 1)]
        t = make_trie(rows)
        it = t.iterator()
        seen = []
        it.open()
        while not it.at_end:
            a = it.key()
            it.open()
            while not it.at_end:
                seen.append((a, it.key()))
                it.next()
            it.up()
            it.next()
        assert seen == sorted(rows)

    def test_seek_finds_least_upper_bound(self):
        t = make_trie([(1, 0), (3, 0), (7, 0)])
        it = t.iterator()
        it.open()
        it.seek(2)
        assert it.key() == 3
        it.seek(7)
        assert it.key() == 7
        it.seek(8)
        assert it.at_end

    def test_seek_is_monotone_no_backward(self):
        t = make_trie([(1, 0), (5, 0)])
        it = t.iterator()
        it.open()
        it.seek(5)
        # Seeking backwards keeps the position (LFTJ contract: seek only
        # moves forward).
        it.seek(1)
        assert it.key() == 5

    def test_up_restores_parent_position(self):
        t = make_trie([(1, 5), (2, 6), (2, 7)])
        it = t.iterator()
        it.open()          # at a=1
        it.next()          # at a=2
        assert it.key() == 2
        it.open()          # at b=6
        assert it.key() == 6
        it.up()            # back at a=2
        assert it.key() == 2
        it.next()
        assert it.at_end

    def test_up_above_root_raises(self):
        t = make_trie([(1, 1)])
        it = t.iterator()
        with pytest.raises(IndexError):
            it.up()

    def test_open_on_empty_trie(self):
        t = Trie(Relation("R", ("a", "b")))
        it = t.iterator()
        it.open()
        assert it.at_end


@settings(max_examples=60, deadline=None)
@given(
    rows=st.lists(
        st.tuples(st.integers(0, 9), st.integers(0, 9), st.integers(0, 9)),
        min_size=0, max_size=60,
    )
)
def test_trie_equals_sorted_set_property(rows):
    """The trie's flat data is exactly the sorted set of input rows."""
    rel = Relation.from_tuples("R", ("a", "b", "c"), rows)
    trie = Trie(rel)
    assert [tuple(r) for r in trie.data.tolist()] == sorted(set(map(tuple, rows)))


@settings(max_examples=40, deadline=None)
@given(
    rows=st.lists(
        st.tuples(st.integers(0, 6), st.integers(0, 6)),
        min_size=1, max_size=40,
    ),
    probe=st.integers(0, 7),
)
def test_child_range_agrees_with_linear_scan(rows, probe):
    rel = Relation.from_tuples("R", ("a", "b"), rows)
    trie = Trie(rel)
    lo, hi = trie.child_range(0, *trie.root, probe)
    expected = sorted({t for t in set(map(tuple, rows)) if t[0] == probe})
    assert trie.data[lo:hi].tolist() == [list(t) for t in expected]
