"""Pipelined epochs: streaming submit_tasks, parity with the barrier
path, and the failure-path regressions the barrier was hiding.

The headline invariant: for every engine, every transport and every
query, ``pipeline=on`` (streamed tasks, parallel routing, overlapped
publish) produces bit-identical counts, ``level_tuples`` and data-plane
totals to ``pipeline=off`` (the historical route -> publish -> execute
barriers).  Failure paths must leave the pool reusable after recoverable
errors and must never zero the epoch's data-plane counters.
"""

import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import Database, Relation
from repro.distributed import Cluster, HypercubeGrid
from repro.distributed.hcube import hcube_route
from repro.engines import (
    ADJ,
    BigJoin,
    HCubeJ,
    HCubeJCache,
    SparkSQLJoin,
    YannakakisJoin,
    run_engine_safely,
)
from repro.errors import BudgetExceeded, ConfigError, WorkerCrashed
from repro.query import paper_query
from repro.runtime import (
    SerialExecutor,
    ThreadExecutor,
    build_routed_tasks,
    create_executor,
    iter_routed_tasks,
    merge_task_results,
    run_streamed_tasks,
)
from repro.runtime.executor import default_pipeline
from repro.runtime.transport import (
    PickleTransport,
    SharedMemoryTransport,
)
from repro.wcoj import leapfrog_join

TRANSPORTS = ("pickle", "shm", "tcp")


def graph_case(query_name, seed=0, n=150, dom=25):
    query = paper_query(query_name)
    rng = np.random.default_rng(seed)
    edges = rng.integers(0, dom, size=(n, 2))
    db = Database(Relation(a.relation, ("x", "y"), edges)
                  for a in query.atoms)
    return query, db


def engine_lineup():
    return (HCubeJ(), HCubeJCache(), BigJoin(), SparkSQLJoin(),
            YannakakisJoin(), ADJ(num_samples=10))


# -- top-level task functions (picklable) -------------------------------------

def _double(x):
    return x * 2


def _budget_trip(x):
    raise BudgetExceeded(100, 10)


def _boom(x):
    raise RuntimeError(f"boom on {x}")


# -- streaming executor API ---------------------------------------------------

class TestSubmitTasks:
    @pytest.mark.parametrize("backend",
                             ("serial", "threads", "processes"))
    def test_results_keep_submission_order(self, backend):
        with create_executor(backend, 2) as ex:
            assert list(ex.submit_tasks(_double, iter(range(7)))) \
                == [0, 2, 4, 6, 8, 10, 12]

    def test_lazy_source_is_consumed_lazily(self):
        """Pool backends submit tasks as the generator produces them —
        execution of early tasks starts before the stream ends."""
        started = threading.Event()

        def traced(x):
            started.set()
            return x

        minted = []

        def stream():
            yield 0
            # The first task should already be on the pool by the time
            # the second is minted (no barrier on the full list).
            started.wait(timeout=5.0)
            minted.append(started.is_set())
            yield 1

        with ThreadExecutor(2) as ex:
            assert list(ex.submit_tasks(traced, stream())) == [0, 1]
        assert minted == [True]

    @pytest.mark.parametrize("backend", ("serial", "threads"))
    def test_empty_stream(self, backend):
        with create_executor(backend, 2) as ex:
            assert list(ex.submit_tasks(_double, iter(()))) == []

    @pytest.mark.parametrize("backend", ("serial", "threads"))
    def test_crash_becomes_worker_crashed(self, backend):
        with create_executor(backend, 2) as ex:
            with pytest.raises(WorkerCrashed, match="boom"):
                list(ex.submit_tasks(_boom, iter([7])))

    def test_reproerror_passes_through(self):
        with ThreadExecutor(2) as ex:
            with pytest.raises(BudgetExceeded):
                list(ex.submit_tasks(_budget_trip, iter([1])))

    def test_failure_stops_consuming_the_stream(self):
        """A mid-stream failure cancels pending work: the source is not
        drained to the end once a submitted task has failed."""
        minted = []

        def slow_stream():
            for i in range(20):
                minted.append(i)
                yield "boom" if i == 0 else i
                time.sleep(0.05)

        def fail_fast(x):
            if x == "boom":
                raise RuntimeError("boom fast")
            return x

        with ThreadExecutor(1) as ex:
            with pytest.raises(WorkerCrashed, match="boom fast"):
                list(ex.submit_tasks(fail_fast, slow_stream()))
        assert len(minted) < 20

    def test_source_failure_cancels_submitted_tasks(self):
        """The task *source* raising propagates unchanged."""
        def broken_stream():
            yield 1
            raise ValueError("mint failed")

        with ThreadExecutor(2) as ex:
            with pytest.raises(ValueError, match="mint failed"):
                list(ex.submit_tasks(_double, broken_stream()))

    @settings(max_examples=25, deadline=None)
    @given(values=st.lists(st.integers(-1000, 1000), max_size=30))
    def test_streamed_equals_barrier(self, values):
        """Property: submit_tasks ≡ map_tasks for any task list."""
        with ThreadExecutor(2) as ex:
            assert list(ex.submit_tasks(_double, iter(values))) \
                == ex.map_tasks(_double, values)


class TestFailurePathRegressions:
    """The `map_tasks closes a healthy pool` bug (ISSUE 5, satellite 1)."""

    def test_recoverable_failure_keeps_pool_and_transport(self):
        transport = SharedMemoryTransport()
        with ThreadExecutor(2, transport=transport) as ex:
            transport.publish("k", np.arange(6, dtype=np.int64))
            with pytest.raises(BudgetExceeded):
                ex.map_tasks(_budget_trip, [1, 2])
            # The pool survived a recoverable error...
            assert ex._pool is not None
            assert ex.map_tasks(_double, [3]) == [6]
            # ...and the transport's epoch was NOT torn down mid-engine:
            # the current stats still hold the published block.
            assert transport.stats.published_blocks == 1
            assert transport.active_segments != ()

    def test_crash_closes_pool_but_never_transport(self):
        transport = SharedMemoryTransport()
        with ThreadExecutor(2, transport=transport) as ex:
            transport.publish("k", np.arange(6, dtype=np.int64))
            with pytest.raises(WorkerCrashed):
                ex.map_tasks(_boom, [1])
            assert ex._pool is None          # genuine crash: pool gone
            assert transport.stats.published_blocks == 1   # epoch alive
            # A fresh pool is created transparently on next use.
            assert ex.map_tasks(_double, [4]) == [8]

    def test_failure_before_transport_use_reports_no_stale_plane(self):
        """A failure that never touched the transport must not inherit
        the previous run's frozen epoch counters."""
        query, db = graph_case("Q1", seed=7)
        with create_executor("threads", 2, transport="shm") as ex:
            ok = run_engine_safely(HCubeJ(), query, db,
                                   Cluster(num_workers=2), executor=ex)
            assert ok.ok and ok.data_plane["published_bytes"] > 0
            # OOM trips inside hcube_route, before any publish happens.
            oom = run_engine_safely(
                HCubeJ(), query, db,
                Cluster(num_workers=2, memory_tuples_per_worker=1.0),
                executor=ex)
            assert oom.failure == "oom"
            assert oom.data_plane is None

    def test_serial_streaming_claims_no_overlap(self):
        """Inline execution between mints is not concurrency: the
        serial backend must report overlap_seconds == 0."""
        query, db = graph_case("Q1", seed=7)
        with create_executor("serial", 2, transport="shm",
                             pipeline=True) as ex:
            result = HCubeJ().run(query, db, Cluster(num_workers=2),
                                  executor=ex)
        assert result.ok
        assert result.telemetry.overlap_seconds == 0.0

    @pytest.mark.parametrize("pipeline", (False, True))
    def test_budget_tripped_run_reports_real_data_plane(self, pipeline):
        """Regression: a budget-failed run must report what it actually
        published, not zeros."""
        query, db = graph_case("Q1", seed=7, n=300, dom=40)
        cluster = Cluster(num_workers=2)
        with create_executor("threads", 2, transport="shm",
                             pipeline=pipeline) as ex:
            result = run_engine_safely(HCubeJ(work_budget=3), query, db,
                                       cluster, executor=ex)
            assert result.failure == "budget"
            plane = result.data_plane
            assert plane is not None and plane["transport"] == "shm"
            assert plane["published_bytes"] == sum(
                db[a.relation].nbytes for a in query.atoms)
            assert plane["freed_blocks"] == plane["published_blocks"] > 0
            # The executor survives for the next query of the session.
            assert ex.map_tasks(_double, [5]) == [10]


# -- streamed scheduler -------------------------------------------------------

def _routing(query_name="Q1", workers=3, seed=1):
    query, db = graph_case(query_name, seed=seed)
    shares = {a: 1 for a in query.attributes}
    shares[query.attributes[0]] = workers
    grid = HypercubeGrid(query, shares, workers)
    return query, db, hcube_route(query, db, grid)


class TestStreamedScheduler:
    def test_iter_routed_tasks_equals_build_routed_tasks(self):
        query, db, routing = _routing()
        t_barrier, t_stream = PickleTransport(), PickleTransport()
        barrier = build_routed_tasks(routing, db, query.attributes,
                                     transport=t_barrier)
        streamed = list(iter_routed_tasks(routing, db, query.attributes,
                                          transport=t_stream))
        assert [t.worker for t in streamed] == \
            [t.worker for t in barrier]
        for ts, tb in zip(streamed, barrier):
            assert len(ts.cubes) == len(tb.cubes)
            for cs, cb in zip(ts.cubes, tb.cubes):
                for rs, rb in zip(cs, cb):
                    assert rs.num_rows == rb.num_rows
                    np.testing.assert_array_equal(rs.data, rb.data)
        assert t_stream.stats.as_dict() == t_barrier.stats.as_dict()

    def test_streamed_results_match_barrier_results(self):
        query, db, routing = _routing("Q9")
        truth = leapfrog_join(query, db).count
        with SerialExecutor(3) as ex:
            streamed = run_streamed_tasks(
                ex, iter_routed_tasks(routing, db, query.attributes,
                                      transport=ex.transport))
        merged = merge_task_results(streamed, query.num_attributes)
        assert merged.count == truth

    def test_parallel_routing_identical_to_serial(self):
        query, db = graph_case("Q9", seed=3)
        shares = {a: 1 for a in query.attributes}
        shares[query.attributes[0]] = 2
        shares[query.attributes[1]] = 2
        grid = HypercubeGrid(query, shares, 4)
        serial = hcube_route(query, db, grid, routing_threads=None)
        threaded = hcube_route(query, db, grid, routing_threads=4)
        assert serial.stats == threaded.stats
        assert serial.worker_loads == threaded.worker_loads
        for a_serial, a_threaded in zip(serial.atom_rows,
                                        threaded.atom_rows):
            for r_serial, r_threaded in zip(a_serial, a_threaded):
                np.testing.assert_array_equal(r_serial, r_threaded)

    def test_itemsize_respected_in_bytes_accounting(self):
        """Satellite: bytes_copied uses the relation's real dtype width,
        not a hardcoded 8 bytes/element."""
        query = paper_query("Q1")
        rng = np.random.default_rng(5)
        edges64 = rng.integers(0, 30, size=(200, 2))

        class StubRel:
            def __init__(self, name, data):
                self.name, self.data, self.arity = name, data, 2

        class StubDB:
            def __init__(self, dtype):
                self.dtype = dtype

            def __getitem__(self, name):
                return StubRel(name, edges64.astype(self.dtype))

        grid = HypercubeGrid(query, {a: 2 for a in query.attributes}, 4)
        wide = hcube_route(query, StubDB(np.int64), grid)
        narrow = hcube_route(query, StubDB(np.int32), grid)
        assert wide.stats.tuple_copies == narrow.stats.tuple_copies
        assert wide.stats.bytes_copied == 2 * narrow.stats.bytes_copied
        assert narrow.stats.bytes_copied \
            == narrow.stats.tuple_copies * 2 * 4


# -- engine parity: pipelined ≡ barrier ---------------------------------------

#: data_plane keys that must be identical between the two paths
#: (fetch counters are excluded: worker-side tcp fetch caching is
#: per-process and timing-dependent under streaming).
_PLANE_KEYS = ("published_blocks", "published_bytes", "shipped_refs",
               "shipped_bytes", "transport")


class TestPipelineParity:
    @pytest.mark.parametrize("transport", TRANSPORTS)
    @pytest.mark.parametrize("query_name", ["Q1", "Q9"])
    def test_all_engines_identical_to_barrier(self, query_name,
                                              transport):
        """Counts, level_tuples, modeled costs and data-plane totals are
        identical with the pipeline on and off, for all six engines."""
        query, db = graph_case(query_name, seed=11)
        truth = leapfrog_join(query, db).count
        cluster = Cluster(num_workers=3)
        outcomes = {}
        for pipeline in (False, True):
            with create_executor("threads", 2, transport=transport,
                                 pipeline=pipeline) as ex:
                assert ex.pipeline is pipeline
                for engine in engine_lineup():
                    result = run_engine_safely(engine, query, db,
                                               cluster, executor=ex)
                    assert result.ok, (engine.name, transport, pipeline,
                                       result.failure)
                    outcomes[(engine.name, pipeline)] = result
        for engine in engine_lineup():
            off = outcomes[(engine.name, False)]
            on = outcomes[(engine.name, True)]
            assert on.count == off.count == truth, engine.name
            assert on.breakdown.total == pytest.approx(
                off.breakdown.total), engine.name
            if "level_tuples" in off.extra:
                assert on.extra["level_tuples"] \
                    == off.extra["level_tuples"], engine.name
            plane_on, plane_off = on.data_plane, off.data_plane
            assert plane_on is not None and plane_off is not None
            for key in _PLANE_KEYS:
                assert plane_on[key] == plane_off[key], \
                    (engine.name, transport, key)
            # Overlap telemetry exists only on the pipelined path.
            assert off.telemetry.overlap_seconds == 0.0
            assert on.telemetry.overlap_seconds >= 0.0

    def test_cache_hit_stats_match_barrier(self):
        query, db = graph_case("Q1", seed=13)
        cluster = Cluster(num_workers=2)
        results = {}
        for pipeline in (False, True):
            with create_executor("serial", 2, transport="shm",
                                 pipeline=pipeline) as ex:
                results[pipeline] = HCubeJCache().run(query, db, cluster,
                                                      executor=ex)
        assert results[True].count == results[False].count
        assert results[True].extra["cache_hits"] \
            == results[False].extra["cache_hits"]
        assert results[True].extra["cache_misses"] \
            == results[False].extra["cache_misses"]


class TestCrashMidStream:
    def test_segments_reclaimed_after_midstream_crash(self, monkeypatch):
        """A crash while tasks are still streaming cancels pending work
        and the engine's teardown still reclaims every shm segment."""
        import repro.runtime.scheduler as scheduler_mod

        def crashing_task(task):
            raise RuntimeError("worker died mid-stream")

        monkeypatch.setattr(scheduler_mod, "execute_worker_task",
                            crashing_task)
        query, db = graph_case("Q1", seed=8)
        transport = SharedMemoryTransport()
        with ThreadExecutor(2, transport=transport,
                            pipeline=True) as ex:
            result = run_engine_safely(HCubeJ(), query, db,
                                       Cluster(num_workers=2),
                                       executor=ex)
        assert result.failure == "crash"
        assert transport.active_segments == ()
        plane = result.data_plane
        assert plane is not None and plane["published_bytes"] > 0
        assert plane["freed_blocks"] == plane["published_blocks"] > 0

    def test_tcp_store_stopped_after_midstream_crash(self, monkeypatch):
        import repro.runtime.scheduler as scheduler_mod
        from repro.net.transport import TcpTransport

        def crashing_task(task):
            raise RuntimeError("worker died mid-stream")

        monkeypatch.setattr(scheduler_mod, "execute_worker_task",
                            crashing_task)
        query, db = graph_case("Q1", seed=9)
        transport = TcpTransport()
        with ThreadExecutor(2, transport=transport,
                            pipeline=True) as ex:
            result = run_engine_safely(HCubeJ(), query, db,
                                       Cluster(num_workers=2),
                                       executor=ex)
        assert result.failure == "crash"
        # The owned block store is gone — no listening port left behind.
        assert transport.store_address is None
        plane = result.data_plane
        assert plane is not None
        assert plane["freed_blocks"] == plane["published_blocks"] > 0


# -- config / CLI surface -----------------------------------------------------

class TestPipelineConfig:
    def test_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_PIPELINE", raising=False)
        assert default_pipeline() is True
        monkeypatch.setenv("REPRO_PIPELINE", "off")
        assert default_pipeline() is False
        monkeypatch.setenv("REPRO_PIPELINE", "ON")
        assert default_pipeline() is True
        monkeypatch.setenv("REPRO_PIPELINE", "sideways")
        with pytest.raises(ConfigError, match="REPRO_PIPELINE"):
            default_pipeline()

    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PIPELINE", "off")
        with create_executor("serial", 1, pipeline=True) as ex:
            assert ex.pipeline is True
        with create_executor("serial", 1) as ex:
            assert ex.pipeline is False

    def test_run_config_field(self, monkeypatch):
        from repro.api import RunConfig

        monkeypatch.delenv("REPRO_PIPELINE", raising=False)
        assert RunConfig().pipeline is True
        monkeypatch.setenv("REPRO_PIPELINE", "off")
        assert RunConfig().pipeline is False
        assert RunConfig(pipeline=True).pipeline is True

    def test_session_plumbs_pipeline_to_executor(self):
        from repro.api import JoinSession

        with JoinSession(workers=2, backend="threads",
                         transport="pickle", pipeline=False) as session:
            assert session.config.pipeline is False
            assert session.executor().pipeline is False

    def test_bad_max_workers_rejected(self):
        """Satellite: silent coercion of max_workers<1 is gone."""
        for bad in (0, -3):
            with pytest.raises(ConfigError, match="max_workers"):
                SerialExecutor(bad)
            with pytest.raises(ConfigError, match="max_workers"):
                ThreadExecutor(bad)
        assert SerialExecutor(None).max_workers == 1

    def test_cli_pipeline_flag(self, capsys):
        from repro.cli import main

        assert main(["run", "wb", "Q1", "--engine", "hcubej",
                     "--scale", "1e-5", "--samples", "10",
                     "--backend", "threads", "--pipeline", "off"]) == 0
        out = capsys.readouterr().out
        assert "pipeline=off" in out
        assert main(["run", "wb", "Q1", "--engine", "hcubej",
                     "--scale", "1e-5", "--samples", "10",
                     "--backend", "threads", "--pipeline", "on"]) == 0
        out = capsys.readouterr().out
        assert "pipeline=on" in out
