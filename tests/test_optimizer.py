"""Tests for repro.core.optimizer — Algorithm 2."""

import numpy as np
import pytest

from repro.core import (
    CardinalityEstimator,
    Optimizer,
    communication_first_plan,
    optimize_plan,
)
from repro.data import Database, Relation
from repro.distributed import Cluster, CostModelParams
from repro.ghd import optimal_hypertree
from repro.query import example_query, paper_query
from repro.workloads import make_testcase


@pytest.fixture(scope="module")
def q5_case():
    return make_testcase("lj", "Q5", scale=8e-6)


@pytest.fixture(scope="module")
def q5_report(q5_case):
    q, db = q5_case
    est = CardinalityEstimator(db, num_samples=40, seed=0)
    return optimize_plan(q, db, Cluster(num_workers=4), estimator=est)


class TestAlgorithm2:
    def test_plan_is_valid(self, q5_report):
        plan = q5_report.plan
        assert plan.hypertree.is_traversal_order(plan.traversal)
        assert plan.hypertree.is_valid_attribute_order(plan.attribute_order)

    def test_lemma1_exploration_bound(self, q5_report):
        """Alg. 2 evaluates O(0.5 * 2n*(2n*-1)) configurations."""
        n_star = q5_report.plan.hypertree.num_bags
        bound = (2 * n_star) * (2 * n_star - 1) // 2
        assert 0 < q5_report.explored_configurations <= bound

    def test_traversal_covers_all_bags(self, q5_report):
        plan = q5_report.plan
        assert sorted(plan.traversal) == sorted(
            b.index for b in plan.hypertree.bags)

    def test_precompute_only_multi_atom_bags(self, q5_report):
        plan = q5_report.plan
        bags = {b.index: b for b in plan.hypertree.bags}
        for idx in plan.precompute:
            assert not bags[idx].is_single_atom

    def test_sampling_work_recorded(self, q5_report):
        assert q5_report.sampling_work > 0
        assert q5_report.wall_seconds > 0

    def test_cost_trace_one_entry_per_bag(self, q5_report):
        assert len(q5_report.cost_trace) == q5_report.plan.hypertree.num_bags

    def test_deterministic_given_seed(self, q5_case):
        q, db = q5_case
        cluster = Cluster(num_workers=4)
        plans = []
        for _ in range(2):
            est = CardinalityEstimator(db, num_samples=40, seed=7)
            plans.append(optimize_plan(q, db, cluster, estimator=est).plan)
        assert plans[0].traversal == plans[1].traversal
        assert plans[0].precompute == plans[1].precompute
        assert plans[0].attribute_order == plans[1].attribute_order


class TestCostSensitivity:
    """The optimizer must react to the cost-model rates the way the
    paper describes the communication/computation trade-off."""

    def _plan_with(self, q, db, params):
        cluster = Cluster(num_workers=4, params=params)
        est = CardinalityEstimator(db, num_samples=40, seed=0)
        return optimize_plan(q, db, cluster, estimator=est).plan

    def test_free_computation_discourages_precompute(self, q5_case):
        """If computing is (nearly) free, trading communication for
        computation is pointless — nothing should be pre-computed."""
        q, db = q5_case
        params = CostModelParams(beta_work=1e15, beta_trie_lookup=1e15)
        plan = self._plan_with(q, db, params)
        assert plan.precompute == frozenset()

    def test_free_communication_encourages_precompute(self, q5_case):
        """If shuffling is free, pre-computing only costs its join work
        and saves Leapfrog work — the dense Q5 should pre-compute."""
        q, db = q5_case
        params = CostModelParams(alpha_push=1e15, alpha_pull=1e15,
                                 alpha_merge=1e15, block_latency=0.0)
        plan = self._plan_with(q, db, params)
        assert plan.precompute != frozenset()


class TestCommunicationFirst:
    def test_no_precompute(self, q5_case):
        q, db = q5_case
        plan = communication_first_plan(q, db, Cluster(num_workers=4))
        assert plan.precompute == frozenset()
        assert plan.hypertree.is_valid_attribute_order(plan.attribute_order)

    def test_reuses_supplied_hypertree(self, q5_case):
        q, db = q5_case
        tree = optimal_hypertree(q)
        plan = communication_first_plan(q, db, Cluster(num_workers=4),
                                        hypertree=tree)
        assert plan.hypertree is tree


class TestSingleBagQueries:
    def test_triangle_optimizes_without_error(self):
        q, db = make_testcase("wb", "Q1", scale=2e-5)
        report = optimize_plan(q, db, Cluster(num_workers=4),
                               estimator=CardinalityEstimator(
                                   db, num_samples=30, seed=0))
        # Q1's optimal hypertree is one bag: nothing to pre-compute.
        assert report.plan.traversal == (0,)
        assert report.plan.precompute == frozenset()
