"""Tests for repro.core.sampling — the Sec. IV estimator."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CardinalityEstimator,
    DistributedSampler,
    required_samples,
)
from repro.data import Database, Relation
from repro.errors import EstimationError
from repro.query import paper_query, parse_query
from repro.wcoj import leapfrog_join


def triangle_case(seed=0, n=120, dom=15):
    q = paper_query("Q1")
    rng = np.random.default_rng(seed)
    edges = rng.integers(0, dom, size=(n, 2))
    db = Database([Relation(f"R{i}", ("x", "y"), edges) for i in (1, 2, 3)])
    return q, db


class TestRequiredSamples:
    def test_lemma2_formula(self):
        # k = ceil(0.5 * p^-2 * ln(2/delta))
        assert required_samples(0.1, 0.05) == math.ceil(
            0.5 * 100 * math.log(40))

    def test_monotone_in_error(self):
        assert required_samples(0.05, 0.05) > required_samples(0.2, 0.05)

    def test_monotone_in_confidence(self):
        assert required_samples(0.1, 0.01) > required_samples(0.1, 0.2)

    def test_invalid_inputs(self):
        with pytest.raises(EstimationError):
            required_samples(0.0, 0.05)
        with pytest.raises(EstimationError):
            required_samples(0.1, 1.5)


class TestCardinalityEstimator:
    def test_exact_when_fully_enumerated(self):
        q, db = triangle_case()
        true = leapfrog_join(q, db).count
        est = CardinalityEstimator(db, num_samples=10_000).estimate(q)
        assert est.exact
        assert est.estimate == pytest.approx(true)

    def test_empty_join(self):
        q = paper_query("Q1")
        db = Database([
            Relation("R1", ("x", "y"), [(1, 2)]),
            Relation("R2", ("x", "y"), [(5, 6)]),
            Relation("R3", ("x", "y"), [(8, 9)]),
        ])
        est = CardinalityEstimator(db).estimate(q)
        assert est.estimate == 0.0
        assert est.exact

    def test_single_attribute_query(self):
        q = parse_query("R(a), S(a)")
        db = Database([
            Relation("R", ("v",), [(1,), (2,), (3,)]),
            Relation("S", ("v",), [(2,), (3,), (4,)]),
        ])
        est = CardinalityEstimator(db).estimate(q)
        assert est.estimate == pytest.approx(2.0)

    def test_sampled_estimate_reasonable(self):
        q, db = triangle_case(seed=1, n=400, dom=40)
        true = leapfrog_join(q, db).count
        est = CardinalityEstimator(db, num_samples=25, seed=3).estimate(q)
        assert not est.exact
        if true:
            d = max(est.estimate, true) / max(1.0, min(est.estimate, true))
            assert d < 5.0  # loose: 25 samples, heavy-tailed input

    def test_accuracy_improves_with_samples(self):
        """The Fig. 10 trend: max relative difference -> 1."""
        q, db = triangle_case(seed=2, n=500, dom=50)
        true = leapfrog_join(q, db).count

        def d_for(k):
            est = CardinalityEstimator(db, num_samples=k, seed=1).estimate(q)
            lo, hi = sorted((max(est.estimate, 1.0), max(float(true), 1.0)))
            return hi / lo

        assert d_for(10_000) <= d_for(5) + 1e-9

    def test_cache_reuses_result(self):
        q, db = triangle_case()
        est = CardinalityEstimator(db, num_samples=20)
        a = est.estimate(q)
        b = est.estimate(q)
        assert a is b
        assert est.calls == 1

    def test_level_stats_scaled(self):
        q, db = triangle_case()
        est = CardinalityEstimator(db, num_samples=10_000).estimate(q)
        # Exact enumeration: the scaled level tuples at the last level
        # equal the true count.
        true = leapfrog_join(q, db).count
        assert est.level_tuples[-1] == pytest.approx(true)

    def test_error_bound_zero_when_exact(self):
        q, db = triangle_case()
        est = CardinalityEstimator(db, num_samples=10_000).estimate(q)
        assert est.error_bound() == 0.0

    def test_error_bound_positive_when_sampled(self):
        q, db = triangle_case(seed=4, n=400, dom=40)
        est = CardinalityEstimator(db, num_samples=10, seed=0).estimate(q)
        if not est.exact:
            assert est.error_bound(0.05) > 0

    def test_invalid_sample_count(self):
        _, db = triangle_case()
        with pytest.raises(EstimationError):
            CardinalityEstimator(db, num_samples=0)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 500))
    def test_unbiasedness_property(self, seed):
        """Averaging estimates over seeds approaches the truth."""
        q, db = triangle_case(seed=seed, n=150, dom=12)
        true = leapfrog_join(q, db).count
        if true == 0:
            return
        estimates = [
            CardinalityEstimator(db, num_samples=30, seed=s).estimate(q).estimate
            for s in range(8)
        ]
        mean = sum(estimates) / len(estimates)
        assert 0.3 * true <= mean <= 3.0 * true

    def test_lemma2_bound_holds_empirically(self):
        """Chernoff-Hoeffding: error > p*b*|val| in < delta of trials."""
        q, db = triangle_case(seed=9, n=300, dom=25)
        p_err, delta = 0.25, 0.2
        k = required_samples(p_err, delta)
        true = leapfrog_join(q, db).count
        violations = 0
        trials = 20
        for s in range(trials):
            est = CardinalityEstimator(db, num_samples=k, seed=s).estimate(q)
            if est.exact:
                return  # instance too small to stress the bound
            bound = p_err * est.sample_max * est.val_size
            if abs(est.estimate - true) > bound:
                violations += 1
        assert violations / trials <= delta + 0.15


class TestDistributedSampler:
    def test_reduction_saves_shuffle_volume(self):
        q, db = triangle_case(seed=5, n=600, dom=80)
        report = DistributedSampler(db, num_samples=10, seed=0).sample(q)
        assert report.reduced_shuffle_tuples <= report.naive_shuffle_tuples

    def test_estimate_close_to_local_sampling(self):
        q, db = triangle_case(seed=6, n=300, dom=30)
        true = leapfrog_join(q, db).count
        report = DistributedSampler(db, num_samples=10_000, seed=0).sample(q)
        assert report.estimate.estimate == pytest.approx(true)

    def test_report_totals(self):
        q, db = triangle_case(seed=7)
        report = DistributedSampler(db, num_samples=5, seed=0).sample(q)
        assert report.total_shuffle_tuples == (
            report.reduced_shuffle_tuples
            + report.projection_shuffle_tuples)
