"""EXPLAIN ANALYZE profiles (repro.obs.profile + the CLI surface).

The profile is assembled from streams the stack already produces, so
these tests pin the reconciliation contract: measured phase rows sum to
``RuntimeTelemetry.total``, ``data_plane`` is the result's dict
verbatim, per-atom bytes agree with the transport's published bytes,
and modeled columns are the run's own ``CostBreakdown``.  The matrix
covers Q1/Q9 across serial/threads/processes/remote and
pickle/shm/tcp (the remote leg stands up a loopback agent).
"""

import json

import pytest

from repro import JoinSession
from repro.obs.metrics import METRICS
from repro.obs.profile import (
    PROFILE_SCHEMA_VERSION,
    PhaseRow,
    QueryProfile,
    build_profile,
)
from repro.obs.tracing import Span, set_thread_tracer, set_tracer


@pytest.fixture(autouse=True)
def _clean_observability_state():
    set_tracer(None)
    set_thread_tracer(None)
    METRICS.reset()
    yield
    set_tracer(None)
    set_thread_tracer(None)
    METRICS.reset()


def _profiled_run(query, backend, transport, hosts=None):
    with JoinSession(workers=2, backend=backend, transport=transport,
                     hosts=hosts) as session:
        result = session.query("wb", query, scale=1e-5).run(
            "adj", profile=True)
    assert result.ok, result.failure
    return result


def _assert_reconciles(result):
    """The acceptance contract: profile rows == the run's own streams."""
    profile = result.profile
    assert isinstance(profile, QueryProfile)

    # Modeled column is the run's CostBreakdown, phase by phase.
    breakdown = result.breakdown
    by_name = {row.name: row for row in profile.phases}
    for phase in ("optimization", "precompute", "communication",
                  "computation"):
        assert by_name[phase].modeled == \
            pytest.approx(getattr(breakdown, phase))
    assert profile.modeled_total == pytest.approx(breakdown.total)

    # Measured column sums to RuntimeTelemetry.total exactly (unmapped
    # phases become modeled=0 rows, so nothing leaks).
    telemetry = result.telemetry
    if telemetry is not None:
        measured = sum(row.measured for row in profile.phases
                       if row.measured is not None)
        assert measured == pytest.approx(telemetry.total)
        assert profile.measured_total == pytest.approx(telemetry.total)
        assert profile.tasks_executed == telemetry.tasks_executed
        assert profile.worker_seconds == \
            {str(w): s for w, s in telemetry.worker_seconds.items()}
        if profile.worker_seconds:
            peak = max(profile.worker_seconds.values())
            assert profile.straggler_seconds == pytest.approx(peak)
            assert profile.skew_ratio >= 1.0 or peak == 0.0

    # data_plane rides through verbatim.
    assert profile.data_plane == result.data_plane
    plane = result.data_plane or {}
    if plane.get("published_bytes"):
        # Publishing transports (shm/tcp): per-atom bytes account for
        # every published byte.
        assert sum(profile.atom_bytes.values()) == \
            plane["published_bytes"]


class TestProfileMatrix:
    """Q1/Q9 across the local backend x transport grid."""

    @pytest.mark.parametrize("query,backend,transport", [
        ("Q1", "serial", None),
        ("Q9", "serial", None),
        ("Q1", "threads", "pickle"),
        ("Q9", "threads", "shm"),
        ("Q1", "threads", "shm"),
        ("Q9", "threads", "pickle"),
    ])
    def test_reconciles_with_result_streams(self, query, backend,
                                            transport):
        _assert_reconciles(_profiled_run(query, backend, transport))

    def test_processes_backend_reconciles(self):
        _assert_reconciles(_profiled_run("Q1", "processes", "pickle"))

    def test_remote_tcp_reconciles_and_ships_tagged_spans(self):
        from repro.net import WorkerAgent

        agent = WorkerAgent(port=0, slots=2, mode="inline").start()
        try:
            result = _profiled_run(
                "Q9", "remote", "tcp",
                hosts=(f"127.0.0.1:{agent.port}",))
        finally:
            agent.stop()
        _assert_reconciles(result)
        profile = result.profile
        # Agent-side spans shipped home land in the wall table and are
        # already stamped with this run's query id.
        assert "agent_task" in profile.span_wall
        events = result.trace["traceEvents"]
        agent_events = [e for e in events
                        if e["ph"] == "X" and e["name"] == "agent_task"]
        assert agent_events
        assert all(e["args"].get("query_id") == profile.query_id
                   for e in agent_events)


class TestProfileContents:
    def test_query_ids_are_sequential_per_session(self):
        with JoinSession(workers=2, backend="threads",
                         transport="pickle") as session:
            job = session.query("wb", "Q1", scale=1e-5)
            first = job.run("adj", profile=True)
            second = job.run("adj", profile=True)
        assert first.profile.query_id == "q0001:Q1"
        assert second.profile.query_id == "q0002:Q1"

    def test_spans_carry_query_id_attribution(self):
        result = _profiled_run("Q1", "threads", "pickle")
        qid = result.profile.query_id
        events = [e for e in result.trace["traceEvents"]
                  if e["ph"] == "X"]
        assert events
        # Coordinator spans and shipped worker spans alike.
        assert all(e["args"].get("query_id") == qid for e in events)
        assert any(e["name"] == "worker_task" for e in events)

    def test_metrics_window_is_scoped_to_the_run(self):
        # Pollute the global registry first: the window must not see it.
        METRICS.counter("runtime.tasks_completed").inc(999)
        result = _profiled_run("Q1", "threads", "pickle")
        window = result.profile.metrics
        assert window["runtime.tasks_completed"] == \
            result.telemetry.tasks_executed
        hist = window["runtime.task_seconds"]
        assert hist["count"] == result.telemetry.tasks_executed
        # Windowed quantiles are real reservoir quantiles.
        assert hist["min"] <= hist["p50"] <= hist["p95"] <= hist["max"]
        # Transport counters in the window agree with the data plane.
        assert window.get("transport.shipped_bytes", 0) == \
            result.data_plane["shipped_bytes"]

    def test_kernel_decisions_annotated_with_realized_sizes(self):
        result = _profiled_run("Q9", "serial", None)
        profile = result.profile
        assert profile.kernel is not None
        if profile.kernel_decisions and profile.level_tuples and \
                len(profile.kernel_decisions) == len(profile.level_tuples):
            for dec, realized in zip(profile.kernel_decisions,
                                     profile.level_tuples):
                assert dec["realized_tuples"] == realized
        assert profile.level_tuples == \
            [int(n) for n in result.extra.get("level_tuples", ())]

    def test_profile_off_attaches_nothing(self):
        with JoinSession(workers=2, backend="threads",
                         transport="pickle") as session:
            result = session.query("wb", "Q1", scale=1e-5).run("adj")
        assert result.ok
        assert result.profile is None
        assert "profile" not in result.extra

    def test_compare_profiles_every_engine(self):
        with JoinSession(workers=2, backend="threads",
                         transport="pickle") as session:
            report = session.query("wb", "Q1", scale=1e-5).compare(
                engines=["adj", "bigjoin"], profile=True)
        assert report.agreed
        for result in report.results:
            assert result.profile is not None
            assert result.profile.engine == result.engine


class TestProfileSchema:
    def test_as_dict_is_json_round_trippable_and_versioned(self):
        result = _profiled_run("Q9", "threads", "shm")
        doc = json.loads(json.dumps(result.profile.as_dict()))
        assert doc["version"] == PROFILE_SCHEMA_VERSION
        assert set(doc) >= {
            "query_id", "query", "engine", "count", "ok", "backend",
            "transport", "kernel", "phases", "modeled_total",
            "measured_total", "span_wall", "worker_seconds",
            "data_plane", "atom_bytes", "kernel_decisions", "metrics",
        }
        for row in doc["phases"]:
            assert set(row) == {"name", "modeled", "measured", "parts"}

    def test_render_mentions_every_section(self):
        result = _profiled_run("Q9", "threads", "shm")
        text = result.profile.render()
        assert text.startswith(f"profile {result.profile.query_id} ")
        for needle in ("phases (modeled", "communication", "computation",
                       "span wall", "workers (n=", "data plane",
                       "metrics window"):
            assert needle in text, needle

    def test_build_profile_tolerates_failed_results(self):
        """A crashed run still profiles whatever phases completed."""
        from repro.distributed.metrics import CostBreakdown

        class _Failed:
            query = "Q1"
            engine = "ADJ"
            count = 0
            ok = False
            failure = "oom"
            breakdown = CostBreakdown()
            telemetry = None
            data_plane = None
            extra = {}

        profile = build_profile(_Failed(), query_id="q0009:Q1",
                                backend="threads", transport_label=None)
        assert not profile.ok and profile.failure == "oom"
        assert profile.measured_total is None
        assert [row.name for row in profile.phases] == \
            ["optimization", "precompute", "communication", "computation"]
        assert "FAILED (oom)" in profile.render()
        json.dumps(profile.as_dict())

    def test_atom_bytes_strips_block_suffixes_and_rel_prefix(self):
        spans = [
            Span(name="publish", ts=1.0, dur=0.0, pid=1,
                 args={"key": "rel:R1#0", "bytes": 100}),
            Span(name="publish", ts=1.0, dur=0.0, pid=1,
                 args={"key": "rel:R1#1", "bytes": 50}),
            Span(name="publish", ts=1.0, dur=0.0, pid=1,
                 args={"key": "R2", "bytes": 7}),
            Span(name="publish", ts=1.0, dur=0.0, pid=1, args={}),
            Span(name="route", ts=1.0, dur=0.0, pid=1,
                 args={"key": "rel:R3", "bytes": 1}),
        ]
        from repro.obs.profile import _atom_bytes

        assert _atom_bytes(spans) == {"R1": 150, "R2": 7}


class TestProfileCli:
    def test_profile_subcommand_renders_tree(self, capsys):
        from repro.cli import main

        assert main(["profile", "wb", "Q1", "--backend", "threads",
                     "--transport", "pickle", "--scale", "1e-5",
                     "--samples", "10"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("profile q0001:Q1 ")
        assert "phases (modeled" in out

    def test_profile_subcommand_json_matches_schema(self, capsys):
        from repro.cli import main

        assert main(["profile", "wb", "Q9", "--engine", "adj",
                     "--backend", "threads", "--transport", "shm",
                     "--scale", "1e-5", "--samples", "10",
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == PROFILE_SCHEMA_VERSION
        assert doc["ok"] is True
        measured = sum(row["measured"] for row in doc["phases"]
                       if row["measured"] is not None)
        assert measured == pytest.approx(doc["measured_total"])

    def test_run_profile_flag_appends_tree_per_engine(self, capsys):
        from repro.cli import main

        assert main(["run", "wb", "Q1", "--engine", "adj",
                     "--backend", "threads", "--transport", "pickle",
                     "--scale", "1e-5", "--samples", "10",
                     "--profile"]) == 0
        out = capsys.readouterr().out
        assert "profile q0001:Q1 " in out
        assert "metrics window" in out

    def test_run_without_profile_flag_prints_no_tree(self, capsys):
        from repro.cli import main

        assert main(["run", "wb", "Q1", "--engine", "adj",
                     "--scale", "1e-5", "--samples", "10"]) == 0
        assert "profile q" not in capsys.readouterr().out


class TestPhaseRow:
    def test_as_dict_copies_parts(self):
        row = PhaseRow(name="communication", modeled=1.0,
                       measured=0.5, parts={"shuffle": 0.5})
        doc = row.as_dict()
        doc["parts"]["shuffle"] = 99
        assert row.parts["shuffle"] == 0.5
