"""Tests for repro.wcoj: cache, binary joins, AGM bound."""

import math

import numpy as np
import pytest

from repro.data import Database, Relation
from repro.errors import BudgetExceeded, PlanError
from repro.query import JoinQuery, paper_query, parse_query
from repro.wcoj import (
    BinaryPlan,
    IntersectionCache,
    agm_bound,
    binary_plan_join,
    brute_force_join,
    execute_binary_plan,
    fractional_edge_cover_number,
    greedy_left_deep_plan,
    leapfrog_join,
)


def _entry(num_values):
    vals = np.arange(num_values, dtype=np.int64)
    return (vals, [(vals.copy(), vals.copy())])


class TestIntersectionCache:
    def test_put_get_roundtrip(self):
        c = IntersectionCache(100)
        c.put(("k",), _entry(5))
        assert c.get(("k",)) is not None
        assert c.hits == 1

    def test_miss_counted(self):
        c = IntersectionCache(100)
        assert c.get(("missing",)) is None
        assert c.misses == 1

    def test_eviction_lru_order(self):
        c = IntersectionCache(30)
        c.put(("a",), _entry(5))   # 15 values
        c.put(("b",), _entry(5))   # 30 values total
        c.get(("a",))              # a becomes most-recent
        c.put(("c",), _entry(5))   # evicts b
        assert c.get(("b",)) is None
        assert c.get(("a",)) is not None
        assert c.evictions == 1

    def test_oversized_entry_never_admitted(self):
        c = IntersectionCache(10)
        c.put(("big",), _entry(100))
        assert len(c) == 0

    def test_replace_same_key(self):
        c = IntersectionCache(100)
        c.put(("k",), _entry(5))
        c.put(("k",), _entry(6))
        assert len(c) == 1

    def test_clear(self):
        c = IntersectionCache(100)
        c.put(("k",), _entry(5))
        c.clear()
        assert len(c) == 0 and c.used_values == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            IntersectionCache(-1)


class TestBinaryJoin:
    def _db(self, seed=0):
        q = paper_query("Q1")
        rng = np.random.default_rng(seed)
        edges = rng.integers(0, 8, size=(50, 2))
        return q, Database([Relation(f"R{i}", ("x", "y"), edges)
                            for i in (1, 2, 3)])

    def test_matches_bruteforce(self):
        q, db = self._db()
        out = binary_plan_join(q, db)
        assert out.as_set() == brute_force_join(q, db)

    def test_matches_leapfrog_on_q2(self):
        q = paper_query("Q2")
        rng = np.random.default_rng(1)
        edges = rng.integers(0, 10, size=(80, 2))
        db = Database([Relation(f"R{i}", ("x", "y"), edges)
                       for i in range(1, 7)])
        assert len(binary_plan_join(q, db)) == leapfrog_join(q, db).count

    def test_plan_covers_all_atoms(self):
        q, db = self._db()
        plan = greedy_left_deep_plan(q, db)
        assert sorted(plan.atom_order) == [0, 1, 2]

    def test_incomplete_plan_rejected(self):
        q, db = self._db()
        with pytest.raises(PlanError):
            execute_binary_plan(q, db, BinaryPlan((0, 1)))

    def test_duplicate_plan_rejected(self):
        with pytest.raises(PlanError):
            BinaryPlan((0, 0, 1))

    def test_budget_enforced(self):
        q, db = self._db()
        with pytest.raises(BudgetExceeded):
            binary_plan_join(q, db, budget=1)

    def test_stats_record_intermediates(self):
        from repro.wcoj import BinaryJoinStats
        q, db = self._db()
        stats = BinaryJoinStats()
        execute_binary_plan(q, db, greedy_left_deep_plan(q, db), stats=stats)
        assert len(stats.intermediate_sizes) == 2
        assert stats.total_intermediate_tuples == sum(
            stats.intermediate_sizes)

    def test_disconnected_query_cartesian(self):
        q = parse_query("R(a,b), S(x,y)")
        db = Database([
            Relation("R", ("a", "b"), [(1, 2)]),
            Relation("S", ("x", "y"), [(3, 4), (5, 6)]),
        ])
        out = binary_plan_join(q, db)
        assert len(out) == 2


class TestAGM:
    def _triangle_db(self, n):
        # complete directed graph on n nodes
        edges = [(i, j) for i in range(n) for j in range(n) if i != j]
        return Database([Relation(f"R{i}", ("x", "y"), np.array(edges))
                         for i in (1, 2, 3)])

    def test_triangle_cover_number(self):
        assert fractional_edge_cover_number(paper_query("Q1")) == \
            pytest.approx(1.5)

    def test_clique_cover_numbers(self):
        # k-clique: rho* = k/2.
        assert fractional_edge_cover_number(paper_query("Q2")) == \
            pytest.approx(2.0)
        assert fractional_edge_cover_number(paper_query("Q3")) == \
            pytest.approx(2.5)

    def test_agm_is_an_upper_bound(self):
        q = paper_query("Q1")
        db = self._triangle_db(6)
        count = leapfrog_join(q, db).count
        assert count <= agm_bound(q, db) + 1e-6

    def test_agm_triangle_formula(self):
        # Equal sizes N: bound = N^1.5.
        q = paper_query("Q1")
        db = self._triangle_db(5)
        n = len(db["R1"])
        assert agm_bound(q, db) == pytest.approx(n ** 1.5, rel=1e-6)

    def test_agm_zero_when_empty(self):
        q = paper_query("Q1")
        db = self._triangle_db(4)
        db.replace(Relation("R2", ("x", "y")))
        assert agm_bound(q, db) == 0.0

    def test_agm_tight_weighting(self):
        # One tiny relation should pull the bound down: the LP must put
        # weight on the cheap edge.
        q = paper_query("Q1")
        db = self._triangle_db(6)
        db.replace(Relation("R2", ("x", "y"), [(0, 1)]))
        n = len(db["R1"])
        assert agm_bound(q, db) < n ** 1.5
