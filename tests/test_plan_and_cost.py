"""Tests for repro.core.plan and repro.core.cost_model."""

import numpy as np
import pytest

from repro.core import (
    CardinalityEstimator,
    CostModel,
    QueryPlan,
    candidate_relation_for,
    projected_database,
)
from repro.data import Database, Relation
from repro.distributed import Cluster
from repro.errors import PlanError
from repro.ghd import optimal_hypertree
from repro.query import example_query, paper_query
from repro.wcoj import leapfrog_join


@pytest.fixture(scope="module")
def qex_case():
    """The running example query over a random database."""
    q = example_query()
    rng = np.random.default_rng(0)
    db = Database([
        Relation("R1", ("x", "y", "z"), rng.integers(0, 8, size=(120, 3))),
        Relation("R2", ("x", "y"), rng.integers(0, 8, size=(60, 2))),
        Relation("R3", ("x", "y"), rng.integers(0, 8, size=(60, 2))),
        Relation("R4", ("x", "y"), rng.integers(0, 8, size=(60, 2))),
        Relation("R5", ("x", "y"), rng.integers(0, 8, size=(60, 2))),
    ])
    tree = optimal_hypertree(q)
    return q, db, tree


class TestCandidateRelation:
    def test_name_concatenates_members(self, qex_case):
        q, _, tree = qex_case
        bag = next(b for b in tree.bags if len(b.atom_indices) == 2)
        cand = candidate_relation_for(q, bag)
        names = {q.atoms[i].relation for i in bag.atom_indices}
        for n in names:
            assert n in cand.name

    def test_attributes_follow_base_order(self, qex_case):
        q, _, tree = qex_case
        for bag in tree.bags:
            cand = candidate_relation_for(q, bag)
            positions = [q.attributes.index(a) for a in cand.attributes]
            assert positions == sorted(positions)


class TestQueryPlan:
    def test_rewritten_query_equivalent(self, qex_case):
        """Executing Qi after materializing candidates == executing Q."""
        q, db, tree = qex_case
        traversal = next(tree.traversal_orders())
        multi = [b.index for b in tree.bags if not b.is_single_atom]
        plan = QueryPlan(
            query=q, hypertree=tree, traversal=traversal,
            precompute=frozenset(multi),
            attribute_order=tree.attribute_order(traversal))
        working = Database(Relation(r.name, r.attributes, r.data,
                                    dedup=False) for r in db)
        for cand in plan.candidates:
            mat = leapfrog_join(cand.subquery, db, order=cand.attributes,
                                materialize=True)
            working.add(Relation(cand.name, cand.attributes,
                                 mat.relation.data, dedup=False))
        rewritten = plan.rewritten_query()
        assert leapfrog_join(rewritten, working).count == \
            leapfrog_join(q, db).count

    def test_invalid_traversal_rejected(self, qex_case):
        q, _, tree = qex_case
        import itertools
        bad = None
        for p in itertools.permutations([b.index for b in tree.bags]):
            if not tree.is_traversal_order(p):
                bad = p
                break
        if bad is None:
            pytest.skip("every permutation valid for this tree")
        with pytest.raises(PlanError):
            QueryPlan(query=q, hypertree=tree, traversal=bad,
                      precompute=frozenset(),
                      attribute_order=q.attributes)

    def test_single_atom_precompute_rejected(self, qex_case):
        q, _, tree = qex_case
        single = next(b.index for b in tree.bags if b.is_single_atom)
        traversal = next(tree.traversal_orders())
        with pytest.raises(PlanError):
            QueryPlan(query=q, hypertree=tree, traversal=traversal,
                      precompute=frozenset({single}),
                      attribute_order=tree.attribute_order(traversal))

    def test_unknown_bag_rejected(self, qex_case):
        q, _, tree = qex_case
        traversal = next(tree.traversal_orders())
        with pytest.raises(PlanError):
            QueryPlan(query=q, hypertree=tree, traversal=traversal,
                      precompute=frozenset({99}),
                      attribute_order=tree.attribute_order(traversal))

    def test_describe_mentions_candidates(self, qex_case):
        q, _, tree = qex_case
        traversal = next(tree.traversal_orders())
        multi = [b.index for b in tree.bags if not b.is_single_atom]
        plan = QueryPlan(query=q, hypertree=tree, traversal=traversal,
                         precompute=frozenset(multi[:1]),
                         attribute_order=tree.attribute_order(traversal))
        assert plan.candidates[0].name in plan.describe()


class TestProjectedDatabase:
    def test_prefix_cardinality_matches_leapfrog_levels(self, qex_case):
        """|T_prefix| == the projected join size (the LFTJ invariant)."""
        q, db, _ = qex_case
        order = q.attributes
        res = leapfrog_join(q, db, order)
        for depth in range(1, len(order)):
            prefix = order[:depth]
            sub_q, sub_db = projected_database(q, db, prefix)
            projected_count = leapfrog_join(sub_q, sub_db).count
            # level_tuples[depth-1] counts bindings of length `depth`.
            assert res.stats.level_tuples[depth - 1] == projected_count

    def test_no_overlap_rejected(self, qex_case):
        q, db, _ = qex_case
        with pytest.raises(PlanError):
            projected_database(q, db, ["zz"])


class TestCostModel:
    @pytest.fixture()
    def model(self, qex_case):
        q, db, tree = qex_case
        cluster = Cluster(num_workers=4)
        est = CardinalityEstimator(db, num_samples=50, seed=0)
        return CostModel(q, db, cluster, tree, est)

    def test_bag_size_single_atom_is_relation_size(self, model, qex_case):
        q, db, tree = qex_case
        single = next(b for b in tree.bags if b.is_single_atom)
        rel_name = q.atoms[single.atom_indices[0]].relation
        assert model.bag_size(single.index) == pytest.approx(
            len(db[rel_name]))

    def test_bag_size_multi_atom_positive(self, model, qex_case):
        _, _, tree = qex_case
        multi = next(b for b in tree.bags if not b.is_single_atom)
        assert model.bag_size(multi.index) >= 0

    def test_prefix_cardinality_of_empty_prefix(self, model):
        assert model.prefix_cardinality(frozenset()) == 1.0

    def test_cost_c_cached_and_positive(self, model):
        c1 = model.cost_c(frozenset())
        c2 = model.cost_c(frozenset())
        assert c1 == c2 > 0

    def test_cost_c_differs_with_precompute(self, model, qex_case):
        _, _, tree = qex_case
        multi = next(b.index for b in tree.bags if not b.is_single_atom)
        assert model.cost_c(frozenset({multi})) != model.cost_c(frozenset())

    def test_cost_m_zero_for_single_atom(self, model, qex_case):
        _, _, tree = qex_case
        single = next(b.index for b in tree.bags if b.is_single_atom)
        assert model.cost_m(single) == 0.0

    def test_cost_m_positive_for_multi(self, model, qex_case):
        _, _, tree = qex_case
        multi = next(b.index for b in tree.bags if not b.is_single_atom)
        assert model.cost_m(multi) > 0

    def test_cost_e_precompute_uses_fast_rate(self, model, qex_case):
        """A pre-computed bag must never cost more to extend into."""
        _, _, tree = qex_case
        multi = next(b.index for b in tree.bags if not b.is_single_atom)
        others = [b.index for b in tree.bags if b.index != multi]
        slow = model.cost_e(multi, frozenset(), others)
        fast = model.cost_e(multi, frozenset({multi}), others)
        assert fast <= slow * 10  # sanity; typically far smaller

    def test_plan_cost_combines_terms(self, model, qex_case):
        _, _, tree = qex_case
        traversal = next(tree.traversal_orders())
        base = model.plan_cost(frozenset(), traversal)
        assert base > 0
