"""Observability: span tracing, metrics registry, structured logging.

Covers the repro.obs package itself (tracer semantics, the zero-cost
noop contract, Chrome trace export, counter/gauge/histogram behaviour,
key=value logging) plus the wiring: traced runs through JoinSession,
span propagation across process pools and worker agents, metrics
agreement with EngineResult.data_plane, and the RuntimeTelemetry edge
cases that feed the bench tables.
"""

import json
import logging
import os
import pickle

import pytest

from repro.distributed.metrics import CostBreakdown
from repro.errors import ConfigError
from repro.obs import log as obs_log
from repro.obs import tracing
from repro.obs.log import (
    KeyValueFormatter,
    configure_logging,
    get_logger,
    kv,
    resolve_level,
)
from repro.obs.metrics import METRICS, MetricsRegistry
from repro.obs.tracing import (
    NOOP_TRACER,
    Span,
    Tracer,
    chrome_trace_events,
    current_tracer,
    set_thread_tracer,
    set_tracer,
    task_tracer,
    trace_context,
    use_tracer,
    write_chrome_trace,
)
from repro.runtime.scheduler import absorb_result_observability
from repro.runtime.telemetry import RuntimeTelemetry, modeled_vs_measured
from repro.runtime.worker import WorkerTaskResult


@pytest.fixture(autouse=True)
def _clean_observability_state():
    """Every test starts and ends with NOOP tracing and fresh metrics."""
    set_tracer(None)
    set_thread_tracer(None)
    METRICS.reset()
    yield
    set_tracer(None)
    set_thread_tracer(None)
    METRICS.reset()


# -- tracer core --------------------------------------------------------------


class TestTracer:
    def test_span_records_wall_clock_and_origin(self):
        t = Tracer(host="h1")
        with t.span("work", cat="test", items=3):
            pass
        (span,) = t.spans
        assert span.name == "work"
        assert span.cat == "test"
        assert span.args == {"items": 3}
        assert span.host == "h1"
        assert span.pid == os.getpid()
        assert span.tid != 0
        assert span.dur >= 0.0

    def test_span_survives_exception_and_tags_error(self):
        t = Tracer()
        with pytest.raises(ValueError):
            with t.span("boom"):
                raise ValueError("x")
        (span,) = t.spans
        assert span.args["error"] == "ValueError"

    def test_nested_spans_both_recorded(self):
        t = Tracer()
        with t.span("outer"):
            with t.span("inner"):
                pass
        assert [s.name for s in t.spans] == ["inner", "outer"]

    def test_add_span_clamps_negative_duration(self):
        t = Tracer()
        span = t.add_span("x", ts=1.0, dur=-0.5)
        assert span.dur == 0.0

    def test_mark_and_export_since(self):
        t = Tracer()
        t.add_span("a", 1.0, 0.1)
        mark = t.mark()
        t.add_span("b", 2.0, 0.1)
        payload = t.export_payload(since=mark)
        assert [p["name"] for p in payload] == ["b"]

    def test_export_merge_round_trip_preserves_spans(self):
        src = Tracer(host="worker-host")
        src.add_span("task", 1.0, 0.5, cat="task", worker=4)
        payload = pickle.loads(pickle.dumps(src.export_payload()))
        dst = Tracer(host="coord")
        assert dst.merge_payload(payload) == 1
        (span,) = dst.spans
        assert span.name == "task"
        assert span.host == "worker-host"   # worker's stamp kept
        assert span.args == {"worker": 4}

    def test_merge_fills_only_missing_host(self):
        dst = Tracer()
        dst.merge_payload([{"name": "a", "ts": 1, "dur": 0, "host": ""}],
                          host="agent-7")
        dst.merge_payload([{"name": "b", "ts": 1, "dur": 0,
                            "host": "real"}], host="agent-7")
        assert dst.spans[0].host == "agent-7"
        assert dst.spans[1].host == "real"

    def test_merge_none_payload_is_noop(self):
        t = Tracer()
        assert t.merge_payload(None) == 0
        assert len(t) == 0

    def test_tracer_records_creating_pid(self):
        assert Tracer().pid == os.getpid()


class TestChromeExport:
    def test_events_are_sorted_and_complete(self):
        t = Tracer(host="h")
        t.add_span("late", ts=5.0, dur=0.1)
        t.add_span("early", ts=1.0, dur=0.2)
        doc = t.chrome_trace()
        assert doc["displayTimeUnit"] == "ms"
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert [e["name"] for e in xs] == ["early", "late"]
        ts = [e["ts"] for e in xs]
        assert ts == sorted(ts)
        for e in xs:
            assert set(e) >= {"name", "cat", "ts", "dur", "pid", "tid"}
        assert xs[0]["ts"] == pytest.approx(1.0 * 1e6)
        assert xs[0]["dur"] == pytest.approx(0.2 * 1e6)

    def test_metadata_event_names_process_per_host_pid(self):
        events = chrome_trace_events([
            Span(name="a", ts=1.0, pid=11, host="hostA"),
            Span(name="b", ts=2.0, pid=11, host="hostA"),
            Span(name="c", ts=3.0, pid=22, host="hostB"),
        ])
        metas = [e for e in events if e["ph"] == "M"]
        assert len(metas) == 2
        assert {m["args"]["name"] for m in metas} == \
            {"hostA (pid 11)", "hostB (pid 22)"}

    def test_span_host_lands_in_event_args(self):
        (meta, x) = chrome_trace_events(
            [Span(name="a", ts=1.0, pid=1, host="远端")])
        assert x["args"]["host"] == "远端"

    def test_write_chrome_trace_returns_x_count(self, tmp_path):
        path = str(tmp_path / "t.json")
        n = write_chrome_trace(path, [Span(name="a", ts=1.0, pid=1)])
        assert n == 1
        doc = json.load(open(path))
        assert len(doc["traceEvents"]) == 2   # one M + one X


class TestNoopTracer:
    def test_span_returns_the_singleton_itself(self):
        assert NOOP_TRACER.span("anything", cat="x", k=1) is NOOP_TRACER
        with NOOP_TRACER.span("ctx") as got:
            assert got is NOOP_TRACER

    def test_all_queries_report_empty(self):
        NOOP_TRACER.add_span("x", 1.0, 1.0)
        assert len(NOOP_TRACER) == 0
        assert NOOP_TRACER.export_payload() == []
        assert NOOP_TRACER.merge_payload([{"name": "a"}]) == 0
        assert NOOP_TRACER.mark() == 0

    def test_disabled_run_allocates_no_span_objects(self, monkeypatch):
        """Tracing off => zero Span construction on the hot path."""
        def exploding_span(*args, **kwargs):
            raise AssertionError("Span allocated with tracing off")

        monkeypatch.setattr(tracing, "Span", exploding_span)
        # The module-level default is the noop path.
        with current_tracer().span("hot", cat="task", worker=0):
            pass
        assert current_tracer() is NOOP_TRACER


class TestTracerInstallation:
    def test_thread_local_wins_over_global(self):
        global_t, local_t = Tracer(), Tracer()
        set_tracer(global_t)
        assert current_tracer() is global_t
        prev = set_thread_tracer(local_t)
        assert current_tracer() is local_t
        set_thread_tracer(prev)
        assert current_tracer() is global_t

    def test_use_tracer_restores_previous(self):
        t = Tracer()
        with use_tracer(t):
            assert current_tracer() is t
        assert current_tracer() is NOOP_TRACER

    def test_trace_context_none_when_disabled(self):
        assert trace_context() is None
        with use_tracer(Tracer(host="org")):
            assert trace_context() == {"enabled": True, "origin": "org"}

    def test_task_tracer_rules(self):
        # No context: the free path.
        assert task_tracer(None) is NOOP_TRACER
        # Context but nothing current (a fresh worker process): record
        # locally to ship home.
        local = task_tracer({"enabled": True})
        assert isinstance(local, Tracer) and local.enabled
        # A same-process recording tracer is current: record directly.
        with use_tracer(Tracer()):
            assert task_tracer({"enabled": True}) is NOOP_TRACER

    def test_task_tracer_detects_forked_copy_by_pid(self):
        """A forked child inherits the coordinator's tracer object but
        must still build a local one — spans recorded into the inherited
        copy would never ship home."""
        inherited = Tracer()
        inherited.pid = os.getpid() + 1     # simulate the parent's pid
        with use_tracer(inherited):
            local = task_tracer({"enabled": True})
        assert local is not inherited
        assert isinstance(local, Tracer) and local.enabled


# -- metrics ------------------------------------------------------------------


class TestMetrics:
    def test_counter_accumulates_and_snapshots_int(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(2)
        assert reg.snapshot()["c"] == 3
        assert isinstance(reg.snapshot()["c"], int)

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("c").inc(-1)

    def test_gauge_set_inc_dec(self):
        reg = MetricsRegistry()
        g = reg.gauge("g")
        g.set(5.0)
        g.inc(2.0)
        g.dec(3.0)
        assert reg.snapshot()["g"] == 4.0

    def test_histogram_stats(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        snap = reg.snapshot()["h"]
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(6.0)
        assert snap["min"] == 1.0 and snap["max"] == 3.0
        assert snap["mean"] == pytest.approx(2.0)

    def test_empty_histogram_snapshots_zeros(self):
        reg = MetricsRegistry()
        reg.histogram("h")
        assert reg.snapshot()["h"]["count"] == 0

    def test_kind_mismatch_raises_type_error(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_snapshot_is_sorted_and_reset_clears(self):
        reg = MetricsRegistry()
        reg.counter("b.z").inc()
        reg.counter("a.y").inc()
        assert list(reg.snapshot()) == ["a.y", "b.z"]
        reg.reset()
        assert reg.snapshot() == {}

    def test_merge_snapshot_folds_remote_numbers(self):
        reg = MetricsRegistry()
        reg.counter("tasks").inc(1)
        reg.merge_snapshot({"tasks": 4,
                            "lat": {"count": 2, "sum": 3.0,
                                    "min": 1.0, "max": 2.0}},
                           prefix="agent.")
        snap = reg.snapshot()
        assert snap["agent.tasks"] == 4
        assert snap["tasks"] == 1
        assert snap["agent.lat"]["count"] == 2


# -- logging ------------------------------------------------------------------


class TestLogging:
    def test_get_logger_prefixes_hierarchy(self):
        assert get_logger("net.agent").name == "repro.net.agent"
        assert get_logger("repro.cli").name == "repro.cli"

    def test_kv_quotes_values_with_spaces(self):
        line = kv(port=7070, msg="agent went away", ok=True)
        assert "port=7070" in line
        assert 'msg="agent went away"' in line
        assert "ok=True" in line

    def test_formatter_emits_key_value_line(self):
        record = logging.LogRecord("repro.test", logging.INFO, "f.py", 1,
                                   "hello %s", ("world",), None)
        line = KeyValueFormatter().format(record)
        assert "level=INFO" in line
        assert "logger=repro.test" in line
        assert 'msg="hello world"' in line
        assert line.startswith("ts=")

    def test_resolve_level_precedence(self, monkeypatch):
        monkeypatch.delenv(obs_log.LOG_ENV_VAR, raising=False)
        assert resolve_level(None) == logging.WARNING
        monkeypatch.setenv(obs_log.LOG_ENV_VAR, "info")
        assert resolve_level(None) == logging.INFO
        assert resolve_level("debug") == logging.DEBUG   # flag beats env
        with pytest.raises(ValueError):
            resolve_level("chatty")

    def test_configure_logging_is_idempotent(self):
        root = logging.getLogger("repro")
        before = list(root.handlers)
        try:
            configure_logging("info")
            configure_logging("debug")
            ours = [h for h in root.handlers
                    if getattr(h, "_repro_obs", False)]
            assert len(ours) == 1
            assert root.level == logging.DEBUG
        finally:
            for h in list(root.handlers):
                if getattr(h, "_repro_obs", False):
                    root.removeHandler(h)
            root.handlers = before
            root.setLevel(logging.NOTSET)


# -- telemetry edge cases -----------------------------------------------------


class TestTelemetryEdgeCases:
    def test_measure_records_phase_on_exception(self):
        tel = RuntimeTelemetry()
        with pytest.raises(RuntimeError):
            with tel.measure("shuffle"):
                raise RuntimeError("boom")
        assert tel.phase_seconds["shuffle"] >= 0.0

    def test_record_overlap_clamps_negative(self):
        tel = RuntimeTelemetry()
        tel.record_overlap(-1.0)
        assert tel.overlap_seconds == 0.0
        tel.record_overlap(0.5)
        tel.record_overlap(-2.0)
        assert tel.overlap_seconds == 0.5

    def test_as_row_key_stability(self):
        tel = RuntimeTelemetry()
        tel.record("shuffle", 1.0)
        tel.record_worker(0, 2.0)
        tel.record_worker(1, 3.0)
        row = tel.as_row()
        assert set(row) == {"measured_shuffle", "measured_total",
                            "measured_overlap", "measured_straggler"}
        assert row["measured_straggler"] == 3.0

    def test_modeled_vs_measured_carries_overlap_and_straggler(self):
        breakdown = CostBreakdown()
        rec = modeled_vs_measured(breakdown, None)
        assert rec["measured_overlap"] is None
        assert rec["straggler_seconds"] is None
        tel = RuntimeTelemetry(backend="threads")
        tel.record_overlap(0.25)
        tel.record_worker(3, 1.5)
        rec = modeled_vs_measured(breakdown, tel)
        assert rec["measured_overlap"] == 0.25
        assert rec["straggler_seconds"] == 1.5
        assert rec["backend"] == "threads"


# -- scheduler absorption -----------------------------------------------------


class TestAbsorbResultObservability:
    def test_crashed_task_spans_still_merge(self):
        shipped = Tracer(host="worker-9")
        shipped.add_span("worker_task", 1.0, 0.5, cat="task")
        crashed = WorkerTaskResult(worker=9, failure="crash",
                                   spans=shipped.export_payload(),
                                   total_seconds=0.5)
        coord = Tracer(host="coord")
        with use_tracer(coord):
            absorb_result_observability([crashed])
        assert [s.name for s in coord.spans] == ["worker_task"]
        assert coord.spans[0].host == "worker-9"
        snap = METRICS.snapshot()
        assert snap["runtime.tasks_failed"] == 1
        assert "runtime.tasks_completed" not in snap
        assert snap["runtime.task_seconds"]["count"] == 1

    def test_results_without_spans_count_as_completed(self):
        ok = WorkerTaskResult(worker=0, total_seconds=0.1)
        absorb_result_observability([ok])
        assert METRICS.snapshot()["runtime.tasks_completed"] == 1


# -- config / session / CLI wiring --------------------------------------------


class TestConfigWiring:
    def test_trace_path_env_default(self, monkeypatch):
        from repro.api.config import RunConfig

        monkeypatch.setenv(tracing.TRACE_ENV_VAR, "/tmp/via-env.json")
        assert RunConfig().trace_path == "/tmp/via-env.json"
        assert RunConfig(trace_path="/tmp/flag.json").trace_path == \
            "/tmp/flag.json"

    def test_log_level_validated(self):
        from repro.api.config import RunConfig

        with pytest.raises(ConfigError):
            RunConfig(log_level="chatty")

    def test_session_tracer_noop_without_trace_path(self):
        from repro import JoinSession

        with JoinSession(workers=2) as session:
            assert session.tracer() is NOOP_TRACER
            assert session.metrics() == METRICS.snapshot()


class TestTracedRuns:
    def test_threads_run_covers_route_publish_and_tasks(self, tmp_path):
        from repro import JoinSession

        path = str(tmp_path / "run.json")
        with JoinSession(workers=2, backend="threads",
                         transport="pickle", trace_path=path) as session:
            result = session.query("wb", "Q1", scale=1e-5).run("adj")
            assert result.ok
            names = {s.name for s in session.tracer().spans}
            assert {"engine_run", "route", "publish",
                    "worker_task"} <= names
            # The per-run slice rides on the result too.
            xs = [e for e in result.trace["traceEvents"]
                  if e["ph"] == "X"]
            assert {e["name"] for e in xs} >= {"engine_run",
                                               "worker_task"}
        doc = json.load(open(path))
        ts = [e["ts"] for e in doc["traceEvents"] if e["ph"] == "X"]
        assert ts and ts == sorted(ts)

    def test_untraced_run_attaches_no_trace(self):
        from repro import JoinSession

        with JoinSession(workers=2, backend="threads",
                         transport="pickle") as session:
            result = session.query("wb", "Q1", scale=1e-5).run("adj")
            assert result.ok
            assert result.trace is None

    def test_metrics_agree_with_data_plane(self):
        from repro import JoinSession

        METRICS.reset()
        with JoinSession(workers=2, backend="threads",
                         transport="pickle") as session:
            result = session.query("wb", "Q1", scale=1e-5).run("adj")
            assert result.ok
            plane = result.data_plane
            snap = session.metrics()
            for key in ("published_blocks", "published_bytes",
                        "shipped_refs", "shipped_bytes",
                        "fetched_blocks", "fetched_bytes"):
                # Zero-valued stats are skipped at teardown, so a
                # missing counter reads as 0.
                assert snap.get(f"transport.{key}", 0) == plane[key]

    def test_cli_run_trace_flag_writes_chrome_json(self, tmp_path,
                                                   capsys):
        from repro.cli import main

        path = str(tmp_path / "cli.json")
        assert main(["run", "wb", "Q1", "--engine", "adj",
                     "--backend", "threads", "--transport", "pickle",
                     "--scale", "1e-5", "--samples", "10",
                     "--trace", path]) == 0
        assert f"trace written to {path}" in capsys.readouterr().out
        doc = json.load(open(path))
        assert any(e["ph"] == "X" for e in doc["traceEvents"])


# -- remote agent propagation -------------------------------------------------


class TestAgentObservability:
    def test_task_reply_meta_ships_agent_spans(self):
        from repro.net import WorkerAgent
        from repro.net.protocol import (
            OP_BYE,
            OP_DATA,
            OP_TASK,
            connect,
            request,
            send_frame,
        )

        agent = WorkerAgent(port=0, slots=1, mode="inline").start()
        try:
            sock = connect("127.0.0.1", agent.port)
            payload = pickle.dumps((_echo_task, 7))
            op, meta, _ = request(
                sock, OP_TASK,
                {"trace": {"enabled": True, "origin": "t"}, "slot": 0},
                payload)
            assert op == OP_DATA
            assert [s["name"] for s in meta["spans"]] == ["agent_task"]
            send_frame(sock, OP_BYE, {})
            sock.close()
        finally:
            agent.stop()

    def test_err_reply_meta_ships_agent_spans(self):
        from repro.errors import NetError
        from repro.net import WorkerAgent
        from repro.net.protocol import OP_TASK, connect, request

        agent = WorkerAgent(port=0, slots=1, mode="inline").start()
        try:
            sock = connect("127.0.0.1", agent.port)
            payload = pickle.dumps((_crash_task, None))
            with pytest.raises(NetError) as info:
                request(sock, OP_TASK,
                        {"trace": {"enabled": True, "origin": "t"},
                         "slot": 0}, payload)
            spans = info.value.meta["spans"]
            assert [s["name"] for s in spans] == ["agent_task"]
            assert spans[0]["args"]["error"] == "RuntimeError"
            sock.close()
        finally:
            agent.stop()

    def test_agent_stats_returns_counters_and_metrics(self):
        from repro.net import WorkerAgent, agent_stats

        agent = WorkerAgent(port=0, slots=3, mode="inline").start()
        try:
            stats = agent_stats("127.0.0.1", agent.port)
        finally:
            agent.stop()
        assert stats["service"] == "worker-agent"
        assert stats["slots"] == 3
        assert stats["tasks_run"] == 0
        assert isinstance(stats["metrics"], dict)

    def test_remote_run_merges_agent_spans(self, tmp_path):
        from repro import JoinSession
        from repro.net import WorkerAgent

        agent = WorkerAgent(port=0, slots=2, mode="inline").start()
        path = str(tmp_path / "remote.json")
        try:
            with JoinSession(workers=2, backend="remote",
                             hosts=(f"127.0.0.1:{agent.port}",),
                             trace_path=path) as session:
                result = session.query("wb", "Q1", scale=1e-5).run("adj")
                assert result.ok
                names = {s.name for s in session.tracer().spans}
                assert {"agent_task", "worker_task", "route",
                        "publish"} <= names
        finally:
            agent.stop()
        doc = json.load(open(path))
        assert any(e["ph"] == "X" and e["name"] == "agent_task"
                   for e in doc["traceEvents"])


def _echo_task(task):
    return {"echo": task}


def _crash_task(_task):
    raise RuntimeError("deliberate")
