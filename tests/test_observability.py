"""Observability: span tracing, metrics registry, structured logging.

Covers the repro.obs package itself (tracer semantics, the zero-cost
noop contract, Chrome trace export, counter/gauge/histogram behaviour,
key=value logging) plus the wiring: traced runs through JoinSession,
span propagation across process pools and worker agents, metrics
agreement with EngineResult.data_plane, and the RuntimeTelemetry edge
cases that feed the bench tables.
"""

import json
import logging
import os
import pickle

import pytest

from repro.distributed.metrics import CostBreakdown
from repro.errors import ConfigError
from repro.obs import log as obs_log
from repro.obs import tracing
from repro.obs.log import (
    KeyValueFormatter,
    configure_logging,
    get_logger,
    kv,
    resolve_level,
)
from repro.obs.expo import prometheus_text
from repro.obs.metrics import (
    METRICS,
    MetricsRegistry,
    snapshot_delta,
)
from repro.obs.tracing import (
    NOOP_TRACER,
    Span,
    Tracer,
    chrome_trace_events,
    current_tracer,
    set_thread_tracer,
    set_tracer,
    task_tracer,
    trace_context,
    use_tracer,
    write_chrome_trace,
)
from repro.runtime.scheduler import absorb_result_observability
from repro.runtime.telemetry import RuntimeTelemetry, modeled_vs_measured
from repro.runtime.worker import WorkerTaskResult


@pytest.fixture(autouse=True)
def _clean_observability_state():
    """Every test starts and ends with NOOP tracing and fresh metrics."""
    set_tracer(None)
    set_thread_tracer(None)
    METRICS.reset()
    yield
    set_tracer(None)
    set_thread_tracer(None)
    METRICS.reset()


# -- tracer core --------------------------------------------------------------


class TestTracer:
    def test_span_records_wall_clock_and_origin(self):
        t = Tracer(host="h1")
        with t.span("work", cat="test", items=3):
            pass
        (span,) = t.spans
        assert span.name == "work"
        assert span.cat == "test"
        assert span.args == {"items": 3}
        assert span.host == "h1"
        assert span.pid == os.getpid()
        assert span.tid != 0
        assert span.dur >= 0.0

    def test_span_survives_exception_and_tags_error(self):
        t = Tracer()
        with pytest.raises(ValueError):
            with t.span("boom"):
                raise ValueError("x")
        (span,) = t.spans
        assert span.args["error"] == "ValueError"

    def test_nested_spans_both_recorded(self):
        t = Tracer()
        with t.span("outer"):
            with t.span("inner"):
                pass
        assert [s.name for s in t.spans] == ["inner", "outer"]

    def test_add_span_clamps_negative_duration(self):
        t = Tracer()
        span = t.add_span("x", ts=1.0, dur=-0.5)
        assert span.dur == 0.0

    def test_mark_and_export_since(self):
        t = Tracer()
        t.add_span("a", 1.0, 0.1)
        mark = t.mark()
        t.add_span("b", 2.0, 0.1)
        payload = t.export_payload(since=mark)
        assert [p["name"] for p in payload] == ["b"]

    def test_export_merge_round_trip_preserves_spans(self):
        src = Tracer(host="worker-host")
        src.add_span("task", 1.0, 0.5, cat="task", worker=4)
        payload = pickle.loads(pickle.dumps(src.export_payload()))
        dst = Tracer(host="coord")
        assert dst.merge_payload(payload) == 1
        (span,) = dst.spans
        assert span.name == "task"
        assert span.host == "worker-host"   # worker's stamp kept
        assert span.args == {"worker": 4}

    def test_merge_fills_only_missing_host(self):
        dst = Tracer()
        dst.merge_payload([{"name": "a", "ts": 1, "dur": 0, "host": ""}],
                          host="agent-7")
        dst.merge_payload([{"name": "b", "ts": 1, "dur": 0,
                            "host": "real"}], host="agent-7")
        assert dst.spans[0].host == "agent-7"
        assert dst.spans[1].host == "real"

    def test_merge_none_payload_is_noop(self):
        t = Tracer()
        assert t.merge_payload(None) == 0
        assert len(t) == 0

    def test_tracer_records_creating_pid(self):
        assert Tracer().pid == os.getpid()

    def test_query_id_stamped_into_span_args(self):
        t = Tracer(query_id="q0001:Q5")
        with t.span("route", cat="engine"):
            pass
        t.add_span("publish", 1.0, 0.1, query_id="q0042:Q1")
        assert t.spans[0].args["query_id"] == "q0001:Q5"
        # An explicit query_id in args wins over the tracer's.
        assert t.spans[1].args["query_id"] == "q0042:Q1"

    def test_query_id_off_by_default(self):
        t = Tracer()
        assert t.query_id is None
        with t.span("route"):
            pass
        assert "query_id" not in t.spans[0].args
        assert NOOP_TRACER.query_id is None


class TestChromeExport:
    def test_events_are_sorted_and_complete(self):
        t = Tracer(host="h")
        t.add_span("late", ts=5.0, dur=0.1)
        t.add_span("early", ts=1.0, dur=0.2)
        doc = t.chrome_trace()
        assert doc["displayTimeUnit"] == "ms"
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert [e["name"] for e in xs] == ["early", "late"]
        ts = [e["ts"] for e in xs]
        assert ts == sorted(ts)
        for e in xs:
            assert set(e) >= {"name", "cat", "ts", "dur", "pid", "tid"}
        assert xs[0]["ts"] == pytest.approx(1.0 * 1e6)
        assert xs[0]["dur"] == pytest.approx(0.2 * 1e6)

    def test_metadata_event_names_process_per_host_pid(self):
        events = chrome_trace_events([
            Span(name="a", ts=1.0, pid=11, host="hostA"),
            Span(name="b", ts=2.0, pid=11, host="hostA"),
            Span(name="c", ts=3.0, pid=22, host="hostB"),
        ])
        metas = [e for e in events if e["ph"] == "M"]
        assert len(metas) == 2
        assert {m["args"]["name"] for m in metas} == \
            {"hostA (pid 11)", "hostB (pid 22)"}

    def test_span_host_lands_in_event_args(self):
        (meta, x) = chrome_trace_events(
            [Span(name="a", ts=1.0, pid=1, host="远端")])
        assert x["args"]["host"] == "远端"

    def test_write_chrome_trace_returns_x_count(self, tmp_path):
        path = str(tmp_path / "t.json")
        n = write_chrome_trace(path, [Span(name="a", ts=1.0, pid=1)])
        assert n == 1
        doc = json.load(open(path))
        assert len(doc["traceEvents"]) == 2   # one M + one X


class TestNoopTracer:
    def test_span_returns_the_singleton_itself(self):
        assert NOOP_TRACER.span("anything", cat="x", k=1) is NOOP_TRACER
        with NOOP_TRACER.span("ctx") as got:
            assert got is NOOP_TRACER

    def test_all_queries_report_empty(self):
        NOOP_TRACER.add_span("x", 1.0, 1.0)
        assert len(NOOP_TRACER) == 0
        assert NOOP_TRACER.export_payload() == []
        assert NOOP_TRACER.merge_payload([{"name": "a"}]) == 0
        assert NOOP_TRACER.mark() == 0

    def test_disabled_run_allocates_no_span_objects(self, monkeypatch):
        """Tracing off => zero Span construction on the hot path."""
        def exploding_span(*args, **kwargs):
            raise AssertionError("Span allocated with tracing off")

        monkeypatch.setattr(tracing, "Span", exploding_span)
        # The module-level default is the noop path.
        with current_tracer().span("hot", cat="task", worker=0):
            pass
        assert current_tracer() is NOOP_TRACER

    def test_profile_off_run_allocates_no_span_objects(self,
                                                       monkeypatch):
        """Tracing off AND profiling off => a full query run constructs
        zero Span objects anywhere on the coordinator (the PR-6 noop
        contract, extended to the profiler)."""
        from repro import JoinSession

        def exploding_span(*args, **kwargs):
            raise AssertionError("Span allocated with profiling off")

        monkeypatch.setattr(tracing, "Span", exploding_span)
        with JoinSession(workers=2, backend="threads",
                         transport="pickle") as session:
            result = session.query("wb", "Q1", scale=1e-5).run(
                "adj", profile=False)
        assert result.ok
        assert result.profile is None


class TestTracerInstallation:
    def test_thread_local_wins_over_global(self):
        global_t, local_t = Tracer(), Tracer()
        set_tracer(global_t)
        assert current_tracer() is global_t
        prev = set_thread_tracer(local_t)
        assert current_tracer() is local_t
        set_thread_tracer(prev)
        assert current_tracer() is global_t

    def test_use_tracer_restores_previous(self):
        t = Tracer()
        with use_tracer(t):
            assert current_tracer() is t
        assert current_tracer() is NOOP_TRACER

    def test_trace_context_none_when_disabled(self):
        assert trace_context() is None
        with use_tracer(Tracer(host="org")):
            assert trace_context() == {"enabled": True, "origin": "org"}

    def test_trace_context_carries_query_id_across_processes(self):
        """The chain that attributes pool/agent spans to a query: the
        coordinator's context carries query_id, and task_tracer builds
        the child's tracer with it."""
        with use_tracer(Tracer(host="org", query_id="q0003:Q9")):
            ctx = trace_context()
        assert ctx["query_id"] == "q0003:Q9"
        child = task_tracer(ctx)        # fresh worker process path
        assert child.query_id == "q0003:Q9"
        with child.span("agent_task", cat="task"):
            pass
        assert child.spans[0].args["query_id"] == "q0003:Q9"

    def test_task_tracer_rules(self):
        # No context: the free path.
        assert task_tracer(None) is NOOP_TRACER
        # Context but nothing current (a fresh worker process): record
        # locally to ship home.
        local = task_tracer({"enabled": True})
        assert isinstance(local, Tracer) and local.enabled
        # A same-process recording tracer is current: record directly.
        with use_tracer(Tracer()):
            assert task_tracer({"enabled": True}) is NOOP_TRACER

    def test_task_tracer_detects_forked_copy_by_pid(self):
        """A forked child inherits the coordinator's tracer object but
        must still build a local one — spans recorded into the inherited
        copy would never ship home."""
        inherited = Tracer()
        inherited.pid = os.getpid() + 1     # simulate the parent's pid
        with use_tracer(inherited):
            local = task_tracer({"enabled": True})
        assert local is not inherited
        assert isinstance(local, Tracer) and local.enabled


# -- metrics ------------------------------------------------------------------


class TestMetrics:
    def test_counter_accumulates_and_snapshots_int(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(2)
        assert reg.snapshot()["c"] == 3
        assert isinstance(reg.snapshot()["c"], int)

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("c").inc(-1)

    def test_gauge_set_inc_dec(self):
        reg = MetricsRegistry()
        g = reg.gauge("g")
        g.set(5.0)
        g.inc(2.0)
        g.dec(3.0)
        assert reg.snapshot()["g"] == 4.0

    def test_histogram_stats(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        snap = reg.snapshot()["h"]
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(6.0)
        assert snap["min"] == 1.0 and snap["max"] == 3.0
        assert snap["mean"] == pytest.approx(2.0)

    def test_empty_histogram_snapshots_zeros(self):
        reg = MetricsRegistry()
        reg.histogram("h")
        assert reg.snapshot()["h"]["count"] == 0

    def test_kind_mismatch_raises_type_error(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_snapshot_is_sorted_and_reset_clears(self):
        reg = MetricsRegistry()
        reg.counter("b.z").inc()
        reg.counter("a.y").inc()
        assert list(reg.snapshot()) == ["a.y", "b.z"]
        reg.reset()
        assert reg.snapshot() == {}

    def test_merge_snapshot_folds_remote_numbers(self):
        reg = MetricsRegistry()
        reg.counter("tasks").inc(1)
        reg.merge_snapshot({"tasks": 4,
                            "lat": {"count": 2, "sum": 3.0,
                                    "min": 1.0, "max": 2.0}},
                           prefix="agent.")
        snap = reg.snapshot()
        assert snap["agent.tasks"] == 4
        assert snap["tasks"] == 1
        assert snap["agent.lat"]["count"] == 2

    def test_histogram_snapshot_keeps_legacy_keys_and_quantiles(self):
        """Existing ``runtime.task_seconds`` consumers read count/sum/
        min/max/mean; the reservoir adds p50/p95/p99 alongside."""
        reg = MetricsRegistry()
        h = reg.histogram("h")
        for v in range(1, 101):
            h.observe(float(v))
        snap = reg.snapshot()["h"]
        assert set(snap) == {"count", "sum", "min", "max", "mean",
                             "p50", "p95", "p99"}
        assert snap["count"] == 100
        # Exact while the reservoir (512 slots) hasn't overflowed.
        assert snap["p50"] == pytest.approx(50.0, abs=2.0)
        assert snap["p95"] == pytest.approx(95.0, abs=2.0)
        assert snap["p99"] == pytest.approx(99.0, abs=2.0)

    def test_histogram_reservoir_is_bounded_and_deterministic(self):
        from repro.obs.metrics import RESERVOIR_SIZE

        def fill(reg):
            h = reg.histogram("h")
            for v in range(10 * RESERVOIR_SIZE):
                h.observe(float(v))
            return h

        a, b = fill(MetricsRegistry()), fill(MetricsRegistry())
        assert len(a._samples) == RESERVOIR_SIZE
        # Same name => same seed => reproducible quantiles.
        assert a._samples == b._samples
        # Algorithm R keeps a uniform sample: the median of 0..5119
        # stays near the true midpoint.
        mid = 10 * RESERVOIR_SIZE / 2
        assert a.percentile(0.50) == pytest.approx(mid, rel=0.25)

    def test_scope_windows_counters_and_histograms(self):
        reg = MetricsRegistry()
        reg.counter("tasks").inc(10)        # pre-window noise
        reg.histogram("lat").observe(99.0)
        with reg.scope("q0001:Q1") as scope:
            reg.counter("tasks").inc(2)
            reg.gauge("depth").set(3.0)
            reg.histogram("lat").observe(1.0)
            reg.histogram("lat").observe(2.0)
        reg.counter("tasks").inc(5)         # post-window noise
        window = scope.snapshot()
        assert window["tasks"] == 2
        assert window["depth"] == 3.0
        assert window["lat"]["count"] == 2
        assert window["lat"]["max"] == 2.0  # 99.0 stayed outside
        # Quantiles are computed over the window's own reservoir.
        assert window["lat"]["p95"] == pytest.approx(2.0)
        # The parent registry saw everything.
        assert reg.snapshot()["tasks"] == 17

    def test_scopes_nest_and_detach_cleanly(self):
        reg = MetricsRegistry()
        with reg.scope("outer") as outer:
            reg.counter("c").inc()
            with reg.scope("inner") as inner:
                reg.counter("c").inc()
        assert inner.snapshot()["c"] == 1
        assert outer.snapshot()["c"] == 2
        reg.counter("c").inc()              # both windows closed
        assert outer.snapshot()["c"] == 2

    def test_snapshot_delta_diffs_counters_and_windows_histograms(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.counter("same").inc(1)
        h = reg.histogram("h")
        h.observe(1.0)
        before = reg.snapshot()
        reg.counter("c").inc(4)
        h.observe(5.0)
        h.observe(7.0)
        reg.counter("new").inc(9)
        delta = snapshot_delta(before, reg.snapshot())
        assert delta["c"] == 4
        assert delta["new"] == 9
        assert "same" not in delta          # zero-change entries omitted
        assert delta["h"]["count"] == 2
        assert delta["h"]["sum"] == pytest.approx(12.0)
        assert delta["h"]["mean"] == pytest.approx(6.0)

    def test_instruments_returns_sorted_typed_pairs(self):
        reg = MetricsRegistry()
        reg.counter("b.count").inc()
        reg.gauge("a.level").set(1.0)
        reg.histogram("c.lat").observe(0.5)
        names = [name for name, _ in reg.instruments()]
        assert names == ["a.level", "b.count", "c.lat"]


class TestPrometheusExposition:
    def test_counters_get_total_suffix_and_type_lines(self):
        reg = MetricsRegistry()
        reg.counter("runtime.tasks_completed").inc(7)
        text = prometheus_text(reg)
        assert "# TYPE repro_runtime_tasks_completed_total counter" \
            in text
        assert "repro_runtime_tasks_completed_total 7" in text

    def test_histograms_render_as_summaries(self):
        reg = MetricsRegistry()
        h = reg.histogram("runtime.task_seconds")
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        text = prometheus_text(reg)
        assert "# TYPE repro_runtime_task_seconds summary" in text
        assert 'repro_runtime_task_seconds{quantile="0.5"} 2' in text
        assert "repro_runtime_task_seconds_sum 6" in text
        assert "repro_runtime_task_seconds_count 3" in text

    def test_per_host_series_fold_into_labels(self):
        reg = MetricsRegistry()
        reg.gauge("net.heartbeat_rtt_seconds.10.0.0.7:7070").set(0.25)
        reg.counter("kernel.selected.wcoj").inc()
        text = prometheus_text(reg)
        assert ('repro_net_heartbeat_rtt_seconds'
                '{host="10.0.0.7:7070"} 0.25') in text
        assert 'repro_kernel_selected_total{kernel="wcoj"} 1' in text

    def test_extra_gauges_appended(self):
        text = prometheus_text(MetricsRegistry(),
                               extra={"agent_slots": 4})
        assert "# TYPE repro_agent_slots gauge" in text
        assert "repro_agent_slots 4" in text

    def test_output_is_parseable_line_format(self):
        reg = MetricsRegistry()
        reg.counter("a.b").inc(2)
        reg.gauge("c.d").set(1.5)
        reg.histogram("e.f").observe(1.0)
        for line in prometheus_text(reg).splitlines():
            assert line == line.strip() and line
            if line.startswith("#"):
                assert line.split()[1] in ("TYPE", "HELP")
                continue
            sample, value = line.rsplit(" ", 1)
            float(value)                    # every value parses
            assert sample.startswith("repro_")


# -- logging ------------------------------------------------------------------


class TestLogging:
    def test_get_logger_prefixes_hierarchy(self):
        assert get_logger("net.agent").name == "repro.net.agent"
        assert get_logger("repro.cli").name == "repro.cli"

    def test_kv_quotes_values_with_spaces(self):
        line = kv(port=7070, msg="agent went away", ok=True)
        assert "port=7070" in line
        assert 'msg="agent went away"' in line
        assert "ok=True" in line

    def test_formatter_emits_key_value_line(self):
        record = logging.LogRecord("repro.test", logging.INFO, "f.py", 1,
                                   "hello %s", ("world",), None)
        line = KeyValueFormatter().format(record)
        assert "level=INFO" in line
        assert "logger=repro.test" in line
        assert 'msg="hello world"' in line
        assert line.startswith("ts=")

    def test_resolve_level_precedence(self, monkeypatch):
        monkeypatch.delenv(obs_log.LOG_ENV_VAR, raising=False)
        assert resolve_level(None) == logging.WARNING
        monkeypatch.setenv(obs_log.LOG_ENV_VAR, "info")
        assert resolve_level(None) == logging.INFO
        assert resolve_level("debug") == logging.DEBUG   # flag beats env
        with pytest.raises(ValueError):
            resolve_level("chatty")

    def test_configure_logging_is_idempotent(self):
        root = logging.getLogger("repro")
        before = list(root.handlers)
        try:
            configure_logging("info")
            configure_logging("debug")
            ours = [h for h in root.handlers
                    if getattr(h, "_repro_obs", False)]
            assert len(ours) == 1
            assert root.level == logging.DEBUG
        finally:
            for h in list(root.handlers):
                if getattr(h, "_repro_obs", False):
                    root.removeHandler(h)
            root.handlers = before
            root.setLevel(logging.NOTSET)


# -- telemetry edge cases -----------------------------------------------------


class TestTelemetryEdgeCases:
    def test_measure_records_phase_on_exception(self):
        tel = RuntimeTelemetry()
        with pytest.raises(RuntimeError):
            with tel.measure("shuffle"):
                raise RuntimeError("boom")
        assert tel.phase_seconds["shuffle"] >= 0.0

    def test_record_overlap_clamps_negative(self):
        tel = RuntimeTelemetry()
        tel.record_overlap(-1.0)
        assert tel.overlap_seconds == 0.0
        tel.record_overlap(0.5)
        tel.record_overlap(-2.0)
        assert tel.overlap_seconds == 0.5

    def test_as_row_key_stability(self):
        tel = RuntimeTelemetry()
        tel.record("shuffle", 1.0)
        tel.record_worker(0, 2.0)
        tel.record_worker(1, 3.0)
        row = tel.as_row()
        assert set(row) == {"measured_shuffle", "measured_total",
                            "measured_overlap", "measured_straggler"}
        assert row["measured_straggler"] == 3.0

    def test_modeled_vs_measured_carries_overlap_and_straggler(self):
        breakdown = CostBreakdown()
        rec = modeled_vs_measured(breakdown, None)
        assert rec["measured_overlap"] is None
        assert rec["straggler_seconds"] is None
        tel = RuntimeTelemetry(backend="threads")
        tel.record_overlap(0.25)
        tel.record_worker(3, 1.5)
        rec = modeled_vs_measured(breakdown, tel)
        assert rec["measured_overlap"] == 0.25
        assert rec["straggler_seconds"] == 1.5
        assert rec["backend"] == "threads"


# -- scheduler absorption -----------------------------------------------------


class TestAbsorbResultObservability:
    def test_crashed_task_spans_still_merge(self):
        shipped = Tracer(host="worker-9")
        shipped.add_span("worker_task", 1.0, 0.5, cat="task")
        crashed = WorkerTaskResult(worker=9, failure="crash",
                                   spans=shipped.export_payload(),
                                   total_seconds=0.5)
        coord = Tracer(host="coord")
        with use_tracer(coord):
            absorb_result_observability([crashed])
        assert [s.name for s in coord.spans] == ["worker_task"]
        assert coord.spans[0].host == "worker-9"
        snap = METRICS.snapshot()
        assert snap["runtime.tasks_failed"] == 1
        assert "runtime.tasks_completed" not in snap
        assert snap["runtime.task_seconds"]["count"] == 1

    def test_results_without_spans_count_as_completed(self):
        ok = WorkerTaskResult(worker=0, total_seconds=0.1)
        absorb_result_observability([ok])
        assert METRICS.snapshot()["runtime.tasks_completed"] == 1


# -- config / session / CLI wiring --------------------------------------------


class TestConfigWiring:
    def test_trace_path_env_default(self, monkeypatch):
        from repro.api.config import RunConfig

        monkeypatch.setenv(tracing.TRACE_ENV_VAR, "/tmp/via-env.json")
        assert RunConfig().trace_path == "/tmp/via-env.json"
        assert RunConfig(trace_path="/tmp/flag.json").trace_path == \
            "/tmp/flag.json"

    def test_log_level_validated(self):
        from repro.api.config import RunConfig

        with pytest.raises(ConfigError):
            RunConfig(log_level="chatty")

    def test_profile_env_default(self, monkeypatch):
        from repro.api.config import PROFILE_ENV_VAR, RunConfig

        monkeypatch.delenv(PROFILE_ENV_VAR, raising=False)
        assert RunConfig().profile is False
        monkeypatch.setenv(PROFILE_ENV_VAR, "on")
        assert RunConfig().profile is True
        assert RunConfig(profile=False).profile is False  # flag wins
        monkeypatch.setenv(PROFILE_ENV_VAR, "sometimes")
        with pytest.raises(ConfigError):
            RunConfig()

    def test_session_tracer_noop_without_trace_path(self):
        from repro import JoinSession

        with JoinSession(workers=2) as session:
            assert session.tracer() is NOOP_TRACER
            assert session.metrics() == METRICS.snapshot()


class TestTracedRuns:
    def test_threads_run_covers_route_publish_and_tasks(self, tmp_path):
        from repro import JoinSession

        path = str(tmp_path / "run.json")
        with JoinSession(workers=2, backend="threads",
                         transport="pickle", trace_path=path) as session:
            result = session.query("wb", "Q1", scale=1e-5).run("adj")
            assert result.ok
            names = {s.name for s in session.tracer().spans}
            assert {"engine_run", "route", "publish",
                    "worker_task"} <= names
            # The per-run slice rides on the result too.
            xs = [e for e in result.trace["traceEvents"]
                  if e["ph"] == "X"]
            assert {e["name"] for e in xs} >= {"engine_run",
                                               "worker_task"}
        doc = json.load(open(path))
        ts = [e["ts"] for e in doc["traceEvents"] if e["ph"] == "X"]
        assert ts and ts == sorted(ts)

    def test_untraced_run_attaches_no_trace(self):
        from repro import JoinSession

        with JoinSession(workers=2, backend="threads",
                         transport="pickle") as session:
            result = session.query("wb", "Q1", scale=1e-5).run("adj")
            assert result.ok
            assert result.trace is None

    def test_metrics_agree_with_data_plane(self):
        from repro import JoinSession

        # The supported windowing pattern: diff two snapshots instead
        # of resetting the process-global registry.
        before = METRICS.snapshot()
        with JoinSession(workers=2, backend="threads",
                         transport="pickle") as session:
            result = session.query("wb", "Q1", scale=1e-5).run("adj")
            assert result.ok
            plane = result.data_plane
            snap = session.metrics(delta_from=before)
            for key in ("published_blocks", "published_bytes",
                        "shipped_refs", "shipped_bytes",
                        "fetched_blocks", "fetched_bytes"):
                # Zero-valued stats are skipped at teardown, and the
                # delta omits unchanged entries, so a missing counter
                # reads as 0.
                assert snap.get(f"transport.{key}", 0) == plane[key]

    def test_session_metrics_delta_is_a_window(self):
        from repro import JoinSession

        with JoinSession(workers=2) as session:
            METRICS.counter("query.runs").inc(5)
            before = session.metrics()
            METRICS.counter("query.runs").inc(2)
            METRICS.histogram("query.seconds").observe(0.5)
            delta = session.metrics(delta_from=before)
        assert delta["query.runs"] == 2
        assert delta["query.seconds"]["count"] == 1
        assert delta["query.seconds"]["mean"] == pytest.approx(0.5)

    def test_cli_run_trace_flag_writes_chrome_json(self, tmp_path,
                                                   capsys):
        from repro.cli import main

        path = str(tmp_path / "cli.json")
        assert main(["run", "wb", "Q1", "--engine", "adj",
                     "--backend", "threads", "--transport", "pickle",
                     "--scale", "1e-5", "--samples", "10",
                     "--trace", path]) == 0
        assert f"trace written to {path}" in capsys.readouterr().out
        doc = json.load(open(path))
        assert any(e["ph"] == "X" for e in doc["traceEvents"])


# -- remote agent propagation -------------------------------------------------


class TestAgentObservability:
    def test_task_reply_meta_ships_agent_spans(self):
        from repro.net import WorkerAgent
        from repro.net.protocol import (
            OP_BYE,
            OP_DATA,
            OP_TASK,
            connect,
            request,
            send_frame,
        )

        agent = WorkerAgent(port=0, slots=1, mode="inline").start()
        try:
            sock = connect("127.0.0.1", agent.port)
            payload = pickle.dumps((_echo_task, 7))
            op, meta, _ = request(
                sock, OP_TASK,
                {"trace": {"enabled": True, "origin": "t"}, "slot": 0},
                payload)
            assert op == OP_DATA
            assert [s["name"] for s in meta["spans"]] == ["agent_task"]
            send_frame(sock, OP_BYE, {})
            sock.close()
        finally:
            agent.stop()

    def test_err_reply_meta_ships_agent_spans(self):
        from repro.errors import NetError
        from repro.net import WorkerAgent
        from repro.net.protocol import OP_TASK, connect, request

        agent = WorkerAgent(port=0, slots=1, mode="inline").start()
        try:
            sock = connect("127.0.0.1", agent.port)
            payload = pickle.dumps((_crash_task, None))
            with pytest.raises(NetError) as info:
                request(sock, OP_TASK,
                        {"trace": {"enabled": True, "origin": "t"},
                         "slot": 0}, payload)
            spans = info.value.meta["spans"]
            assert [s["name"] for s in spans] == ["agent_task"]
            assert spans[0]["args"]["error"] == "RuntimeError"
            sock.close()
        finally:
            agent.stop()

    def test_agent_stats_returns_counters_and_metrics(self):
        from repro.net import WorkerAgent, agent_stats

        agent = WorkerAgent(port=0, slots=3, mode="inline").start()
        try:
            stats = agent_stats("127.0.0.1", agent.port)
        finally:
            agent.stop()
        assert stats["service"] == "worker-agent"
        assert stats["slots"] == 3
        assert stats["tasks_run"] == 0
        assert isinstance(stats["metrics"], dict)

    def test_stat_returns_history_when_asked(self):
        from repro.net import WorkerAgent
        from repro.net.protocol import (
            OP_BYE,
            OP_STAT,
            connect,
            request,
            send_frame,
        )

        agent = WorkerAgent(port=0, slots=1, mode="inline",
                            history_interval=0.1).start()
        try:
            import time

            time.sleep(0.35)            # let the sampler tick a few times
            sock = connect("127.0.0.1", agent.port)
            _op, plain, _ = request(sock, OP_STAT, {})
            _op, with_hist, _ = request(sock, OP_STAT, {"history": 2})
            send_frame(sock, OP_BYE, {})
            sock.close()
        finally:
            agent.stop()
        assert "history" not in plain   # default reply stays small
        samples = with_hist["history"]
        assert 1 <= len(samples) <= 2
        for sample in samples:
            assert set(sample) >= {"ts", "tasks_run", "tasks_failed",
                                   "tasks_active"}
        assert [s["ts"] for s in samples] == \
            sorted(s["ts"] for s in samples)

    def test_expo_opcode_serves_prometheus_text(self):
        from repro.net import WorkerAgent
        from repro.net.agent import agent_expo

        agent = WorkerAgent(port=0, slots=2, mode="inline").start()
        try:
            text = agent_expo("127.0.0.1", agent.port)
        finally:
            agent.stop()
        assert "# TYPE repro_agent_slots gauge" in text
        assert "repro_agent_slots 2" in text
        assert "repro_agent_tasks_run 0" in text
        # Every sample line parses as "<series> <float>".
        for line in text.splitlines():
            if line and not line.startswith("#"):
                float(line.rsplit(" ", 1)[1])

    def test_expo_http_endpoint_matches_frame_opcode(self):
        import urllib.request

        from repro.net import WorkerAgent
        from repro.net.agent import agent_expo

        agent = WorkerAgent(port=0, slots=1, mode="inline",
                            expo_port=0)
        # expo_port=0 is not routable for HTTP (BaseHTTPServer binds an
        # ephemeral port); read it back from the server object.
        agent.start()
        try:
            http_port = agent._expo_server.server_address[1]
            with urllib.request.urlopen(
                    f"http://127.0.0.1:{http_port}/metrics",
                    timeout=5) as resp:
                assert resp.headers["Content-Type"].startswith(
                    "text/plain")
                http_text = resp.read().decode()
            frame_text = agent_expo("127.0.0.1", agent.port)
        finally:
            agent.stop()
        # Same collector behind both surfaces (gauge samples may move
        # between scrapes; the family lines are stable).
        http_families = {l for l in http_text.splitlines()
                         if l.startswith("# TYPE")}
        frame_families = {l for l in frame_text.splitlines()
                          if l.startswith("# TYPE")}
        assert http_families == frame_families

    def test_agent_records_task_latency_metrics(self):
        from repro.net import WorkerAgent
        from repro.net.protocol import (
            OP_BYE,
            OP_TASK,
            connect,
            request,
            send_frame,
        )

        agent = WorkerAgent(port=0, slots=1, mode="inline").start()
        try:
            sock = connect("127.0.0.1", agent.port)
            request(sock, OP_TASK, {"slot": 0},
                    pickle.dumps((_echo_task, 1)))
            from repro.net.agent import agent_stats

            stats = agent_stats("127.0.0.1", agent.port)
            send_frame(sock, OP_BYE, {})
            sock.close()
        finally:
            agent.stop()
        hist = stats["metrics"]["agent.task_seconds"]
        assert hist["count"] == 1
        assert stats["metrics"]["agent.reply_bytes"] > 0
        assert stats["tasks_active"] == 0

    def test_cli_stat_and_top_commands(self, capsys):
        from repro.cli import main
        from repro.net import WorkerAgent

        agent = WorkerAgent(port=0, slots=2, mode="inline").start()
        addr = f"127.0.0.1:{agent.port}"
        try:
            assert main(["stat", addr]) == 0
            out = capsys.readouterr().out
            assert f"agent {addr}" in out and "slots=2" in out

            assert main(["stat", addr, "--json"]) == 0
            doc = json.loads(capsys.readouterr().out)
            assert doc["slots"] == 2 and doc["service"] == "worker-agent"

            assert main(["top", addr, "--iterations", "1",
                         "--json"]) == 0
            tick = json.loads(capsys.readouterr().out)
            (row,) = tick["hosts"]
            assert row["status"] == "up" and row["slots"] == 2
            assert row["rtt_ms"] >= 0.0

            assert main(["top", addr, "--iterations", "1"]) == 0
            table = capsys.readouterr().out
            assert "repro top" in table and addr in table
        finally:
            agent.stop()

    def test_cli_top_marks_dead_hosts_down(self, capsys):
        from repro.cli import main

        # Port 1 on loopback: nothing listens there.
        assert main(["top", "127.0.0.1:1", "--iterations", "1",
                     "--timeout", "0.5", "--json"]) == 1
        tick = json.loads(capsys.readouterr().out)
        assert tick["hosts"][0]["status"] == "down"

    def test_remote_run_merges_agent_spans(self, tmp_path):
        from repro import JoinSession
        from repro.net import WorkerAgent

        agent = WorkerAgent(port=0, slots=2, mode="inline").start()
        path = str(tmp_path / "remote.json")
        try:
            with JoinSession(workers=2, backend="remote",
                             hosts=(f"127.0.0.1:{agent.port}",),
                             trace_path=path) as session:
                result = session.query("wb", "Q1", scale=1e-5).run("adj")
                assert result.ok
                names = {s.name for s in session.tracer().spans}
                assert {"agent_task", "worker_task", "route",
                        "publish"} <= names
        finally:
            agent.stop()
        doc = json.load(open(path))
        assert any(e["ph"] == "X" and e["name"] == "agent_task"
                   for e in doc["traceEvents"])


def _echo_task(task):
    return {"echo": task}


def _crash_task(_task):
    raise RuntimeError("deliberate")
