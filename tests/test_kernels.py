"""The repro.kernels layer: registry, adaptive choice, plumbing, parity.

Four invariant families:

- **registry / config plumbing** — ``REPRO_KERNEL`` env vs explicit
  argument precedence, unknown kernels rejected with the registered
  choices named, the CLI flag, and session kwargs;
- **equivalence** — ``wcoj``, ``binary`` and ``adaptive`` produce
  identical counts *and tuple sets*, cross-checked against the textbook
  :func:`~repro.wcoj.leapfrog.leapfrog_reference`, over random queries
  and databases (Hypothesis) and across every transport and both
  pipeline modes;
- **survival** — the kernel key crosses spawn process pools and remote
  :class:`~repro.net.WorkerAgent` tasks intact;
- **seed parity** — ``kernel="wcoj"`` reproduces the historical
  pure-Leapfrog counters bit-for-bit, including the batched-leaf fast
  path and its overflow fallback.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import JoinSession, RunConfig
from repro.cli import main
from repro.data import Database, Relation
from repro.distributed import Cluster
from repro.engines import ADJ, HCubeJ, SparkSQLJoin, YannakakisJoin
from repro.engines.base import EngineOptions
from repro.errors import ConfigError
from repro.kernels import (
    KERNEL_ENV_VAR,
    available_kernels,
    create_kernel,
    default_kernel,
    kernel_spec,
    register_kernel,
)
from repro.kernels.adaptive import choose_kernel
from repro.obs.metrics import METRICS
from repro.query import paper_query
from repro.wcoj import leapfrog_join, leapfrog_reference

TRANSPORTS = ("pickle", "shm", "tcp")


def graph_db(query, edges) -> Database:
    return Database(Relation(a.relation, ("x", "y"), edges)
                    for a in {a.relation: a for a in query.atoms}.values())


def result_tuples(result) -> list:
    return sorted(map(tuple, result.relation.data.tolist()))


# -- registry and configuration plumbing --------------------------------------

class TestRegistry:
    def test_available_lists_all_three_in_order(self):
        assert available_kernels() == ("wcoj", "binary", "adaptive")

    def test_unknown_kernel_names_choices(self):
        with pytest.raises(ConfigError, match="wcoj.*binary.*adaptive"):
            kernel_spec("hash")

    def test_create_unknown_kernel_rejected(self):
        with pytest.raises(ConfigError, match="unknown kernel"):
            create_kernel("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigError, match="already registered"):
            register_kernel("wcoj", lambda: None)

    def test_specs_have_summaries(self):
        for key in available_kernels():
            assert kernel_spec(key).summary

    def test_default_kernel_unset_env(self, monkeypatch):
        monkeypatch.delenv(KERNEL_ENV_VAR, raising=False)
        assert default_kernel() == "adaptive"

    def test_default_kernel_env(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, "binary")
        assert default_kernel() == "binary"

    def test_default_kernel_invalid_env(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, "turbo")
        with pytest.raises(ConfigError, match="unknown kernel"):
            default_kernel()


class TestConfigPlumbing:
    def test_runconfig_default_is_adaptive(self, monkeypatch):
        monkeypatch.delenv(KERNEL_ENV_VAR, raising=False)
        assert RunConfig().kernel == "adaptive"

    def test_env_beats_default(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, "wcoj")
        assert RunConfig().kernel == "wcoj"

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, "wcoj")
        assert RunConfig(kernel="binary").kernel == "binary"

    def test_unknown_kernel_rejected_naming_choices(self):
        with pytest.raises(ConfigError, match="wcoj.*binary.*adaptive"):
            RunConfig(kernel="turbo")

    def test_session_kwarg_flows_to_engine_options(self):
        with JoinSession(workers=2, kernel="binary") as session:
            assert session.config.kernel == "binary"
            assert session.config.engine_options().kernel == "binary"

    def test_session_rejects_unknown_kernel(self):
        with pytest.raises(ConfigError, match="unknown kernel"):
            JoinSession(workers=2, kernel="nope")

    def test_cli_flag_beats_env(self, capsys, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, "binary")
        assert main(["run", "wb", "Q1", "--scale", "1e-5",
                     "--samples", "10", "--kernel", "wcoj",
                     "--engine", "hcubej"]) == 0
        assert "kernel=wcoj" in capsys.readouterr().out

    def test_cli_env_applies_without_flag(self, capsys, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, "binary")
        assert main(["run", "wb", "Q1", "--scale", "1e-5",
                     "--samples", "10", "--engine", "hcubej"]) == 0
        assert "kernel=binary" in capsys.readouterr().out

    def test_cli_rejects_unknown_kernel(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "wb", "Q1", "--kernel", "turbo"])


# -- equivalence: all kernels, one answer -------------------------------------

class TestKernelEquivalence:
    @pytest.mark.parametrize("qname", ["Q1", "Q4", "Q7", "Q9"])
    def test_kernels_match_reference_on_paper_queries(self, qname):
        query = paper_query(qname)
        rng = np.random.default_rng(7)
        db = graph_db(query, rng.integers(0, 30, size=(200, 2)))
        expected = leapfrog_reference(query, db)
        for key in available_kernels():
            result = create_kernel(key).execute(query, db,
                                                query.attributes,
                                                materialize=True)
            assert result.count == len(expected), key
            assert result_tuples(result) == expected, key

    @settings(max_examples=25, deadline=None)
    @given(qname=st.sampled_from(["Q1", "Q2", "Q7"]),
           n=st.integers(min_value=0, max_value=60),
           dom=st.integers(min_value=1, max_value=12),
           seed=st.integers(min_value=0, max_value=2 ** 16))
    def test_kernels_match_reference_on_random_dbs(self, qname, n, dom,
                                                   seed):
        query = paper_query(qname)
        rng = np.random.default_rng(seed)
        db = graph_db(query, rng.integers(0, dom, size=(n, 2)))
        expected = leapfrog_reference(query, db)
        for key in available_kernels():
            result = create_kernel(key).execute(query, db,
                                                query.attributes,
                                                materialize=True)
            assert result.count == len(expected), key
            assert result_tuples(result) == expected, key

    @pytest.mark.parametrize("transport", TRANSPORTS)
    @pytest.mark.parametrize("pipeline", [True, False])
    def test_kernels_agree_across_transports(self, transport, pipeline):
        counts = {}
        for kernel in available_kernels():
            with JoinSession(workers=2, transport=transport,
                             pipeline=pipeline, kernel=kernel,
                             scale=1e-5, samples=10) as session:
                result = session.query("wb", "Q7").run("hcubej")
            assert result.ok, (kernel, transport, result.failure)
            counts[kernel] = result.count
        assert len(set(counts.values())) == 1, counts

    def test_adaptive_mixes_kernels_per_bag(self):
        """Yannakakis under adaptive: per-bag subqueries may resolve to
        different kernels within one run, and counts still agree."""
        query = paper_query("Q7")
        rng = np.random.default_rng(3)
        db = graph_db(query, rng.integers(0, 40, size=(120, 2)))
        cluster = Cluster(num_workers=2)
        base = YannakakisJoin().run(query, db, cluster)
        res = YannakakisJoin(kernel="adaptive").run(query, db, cluster)
        assert res.count == base.count
        decisions = res.extra["kernel_decisions"]
        assert set(decisions.values()) <= set(available_kernels())


# -- survival: spawn pools and remote agents ----------------------------------

class TestKernelSurvival:
    def test_kernel_survives_process_pool(self):
        with JoinSession(workers=2, backend="processes",
                         kernel="binary", scale=1e-5,
                         samples=10) as session:
            base = session.query("wb", "Q1")
            result = base.run("hcubej")
        assert result.ok
        assert result.extra["kernel"] == "binary"
        inline = HCubeJ(kernel="binary").run(
            paper_query("Q1"),
            base.db, Cluster(num_workers=2))
        assert result.count == inline.count

    def test_kernel_survives_remote_agent(self):
        from repro.net import WorkerAgent

        with WorkerAgent(slots=2, mode="inline") as agent:
            with JoinSession(workers=2, backend="remote",
                             hosts=(f"127.0.0.1:{agent.port}",),
                             kernel="binary", scale=1e-5,
                             samples=10) as session:
                result = session.query("wb", "Q1").run("hcubej")
        assert result.ok
        assert result.extra["kernel"] == "binary"
        assert agent.tasks_run > 0


# -- seed parity: kernel="wcoj" is the historical engine ----------------------

class TestSeedParity:
    @pytest.mark.parametrize("qname", ["Q1", "Q7"])
    def test_wcoj_kernel_reproduces_seed_counters(self, qname):
        query = paper_query(qname)
        rng = np.random.default_rng(11)
        db = graph_db(query, rng.integers(0, 25, size=(150, 2)))
        cluster = Cluster(num_workers=4)
        seed = HCubeJ().run(query, db, cluster)
        kern = HCubeJ(kernel="wcoj").run(query, db, cluster)
        assert kern.count == seed.count
        assert kern.extra["level_tuples"] == seed.extra["level_tuples"]
        assert kern.extra["leapfrog_work"] == seed.extra["leapfrog_work"]
        assert kern.extra["kernel"] == "wcoj"
        assert "kernel" not in seed.extra

    def test_wcoj_kernel_matches_seed_adj(self):
        query = paper_query("Q1")
        rng = np.random.default_rng(13)
        db = graph_db(query, rng.integers(0, 25, size=(150, 2)))
        cluster = Cluster(num_workers=4)
        seed = ADJ(num_samples=10).run(query, db, cluster)
        kern = ADJ(num_samples=10, kernel="wcoj").run(query, db, cluster)
        assert kern.count == seed.count
        assert kern.extra["level_tuples"] == seed.extra["level_tuples"]
        assert kern.extra["leapfrog_work"] == seed.extra["leapfrog_work"]

    def test_binary_budget_trips_in_binary_units(self):
        from repro.errors import BudgetExceeded

        query = paper_query("Q7")
        rng = np.random.default_rng(5)
        db = graph_db(query, rng.integers(0, 10, size=(400, 2)))
        with pytest.raises(BudgetExceeded):
            create_kernel("binary").execute(query, db, query.attributes,
                                            budget=10)


# -- adaptive choice, spans and metrics ---------------------------------------

class TestAdaptiveChoice:
    def test_cyclic_query_forces_wcoj(self):
        query = paper_query("Q1")   # triangle: cyclic
        rng = np.random.default_rng(0)
        db = graph_db(query, rng.integers(0, 20, size=(100, 2)))
        choice = choose_kernel("adaptive", query, db)
        assert choice.key == "wcoj"
        assert "cyclic" in choice.reason

    def test_low_blowup_acyclic_picks_binary(self):
        query = paper_query("Q7")   # path: acyclic
        rng = np.random.default_rng(0)
        # Sparse: many nodes, few collisions -> small intermediates.
        db = graph_db(query, rng.integers(0, 4000, size=(400, 2)))
        choice = choose_kernel("adaptive", query, db)
        assert choice.key == "binary", choice.reason

    def test_forced_key_passes_through(self):
        query = paper_query("Q1")
        db = graph_db(query, np.zeros((1, 2), dtype=np.int64))
        for key in ("wcoj", "binary"):
            choice = choose_kernel(key, query, db)
            assert choice.key == key
            assert choice.reason == "forced"

    def test_selection_increments_metric(self):
        query = paper_query("Q1")
        rng = np.random.default_rng(0)
        db = graph_db(query, rng.integers(0, 20, size=(80, 2)))
        cluster = Cluster(num_workers=2)
        before = METRICS.counter("kernel.selected.wcoj").snapshot()
        HCubeJ(kernel="adaptive").run(query, db, cluster)
        after = METRICS.counter("kernel.selected.wcoj").snapshot()
        assert after == before + 1

    def test_kernel_select_span_in_session_trace(self, tmp_path):
        trace = tmp_path / "trace.json"
        with JoinSession(workers=2, kernel="adaptive", scale=1e-5,
                         samples=10,
                         trace_path=str(trace)) as session:
            result = session.query("wb", "Q1").run("hcubej")
        events = result.extra["trace"]["traceEvents"]
        names = {e.get("name") for e in events}
        assert "kernel_select" in names
        run_spans = [e for e in events if e.get("name") == "engine_run"]
        assert run_spans and all(
            e["args"]["kernel"] == "adaptive" for e in run_spans)

    def test_explain_reports_kernel_decisions(self):
        with JoinSession(workers=2, kernel="adaptive", scale=1e-5,
                         samples=10) as session:
            report = session.query("wb", "Q7").explain()
        assert report.kernel_decisions
        for key, reason in report.kernel_decisions.values():
            assert key in available_kernels()
            assert reason
        assert "kernel decisions:" in report.describe()


# -- supporting machinery -----------------------------------------------------

class TestDistinctCountCache:
    def test_memoized_per_column(self):
        rel = Relation("R", ("x", "y"),
                       np.array([[1, 2], [1, 3], [2, 3]]))
        assert rel.distinct_count("x") == 2
        assert rel._distinct == {0: 2}
        assert rel.distinct_count("x") == 2   # cached, no recompute
        assert rel.distinct_count("y") == 2
        assert rel._distinct == {0: 2, 1: 2}

    def test_shared_through_rename_and_reorder(self):
        rel = Relation("R", ("x", "y"),
                       np.array([[1, 2], [1, 3], [2, 3]]))
        rel.distinct_count("x")
        renamed = rel.rename({"x": "a", "y": "b"})
        assert renamed._distinct is rel._distinct
        swapped = rel.reorder(("y", "x"))
        assert swapped._distinct == {1: 2}
        assert swapped.distinct_count("x") == 2

    def test_projection_keeps_kept_columns(self):
        rel = Relation("R", ("x", "y"),
                       np.array([[1, 2], [1, 3], [2, 3]]))
        rel.distinct_count("y")
        proj = rel.project(("y",))
        assert proj._distinct == {0: 2}


class TestBatchedLeafFallback:
    def test_huge_values_fall_back_to_recursive_path(self):
        """Pair-encoded intersection would overflow int64 near 2**62;
        the batch path must detect it and fall back, same answer."""
        big = 2 ** 61
        query = paper_query("Q1")
        edges = np.array([[0, big], [0, 0], [1, big], [1, 0], [big, 0]],
                         dtype=np.int64)
        db = graph_db(query, edges)
        expected = leapfrog_reference(query, db)
        result = leapfrog_join(query, db, materialize=True)
        assert result.count == len(expected)
        assert result_tuples(result) == expected

    def test_small_values_batch_and_recursive_agree_on_counters(self):
        """With cache/budget/emit unset the batch path is active; its
        counters must equal the reference Python recursion's (forced
        here via a budget that never trips)."""
        query = paper_query("Q9")
        rng = np.random.default_rng(2)
        db = graph_db(query, rng.integers(0, 15, size=(120, 2)))
        batched = leapfrog_join(query, db)
        recursive = leapfrog_join(query, db, budget=10 ** 12)
        assert batched.count == recursive.count
        assert batched.stats.level_tuples == recursive.stats.level_tuples
        assert batched.stats.intersection_work \
            == recursive.stats.intersection_work
        assert batched.stats.level_work == recursive.stats.level_work
        assert batched.stats.extensions == recursive.stats.extensions


class TestEngineKernelOptions:
    def test_all_engines_accept_kernel_option(self):
        from repro.engines import registry

        opts = EngineOptions(kernel="adaptive")
        for name in registry.available():
            registry.create(name, opts)   # must not raise

    def test_sparksql_reports_pinned_binary(self):
        query = paper_query("Q7")
        rng = np.random.default_rng(0)
        db = graph_db(query, rng.integers(0, 30, size=(100, 2)))
        res = SparkSQLJoin(kernel="adaptive").run(query, db,
                                                  Cluster(num_workers=2))
        assert res.extra["kernel"] == "binary"

    def test_bigjoin_reports_pinned_wcoj(self):
        from repro.engines import BigJoin

        query = paper_query("Q1")
        rng = np.random.default_rng(0)
        db = graph_db(query, rng.integers(0, 20, size=(80, 2)))
        res = BigJoin(kernel="adaptive").run(query, db,
                                             Cluster(num_workers=2))
        assert res.extra["kernel"] == "wcoj"
