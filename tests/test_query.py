"""Unit tests for repro.query (query model, hypergraph, parser, catalog)."""

import pytest

from repro.data import Database, Relation
from repro.errors import QueryParseError, SchemaError
from repro.query import (
    Atom,
    Hypergraph,
    JoinQuery,
    PAPER_QUERIES,
    easy_query_names,
    example_query,
    hard_query_names,
    paper_query,
    parse_query,
    triangle_query,
)


class TestAtom:
    def test_str(self):
        assert str(Atom("R", ("a", "b"))) == "R(a, b)"

    def test_repeated_variable_rejected(self):
        with pytest.raises(SchemaError):
            Atom("R", ("a", "a"))

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            Atom("R", ())


class TestJoinQuery:
    def test_attribute_union_in_first_seen_order(self):
        q = JoinQuery([("R1", ("b", "a")), ("R2", ("a", "c"))])
        assert q.attributes == ("b", "a", "c")

    def test_atoms_with(self):
        q = triangle_query()
        assert tuple(a.relation for a in q.atoms_with("a")) == ("R1", "R3")

    def test_tuple_atoms_coerced(self):
        q = JoinQuery([("R", ("a", "b"))])
        assert isinstance(q.atoms[0], Atom)

    def test_empty_query_rejected(self):
        with pytest.raises(SchemaError):
            JoinQuery([])

    def test_equality_and_hash(self):
        assert triangle_query() == triangle_query()
        assert hash(triangle_query()) == hash(triangle_query())
        assert triangle_query() != example_query()

    def test_subquery(self):
        q = triangle_query()
        sub = q.subquery([0, 2])
        assert sub.relation_names() == ("R1", "R3")
        assert sub.attributes == ("a", "b", "c")

    def test_project_onto_drops_disjoint_atoms(self):
        q = example_query()
        p = q.project_onto(["a", "b"])
        # R3(c,d), R5(c,e) have no overlap with {a,b}; R1 keeps (a,b).
        rels = p.relation_names()
        assert "R3" not in rels and "R5" not in rels
        assert p.atoms[0].attributes == ("a", "b")

    def test_project_onto_nothing_rejected(self):
        q = triangle_query()
        with pytest.raises(SchemaError):
            q.project_onto(["z"])

    def test_is_connected(self):
        assert triangle_query().is_connected()
        q = JoinQuery([("R", ("a", "b")), ("S", ("x", "y"))])
        assert not q.is_connected()

    def test_validate_against(self):
        db = Database([Relation("R1", ("x", "y"), [(1, 2)])])
        q = JoinQuery([("R1", ("a", "b"))])
        q.validate_against(db)  # same arity: fine
        q2 = JoinQuery([("R1", ("a", "b", "c"))])
        with pytest.raises(SchemaError):
            q2.validate_against(db)


class TestHypergraph:
    def test_of_query(self):
        h = Hypergraph.of_query(triangle_query())
        assert set(h.vertices) == {"a", "b", "c"}
        assert h.num_edges == 3

    def test_parallel_edges_preserved(self):
        q = JoinQuery([("R1", ("a", "b")), ("R2", ("a", "b"))])
        h = Hypergraph.of_query(q)
        assert h.num_edges == 2

    def test_edges_with(self):
        h = Hypergraph.of_query(triangle_query())
        assert h.edges_with("a") == (0, 2)

    def test_vertex_neighbors(self):
        h = Hypergraph.of_query(example_query())
        assert h.vertex_neighbors("e") == frozenset({"b", "c"})

    def test_unknown_vertex_in_edge_rejected(self):
        with pytest.raises(SchemaError):
            Hypergraph(["a"], [{"a", "zz"}])

    def test_connectivity(self):
        assert Hypergraph.of_query(example_query()).is_connected()
        h = Hypergraph(["a", "b", "c", "d"], [{"a", "b"}, {"c", "d"}])
        assert not h.is_connected()

    def test_induced_by_edges(self):
        h = Hypergraph.of_query(triangle_query())
        sub = h.induced_by_edges([0])
        assert set(sub.vertices) == {"a", "b"}

    def test_triangle_is_cyclic(self):
        assert not Hypergraph.of_query(triangle_query()).is_alpha_acyclic()

    def test_path_is_acyclic(self):
        q = JoinQuery([("R1", ("a", "b")), ("R2", ("b", "c"))])
        assert Hypergraph.of_query(q).is_alpha_acyclic()

    def test_example_query_is_cyclic(self):
        assert not Hypergraph.of_query(example_query()).is_alpha_acyclic()

    def test_acyclic_after_bag_merge(self):
        # The paper's Fig. 5: replacing R2,R3 and R4,R5 by their joins
        # makes the example query acyclic.
        h = Hypergraph(
            ["a", "b", "c", "d", "e"],
            [{"a", "b", "c"}, {"a", "c", "d"}, {"b", "c", "e"}],
        )
        assert h.is_alpha_acyclic()


class TestParser:
    def test_datalog_form(self):
        q = parse_query("Q(a,b,c) :- R1(a,b), R2(b,c), R3(a,c)")
        assert q == triangle_query()
        assert q.name == "Q"

    def test_infix_form(self):
        q = parse_query("R1(a,b) >< R2(b,c) >< R3(a,c)")
        assert q == triangle_query()

    def test_whitespace_tolerated(self):
        q = parse_query("  R1( a , b )  ,  R2(b,c)  ")
        assert q.relation_names() == ("R1", "R2")

    def test_head_must_match_body_vars(self):
        with pytest.raises(QueryParseError):
            parse_query("Q(a) :- R1(a,b)")

    def test_empty_rejected(self):
        with pytest.raises(QueryParseError):
            parse_query("   ")

    def test_garbage_rejected(self):
        with pytest.raises(QueryParseError):
            parse_query("hello world")

    def test_unbalanced_parens_rejected(self):
        with pytest.raises(QueryParseError):
            parse_query("R1(a,b")

    def test_name_override(self):
        q = parse_query("R1(a,b), R2(b,c)", name="mine")
        assert q.name == "mine"


class TestCatalog:
    def test_all_eleven_queries_present(self):
        assert set(PAPER_QUERIES) == {f"Q{i}" for i in range(1, 12)}

    def test_query_shapes_match_paper(self):
        # (num atoms, num attributes) for the transcribed queries Q1-Q6.
        expected = {
            "Q1": (3, 3), "Q2": (6, 4), "Q3": (10, 5),
            "Q4": (6, 5), "Q5": (7, 5), "Q6": (8, 5),
        }
        for name, (m, n) in expected.items():
            q = paper_query(name)
            assert q.num_atoms == m, name
            assert q.num_attributes == n, name

    def test_q3_is_5_clique(self):
        q = paper_query("Q3")
        pairs = {frozenset(a.attributes) for a in q.atoms}
        attrs = q.attributes
        assert len(pairs) == 10
        expected = {frozenset((x, y)) for i, x in enumerate(attrs)
                    for y in attrs[i + 1:]}
        assert pairs == expected

    def test_q2_is_4_clique(self):
        q = paper_query("Q2")
        pairs = {frozenset(a.attributes) for a in q.atoms}
        assert len(pairs) == 6

    def test_chord_progression_q4_q5_q6(self):
        e4 = {frozenset(a.attributes) for a in paper_query("Q4").atoms}
        e5 = {frozenset(a.attributes) for a in paper_query("Q5").atoms}
        e6 = {frozenset(a.attributes) for a in paper_query("Q6").atoms}
        assert e4 < e5 < e6
        assert e5 - e4 == {frozenset(("b", "d"))}
        assert e6 - e5 == {frozenset(("c", "e"))}

    def test_example_query_matches_eq2(self):
        q = example_query()
        assert q.atoms[0].attributes == ("a", "b", "c")
        assert q.num_atoms == 5
        assert q.attributes == ("a", "b", "c", "d", "e")

    def test_all_queries_connected(self):
        for q in PAPER_QUERIES.values():
            assert q.is_connected(), q.name

    def test_hard_easy_split(self):
        assert set(hard_query_names()) | set(easy_query_names()) == set(
            PAPER_QUERIES)
        assert not set(hard_query_names()) & set(easy_query_names())

    def test_unknown_query(self):
        with pytest.raises(KeyError):
            paper_query("Q99")

    def test_lookup_case_insensitive(self):
        assert paper_query("q4") == paper_query("Q4")
