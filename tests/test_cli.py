"""Smoke tests for the CLI (python -m repro) through main(argv).

Exercises every subcommand at tiny scale, the engines-disagree exit
code, registry-driven --engine choices, and executor cleanup on the
``--engine all`` runtime path.
"""

import pytest

from repro.cli import build_parser, main
from repro.distributed.metrics import CostBreakdown
from repro.engines import registry
from repro.engines.base import EngineResult
from repro.runtime.executor import Executor

SMALL = ["--scale", "1e-5", "--samples", "10"]


class TestSmoke:
    def test_datasets(self, capsys):
        assert main(["datasets", "--scale", "1e-5"]) == 0
        out = capsys.readouterr().out
        for key in ("wb", "lj", "ok"):
            assert key in out

    def test_queries(self, capsys):
        assert main(["queries"]) == 0
        out = capsys.readouterr().out
        assert "Q1" in out and "Q11" in out

    def test_run_single_engine(self, capsys):
        assert main(["run", "wb", "Q1", "--engine", "adj", *SMALL]) == 0
        out = capsys.readouterr().out
        assert "ADJ" in out
        assert "transport=inline" in out

    def test_run_all_engines(self, capsys):
        assert main(["run", "wb", "Q1", "--engine", "all", *SMALL]) == 0
        out = capsys.readouterr().out
        for display in ("SparkSQL", "BigJoin", "HCubeJ", "HCubeJ+Cache",
                        "ADJ", "Yannakakis"):
            assert display in out

    def test_run_runtime_backend(self, capsys):
        assert main(["run", "wb", "Q1", "--engine", "hcubej",
                     "--backend", "threads", "--transport", "pickle",
                     *SMALL]) == 0
        out = capsys.readouterr().out
        assert "backend=threads" in out
        assert "transport=pickle" in out

    def test_plan(self, capsys):
        assert main(["plan", "wb", "Q1", *SMALL]) == 0
        out = capsys.readouterr().out
        assert "hypertree" in out
        assert "plan[" in out
        assert "modeled cost" in out

    def test_estimate_with_check(self, capsys):
        assert main(["estimate", "wb", "Q1", "--check", *SMALL]) == 0
        out = capsys.readouterr().out
        assert "estimate:" in out
        assert "true:" in out


class TestEnvPrecedence:
    def test_env_workers_apply_when_flag_omitted(self, monkeypatch,
                                                 capsys):
        monkeypatch.setenv("REPRO_WORKERS", "4")
        assert main(["run", "wb", "Q1", "--engine", "hcubej",
                     *SMALL]) == 0
        assert "4 workers" in capsys.readouterr().out

    def test_flag_beats_env(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_WORKERS", "4")
        assert main(["run", "wb", "Q1", "--engine", "hcubej",
                     "--workers", "6", *SMALL]) == 0
        assert "6 workers" in capsys.readouterr().out

    def test_env_scale_applies_when_flag_omitted(self, monkeypatch,
                                                 capsys):
        monkeypatch.setenv("REPRO_SCALE", "1e-5")
        assert main(["run", "wb", "Q1", "--engine", "hcubej",
                     "--samples", "10"]) == 0
        out = capsys.readouterr().out
        assert "200 edges/relation" in out  # 1e-5 of WB, not 2e-5


class TestEngineChoices:
    def test_choices_come_from_registry(self):
        parser = build_parser()
        args = parser.parse_args(["run", "wb", "Q1"])
        assert args.engine == "adj"
        for key in registry.available():
            parser.parse_args(["run", "wb", "Q1", "--engine", key])
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "wb", "Q1", "--engine", "nope"])

    def test_unknown_engine_message_names_registry_keys(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "wb", "Q1", "--engine", "nope"])
        err = capsys.readouterr().err
        for key in registry.available():
            assert key in err


class TestDisagreement:
    def test_exit_code_1_when_engines_disagree(self, monkeypatch, capsys):
        """A lying engine flips the agreement check to exit code 1."""

        class Liar:
            name = "Liar"

            def run(self, query, db, cluster, executor=None):
                return EngineResult(engine=self.name, query=query.name,
                                    count=-42,
                                    breakdown=CostBreakdown())

        real_create = registry.create

        def lying_create(key, options=None, **overrides):
            if key == "hcubej":
                return Liar()
            return real_create(key, options, **overrides)

        monkeypatch.setattr(registry, "create", lying_create)
        assert main(["run", "wb", "Q1", "--engine", "all", *SMALL]) == 1
        captured = capsys.readouterr()
        assert "engines disagree" in captured.err

    def test_failed_engines_do_not_trip_agreement(self, monkeypatch,
                                                  capsys):
        """An engine failure renders as FAILED but exits 0."""

        class Failing:
            name = "Failing"

            def run(self, query, db, cluster, executor=None):
                return EngineResult(engine=self.name, query=query.name,
                                    count=-1, breakdown=CostBreakdown(),
                                    failure="oom")

        real_create = registry.create

        def failing_create(key, options=None, **overrides):
            if key == "sparksql":
                return Failing()
            return real_create(key, options, **overrides)

        monkeypatch.setattr(registry, "create", failing_create)
        assert main(["run", "wb", "Q1", "--engine", "all", *SMALL]) == 0
        assert "FAILED (oom)" in capsys.readouterr().out


class TestExecutorCleanup:
    @pytest.mark.parametrize("engine", ["all", "adj"])
    def test_engine_runs_close_their_executor(self, monkeypatch, engine):
        """The session tears down the executor the run created."""
        closed = []
        original_close = Executor.close

        def tracking_close(self):
            closed.append(self)
            original_close(self)

        monkeypatch.setattr(Executor, "close", tracking_close)
        assert main(["run", "wb", "Q1", "--engine", engine,
                     "--backend", "threads", *SMALL]) == 0
        assert closed, "executor was never closed"
        assert all(ex._pool is None for ex in closed)

    def test_serial_run_creates_no_executor(self, monkeypatch):
        created = []
        original_init = Executor.__init__

        def tracking_init(self, *args, **kwargs):
            created.append(self)
            original_init(self, *args, **kwargs)

        monkeypatch.setattr(Executor, "__init__", tracking_init)
        assert main(["run", "wb", "Q1", "--engine", "hcubej",
                     *SMALL]) == 0
        assert not created
