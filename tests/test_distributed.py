"""Tests for repro.distributed: metrics, shares, HCube, hash shuffle."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import Database, Relation
from repro.distributed import (
    Cluster,
    CostLedger,
    CostModelParams,
    HypercubeGrid,
    ShuffleStats,
    Shares,
    dup_factor,
    enumerate_share_vectors,
    frac_factor,
    hash_partition,
    hcube_shuffle,
    localized_query,
    mix_hash,
    modulo_hash,
    optimize_shares,
)
from repro.distributed import local_atom_name
from repro.errors import OutOfMemory, PlanError
from repro.query import paper_query
from repro.runtime import (
    build_worker_tasks,
    execute_worker_task,
    merge_task_results,
)
from repro.wcoj import leapfrog_join


def triangle_case(seed=0, n=150, dom=20):
    q = paper_query("Q1")
    rng = np.random.default_rng(seed)
    edges = rng.integers(0, dom, size=(n, 2))
    db = Database([Relation(f"R{i}", ("x", "y"), edges) for i in (1, 2, 3)])
    return q, db


class TestCostModelParams:
    def test_alpha_lookup(self):
        p = CostModelParams()
        assert p.alpha_for("push") == p.alpha_push
        assert p.alpha_for("pull") == p.alpha_pull
        assert p.alpha_for("merge") == p.alpha_merge

    def test_unknown_impl(self):
        with pytest.raises(ValueError):
            CostModelParams().alpha_for("teleport")

    def test_relative_magnitudes(self):
        # Push must be much slower per tuple (the Fig. 9 gap).
        p = CostModelParams()
        assert p.alpha_pull / p.alpha_push >= 10
        assert p.alpha_merge >= p.alpha_pull
        assert p.trie_merge_rate > p.trie_build_rate


class TestCostLedger:
    def test_shuffle_charges_comm(self):
        ledger = CostLedger()
        sec = ledger.charge_shuffle(
            ShuffleStats(tuple_copies=1000, blocks_fetched=2), "pull")
        assert sec > 0
        assert ledger.comm_seconds == pytest.approx(sec)
        assert ledger.tuples_shuffled == 1000

    def test_worker_work_is_makespan(self):
        ledger = CostLedger()
        sec = ledger.charge_worker_work({0: 100.0, 1: 300.0}, rate=100.0)
        assert sec == pytest.approx(3.0)

    def test_phase_routing(self):
        ledger = CostLedger()
        ledger.charge_seconds(1.0, "optimization")
        ledger.charge_seconds(2.0, "precompute")
        b = ledger.breakdown()
        assert b.optimization == 1.0 and b.precompute == 2.0
        assert b.total == pytest.approx(3.0)

    def test_unknown_phase(self):
        with pytest.raises(ValueError):
            CostLedger().charge_seconds(1.0, "meditation")

    def test_breakdown_addition(self):
        from repro.distributed import CostBreakdown
        a = CostBreakdown(optimization=1, computation=2)
        b = CostBreakdown(communication=3)
        assert (a + b).total == pytest.approx(6)

    def test_as_row_keys(self):
        row = CostLedger().breakdown().as_row()
        assert list(row) == ["Optimization", "Pre-Computing",
                             "Communication", "Computation", "Total"]


class TestShareVectors:
    def test_enumeration_products_bounded(self):
        for v in enumerate_share_vectors(3, 8):
            assert np.prod(v) <= 8

    def test_enumeration_complete_small(self):
        vectors = set(enumerate_share_vectors(2, 4))
        expected = {(a, b) for a in range(1, 5) for b in range(1, 5)
                    if a * b <= 4}
        assert vectors == expected

    def test_zero_attrs(self):
        assert list(enumerate_share_vectors(0, 4)) == [()]

    def test_dup_and_frac(self):
        shares = {"a": 2, "b": 3, "c": 5}
        assert dup_factor(("a",), shares) == 15
        assert frac_factor(("a",), shares) == pytest.approx(0.5)
        assert dup_factor(("a", "b", "c"), shares) == 1


class TestOptimizeShares:
    def test_triangle_symmetric_shares(self):
        q, db = triangle_case()
        sizes = {f"R{i}": 100 for i in (1, 2, 3)}
        s = optimize_shares(q, sizes, num_cubes=8)
        assert sorted(s.as_dict.values()) == [2, 2, 2]

    def test_exact_product(self):
        q, _ = triangle_case()
        sizes = {f"R{i}": 100 for i in (1, 2, 3)}
        s = optimize_shares(q, sizes, num_cubes=6)
        assert s.num_cubes == 6

    def test_skewed_sizes_shift_shares(self):
        # A huge R1(a,b) should avoid partitioning on c (which would
        # duplicate R1).
        q, _ = triangle_case()
        s = optimize_shares(q, {"R1": 100_000, "R2": 10, "R3": 10},
                            num_cubes=4)
        assert s.as_dict["c"] == 1

    def test_memory_constraint_respected(self):
        q, _ = triangle_case()
        sizes = {f"R{i}": 1000 for i in (1, 2, 3)}
        s = optimize_shares(q, sizes, num_cubes=8, memory_tuples=1500)
        assert s.max_server_load <= 1500

    def test_memory_infeasible_is_oom(self):
        q, _ = triangle_case()
        sizes = {f"R{i}": 10_000 for i in (1, 2, 3)}
        with pytest.raises(OutOfMemory):
            optimize_shares(q, sizes, num_cubes=2, memory_tuples=10)

    def test_matches_exhaustive_cost(self):
        q, _ = triangle_case()
        sizes = {"R1": 500, "R2": 300, "R3": 100}
        s = optimize_shares(q, sizes, num_cubes=8)
        best = None
        for v in enumerate_share_vectors(3, 8):
            if int(np.prod(v)) != 8:
                continue
            shares = dict(zip(q.attributes, v))
            copies = sum(size * dup_factor(a.attributes, shares)
                         for a, size in zip(q.atoms, sizes.values()))
            best = copies if best is None else min(best, copies)
        assert s.tuple_copies == best

    def test_missing_size_rejected(self):
        q, _ = triangle_case()
        with pytest.raises(PlanError):
            optimize_shares(q, {"R1": 10}, num_cubes=4)


class TestHashes:
    def test_mix_hash_range(self):
        vals = np.arange(1000, dtype=np.int64)
        h = mix_hash(vals, 7)
        assert ((0 <= h) & (h < 7)).all()

    def test_mix_hash_single_bucket(self):
        assert (mix_hash(np.arange(10, dtype=np.int64), 1) == 0).all()

    def test_modulo_hash_paper_example(self):
        vals = np.array([1, 2, 3, 4], dtype=np.int64)
        assert modulo_hash(vals, 2).tolist() == [1, 0, 1, 0]

    def test_salt_changes_mix(self):
        vals = np.arange(100, dtype=np.int64)
        assert not np.array_equal(mix_hash(vals, 5, 0), mix_hash(vals, 5, 1))


class TestHypercubeGrid:
    def _grid(self, workers=4):
        q, _ = triangle_case()
        return HypercubeGrid(q, {"a": 2, "b": 2, "c": 2}, workers)

    def test_coordinate_roundtrip(self):
        g = self._grid()
        for c in range(g.num_cubes):
            assert g.cube_index_of(g.coordinate_of(c)) == c

    def test_worker_assignment_covers_all_cubes(self):
        g = self._grid(3)
        cubes = sorted(c for w in range(3) for c in g.cubes_of_worker(w))
        assert cubes == list(range(g.num_cubes))

    def test_missing_share_rejected(self):
        q, _ = triangle_case()
        with pytest.raises(PlanError):
            HypercubeGrid(q, {"a": 2}, 2)

    def test_bad_share_rejected(self):
        q, _ = triangle_case()
        with pytest.raises(PlanError):
            HypercubeGrid(q, {"a": 0, "b": 1, "c": 1}, 2)

    def test_out_of_range_coordinate(self):
        g = self._grid()
        with pytest.raises(PlanError):
            g.cube_index_of((5, 0, 0))


class TestHCubeShuffle:
    def test_locality_invariant(self):
        """Union of per-cube joins == global join (the HCube property)."""
        q, db = triangle_case(seed=3)
        grid = HypercubeGrid(q, {"a": 2, "b": 2, "c": 2}, 4)
        res = hcube_shuffle(q, db, grid)
        local = res.local_query
        total = sum(leapfrog_join(local, cdb).count
                    for cdb in res.cube_databases)
        assert total == leapfrog_join(q, db).count

    def test_push_copies_match_dup_formula(self):
        q, db = triangle_case(seed=4)
        shares = {"a": 2, "b": 2, "c": 2}
        grid = HypercubeGrid(q, shares, 8)
        res = hcube_shuffle(q, db, grid, impl="push")
        expected = sum(len(db[a.relation]) * dup_factor(a.attributes, shares)
                       for a in q.atoms)
        assert res.stats.tuple_copies == expected

    def test_bytes_copied_sums_per_atom_arity(self):
        """Regression: ``bytes_copied`` accumulates per atom at that
        atom's arity (it used to be overwritten with the *last* atom's
        arity applied to all copies, misaccounting mixed-arity queries).
        """
        from repro.query.query import Atom, JoinQuery
        q = JoinQuery([Atom("R", ("a", "b")), Atom("S", ("b",))],
                      name="mixed")
        rng = np.random.default_rng(8)
        db = Database([
            Relation("R", ("x", "y"), rng.integers(0, 10, size=(40, 2))),
            Relation("S", ("x",), rng.integers(0, 10, size=(25, 1))),
        ])
        grid = HypercubeGrid(q, {"a": 2, "b": 2}, 4)
        res = hcube_shuffle(q, db, grid, impl="push")
        # Push routes each atom's tuples to every matching cube, so the
        # per-atom copy counts are the dup-factor products.
        shares = {"a": 2, "b": 2}
        copies_r = len(db["R"]) * dup_factor(("a", "b"), shares)
        copies_s = len(db["S"]) * dup_factor(("b",), shares)
        assert res.stats.tuple_copies == copies_r + copies_s
        assert res.stats.bytes_copied == copies_r * 2 * 8 + copies_s * 1 * 8

    def test_pull_not_more_than_push(self):
        q, db = triangle_case(seed=5)
        grid = HypercubeGrid(q, {"a": 2, "b": 2, "c": 2}, 4)
        push = hcube_shuffle(q, db, grid, impl="push")
        pull = hcube_shuffle(q, db, grid, impl="pull")
        assert pull.stats.tuple_copies <= push.stats.tuple_copies
        assert pull.stats.blocks_fetched > 0

    def test_merge_marks_prebuilt(self):
        q, db = triangle_case(seed=6)
        grid = HypercubeGrid(q, {"a": 1, "b": 1, "c": 1}, 1)
        assert hcube_shuffle(q, db, grid, impl="merge").prebuilt_tries
        assert not hcube_shuffle(q, db, grid, impl="pull").prebuilt_tries

    def test_oom_raised(self):
        q, db = triangle_case(seed=7)
        grid = HypercubeGrid(q, {"a": 1, "b": 1, "c": 1}, 1)
        with pytest.raises(OutOfMemory):
            hcube_shuffle(q, db, grid, memory_tuples=10)

    def test_unknown_impl_rejected(self):
        q, db = triangle_case()
        grid = HypercubeGrid(q, {"a": 1, "b": 1, "c": 1}, 1)
        with pytest.raises(PlanError):
            hcube_shuffle(q, db, grid, impl="zap")

    def test_localized_query_names(self):
        q, _ = triangle_case()
        lq = localized_query(q)
        assert lq.relation_names() == ("R1@0", "R2@1", "R3@2")

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 1000),
           pa=st.integers(1, 3), pb=st.integers(1, 3), pc=st.integers(1, 3))
    def test_locality_invariant_property(self, seed, pa, pb, pc):
        q, db = triangle_case(seed=seed, n=60, dom=9)
        grid = HypercubeGrid(q, {"a": pa, "b": pb, "c": pc}, 2)
        res = hcube_shuffle(q, db, grid)
        total = sum(leapfrog_join(res.local_query, cdb).count
                    for cdb in res.cube_databases)
        assert total == leapfrog_join(q, db).count


class TestShuffleProperties:
    """Property tests: partition/shuffle invariants under random inputs."""

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), workers=st.integers(1, 6),
           num_keys=st.integers(1, 2))
    def test_hash_partition_disjoint_and_multiset_preserving(
            self, seed, workers, num_keys):
        rng = np.random.default_rng(seed)
        rel = Relation("R", ("a", "b"),
                       rng.integers(-25, 25, size=(80, 2)))
        parts, stats = hash_partition(rel, ("a", "b")[:num_keys], workers)
        # Disjoint and complete: every tuple lands on exactly one worker.
        assert sum(len(p) for p in parts) == len(rel)
        assert stats.tuple_copies == len(rel)
        merged = np.vstack([p.data for p in parts if len(p)]) \
            if len(rel) else np.empty((0, 2), dtype=np.int64)
        from repro.data.relation import lexsorted_rows
        assert np.array_equal(lexsorted_rows(merged),
                              lexsorted_rows(rel.data.copy()))

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 1000), pa=st.integers(1, 3),
           pb=st.integers(1, 3), pc=st.integers(1, 3))
    def test_hcube_tuple_replication_matches_dup_factor(
            self, seed, pa, pb, pc):
        """Each tuple reaches exactly the cubes its wildcards demand."""
        q, db = triangle_case(seed=seed, n=60, dom=9)
        shares = {"a": pa, "b": pb, "c": pc}
        grid = HypercubeGrid(q, shares, 2)
        res = hcube_shuffle(q, db, grid, impl="push")
        for ai, atom in enumerate(q.atoms):
            rel = db[atom.relation]
            name = local_atom_name(atom, ai)
            routed = sum(len(cdb[name]) for cdb in res.cube_databases)
            assert routed == len(rel) * dup_factor(atom.attributes, shares)
            for cdb in res.cube_databases:
                assert cdb[name].as_set() <= rel.as_set()

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 1000), pa=st.integers(1, 3),
           pb=st.integers(1, 3), pc=st.integers(1, 3),
           workers=st.integers(1, 5))
    def test_worker_local_evaluation_reproduces_global_count(
            self, seed, pa, pb, pc, workers):
        """Per-worker grid evaluation == global join (runtime path)."""
        q, db = triangle_case(seed=seed, n=60, dom=9)
        grid = HypercubeGrid(q, {"a": pa, "b": pb, "c": pc}, workers)
        res = hcube_shuffle(q, db, grid)
        tasks = build_worker_tasks(res, q.attributes)
        merged = merge_task_results(
            [execute_worker_task(t) for t in tasks], q.num_attributes)
        assert merged.count == leapfrog_join(q, db).count


class TestHashPartition:
    def test_partitions_disjoint_and_complete(self):
        rng = np.random.default_rng(0)
        rel = Relation("R", ("a", "b"), rng.integers(0, 50, size=(200, 2)))
        parts, stats = hash_partition(rel, ("a",), 4)
        assert sum(len(p) for p in parts) == len(rel)
        assert stats.tuple_copies == len(rel)

    def test_same_key_same_worker(self):
        rel = Relation("R", ("a", "b"),
                       [(7, 1), (7, 2), (7, 3), (9, 1)])
        parts, _ = hash_partition(rel, ("a",), 3)
        holders = [i for i, p in enumerate(parts)
                   if any(t[0] == 7 for t in p)]
        assert len(holders) == 1

    def test_empty_keys_rejected(self):
        rel = Relation("R", ("a",), [(1,)])
        from repro.errors import SchemaError
        with pytest.raises(SchemaError):
            hash_partition(rel, (), 2)


class TestCluster:
    def test_default_workers_env(self, monkeypatch):
        from repro.distributed import default_workers
        monkeypatch.setenv("REPRO_WORKERS", "12")
        assert default_workers() == 12
        monkeypatch.setenv("REPRO_WORKERS", "0")
        with pytest.raises(ValueError):
            default_workers()

    def test_with_workers(self):
        c = Cluster(num_workers=4)
        assert c.with_workers(9).num_workers == 9
        assert c.with_workers(9).params is c.params

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            Cluster(num_workers=0)

    def test_new_ledger_uses_params(self):
        params = CostModelParams(alpha_pull=123.0)
        c = Cluster(num_workers=2, params=params)
        assert c.new_ledger().params.alpha_pull == 123.0
