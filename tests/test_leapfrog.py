"""Tests for repro.wcoj.leapfrog — correctness against oracles."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import Database, Relation
from repro.errors import BudgetExceeded, PlanError
from repro.query import JoinQuery, PAPER_QUERIES, paper_query, parse_query
from repro.wcoj import (
    IntersectionCache,
    brute_force_join,
    build_tries,
    intersect_sorted,
    leapfrog_join,
    leapfrog_reference,
)


def db_for(query, edges):
    rels = []
    seen = set()
    for atom in query.atoms:
        if atom.relation in seen:
            continue
        seen.add(atom.relation)
        rels.append(Relation(atom.relation, ("x", "y"), edges))
    return Database(rels)


def random_edges(seed, n=50, dom=8):
    rng = np.random.default_rng(seed)
    return rng.integers(0, dom, size=(n, 2))


class TestIntersectSorted:
    def test_basic(self):
        a = np.array([1, 3, 5, 7], dtype=np.int64)
        b = np.array([3, 4, 5], dtype=np.int64)
        assert intersect_sorted([a, b]).tolist() == [3, 5]

    def test_empty_input(self):
        a = np.array([1, 2], dtype=np.int64)
        e = np.empty(0, dtype=np.int64)
        assert intersect_sorted([a, e]).shape == (0,)
        assert intersect_sorted([]).shape == (0,)

    def test_single_array(self):
        a = np.array([1, 2], dtype=np.int64)
        assert intersect_sorted([a]).tolist() == [1, 2]

    def test_three_way(self):
        arrays = [np.array(x, dtype=np.int64)
                  for x in ([1, 2, 3, 9], [2, 3, 9], [0, 2, 9])]
        assert intersect_sorted(arrays).tolist() == [2, 9]

    def test_work_accounting(self):
        from repro.wcoj import LeapfrogStats
        stats = LeapfrogStats()
        a = np.array([1, 2, 3], dtype=np.int64)
        b = np.array([2, 3], dtype=np.int64)
        intersect_sorted([a, b], stats)
        assert stats.intersection_work == 5

    @given(sets=st.lists(st.sets(st.integers(0, 30)), min_size=1, max_size=4))
    @settings(max_examples=80, deadline=None)
    def test_matches_python_set_intersection(self, sets):
        arrays = [np.array(sorted(s), dtype=np.int64) for s in sets]
        expected = sorted(set.intersection(*sets)) if sets else []
        assert intersect_sorted(arrays).tolist() == expected


class TestLeapfrogBasics:
    def test_triangle_counts_match_bruteforce(self):
        q = paper_query("Q1")
        db = db_for(q, random_edges(0))
        assert leapfrog_join(q, db).count == len(brute_force_join(q, db))

    def test_materialize_matches_bruteforce(self):
        q = paper_query("Q1")
        db = db_for(q, random_edges(1))
        res = leapfrog_join(q, db, materialize=True)
        assert res.relation.as_set() == brute_force_join(q, db)

    def test_reference_implementation_agrees(self):
        q = paper_query("Q1")
        db = db_for(q, random_edges(2))
        res = leapfrog_join(q, db, materialize=True)
        assert sorted(res.relation.as_set()) == leapfrog_reference(q, db)

    def test_empty_relation_empty_result(self):
        q = paper_query("Q1")
        db = db_for(q, random_edges(3))
        db.replace(Relation("R2", ("x", "y")))
        assert leapfrog_join(q, db).count == 0

    def test_custom_order_same_count(self):
        q = paper_query("Q1")
        db = db_for(q, random_edges(4))
        base = leapfrog_join(q, db).count
        import itertools
        for order in itertools.permutations(("a", "b", "c")):
            assert leapfrog_join(q, db, order).count == base

    def test_bad_order_rejected(self):
        q = paper_query("Q1")
        db = db_for(q, random_edges(5))
        with pytest.raises(PlanError):
            leapfrog_join(q, db, ("a", "b"))

    def test_ternary_atom(self):
        q = parse_query("R(a,b,c), S(b,c,d)")
        rng = np.random.default_rng(6)
        db = Database([
            Relation("R", ("x", "y", "z"), rng.integers(0, 4, size=(30, 3))),
            Relation("S", ("x", "y", "z"), rng.integers(0, 4, size=(30, 3))),
        ])
        assert leapfrog_join(q, db).count == len(brute_force_join(q, db))

    def test_emit_callback_receives_all(self):
        q = paper_query("Q1")
        db = db_for(q, random_edges(7))
        collected = []

        def emit(prefix, vals):
            collected.extend(tuple(prefix) + (int(v),) for v in vals)

        res = leapfrog_join(q, db, emit=emit)
        assert len(collected) == res.count
        assert set(collected) == brute_force_join(q, db)


class TestLeapfrogInstrumentation:
    def test_level_tuples_lengths(self):
        q = paper_query("Q4")
        db = db_for(q, random_edges(8, n=80))
        res = leapfrog_join(q, db)
        assert len(res.stats.level_tuples) == 5
        assert len(res.stats.level_work) == 5
        assert res.stats.level_tuples[-1] == res.count

    def test_level_fractions_sum_to_one(self):
        q = paper_query("Q1")
        db = db_for(q, random_edges(9))
        res = leapfrog_join(q, db)
        if res.stats.total_tuples:
            assert abs(sum(res.stats.level_fractions()) - 1.0) < 1e-12

    def test_budget_exceeded(self):
        q = paper_query("Q4")
        db = db_for(q, random_edges(10, n=200, dom=10))
        with pytest.raises(BudgetExceeded):
            leapfrog_join(q, db, budget=5)

    def test_fixed_attribute_restricts(self):
        q = paper_query("Q1")
        db = db_for(q, random_edges(11))
        full = leapfrog_join(q, db, materialize=True)
        vals = sorted({t[0] for t in full.relation.as_set()})
        total = 0
        for v in vals:
            total += leapfrog_join(q, db, fixed={"a": v}).count
        assert total == full.count

    def test_fixed_unknown_attr_rejected(self):
        q = paper_query("Q1")
        db = db_for(q, random_edges(12))
        with pytest.raises(PlanError):
            leapfrog_join(q, db, fixed={"zz": 1})

    def test_prebuilt_tries_reused(self):
        q = paper_query("Q1")
        db = db_for(q, random_edges(13))
        order = ("a", "b", "c")
        tries = build_tries(q, db, order)
        r1 = leapfrog_join(q, db, order, tries=tries)
        r2 = leapfrog_join(q, db, order)
        assert r1.count == r2.count


class TestLeapfrogWithCache:
    def test_cache_does_not_change_result(self):
        q = paper_query("Q4")
        db = db_for(q, random_edges(14, n=120))
        plain = leapfrog_join(q, db)
        cache = IntersectionCache(capacity_values=100_000)
        cached = leapfrog_join(q, db, cache=cache)
        assert cached.count == plain.count
        assert cached.stats.cache_hits + cached.stats.cache_misses > 0

    def test_cache_hits_reduce_work(self):
        q = paper_query("Q4")
        db = db_for(q, random_edges(15, n=150))
        plain = leapfrog_join(q, db)
        cache = IntersectionCache(capacity_values=1_000_000)
        cached = leapfrog_join(q, db, cache=cache)
        if cached.stats.cache_hits:
            assert (cached.stats.intersection_work
                    < plain.stats.intersection_work)

    def test_zero_capacity_cache_is_neutral(self):
        q = paper_query("Q1")
        db = db_for(q, random_edges(16))
        cache = IntersectionCache(capacity_values=0)
        res = leapfrog_join(q, db, cache=cache)
        assert res.count == leapfrog_join(q, db).count
        assert cache.hits == 0


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000),
       query_name=st.sampled_from(["Q1", "Q7", "Q8", "Q9", "Q11"]))
def test_leapfrog_equals_bruteforce_property(seed, query_name):
    """Leapfrog agrees with the Cartesian oracle on random small inputs."""
    q = PAPER_QUERIES[query_name]
    rng = np.random.default_rng(seed)
    db = db_for(q, rng.integers(0, 6, size=(25, 2)))
    res = leapfrog_join(q, db, materialize=True)
    assert res.relation.as_set() == brute_force_join(q, db)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_leapfrog_order_invariance_property(seed):
    """The result count does not depend on the attribute order."""
    import itertools
    q = paper_query("Q1")
    rng = np.random.default_rng(seed)
    db = db_for(q, rng.integers(0, 7, size=(40, 2)))
    counts = {leapfrog_join(q, db, order).count
              for order in itertools.permutations(("a", "b", "c"))}
    assert len(counts) == 1
