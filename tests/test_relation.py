"""Unit tests for repro.data.relation."""

import numpy as np
import pytest

from repro.data import Relation, lexsorted_rows, row_group_ids
from repro.errors import SchemaError


def rel(name, attrs, rows):
    return Relation.from_tuples(name, attrs, rows)


class TestConstruction:
    def test_from_tuples_dedups(self):
        r = rel("R", ("a", "b"), [(1, 2), (1, 2), (3, 4)])
        assert len(r) == 2
        assert (1, 2) in r and (3, 4) in r

    def test_empty_relation(self):
        r = Relation("R", ("a", "b"))
        assert len(r) == 0
        assert not r
        assert list(r) == []

    def test_arity_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            Relation("R", ("a", "b"), [(1, 2, 3)])

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError):
            Relation("R", ("a", "a"), [(1, 2)])

    def test_no_attributes_rejected(self):
        with pytest.raises(SchemaError):
            Relation("R", ())

    def test_unary_from_1d(self):
        r = Relation("R", ("a",), np.array([3, 1, 2, 1]))
        assert len(r) == 3
        assert r.arity == 1

    def test_1d_for_binary_rejected(self):
        with pytest.raises(SchemaError):
            Relation("R", ("a", "b"), np.array([1, 2, 3]))

    def test_data_is_readonly(self):
        r = rel("R", ("a",), [(1,), (2,)])
        with pytest.raises(ValueError):
            r.data[0, 0] = 9

    def test_from_edges(self):
        r = Relation.from_edges("E", np.array([[1, 2], [2, 3]]))
        assert r.attributes == ("src", "dst")
        assert len(r) == 2

    def test_from_edges_wrong_attrs(self):
        with pytest.raises(SchemaError):
            Relation.from_edges("E", np.array([[1, 2]]), attributes=("a",))


class TestProtocol:
    def test_contains(self):
        r = rel("R", ("a", "b"), [(1, 2), (3, 4)])
        assert (1, 2) in r
        assert (2, 1) not in r
        assert (1,) not in r

    def test_iteration_yields_python_tuples(self):
        r = rel("R", ("a", "b"), [(1, 2)])
        (t,) = list(r)
        assert t == (1, 2)
        assert all(isinstance(v, int) for v in t)

    def test_set_equality_ignores_row_order(self):
        r1 = rel("R", ("a", "b"), [(1, 2), (3, 4)])
        r2 = rel("S", ("a", "b"), [(3, 4), (1, 2)])
        assert r1 == r2

    def test_equality_needs_same_schema(self):
        r1 = rel("R", ("a", "b"), [(1, 2)])
        r2 = rel("R", ("b", "a"), [(1, 2)])
        assert r1 != r2

    def test_not_hashable(self):
        r = rel("R", ("a",), [(1,)])
        with pytest.raises(TypeError):
            hash(r)

    def test_nbytes_and_values(self):
        r = rel("R", ("a", "b"), [(1, 2), (3, 4)])
        assert r.num_values == 4
        assert r.nbytes == 4 * 8


class TestColumns:
    def test_column(self):
        r = rel("R", ("a", "b"), [(1, 2), (3, 4), (3, 5)])
        assert sorted(r.column("a").tolist()) == [1, 3, 3]

    def test_distinct_values_sorted(self):
        r = rel("R", ("a", "b"), [(3, 1), (1, 1), (3, 2)])
        assert r.distinct_values("a").tolist() == [1, 3]

    def test_unknown_attr(self):
        r = rel("R", ("a",), [(1,)])
        with pytest.raises(SchemaError):
            r.column("z")


class TestAlgebra:
    def test_project_dedups(self):
        r = rel("R", ("a", "b"), [(1, 2), (1, 3)])
        p = r.project(("a",))
        assert p.attributes == ("a",)
        assert len(p) == 1

    def test_project_reorders(self):
        r = rel("R", ("a", "b"), [(1, 2)])
        p = r.project(("b", "a"))
        assert (2, 1) in p

    def test_rename(self):
        r = rel("R", ("a", "b"), [(1, 2)])
        s = r.rename({"a": "x"})
        assert s.attributes == ("x", "b")
        assert (1, 2) in s

    def test_reorder_requires_permutation(self):
        r = rel("R", ("a", "b"), [(1, 2)])
        with pytest.raises(SchemaError):
            r.reorder(("a",))

    def test_select_equals(self):
        r = rel("R", ("a", "b"), [(1, 2), (1, 3), (2, 4)])
        s = r.select_equals("a", 1)
        assert len(s) == 2
        assert all(t[0] == 1 for t in s)

    def test_select_in(self):
        r = rel("R", ("a", "b"), [(1, 2), (2, 3), (3, 4)])
        s = r.select_in("a", np.array([1, 3]))
        assert len(s) == 2

    def test_semijoin_basic(self):
        r = rel("R", ("a", "b"), [(1, 2), (2, 3), (4, 5)])
        s = rel("S", ("b", "c"), [(2, 9), (5, 9)])
        out = r.semijoin(s)
        assert out.as_set() == {(1, 2), (4, 5)}

    def test_semijoin_no_common_attrs_keeps_all(self):
        r = rel("R", ("a",), [(1,), (2,)])
        s = rel("S", ("b",), [(9,)])
        assert len(r.semijoin(s)) == 2

    def test_semijoin_no_common_attrs_empty_other(self):
        r = rel("R", ("a",), [(1,)])
        s = Relation("S", ("b",))
        assert len(r.semijoin(s)) == 0

    def test_natural_join_basic(self):
        r = rel("R", ("a", "b"), [(1, 2), (2, 3)])
        s = rel("S", ("b", "c"), [(2, 5), (2, 6), (3, 7)])
        out = r.natural_join(s)
        assert out.attributes == ("a", "b", "c")
        assert out.as_set() == {(1, 2, 5), (1, 2, 6), (2, 3, 7)}

    def test_natural_join_empty_side(self):
        r = rel("R", ("a", "b"), [(1, 2)])
        s = Relation("S", ("b", "c"))
        assert len(r.natural_join(s)) == 0

    def test_natural_join_cartesian(self):
        r = rel("R", ("a",), [(1,), (2,)])
        s = rel("S", ("b",), [(7,), (8,)])
        out = r.natural_join(s)
        assert out.as_set() == {(1, 7), (1, 8), (2, 7), (2, 8)}

    def test_natural_join_same_schema_is_intersection(self):
        r = rel("R", ("a", "b"), [(1, 2), (3, 4)])
        s = rel("S", ("a", "b"), [(1, 2), (5, 6)])
        out = r.natural_join(s)
        assert out.as_set() == {(1, 2)}

    def test_natural_join_matches_bruteforce(self):
        rng = np.random.default_rng(0)
        r = Relation("R", ("a", "b"), rng.integers(0, 6, size=(40, 2)))
        s = Relation("S", ("b", "c"), rng.integers(0, 6, size=(40, 2)))
        expected = {
            (ta, tb, tc)
            for (ta, tb) in r.as_set()
            for (tb2, tc) in s.as_set()
            if tb == tb2
        }
        assert r.natural_join(s).as_set() == expected

    def test_union(self):
        r = rel("R", ("a",), [(1,)])
        s = rel("S", ("a",), [(2,), (1,)])
        assert r.union(s).as_set() == {(1,), (2,)}

    def test_union_schema_mismatch(self):
        r = rel("R", ("a",), [(1,)])
        s = rel("S", ("b",), [(2,)])
        with pytest.raises(SchemaError):
            r.union(s)


class TestHelpers:
    def test_lexsorted_rows(self):
        arr = np.array([[2, 1], [1, 9], [1, 2]], dtype=np.int64)
        out = lexsorted_rows(arr)
        assert out.tolist() == [[1, 2], [1, 9], [2, 1]]

    def test_row_group_ids_matching(self):
        a = np.array([[1, 2], [3, 4]], dtype=np.int64)
        b = np.array([[3, 4], [5, 6]], dtype=np.int64)
        ia, ib = row_group_ids(a, b)
        assert ia[1] == ib[0]
        assert ia[0] not in (ib[0], ib[1])

    def test_row_group_ids_empty(self):
        a = np.empty((0, 2), dtype=np.int64)
        (ia,) = row_group_ids(a)
        assert ia.shape == (0,)
