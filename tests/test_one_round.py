"""Focused tests for engines.one_round (shared HCube + Leapfrog path)."""

import numpy as np
import pytest

from repro.data import Database, Relation
from repro.distributed import Cluster, CostModelParams
from repro.engines import one_round_execute
from repro.errors import BudgetExceeded, OutOfMemory
from repro.query import paper_query
from repro.wcoj import IntersectionCache, leapfrog_join
from repro.workloads import graph_database_for


def tri_case(seed=0, n=150, dom=18):
    q = paper_query("Q1")
    rng = np.random.default_rng(seed)
    return q, graph_database_for(q, rng.integers(0, dom, size=(n, 2)))


class TestOneRoundExecute:
    def test_count_matches_sequential(self):
        q, db = tri_case()
        cluster = Cluster(num_workers=4)
        ledger = cluster.new_ledger()
        out = one_round_execute(q, db, cluster, q.attributes, ledger)
        assert out.count == leapfrog_join(q, db).count

    def test_level_tuples_sum_over_cubes(self):
        """Per-level counts aggregated over cubes match a global run at
        the deepest level (outputs are partitioned exactly)."""
        q, db = tri_case(seed=1)
        cluster = Cluster(num_workers=4)
        ledger = cluster.new_ledger()
        out = one_round_execute(q, db, cluster, q.attributes, ledger)
        direct = leapfrog_join(q, db)
        assert out.level_tuples[-1] == direct.stats.level_tuples[-1]

    def test_ledger_phases_charged(self):
        q, db = tri_case(seed=2)
        cluster = Cluster(num_workers=4)
        ledger = cluster.new_ledger()
        one_round_execute(q, db, cluster, q.attributes, ledger,
                          impl="push")
        assert ledger.comm_seconds > 0
        assert ledger.comp_seconds > 0
        assert ledger.tuples_shuffled > 0

    def test_merge_charges_less_comm_than_push(self):
        q, db = tri_case(seed=3)
        cluster = Cluster(num_workers=4)
        ledgers = {}
        for impl in ("push", "merge"):
            ledger = cluster.new_ledger()
            one_round_execute(q, db, cluster, q.attributes, ledger,
                              impl=impl)
            ledgers[impl] = ledger
        assert ledgers["merge"].comm_seconds < ledgers["push"].comm_seconds

    def test_work_budget_enforced(self):
        q, db = tri_case(seed=4, n=400, dom=25)
        cluster = Cluster(num_workers=2)
        with pytest.raises(BudgetExceeded):
            one_round_execute(q, db, cluster, q.attributes,
                              cluster.new_ledger(), work_budget=5)

    def test_memory_budget_enforced_with_push_footprint(self):
        """Push's 3x footprint trips OOM where merge fits."""
        q, db = tri_case(seed=5, n=300, dom=25)
        # Find the push max load first.
        probe = Cluster(num_workers=2)
        ledger = probe.new_ledger()
        out = one_round_execute(q, db, probe, q.attributes, ledger,
                                impl="push")
        limit = out.max_worker_tuples * 2  # between 1x and 3x footprint
        tight = Cluster(num_workers=2, memory_tuples_per_worker=limit)
        with pytest.raises(OutOfMemory):
            one_round_execute(q, db, tight, q.attributes,
                              tight.new_ledger(), impl="push")
        merged = one_round_execute(q, db, tight, q.attributes,
                                   tight.new_ledger(), impl="merge")
        assert merged.count == out.count

    def test_cache_capacity_used(self):
        q, db = tri_case(seed=6)
        cluster = Cluster(num_workers=2)
        asked = []

        def capacity(load):
            asked.append(load)
            return 100_000

        out = one_round_execute(q, db, cluster, q.attributes,
                                cluster.new_ledger(),
                                cache_capacity=capacity)
        assert asked
        assert out.cache_hits + out.cache_misses > 0

    def test_worker_work_reported(self):
        q, db = tri_case(seed=7)
        cluster = Cluster(num_workers=3)
        out = one_round_execute(q, db, cluster, q.attributes,
                                cluster.new_ledger())
        assert set(out.worker_work) == {0, 1, 2}
        assert sum(out.worker_work.values()) == out.leapfrog_work
