"""Unit tests for repro.data.database and repro.data.datasets."""

import numpy as np
import pytest

from repro.data import (
    DATASETS,
    Database,
    Relation,
    dataset_names,
    default_scale,
    generate_erdos_renyi_edges,
    generate_power_law_edges,
    load_dataset,
    load_graph_relation,
)
from repro.errors import SchemaError


def rel(name, attrs=("a", "b"), rows=((1, 2),)):
    return Relation.from_tuples(name, attrs, rows)


class TestDatabase:
    def test_add_and_get(self):
        db = Database([rel("R")])
        assert db["R"].name == "R"
        assert "R" in db
        assert len(db) == 1

    def test_duplicate_name_rejected(self):
        db = Database([rel("R")])
        with pytest.raises(SchemaError):
            db.add(rel("R"))

    def test_replace_overwrites(self):
        db = Database([rel("R")])
        db.replace(rel("R", rows=[(9, 9)]))
        assert (9, 9) in db["R"]

    def test_remove(self):
        db = Database([rel("R")])
        db.remove("R")
        assert "R" not in db
        with pytest.raises(SchemaError):
            db.remove("R")

    def test_missing_lookup(self):
        db = Database()
        with pytest.raises(SchemaError):
            db["nope"]

    def test_totals(self):
        db = Database([rel("R", rows=[(1, 2), (3, 4)]), rel("S", rows=[(1, 1)])])
        assert db.total_tuples == 3
        assert db.total_values == 6
        assert db.nbytes == 6 * 8

    def test_subset(self):
        db = Database([rel("R"), rel("S")])
        sub = db.subset(["S"])
        assert sub.names == ("S",)

    def test_renamed_copy(self):
        db = Database([rel("R")])
        out = db.renamed_copy({"R": "R2"})
        assert "R2" in out and "R" not in out
        assert "R" in db  # original untouched

    def test_iteration_order_is_insertion(self):
        db = Database([rel("B"), rel("A")])
        assert db.names == ("B", "A")


class TestFingerprint:
    def test_stable_across_equal_content(self):
        a = Database([rel("R", rows=[(1, 2), (3, 4)]), rel("S")])
        b = Database([rel("R", rows=[(1, 2), (3, 4)]), rel("S")])
        assert a.fingerprint() == b.fingerprint()

    def test_insertion_order_irrelevant(self):
        a = Database([rel("R"), rel("S")])
        b = Database([rel("S"), rel("R")])
        assert a.fingerprint() == b.fingerprint()

    def test_memoized(self):
        db = Database([rel("R")])
        assert db.fingerprint() is db.fingerprint()

    def test_data_changes_fingerprint(self):
        a = Database([rel("R", rows=[(1, 2)])])
        b = Database([rel("R", rows=[(1, 3)])])
        assert a.fingerprint() != b.fingerprint()

    def test_name_changes_fingerprint(self):
        a = Database([rel("R")])
        b = Database([rel("S")])
        assert a.fingerprint() != b.fingerprint()

    def test_attributes_change_fingerprint(self):
        a = Database([rel("R", attrs=("a", "b"))])
        b = Database([rel("R", attrs=("x", "y"))])
        assert a.fingerprint() != b.fingerprint()

    def test_add_invalidates(self):
        db = Database([rel("R")])
        before = db.fingerprint()
        db.add(rel("S"))
        assert db.fingerprint() != before

    def test_replace_invalidates(self):
        db = Database([rel("R")])
        before = db.fingerprint()
        db.replace(rel("R", rows=[(9, 9)]))
        assert db.fingerprint() != before

    def test_remove_invalidates(self):
        db = Database([rel("R"), rel("S")])
        before = db.fingerprint()
        db.remove("S")
        assert db.fingerprint() != before
        assert db.fingerprint() == Database([rel("R")]).fingerprint()

    def test_attribute_boundaries_unambiguous(self):
        # ("ab", "c") must not collide with ("a", "bc").
        a = Database([Relation.from_tuples("R", ("ab", "c"), [(1, 2)])])
        b = Database([Relation.from_tuples("R", ("a", "bc"), [(1, 2)])])
        assert a.fingerprint() != b.fingerprint()

    def test_empty_database(self):
        assert Database().fingerprint() == Database().fingerprint()
        assert Database().fingerprint() != Database([rel("R")]).fingerprint()


class TestGenerators:
    def test_power_law_shape_and_dedup(self):
        edges = generate_power_law_edges(300, seed=1)
        assert edges.shape[1] == 2
        assert edges.dtype == np.int64
        # no self-loops
        assert (edges[:, 0] != edges[:, 1]).all()
        # no duplicates
        assert np.unique(edges, axis=0).shape[0] == edges.shape[0]

    def test_power_law_deterministic(self):
        a = generate_power_law_edges(200, seed=7)
        b = generate_power_law_edges(200, seed=7)
        assert np.array_equal(a, b)

    def test_power_law_seed_changes_output(self):
        a = generate_power_law_edges(200, seed=7)
        b = generate_power_law_edges(200, seed=8)
        assert not np.array_equal(a, b)

    def test_power_law_is_heavy_tailed(self):
        edges = generate_power_law_edges(2000, seed=3)
        degrees = np.bincount(edges[:, 0])
        # hubs exist: max degree far above average
        assert degrees.max() > 5 * degrees[degrees > 0].mean()

    def test_power_law_zero_edges(self):
        assert generate_power_law_edges(0).shape == (0, 2)

    def test_erdos_renyi_basic(self):
        edges = generate_erdos_renyi_edges(150, seed=2)
        assert edges.shape[1] == 2
        assert (edges[:, 0] != edges[:, 1]).all()

    def test_saturation_on_tiny_node_set(self):
        # 4 nodes -> at most 12 directed non-loop edges; must not spin.
        edges = generate_power_law_edges(500, num_nodes=4, seed=0)
        assert edges.shape[0] <= 12


class TestDatasetRegistry:
    def test_six_datasets_in_paper_order(self):
        assert dataset_names() == ("wb", "as", "wt", "lj", "en", "ok")

    def test_size_ordering_preserved(self):
        sizes = [DATASETS[k].paper_edges for k in dataset_names()]
        assert sizes == sorted(sizes)

    def test_load_dataset_scales(self):
        small = load_dataset("wb", scale=2e-5)
        large = load_dataset("wb", scale=6e-5)
        assert small.shape[0] < large.shape[0]

    def test_load_dataset_unknown(self):
        with pytest.raises(KeyError):
            load_dataset("zz")

    def test_load_accepts_trailing_underscore(self):
        # "as" is a python keyword, so call sites may use "as_".
        edges = load_dataset("as_", scale=2e-5)
        assert edges.shape[0] > 0

    def test_load_graph_relation(self):
        r = load_graph_relation("wb", scale=2e-5)
        assert r.attributes == ("src", "dst")
        assert len(r) > 0

    def test_default_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        assert default_scale() == 0.5
        monkeypatch.setenv("REPRO_SCALE", "-1")
        with pytest.raises(ValueError):
            default_scale()

    def test_relative_order_of_scaled_analogues(self):
        wb = load_dataset("wb", scale=3e-5).shape[0]
        ok = load_dataset("ok", scale=3e-5).shape[0]
        assert wb < ok
