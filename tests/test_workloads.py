"""Tests for repro.workloads and repro.core.calibration."""

import numpy as np
import pytest

from repro.core import calibrate, measure_alpha, measure_beta
from repro.distributed import CostModelParams
from repro.query import paper_query
from repro.workloads import (
    DEFAULT_BUDGETS,
    TestCase,
    default_engines,
    graph_database_for,
    make_testcase,
    paper_grid,
)


class TestWorkloads:
    def test_one_relation_per_atom(self):
        q, db = make_testcase("wb", "Q2", scale=2e-5)
        assert set(db.names) == {a.relation for a in q.atoms}

    def test_copies_share_data(self):
        _, db = make_testcase("wb", "Q1", scale=2e-5)
        rels = list(db)
        assert rels[0].data is rels[1].data

    def test_non_binary_atom_rejected(self):
        from repro.query import parse_query
        q = parse_query("R(a,b,c)")
        with pytest.raises(ValueError):
            graph_database_for(q, np.array([[1, 2]]))

    def test_duplicate_relation_reference_ok(self):
        from repro.query import JoinQuery
        q = JoinQuery([("E", ("a", "b")), ("E", ("b", "c"))])
        db = graph_database_for(q, np.array([[1, 2], [2, 3]]))
        assert len(db) == 1

    def test_paper_grid_default_size(self):
        grid = paper_grid()
        assert len(grid) == 6 * 6  # six datasets x Q1-Q6

    def test_paper_grid_filters(self):
        grid = paper_grid(datasets=["lj"], queries=["Q5", "Q6"])
        assert [t.key for t in grid] == ["(LJ,Q5)", "(LJ,Q6)"]

    def test_testcase_load(self):
        tc = TestCase("wb", "Q1", scale=2e-5)
        q, db = tc.load()
        assert q.name == "Q1"
        assert len(db) == 3

    def test_default_engines_lineup(self):
        engines = default_engines()
        names = [e.name for e in engines]
        assert names == ["SparkSQL", "BigJoin", "HCubeJ", "HCubeJ+Cache",
                         "ADJ"]

    def test_default_budgets_override(self):
        engines = default_engines(budgets={"sparksql_tuples": 5})
        assert engines[0].budget_tuples == 5
        assert DEFAULT_BUDGETS["sparksql_tuples"] != 5


class TestCalibration:
    def test_measure_alpha_positive(self):
        assert measure_alpha(num_tuples=5_000) > 0

    def test_measure_beta_positive(self):
        assert measure_beta(num_values=2_000, rounds=3) > 0

    def test_calibrate_preserves_ratios(self):
        base = CostModelParams()
        cal = calibrate(base)
        assert cal.alpha_pull / cal.alpha_push == pytest.approx(
            base.alpha_pull / base.alpha_push, rel=1e-6)
        assert cal.alpha_merge / cal.alpha_pull == pytest.approx(
            base.alpha_merge / base.alpha_pull, rel=1e-6)
        assert cal.beta_work > 0
