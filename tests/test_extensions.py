"""Tests for the extension modules: exhaustive search, SPJ, skew, CLI."""

import numpy as np
import pytest

from repro.core import CardinalityEstimator, exhaustive_plan, optimize_plan
from repro.data import Database, Relation
from repro.distributed import (
    Cluster,
    SkewReport,
    skew_report,
    straggler_slowdown,
)
from repro.errors import SchemaError
from repro.query import (
    Predicate,
    SPJQuery,
    evaluate_spj,
    paper_query,
    parse_query,
    push_down_selections,
)
from repro.wcoj import leapfrog_join
from repro.workloads import graph_database_for, make_testcase


class TestExhaustivePlan:
    @pytest.fixture(scope="class")
    def q5_case(self):
        return make_testcase("lj", "Q5", scale=8e-6)

    def test_explores_full_space(self, q5_case):
        q, db = q5_case
        cluster = Cluster(num_workers=4)
        est = CardinalityEstimator(db, num_samples=30, seed=0)
        report = exhaustive_plan(q, db, cluster, estimator=est)
        tree = report.plan.hypertree
        multi = sum(1 for b in tree.bags if not b.is_single_atom)
        traversals = len(list(tree.traversal_orders()))
        assert report.explored_configurations == traversals * 2 ** multi

    def test_greedy_not_better_than_exhaustive(self, q5_case):
        """Algorithm 2 can at best match the oracle (same cost model)."""
        q, db = q5_case
        cluster = Cluster(num_workers=4)
        est = CardinalityEstimator(db, num_samples=30, seed=0)
        greedy = optimize_plan(q, db, cluster, estimator=est)
        est2 = CardinalityEstimator(db, num_samples=30, seed=0)
        oracle = exhaustive_plan(q, db, cluster, estimator=est2)
        assert oracle.plan.estimated_cost <= \
            greedy.plan.estimated_cost * 1.0001

    def test_exhaustive_plan_valid_and_executable(self, q5_case):
        q, db = q5_case
        cluster = Cluster(num_workers=4)
        est = CardinalityEstimator(db, num_samples=30, seed=0)
        plan = exhaustive_plan(q, db, cluster, estimator=est).plan
        from repro.engines import ADJ
        result = ADJ(num_samples=10).run_with_plan(plan, db, cluster)
        assert result.count == leapfrog_join(q, db).count


class TestSPJ:
    @pytest.fixture()
    def tri(self):
        q = paper_query("Q1")
        rng = np.random.default_rng(0)
        db = graph_database_for(q, rng.integers(0, 20, size=(200, 2)))
        return q, db

    def test_predicate_ops(self):
        col = np.array([1, 5, 9], dtype=np.int64)
        assert Predicate("a", "<", 5).mask(col).tolist() == [True, False,
                                                             False]
        assert Predicate("a", "=", 5).mask(col).tolist() == [False, True,
                                                             False]
        assert Predicate("a", ">=", 5).mask(col).tolist() == [False, True,
                                                              True]

    def test_bad_operator_rejected(self):
        with pytest.raises(SchemaError):
            Predicate("a", "~", 3)

    def test_unknown_selection_attr_rejected(self, tri):
        q, _ = tri
        with pytest.raises(SchemaError):
            SPJQuery(q, selections=(Predicate("zz", "=", 1),))

    def test_unknown_projection_attr_rejected(self, tri):
        q, _ = tri
        with pytest.raises(SchemaError):
            SPJQuery(q, projection=("a", "zz"))

    def test_selection_matches_posthoc_filter(self, tri):
        q, db = tri
        spj = SPJQuery(q, selections=(Predicate("a", "<", 10),))
        out = evaluate_spj(spj, db)
        full = leapfrog_join(q, db, materialize=True).relation
        expected = {t for t in full.as_set() if t[0] < 10}
        assert out.as_set() == expected

    def test_multiple_selections(self, tri):
        q, db = tri
        spj = SPJQuery(q, selections=(Predicate("a", "<", 10),
                                      Predicate("b", ">=", 5)))
        out = evaluate_spj(spj, db)
        full = leapfrog_join(q, db, materialize=True).relation
        expected = {t for t in full.as_set() if t[0] < 10 and t[1] >= 5}
        assert out.as_set() == expected

    def test_projection_dedups(self, tri):
        q, db = tri
        spj = SPJQuery(q, projection=("a",))
        out = evaluate_spj(spj, db)
        full = leapfrog_join(q, db, materialize=True).relation
        assert out.as_set() == {(t[0],) for t in full.as_set()}

    def test_pushdown_shrinks_database(self, tri):
        q, db = tri
        spj = SPJQuery(q, selections=(Predicate("a", "<", 5),))
        reduced, reduced_q = push_down_selections(spj, db)
        # R1(a,b) and R3(a,c) contain 'a' and must shrink; R2 must not.
        assert len(reduced["R1@0"]) < len(db["R1"])
        assert len(reduced["R2@1"]) == len(db["R2"])
        assert reduced_q.num_atoms == q.num_atoms

    def test_engine_backed_evaluation(self, tri):
        from repro.engines import HCubeJ
        q, db = tri
        spj = SPJQuery(q, selections=(Predicate("a", "<", 12),),
                       projection=("a", "b"))
        out = evaluate_spj(spj, db, engine=HCubeJ(),
                           cluster=Cluster(num_workers=3))
        full = leapfrog_join(q, db, materialize=True).relation
        expected = {(t[0], t[1]) for t in full.as_set() if t[0] < 12}
        assert out.as_set() == expected

    def test_engine_without_cluster_rejected(self, tri):
        from repro.engines import HCubeJ
        q, db = tri
        with pytest.raises(SchemaError):
            evaluate_spj(SPJQuery(q), db, engine=HCubeJ())

    def test_empty_selection_result(self, tri):
        q, db = tri
        spj = SPJQuery(q, selections=(Predicate("a", ">", 10 ** 9),))
        assert len(evaluate_spj(spj, db)) == 0


class TestSkew:
    def test_balanced_loads(self):
        r = skew_report([10.0, 10.0, 10.0, 10.0])
        assert r.imbalance == pytest.approx(1.0)
        assert r.cv == pytest.approx(0.0)
        assert r.gini == pytest.approx(0.0)

    def test_single_straggler(self):
        r = skew_report({0: 100.0, 1: 0.0, 2: 0.0, 3: 0.0})
        assert r.imbalance == pytest.approx(4.0)
        assert r.gini > 0.7

    def test_straggler_slowdown(self):
        assert straggler_slowdown([10, 10, 10, 10]) == pytest.approx(1.0)
        assert straggler_slowdown([40, 0, 0, 0]) == pytest.approx(4.0)

    def test_zero_loads(self):
        assert straggler_slowdown([0.0, 0.0]) == 1.0
        assert skew_report([0.0, 0.0]).gini == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            skew_report([])

    def test_mapping_and_sequence_agree(self):
        assert skew_report({0: 3.0, 1: 7.0}) == skew_report([3.0, 7.0])


class TestCLI:
    def test_datasets_command(self, capsys):
        from repro.cli import main
        assert main(["datasets", "--scale", "2e-5"]) == 0
        out = capsys.readouterr().out
        assert "wb" in out and "ok" in out

    def test_queries_command(self, capsys):
        from repro.cli import main
        assert main(["queries"]) == 0
        assert "Q11" in capsys.readouterr().out

    def test_run_command_single_engine(self, capsys):
        from repro.cli import main
        code = main(["run", "wb", "Q1", "--engine", "hcubej",
                     "--scale", "1e-5", "--workers", "2"])
        assert code == 0
        assert "HCubeJ" in capsys.readouterr().out

    def test_run_command_all_engines(self, capsys):
        from repro.cli import main
        code = main(["run", "wb", "Q1", "--engine", "all",
                     "--scale", "1e-5", "--workers", "2",
                     "--samples", "10"])
        assert code == 0
        out = capsys.readouterr().out
        for name in ("SparkSQL", "BigJoin", "HCubeJ", "ADJ", "Yannakakis"):
            assert name in out

    def test_plan_command(self, capsys):
        from repro.cli import main
        code = main(["plan", "lj", "Q5", "--scale", "8e-6",
                     "--samples", "20", "--workers", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "hypertree" in out and "rewritten" in out

    def test_estimate_command_with_check(self, capsys):
        from repro.cli import main
        code = main(["estimate", "wb", "Q1", "--scale", "1e-5",
                     "--samples", "50", "--check"])
        assert code == 0
        out = capsys.readouterr().out
        assert "estimate" in out and "true" in out

    def test_unknown_query_rejected(self):
        from repro.cli import main
        with pytest.raises(SystemExit):
            main(["run", "wb", "Q99"])
