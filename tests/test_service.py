"""Tests for the shared warm-cluster architecture (PR 10).

Covers :class:`repro.api.context.ClusterContext` (refcounted lifecycle,
per-query executor views), the session close()-vs-run() race fix, the
multi-tenant :class:`repro.service.QueryService` (admission, budget
policies, plan/result caches) and the QUERY/CANCEL/RESULT wire front
door behind ``repro serve-sql``.
"""

import glob
import threading
import time

import numpy as np
import pytest

from repro import ClusterContext, JoinSession, QueryService, RunConfig
from repro.data import Database, Relation
from repro.distributed.metrics import CostBreakdown
from repro.engines import registry
from repro.engines.base import EngineOptions, EngineResult
from repro.errors import AdmissionError, ConfigError, NetError
from repro.query import paper_query
from repro.runtime.executor import ExecutorView
from repro.service import PlanCache, ResultCache, result_key
from repro.service.service import (default_max_concurrent,
                                   default_result_cache_bytes)
from repro.wcoj import leapfrog_join


def graph_case(query_name, seed=0, n=200, dom=40):
    query = paper_query(query_name)
    rng = np.random.default_rng(seed)
    edges = rng.integers(0, dom, size=(n, 2))
    rels = {}
    for a in query.atoms:
        rels.setdefault(a.relation,
                        Relation(a.relation, ("x", "y"), edges))
    return query, Database(rels.values())


def threads_config(transport="pickle", workers=2):
    return RunConfig().replace(backend="threads", workers=workers,
                               transport=transport, samples=20)


@pytest.fixture
def slow_engine(monkeypatch):
    """A temporarily registered engine that sleeps, then counts."""
    monkeypatch.setattr(registry, "_REGISTRY", dict(registry._REGISTRY))

    @registry.register("slow", summary="sleepy test engine")
    class Slow:
        name = "Slow"
        options_map = {}
        started = threading.Event()
        release = threading.Event()

        def run(self, query, db, cluster, executor=None):
            Slow.started.set()
            Slow.release.wait(timeout=5.0)
            return EngineResult(engine=self.name, query=query.name or "?",
                                count=leapfrog_join(query, db).count,
                                breakdown=CostBreakdown())

    Slow.release.set()   # default: only a trivial pause
    return Slow


# -- ClusterContext lifecycle -------------------------------------------------

class TestClusterContext:
    def test_private_session_owns_context(self):
        session = JoinSession(config=threads_config())
        assert not session.shared
        q, db = graph_case("Q1")
        result = session.query_from(q, db).run("adj")
        assert result.ok
        assert session.executor_created
        session.close()
        assert session.context.closed

    def test_refcount_closes_on_last_release(self):
        ctx = ClusterContext(threads_config())
        s1 = JoinSession(context=ctx)
        s2 = JoinSession(context=ctx)
        assert s1.shared and s2.shared
        assert ctx.refs == 2
        q, db = graph_case("Q1")
        assert s1.query_from(q, db).run("adj").ok
        s1.close()
        assert not ctx.closed              # s2 still holds it
        assert ctx.executor_created
        assert s2.query_from(q, db).run("adj").ok   # still warm
        s2.close()
        assert ctx.closed

    def test_context_manager_holds_a_ref(self):
        with ClusterContext(threads_config()) as ctx:
            with JoinSession(context=ctx) as session:
                q, db = graph_case("Q1")
                assert session.query_from(q, db).run("adj").ok
            assert not ctx.closed
        assert ctx.closed

    def test_attach_rejects_resource_kwargs(self):
        with ClusterContext(threads_config()) as ctx:
            with pytest.raises(ConfigError, match="workers"):
                JoinSession(context=ctx, workers=4)
            with pytest.raises(ConfigError, match="transport"):
                JoinSession(context=ctx, transport="shm")

    def test_shared_sessions_get_epoch_stamped_views(self):
        with ClusterContext(threads_config()) as ctx:
            with JoinSession(context=ctx) as session:
                e1 = session.executor()
                e2 = session.executor()
                assert isinstance(e1, ExecutorView)
                assert isinstance(e2, ExecutorView)
                assert e1.epoch != e2.epoch
                assert e1.base is e2.base          # one shared pool
                assert e1.transport is not e2.transport
                e1.close()
                e2.close()

    def test_private_session_keeps_base_executor(self):
        with JoinSession(config=threads_config()) as session:
            e1 = session.executor()
            e2 = session.executor()
            assert e1 is e2
            assert not isinstance(e1, ExecutorView)

    def test_query_ids_unique_across_sessions(self):
        with ClusterContext(threads_config()) as ctx:
            with JoinSession(context=ctx) as s1, \
                    JoinSession(context=ctx) as s2:
                ids = {s.next_query_id("Q1") for s in (s1, s2)
                       for _ in range(3)}
                assert len(ids) == 6

    def test_closed_context_refuses_attach(self):
        ctx = ClusterContext(threads_config())
        ctx.acquire()
        ctx.release()
        with pytest.raises(ConfigError, match="closed"):
            JoinSession(context=ctx)


# -- the close()-vs-run() race ------------------------------------------------

class TestCloseRace:
    def test_close_waits_for_inflight_run(self, slow_engine):
        """close() from another thread must not tear the transport down
        underneath a run that already started (the PR-10 regression)."""
        slow_engine.release.clear()
        slow_engine.started.clear()
        session = JoinSession(config=threads_config())
        q, db = graph_case("Q1")
        job = session.query_from(q, db)
        results = []
        runner = threading.Thread(
            target=lambda: results.append(job.run("slow")))
        runner.start()
        assert slow_engine.started.wait(timeout=5.0)
        closer = threading.Thread(target=session.close)
        closer.start()
        time.sleep(0.1)
        assert closer.is_alive()           # blocked on the active run
        assert not session.context.closed
        slow_engine.release.set()
        runner.join(timeout=5.0)
        closer.join(timeout=5.0)
        assert not closer.is_alive()
        assert results and results[0].ok
        assert results[0].count == leapfrog_join(q, db).count
        assert session.context.closed

    def test_closed_session_refuses_new_runs(self):
        session = JoinSession(config=threads_config())
        q, db = graph_case("Q1")
        job = session.query_from(q, db)
        session.close()
        with pytest.raises(ConfigError, match="closed"):
            job.run("adj")

    def test_close_idempotent_under_concurrency(self):
        session = JoinSession(config=threads_config())
        threads = [threading.Thread(target=session.close)
                   for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5.0)
        assert session.context.closed


# -- concurrent queries on one shared context ---------------------------------

class TestConcurrentQueries:
    @pytest.mark.parametrize("transport", ["pickle", "shm", "tcp"])
    def test_stress_mixed_queries_counts_identical_to_serial(
            self, transport):
        """8 mixed Q1/Q9 jobs from threads on one shared context: every
        count matches serial Leapfrog, nothing leaks."""
        shm_before = set(glob.glob("/dev/shm/*"))
        cases = [graph_case("Q1", seed=7, n=150, dom=30),
                 graph_case("Q9", seed=11, n=120, dom=25)]
        expected = [leapfrog_join(q, db).count for q, db in cases]
        ctx = ClusterContext(threads_config(transport=transport))
        results: list = [None] * 8
        errors: list = []

        def run_one(i):
            q, db = cases[i % 2]
            try:
                with JoinSession(context=ctx) as session:
                    results[i] = session.query_from(q, db).run("adj")
            except Exception as exc:     # surfaces in the main thread
                errors.append(exc)

        with ctx:
            threads = [threading.Thread(target=run_one, args=(i,))
                       for i in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60.0)
            assert not errors
            if transport == "tcp":
                # Every per-query epoch freed its blocks on teardown.
                assert ctx.store_blocks == ()
        assert ctx.closed
        for i, result in enumerate(results):
            assert result is not None and result.ok
            assert result.count == expected[i % 2]
            assert result.data_plane["transport"] == transport
        if transport == "shm":
            assert set(glob.glob("/dev/shm/*")) <= shm_before


# -- QueryService: admission, budgets, caches ---------------------------------

class TestQueryService:
    def test_eight_concurrent_queries_match_serial(self):
        """The acceptance bar: one warm service, >= 8 concurrent
        queries, per-query counts identical to serial."""
        cases = [graph_case("Q1", seed=3, n=150, dom=30),
                 graph_case("Q9", seed=5, n=120, dom=25)]
        expected = [leapfrog_join(q, db).count for q, db in cases]
        with QueryService(config=threads_config(),
                          max_concurrent=8) as svc:
            futures = [svc.submit(*cases[i % 2], engine="adj",
                                  use_cache=False)
                       for i in range(8)]
            outcomes = [f.result(timeout=60.0) for f in futures]
        for i, result in enumerate(outcomes):
            assert result.ok
            assert result.count == expected[i % 2]

    def test_warm_hit_ships_zero_bytes(self):
        q, db = graph_case("Q1")
        with QueryService(config=threads_config()) as svc:
            cold = svc.execute(q, db, engine="adj")
            assert cold.ok
            # The pickle transport ships partitions inline.
            assert cold.data_plane["shipped_bytes"] > 0
            warm = svc.execute(q, db, engine="adj")
            assert warm.ok and warm.count == cold.count
            assert warm.extra["result_cache"] == "hit"
            assert warm.data_plane["published_bytes"] == 0
            assert warm.data_plane["shipped_bytes"] == 0
            assert warm.data_plane["fetched_bytes"] == 0
            assert warm.data_plane["transport"] == "cache"

    def test_cache_keyed_on_fingerprint(self):
        q, db = graph_case("Q1")
        with QueryService() as svc:
            first = svc.execute(q, db)
            db.replace(Relation(q.atoms[0].relation, ("x", "y"),
                                np.array([[1, 2], [2, 3]])))
            fresh = svc.execute(q, db)
            assert fresh.extra.get("result_cache") != "hit"
            assert first.count != fresh.count

    def test_invalidate_drops_entries_for_one_database(self):
        q1, db1 = graph_case("Q1", seed=1)
        q2, db2 = graph_case("Q1", seed=2)
        with QueryService() as svc:
            svc.execute(q1, db1)
            svc.execute(q2, db2)
            assert len(svc.result_cache) == 2
            assert svc.invalidate(db1) == 1
            assert len(svc.result_cache) == 1
            assert svc.execute(q2, db2).extra["result_cache"] == "hit"

    def test_use_cache_false_bypasses(self):
        q, db = graph_case("Q1")
        with QueryService() as svc:
            svc.execute(q, db)
            again = svc.execute(q, db, use_cache=False)
            assert again.extra.get("result_cache") != "hit"

    def test_plan_cache_reused_across_tenants(self):
        q, db = graph_case("Q1")
        with QueryService() as svc:
            svc.execute(q, db, tenant="a", use_cache=False)
            assert len(svc.plan_cache) == 1
            svc.execute(q, db, tenant="b", use_cache=False)
            assert len(svc.plan_cache) == 1

    def test_capacity_rejection_is_backpressure(self, slow_engine):
        slow_engine.release.clear()
        slow_engine.started.clear()
        q, db = graph_case("Q1", n=60, dom=20)
        with QueryService(max_concurrent=1, queue_depth=0) as svc:
            first = svc.submit(q, db, engine="slow")
            assert slow_engine.started.wait(timeout=5.0)
            with pytest.raises(AdmissionError) as exc:
                svc.submit(q, db, engine="slow")
            assert exc.value.reason == "capacity"
            slow_engine.release.set()
            assert first.result(timeout=10.0).ok
            # Capacity freed: admission works again.
            assert svc.execute(q, db, engine="slow").ok

    def test_budget_reject_policy(self):
        q, db = graph_case("Q1")
        with QueryService(tenant_budgets={"free": 1}) as svc:
            assert svc.execute(q, db, tenant="free",
                               use_cache=False).ok
            assert svc.tenant_remaining("free") <= 0
            with pytest.raises(AdmissionError) as exc:
                svc.execute(q, db, tenant="free", use_cache=False)
            assert exc.value.reason == "budget"
            assert exc.value.tenant == "free"
            # Another tenant is unaffected.
            assert svc.execute(q, db, tenant="paid",
                               use_cache=False).ok

    def test_budget_queue_policy_waits_for_refill(self):
        q, db = graph_case("Q1", n=80, dom=20)
        with QueryService(tenant_budgets={"t": 1},
                          budget_policy="queue",
                          budget_window=0.4) as svc:
            assert svc.execute(q, db, tenant="t", use_cache=False).ok
            # Over budget now — under "queue" this waits for the next
            # refill window instead of rejecting, then runs cleanly.
            second = svc.execute(q, db, tenant="t", use_cache=False)
            assert second.ok

    def test_budget_queue_without_window_rejects(self):
        q, db = graph_case("Q1", n=80, dom=20)
        with QueryService(tenant_budgets={"t": 1},
                          budget_policy="queue") as svc:
            svc.execute(q, db, tenant="t", use_cache=False)
            with pytest.raises(AdmissionError, match="no refill"):
                svc.execute(q, db, tenant="t", use_cache=False)

    def test_budget_downgrade_policy_trips_cleanly(self):
        q, db = graph_case("Q1")
        with QueryService(tenant_budgets={"t": 5},
                          budget_policy="downgrade") as svc:
            result = svc.execute(q, db, tenant="t", use_cache=False)
            assert not result.ok
            assert result.failure == "budget"   # clean failure, no crash
            # The downgraded tenant never affects other tenants.
            other = svc.execute(q, db, tenant="other", use_cache=False)
            assert other.ok
            assert other.count == leapfrog_join(q, db).count

    def test_downgraded_failure_not_cached(self):
        q, db = graph_case("Q1")
        with QueryService(tenant_budgets={"t": 5},
                          budget_policy="downgrade") as svc:
            svc.execute(q, db, tenant="t")
            assert len(svc.result_cache) == 0

    def test_closed_service_refuses_submissions(self):
        q, db = graph_case("Q1")
        svc = QueryService()
        svc.close()
        svc.close()                      # idempotent
        with pytest.raises(ConfigError, match="closed"):
            svc.submit(q, db)

    def test_service_on_shared_context_leaves_it_warm(self):
        ctx = ClusterContext(threads_config())
        q, db = graph_case("Q1")
        with ctx:
            with QueryService(context=ctx) as svc:
                assert svc.execute(q, db, engine="adj").ok
            assert not ctx.closed        # service released, caller holds
            with JoinSession(context=ctx) as session:
                assert session.query_from(q, db).run("adj").ok
        assert ctx.closed

    def test_context_and_config_are_exclusive(self):
        with ClusterContext(threads_config()) as ctx:
            with pytest.raises(ConfigError, match="not both"):
                QueryService(context=ctx, config=threads_config())

    def test_env_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_MAX_CONCURRENT", raising=False)
        monkeypatch.delenv("REPRO_RESULT_CACHE_BYTES", raising=False)
        assert default_max_concurrent() == 4
        assert default_result_cache_bytes() == 64 << 20
        monkeypatch.setenv("REPRO_MAX_CONCURRENT", "9")
        monkeypatch.setenv("REPRO_RESULT_CACHE_BYTES", "1024")
        assert default_max_concurrent() == 9
        assert default_result_cache_bytes() == 1024
        monkeypatch.setenv("REPRO_MAX_CONCURRENT", "zero")
        with pytest.raises(ConfigError, match="REPRO_MAX_CONCURRENT"):
            default_max_concurrent()
        monkeypatch.setenv("REPRO_MAX_CONCURRENT", "0")
        with pytest.raises(ConfigError, match=">= 1"):
            default_max_concurrent()


# -- cache unit behaviour -----------------------------------------------------

class TestCaches:
    def test_plan_cache_lru_eviction(self):
        cache = PlanCache(capacity=2)
        cache.put(("a",), "tree-a")
        cache.put(("b",), "tree-b")
        assert cache.get(("a",)) == "tree-a"   # refresh a
        cache.put(("c",), "tree-c")            # evicts b
        assert cache.get(("b",)) is None
        assert cache.get(("a",)) == "tree-a"
        assert cache.get(("c",)) == "tree-c"

    def _result(self, count=5):
        return EngineResult(engine="ADJ", query="Q1", count=count,
                            breakdown=CostBreakdown())

    def test_result_cache_round_trip(self):
        cache = ResultCache()
        key = ("sig", "adj", None, "fp")
        assert cache.get(key) is None
        cache.put(key, self._result())
        hit = cache.get(key, query_id="q0001:Q1")
        assert hit.count == 5 and hit.ok
        assert hit.extra["result_cache"] == "hit"
        assert hit.extra["query_id"] == "q0001:Q1"
        assert hit.data_plane["transport"] == "cache"

    def test_result_cache_skips_failures_and_respects_zero_budget(self):
        cache = ResultCache()
        failed = self._result()
        failed.failure = "crash"
        cache.put(("k1",), failed)
        assert len(cache) == 0
        disabled = ResultCache(max_bytes=0)
        disabled.put(("k2",), self._result())
        assert len(disabled) == 0

    def test_result_cache_evicts_by_bytes(self):
        cache = ResultCache(max_bytes=1200)    # fits ~2 entries
        for i in range(4):
            cache.put((f"key-{i}",), self._result(i))
        assert len(cache) < 4
        assert cache.get((f"key-3",)) is not None   # newest survives

    def test_invalidate_matches_fingerprint_suffix(self):
        cache = ResultCache()
        cache.put(("sig1", "adj", None, "fp-a"), self._result())
        cache.put(("sig2", "adj", None, "fp-b"), self._result())
        assert cache.invalidate("fp-a") == 1
        assert len(cache) == 1
        assert cache.invalidate() == 1
        assert len(cache) == 0

    def test_result_key_separates_budget_clamps(self):
        q, db = graph_case("Q1")
        full = result_key(q, db, "adj", EngineOptions(work_budget=None))
        clamped = result_key(q, db, "adj", EngineOptions(work_budget=5))
        assert full != clamped
        assert full[-1] == db.fingerprint()


# -- the wire front door ------------------------------------------------------

class TestWireService:
    def test_query_round_trip_and_warm_cache(self):
        from repro.net.service import QueryServer, ServiceClient

        with QueryServer(port=0, max_concurrent=2) as server:
            with ServiceClient(server.host, server.port) as client:
                assert client.hello["service"] == "query-service"
                cold = client.run("Q1", dataset="wb")
                assert cold["ok"] and not cold["cached"]
                warm = client.run("Q1", dataset="wb")
                assert warm["ok"] and warm["cached"]
                assert warm["count"] == cold["count"]
                assert warm["data_plane"]["transport"] == "cache"
                text = client.run("T(a,b,c) :- R(a,b), S(b,c), T(a,c)",
                                  dataset="wb")
                assert text["ok"] and text["count"] == cold["count"]

    def test_over_budget_tenant_rejected_as_429(self):
        from repro.net.service import QueryServer, ServiceClient

        with QueryServer(port=0, tenant_budgets={"free": 1}) as server:
            with ServiceClient(server.host, server.port) as client:
                first = client.run("Q1", tenant="free", use_cache=False)
                assert first["ok"]
                assert first["tenant_remaining"] <= 0
                with pytest.raises(AdmissionError) as exc:
                    client.run("Q1", tenant="free", use_cache=False)
                assert exc.value.reason == "budget"
                # The service (and other tenants) survive the rejection.
                assert client.run("Q1", tenant="paid",
                                  use_cache=False)["ok"]

    def test_stat_and_expo_expose_service_metrics(self):
        from repro.net.service import QueryServer, ServiceClient

        with QueryServer(port=0) as server:
            with ServiceClient(server.host, server.port) as client:
                client.run("Q1")
                stats = client.stats()
                assert stats["service"] == "query-service"
                assert stats["result_cache_entries"] == 1
                assert "service.completed" in stats["metrics"]
                expo = client.expo()
                assert "repro_service_completed_total" in expo
                assert "service_max_concurrent" in expo

    def test_cancel_queued_ticket(self, slow_engine):
        from repro.net.service import QueryServer, ServiceClient

        slow_engine.release.clear()
        slow_engine.started.clear()
        q_small = {"n": 60, "dom": 20}
        with QueryServer(port=0, max_concurrent=1,
                         queue_depth=2) as server:
            replies = {}

            def run_named(ticket):
                with ServiceClient(server.host, server.port) as c:
                    try:
                        replies[ticket] = c.run(
                            "Q1", engine="slow", use_cache=False,
                            scale=4e-6, ticket=ticket)
                    except NetError as exc:
                        replies[ticket] = exc
            t_a = threading.Thread(target=run_named, args=("job-a",))
            t_a.start()
            assert slow_engine.started.wait(timeout=10.0)
            t_b = threading.Thread(target=run_named, args=("job-b",))
            t_b.start()
            with ServiceClient(server.host, server.port) as control:
                deadline = time.monotonic() + 5.0
                while control.stats()["queued"] < 1:
                    assert time.monotonic() < deadline
                    time.sleep(0.02)
                assert control.cancel("job-b")
                assert not control.cancel("no-such-ticket")
            slow_engine.release.set()
            t_a.join(timeout=15.0)
            t_b.join(timeout=15.0)
        assert replies["job-a"]["ok"]
        assert isinstance(replies["job-b"], NetError)
        assert "cancelled" in str(replies["job-b"])

    def test_client_rejects_non_service_endpoint(self):
        from repro.net.blockstore import BlockStoreServer
        from repro.net.service import ServiceClient

        with BlockStoreServer() as store:
            with pytest.raises(NetError, match="not a query service"):
                ServiceClient(store.host, store.port)

    def test_default_service_port(self, monkeypatch):
        from repro.net.service import default_service_port

        monkeypatch.delenv("REPRO_SERVICE_PORT", raising=False)
        assert default_service_port() == 7075
        monkeypatch.setenv("REPRO_SERVICE_PORT", "7100")
        assert default_service_port() == 7100
        monkeypatch.setenv("REPRO_SERVICE_PORT", "notaport")
        with pytest.raises(ConfigError, match="REPRO_SERVICE_PORT"):
            default_service_port()
        monkeypatch.setenv("REPRO_SERVICE_PORT", "70000")
        with pytest.raises(ConfigError, match="port"):
            default_service_port()
