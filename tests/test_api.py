"""Tests for the repro.api front door: session, jobs, config, registry.

Covers the acceptance round-trip (all registered engines agree through
``JoinSession``), lifecycle guarantees (lazy executor, teardown even on
worker crash), the laziness of ``explain``/``estimate`` (verified by
data-plane counters), configuration precedence (explicit > env >
defaults), and the deprecation shims for the pre-façade entry points.
"""

import warnings

import numpy as np
import pytest

import repro
from repro import JoinSession, RunConfig
from repro.api import ComparisonReport, EngineOptions, QueryJob
from repro.data import Database, Relation
from repro.distributed import Cluster
from repro.engines import (
    ADJ,
    HCubeJ,
    SparkSQLJoin,
    YannakakisJoin,
    registry,
    run_engine_safely,
)
from repro.engines.base import EngineResult, engine_from_options
from repro.errors import ConfigError, WorkerCrashed
from repro.query import paper_query
from repro.wcoj import leapfrog_join

ALL_ENGINES = ("sparksql", "bigjoin", "hcubej", "hcubej-cache", "adj",
               "yannakakis")


def graph_case(query_name, seed=0, n=250, dom=40):
    query = paper_query(query_name)
    rng = np.random.default_rng(seed)
    edges = rng.integers(0, dom, size=(n, 2))
    db = Database(Relation(a.relation, ("x", "y"), edges)
                  for a in query.atoms)
    return query, db


# -- the engine registry ------------------------------------------------------

class TestRegistry:
    def test_available_lists_all_six(self):
        assert registry.available() == ALL_ENGINES

    def test_create_maps_options_to_constructor_kwargs(self):
        engine = registry.create("adj", EngineOptions(samples=7, seed=3))
        assert isinstance(engine, ADJ)
        assert engine.num_samples == 7
        assert engine.seed == 3

    def test_create_keyword_overrides_beat_options(self):
        engine = registry.create("adj", EngineOptions(samples=7),
                                 samples=11)
        assert engine.num_samples == 11

    def test_create_ignores_irrelevant_fields(self):
        """One options object drives the whole lineup."""
        opts = EngineOptions(samples=5, budget_tuples=100,
                             budget_bindings=200, work_budget=300)
        spark = registry.create("sparksql", opts)
        assert isinstance(spark, SparkSQLJoin)
        assert spark.budget_tuples == 100
        hcj = registry.create("hcubej", opts)
        assert hcj.work_budget == 300

    def test_create_defaults_when_field_none(self):
        engine = registry.create("adj")
        assert engine.num_samples == ADJ().num_samples

    def test_unknown_engine_lists_choices(self):
        with pytest.raises(ConfigError, match="sparksql"):
            registry.create("nope")

    def test_unknown_option_rejected(self):
        with pytest.raises(ConfigError, match="unknown engine option"):
            registry.create("adj", wibble=3)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigError, match="already registered"):
            registry.register("adj", ADJ)

    def test_register_new_engine_shows_up(self, monkeypatch):
        monkeypatch.setattr(registry, "_REGISTRY",
                            dict(registry._REGISTRY))

        @registry.register("custom", summary="test engine")
        class Custom:
            name = "Custom"
            options_map = {}

        assert "custom" in registry.available()
        assert isinstance(registry.create("custom"), Custom)
        assert registry.display_name("custom") == "Custom"

    def test_engine_from_options_with_none(self):
        engine = engine_from_options(HCubeJ, None)
        assert engine.work_budget is None


# -- RunConfig precedence -----------------------------------------------------

class TestRunConfig:
    def test_defaults(self, monkeypatch):
        for var in ("REPRO_WORKERS", "REPRO_BACKEND", "REPRO_SAMPLES",
                    "REPRO_SEED"):
            monkeypatch.delenv(var, raising=False)
        cfg = RunConfig()
        assert cfg.workers == 8
        assert cfg.backend == "serial"
        assert cfg.transport is None
        assert cfg.samples == 100
        assert cfg.seed == 0
        assert not cfg.uses_runtime

    def test_env_beats_defaults(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        monkeypatch.setenv("REPRO_BACKEND", "threads")
        monkeypatch.setenv("REPRO_SAMPLES", "17")
        monkeypatch.setenv("REPRO_SEED", "5")
        cfg = RunConfig()
        assert (cfg.workers, cfg.backend, cfg.samples, cfg.seed) == \
            (3, "threads", 17, 5)
        assert cfg.uses_runtime

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        monkeypatch.setenv("REPRO_BACKEND", "threads")
        cfg = RunConfig(workers=5, backend="serial")
        assert (cfg.workers, cfg.backend) == (5, "serial")

    def test_invalid_env_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "gpu")
        with pytest.raises(ConfigError, match="REPRO_BACKEND"):
            RunConfig()

    def test_invalid_values_rejected(self):
        with pytest.raises(ConfigError):
            RunConfig(workers=0)
        with pytest.raises(ConfigError):
            RunConfig(backend="gpu")

    def test_replace_drops_none(self):
        cfg = RunConfig(workers=4)
        assert cfg.replace(workers=None) is cfg
        assert cfg.replace(workers=6).workers == 6

    def test_explicit_transport_forces_runtime(self):
        assert RunConfig(transport="pickle").uses_runtime

    def test_engine_options_fold_session_defaults(self):
        cfg = RunConfig(samples=33, seed=2, work_budget=99)
        opts = cfg.engine_options()
        assert (opts.samples, opts.seed, opts.work_budget) == (33, 2, 99)
        assert cfg.engine_options(samples=7).samples == 7
        merged = cfg.engine_options(EngineOptions(seed=9))
        assert (merged.samples, merged.seed) == (33, 9)


# -- JoinSession lifecycle ----------------------------------------------------

class TestJoinSession:
    def test_round_trip_all_engines_agree(self):
        """The acceptance criterion, scaled to test size: every
        registered engine, one compare call, agreeing counts."""
        query, db = graph_case("Q1", seed=1)
        expected = leapfrog_join(query, db).count
        with JoinSession(workers=4, samples=20) as session:
            report = session.query_from(query, db).compare(
                engines=session.engines())
        assert isinstance(report, ComparisonReport)
        assert len(report.results) == len(ALL_ENGINES)
        assert report.agreed
        assert report.count == expected
        assert not report.failures

    def test_runtime_round_trip_processes_shm(self):
        """The literal acceptance shape: processes backend + shm
        transport, full lineup, no leaked executor."""
        query, db = graph_case("Q1", seed=2, n=150)
        expected = leapfrog_join(query, db).count
        with JoinSession(workers=2, backend="processes",
                         transport="shm", samples=10) as session:
            report = session.query_from(query, db).compare()
            executor = session._executor
            assert executor is not None
        assert report.agreed and report.count == expected
        # Teardown happened: the pool is gone and shm segments released.
        assert executor._pool is None

    def test_named_testcase(self):
        with JoinSession(workers=4, samples=10) as session:
            job = session.query("wb", "Q1", scale=1e-5)
            assert isinstance(job, QueryJob)
            result = job.run("adj")
        assert result.ok
        assert result.count == leapfrog_join(job.query, job.db).count

    def test_query_from_text(self):
        _, db = graph_case("Q1")
        with JoinSession(workers=2) as session:
            job = session.query_from(
                "Q(a, b, c) :- R1(a, b), R2(b, c), R3(a, c)", db)
            assert job.query.num_atoms == 3

    def test_serial_path_has_no_executor(self):
        query, db = graph_case("Q1")
        with JoinSession(workers=2) as session:
            result = session.query_from(query, db).run("hcubej")
            assert result.ok
            assert session.executor() is None
            assert not session.executor_created
            assert session.transport_label == "inline"

    def test_executor_is_lazy_and_cached(self):
        with JoinSession(workers=2, backend="threads") as session:
            assert not session.executor_created
            ex = session.executor()
            assert ex is not None and session.executor_created
            assert session.executor() is ex

    def test_close_is_idempotent_and_final(self):
        session = JoinSession(workers=2, backend="threads")
        session.executor()
        session.close()
        session.close()
        with pytest.raises(ConfigError, match="closed"):
            session.query_from(*graph_case("Q1"))
        with pytest.raises(ConfigError, match="closed"):
            session.executor()
        with pytest.raises(ConfigError, match="closed"):
            with session:
                pass  # pragma: no cover

    def test_teardown_even_on_worker_crash(self, monkeypatch):
        """The executor (and its transport) is reclaimed when a worker
        dies mid-run."""
        import repro.engines.one_round as one_round_mod

        def crashing_run(executor, tasks, telemetry=None):
            raise WorkerCrashed(0, "simulated death")

        monkeypatch.setattr(one_round_mod, "run_worker_tasks",
                            crashing_run)
        monkeypatch.setattr(one_round_mod, "run_streamed_tasks",
                            crashing_run)
        query, db = graph_case("Q1", seed=3)
        with JoinSession(workers=2, backend="threads",
                         transport="pickle") as session:
            result = session.query_from(query, db).run("hcubej")
            assert result.failure == "crash"
            executor = session._executor
            assert executor is not None
        assert executor._pool is None  # torn down despite the crash

    def test_custom_cluster_wins(self):
        cluster = Cluster(num_workers=3, runtime="threads")
        with JoinSession(config=RunConfig(workers=9),
                         cluster=cluster) as session:
            assert session.cluster is cluster
            assert session.config.workers == 3
            assert session.config.backend == "threads"

    def test_cluster_conflicting_kwargs_rejected(self):
        cluster = Cluster(num_workers=3)
        with pytest.raises(ConfigError, match="conflicts"):
            JoinSession(workers=5, cluster=cluster)
        with pytest.raises(ConfigError, match="conflicts"):
            JoinSession(backend="processes", cluster=cluster)
        # Matching explicit kwargs are fine.
        JoinSession(workers=3, backend="serial", cluster=cluster).close()

    def test_kwargs_override_config(self):
        cfg = RunConfig(workers=2, samples=5)
        session = JoinSession(workers=6, config=cfg)
        assert session.config.workers == 6
        assert session.config.samples == 5
        session.close()


# -- QueryJob laziness --------------------------------------------------------

class TestQueryJobLaziness:
    def test_explain_performs_no_execution(self):
        """explain() touches neither the executor nor the data plane."""
        query, db = graph_case("Q4", seed=4)
        with JoinSession(workers=2, backend="threads",
                         transport="pickle", samples=10) as session:
            explain = session.query_from(query, db).explain()
            # No executor was ever created ...
            assert not session.executor_created
            # ... and once one exists, its transport counters are zero:
            # nothing was published or shipped by explain().
            stats = session.executor().transport.stats
            assert stats.published_blocks == 0
            assert stats.shipped_refs == 0
            assert stats.shipped_bytes == 0
        assert explain.plan.estimated_cost < float("inf")
        assert set(explain.cost_breakdown) == \
            {"precompute", "communication", "computation"}
        text = explain.describe()
        assert "hypertree" in text and "plan[" in text

    def test_explain_matches_adj_run(self):
        """The explained plan is the plan ADJ actually executes."""
        query, db = graph_case("Q4", seed=4)
        with JoinSession(workers=2, samples=10, seed=0) as session:
            job = session.query_from(query, db)
            explain = job.explain()
            result = job.run("adj")
        assert result.extra["plan"] == explain.plan.describe()

    def test_estimate_uses_session_defaults(self):
        query, db = graph_case("Q1", seed=5)
        with JoinSession(workers=2, samples=25, seed=1) as session:
            job = session.query_from(query, db)
            est = job.estimate()
            assert not session.executor_created
            again = job.estimate(samples=25, seed=1)
        assert est.estimate == again.estimate

    def test_run_accepts_engine_instance(self):
        query, db = graph_case("Q1", seed=6)
        with JoinSession(workers=2) as session:
            result = session.query_from(query, db).run(
                HCubeJ(work_budget=10**9))
        assert result.ok

    def test_options_with_engine_instance_rejected(self):
        """Options cannot silently vanish on an already-built engine."""
        query, db = graph_case("Q1", seed=6)
        with JoinSession(workers=2) as session:
            job = session.query_from(query, db)
            with pytest.raises(ConfigError, match="engine instance"):
                job.run(HCubeJ(), work_budget=5)
            with pytest.raises(ConfigError, match="engine instance"):
                job.compare(engines=["adj", HCubeJ()],
                            options=EngineOptions(samples=5))

    def test_compare_reports_disagreement(self):
        query, db = graph_case("Q1", seed=7)

        class Liar:
            name = "Liar"

            def run(self, query, db, cluster, executor=None):
                from repro.distributed.metrics import CostBreakdown
                return EngineResult(engine=self.name, query=query.name,
                                    count=-42,
                                    breakdown=CostBreakdown())

        with JoinSession(workers=2, samples=10) as session:
            report = session.query_from(query, db).compare(
                engines=["hcubej", Liar()])
        assert not report.agreed
        assert report.count is None
        assert "DISAGREEMENT" in report.describe()


# -- top-level exports + deprecation shims ------------------------------------

class TestTopLevelApi:
    def test_new_exports(self):
        assert repro.JoinSession is JoinSession
        assert repro.RunConfig is RunConfig
        assert repro.EngineOptions is EngineOptions
        assert repro.YannakakisJoin is YannakakisJoin
        assert repro.registry is registry
        for name in ("JoinSession", "RunConfig", "EngineOptions",
                     "YannakakisJoin", "registry"):
            assert name in repro.__all__

    def test_run_engine_safely_shim_warns_and_works(self):
        """The old call shape works unchanged — plus a warning."""
        query, db = graph_case("Q1", seed=8)
        cluster = Cluster(num_workers=2)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = repro.run_engine_safely(
                ADJ(num_samples=10), query, db, cluster, executor=None)
        assert any(issubclass(w.category, DeprecationWarning)
                   and "JoinSession" in str(w.message) for w in caught)
        assert result.ok
        assert result.count == leapfrog_join(query, db).count

    def test_executor_for_shim_warns_and_works(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            executor = repro.executor_for(
                Cluster(num_workers=2, runtime="threads"))
        executor.close()
        assert any(issubclass(w.category, DeprecationWarning)
                   for w in caught)

    def test_deep_imports_do_not_warn(self):
        """Library-internal plumbing stays warning-free."""
        query, db = graph_case("Q1", seed=9)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            result = run_engine_safely(HCubeJ(), query, db,
                                       Cluster(num_workers=2))
        assert result.ok

    def test_direct_engine_construction_unchanged(self):
        """Direct class construction keeps working, warning-free."""
        query, db = graph_case("Q1", seed=10)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            result = ADJ(num_samples=10).run(query, db,
                                             Cluster(num_workers=2))
        assert result.count == leapfrog_join(query, db).count

    def test_unknown_top_level_attribute(self):
        with pytest.raises(AttributeError):
            repro.does_not_exist
