"""Tests for repro.wcoj.yannakakis and the YannakakisJoin engine."""

import numpy as np
import pytest

from repro.data import Database, Relation
from repro.distributed import Cluster
from repro.engines import YannakakisJoin
from repro.errors import OutOfMemory
from repro.ghd import optimal_hypertree
from repro.query import example_query, paper_query, parse_query
from repro.wcoj import (
    YannakakisStats,
    full_reducer,
    leapfrog_join,
    materialize_bags,
    yannakakis_join,
)
from repro.workloads import graph_database_for


def case(qname, seed=0, n=120, dom=15):
    q = paper_query(qname)
    rng = np.random.default_rng(seed)
    return q, graph_database_for(q, rng.integers(0, dom, size=(n, 2)))


class TestSequentialYannakakis:
    @pytest.mark.parametrize("qname", ["Q1", "Q4", "Q5", "Q9", "Q11"])
    def test_matches_leapfrog(self, qname):
        q, db = case(qname, seed=3)
        out = yannakakis_join(q, db)
        assert len(out) == leapfrog_join(q, db).count

    def test_example_query(self):
        q = example_query()
        rng = np.random.default_rng(1)
        db = Database([
            Relation("R1", ("x", "y", "z"), rng.integers(0, 8, (100, 3))),
            Relation("R2", ("x", "y"), rng.integers(0, 8, (50, 2))),
            Relation("R3", ("x", "y"), rng.integers(0, 8, (50, 2))),
            Relation("R4", ("x", "y"), rng.integers(0, 8, (50, 2))),
            Relation("R5", ("x", "y"), rng.integers(0, 8, (50, 2))),
        ])
        assert len(yannakakis_join(q, db)) == leapfrog_join(q, db).count

    def test_acyclic_path_query(self):
        q = parse_query("R1(a,b), R2(b,c), R3(c,d)")
        rng = np.random.default_rng(2)
        db = graph_database_for(q, rng.integers(0, 20, size=(150, 2)))
        assert len(yannakakis_join(q, db)) == leapfrog_join(q, db).count

    def test_stats_populated(self):
        q, db = case("Q4", seed=5)
        stats = YannakakisStats()
        yannakakis_join(q, db, stats=stats)
        tree = optimal_hypertree(q)
        assert len(stats.bag_sizes) == tree.num_bags
        # Full reducer: two sweeps over num_bags - 1 edges.
        assert stats.semijoin_rounds == 2 * (tree.num_bags - 1)

    def test_full_reducer_removes_dangling(self):
        """After reduction every bag tuple joins with every neighbor."""
        q, db = case("Q4", seed=7)
        tree = optimal_hypertree(q)
        bags = materialize_bags(q, db, tree)
        reduced = full_reducer(tree, bags)
        for u, v in tree.tree_edges:
            assert reduced[u].semijoin(reduced[v]) == reduced[u]
            assert reduced[v].semijoin(reduced[u]) == reduced[v]

    def test_reducer_only_shrinks(self):
        q, db = case("Q5", seed=9)
        tree = optimal_hypertree(q)
        bags = materialize_bags(q, db, tree)
        reduced = full_reducer(tree, bags)
        for idx, rel in reduced.items():
            assert len(rel) <= len(bags[idx])

    def test_empty_input_empty_output(self):
        q, _ = case("Q4")
        db = graph_database_for(q, np.empty((0, 2), dtype=np.int64))
        assert len(yannakakis_join(q, db)) == 0


class TestYannakakisEngine:
    def test_agrees_with_leapfrog(self):
        q, db = case("Q5", seed=11, n=200, dom=20)
        cluster = Cluster(num_workers=4)
        result = YannakakisJoin().run(q, db, cluster)
        assert result.count == leapfrog_join(q, db).count

    def test_reports_multi_round(self):
        q, db = case("Q4", seed=13)
        result = YannakakisJoin().run(q, db, Cluster(num_workers=4))
        assert result.rounds > 1
        assert result.breakdown.precompute > 0

    def test_oom_when_bags_exceed_memory(self):
        # A dense graph makes the triangle bag large; a tiny memory
        # budget must trip the EmptyHeaded failure mode.
        q, db = case("Q5", seed=15, n=400, dom=12)
        cluster = Cluster(num_workers=2, memory_tuples_per_worker=50)
        with pytest.raises(OutOfMemory):
            YannakakisJoin().run(q, db, cluster)

    def test_reuses_supplied_hypertree(self):
        q, db = case("Q4", seed=17)
        tree = optimal_hypertree(q)
        result = YannakakisJoin(hypertree=tree).run(
            q, db, Cluster(num_workers=2))
        assert result.count == leapfrog_join(q, db).count
