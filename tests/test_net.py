"""Tests for repro.net: the multi-machine data plane.

Covers the frame protocol, block-store lifecycle edge cases (double
free, missing GET, no listening port after stop), the tcp transport's
epoch rules, the transport/backend registries' ConfigError contracts,
host-spec parsing, the worker-agent handshake, the remote executor
(mixed local+remote scheduling, heartbeats, crash handling, socket
teardown), and the acceptance criterion: all six engines return serial
counts over >= 2 loopback agents with descriptor-only shipping.
"""

import pickle
import socket

import numpy as np
import pytest

from repro import JoinSession
from repro.errors import BlockNotFound, ConfigError, NetError
from repro.net import (
    BlockStoreClient,
    BlockStoreServer,
    RemoteExecutor,
    TcpTransport,
    WorkerAgent,
    parse_host_specs,
)
from repro.net.blockstore import clear_fetch_cache
from repro.net.protocol import (
    OP_DATA,
    OP_ERR,
    OP_OK,
    OP_PUT,
    OP_TASK,
    MAX_FRAME_BYTES,
    recv_frame,
    request,
    send_frame,
)
from repro.runtime import (
    available_transports,
    create_executor,
    create_transport,
    resolve_array_ref,
)
from repro.runtime.transport import REF_HEADER_BYTES


def port_listening(port: int, host: str = "127.0.0.1") -> bool:
    try:
        socket.create_connection((host, port), timeout=1.0).close()
        return True
    except OSError:
        return False


def double_task(x):
    """Top-level so remote agents can unpickle it by reference."""
    return 2 * x


def failing_task(x):
    raise RuntimeError(f"task {x} exploded")


def pid_task(_x):
    import os

    return os.getpid()


@pytest.fixture
def agents():
    """Two running loopback worker agents (2 slots each).

    ``inline`` mode keeps execution on the serving thread — these tests
    exercise the protocol/scheduling/lifecycle paths, and skipping the
    per-test process-pool spawn keeps the suite fast.  The default
    (process-pool) execution path is covered by
    ``test_agent_runs_tasks_in_worker_processes`` and the subprocess
    walkthrough below.
    """
    pair = [WorkerAgent(slots=2, mode="inline").start(),
            WorkerAgent(slots=2, mode="inline").start()]
    yield pair
    for agent in pair:
        agent.stop()


def hosts_of(agents) -> list:
    return [f"127.0.0.1:{a.port}" for a in agents]


class TestFrames:
    def test_round_trip_over_socketpair(self):
        left, right = socket.socketpair()
        try:
            payload = bytes(range(256)) * 3
            send_frame(left, OP_PUT, {"block": "b", "shape": [3, 2]},
                       payload)
            op, meta, got = recv_frame(right)
            assert (op, meta["block"], meta["shape"], got) == \
                (OP_PUT, "b", [3, 2], payload)
        finally:
            left.close()
            right.close()

    def test_empty_meta_and_payload(self):
        left, right = socket.socketpair()
        try:
            send_frame(left, OP_OK)
            assert recv_frame(right) == (OP_OK, {}, b"")
        finally:
            left.close()
            right.close()

    def test_clean_close_raises_eof(self):
        left, right = socket.socketpair()
        left.close()
        try:
            with pytest.raises(EOFError):
                recv_frame(right)
        finally:
            right.close()

    def test_truncated_frame_raises_net_error(self):
        left, right = socket.socketpair()
        try:
            left.sendall((1000).to_bytes(4, "big") + b"partial")
            left.close()
            with pytest.raises(NetError, match="truncated"):
                recv_frame(right)
        finally:
            right.close()

    def test_oversized_length_prefix_rejected(self):
        left, right = socket.socketpair()
        try:
            left.sendall((MAX_FRAME_BYTES + 1).to_bytes(4, "big"))
            with pytest.raises(NetError, match="invalid frame length"):
                recv_frame(right)
        finally:
            left.close()
            right.close()


class TestBlockStore:
    def test_put_get_list_free_round_trip(self):
        arr = np.arange(24, dtype=np.int64).reshape(12, 2)
        with BlockStoreServer() as srv:
            with BlockStoreClient(srv.host, srv.port) as client:
                client.put("b1", arr)
                assert np.array_equal(client.get("b1"), arr)
                assert client.list() == {"b1": arr.nbytes}
                client.free("b1")
                assert client.list() == {}

    def test_get_missing_block_refused(self):
        with BlockStoreServer() as srv:
            with BlockStoreClient(srv.host, srv.port) as client:
                with pytest.raises(BlockNotFound):
                    client.get("never-put")

    def test_double_free_refused(self):
        with BlockStoreServer() as srv:
            with BlockStoreClient(srv.host, srv.port) as client:
                client.put("b1", np.ones((2, 2), dtype=np.int64))
                client.free("b1")
                with pytest.raises(BlockNotFound):
                    client.free("b1")

    def test_duplicate_put_refused(self):
        """Block ids are single-assignment within an epoch."""
        with BlockStoreServer() as srv:
            with BlockStoreClient(srv.host, srv.port) as client:
                client.put("b1", np.ones((2, 2), dtype=np.int64))
                with pytest.raises(NetError, match="already"):
                    client.put("b1", np.zeros((2, 2), dtype=np.int64))

    def test_stat_counts_served_bytes(self):
        arr = np.arange(10, dtype=np.int64).reshape(5, 2)
        with BlockStoreServer() as srv:
            with BlockStoreClient(srv.host, srv.port) as client:
                client.put("b", arr)
                client.get("b")
                client.get("b")
                stat = client.stat()
        assert stat["puts"] == 1 and stat["gets"] == 2
        assert stat["bytes_in"] == arr.nbytes
        assert stat["bytes_out"] == 2 * arr.nbytes

    def test_concurrent_clients_see_one_store(self):
        arr = np.arange(6, dtype=np.int64).reshape(3, 2)
        with BlockStoreServer() as srv:
            c1 = BlockStoreClient(srv.host, srv.port)
            c2 = BlockStoreClient(srv.host, srv.port)
            try:
                c1.put("from-c1", arr)
                assert np.array_equal(c2.get("from-c1"), arr)
            finally:
                c1.close()
                c2.close()

    def test_stop_leaves_no_listening_port(self):
        srv = BlockStoreServer().start()
        port = srv.port
        assert port_listening(port)
        srv.stop()
        assert not port_listening(port)
        srv.stop()   # idempotent


class TestTcpTransport:
    @pytest.mark.parametrize("shape", [(7, 2), (5, 1), (0, 2), (1, 3)])
    def test_whole_array_bit_for_bit(self, shape):
        rng = np.random.default_rng(0)
        arr = rng.integers(-2**40, 2**40, size=shape).astype(np.int64)
        with create_transport("tcp") as t:
            out = resolve_array_ref(t.make_ref(t.publish("a", arr)))
            assert out.dtype == arr.dtype
            assert np.array_equal(out, arr)

    def test_row_subsets(self):
        arr = np.arange(24, dtype=np.int64).reshape(12, 2)
        for rows in ([], [0], [11, 0, 5], list(range(12))):
            rows = np.asarray(rows, dtype=np.int64)
            with create_transport("tcp") as t:
                key = t.publish("a", arr)
                out = resolve_array_ref(t.make_ref(key, rows))
                assert np.array_equal(out, arr[rows])

    def test_refs_are_descriptor_only(self):
        """A tcp ref ships header+rows, never the partition matrix."""
        arr = np.arange(400, dtype=np.int64).reshape(200, 2)
        t = TcpTransport()
        try:
            ref = t.make_ref(t.publish("a", arr), np.arange(50))
            assert ref.kind == "tcp"
            assert ref.host and ref.port
            assert ref.payload_bytes == REF_HEADER_BYTES + 50 * 8
            assert t.stats.published_bytes == arr.nbytes
            # The same selection through pickle ships the whole slice.
            assert ref.payload_bytes < REF_HEADER_BYTES + 50 * 2 * 8
        finally:
            t.teardown()

    def test_publish_is_idempotent_per_key(self):
        arr = np.arange(8, dtype=np.int64).reshape(4, 2)
        t = TcpTransport()
        try:
            t.publish("a", arr)
            t.publish("a", arr)
            assert t.stats.published_blocks == 1
        finally:
            t.teardown()

    def test_resolved_array_survives_teardown(self):
        arr = np.arange(10, dtype=np.int64).reshape(5, 2)
        t = TcpTransport()
        ref = t.make_ref(t.publish("a", arr), np.array([3, 1]))
        out = resolve_array_ref(ref)
        t.teardown()
        assert np.array_equal(out, arr[[3, 1]])
        assert out.flags.writeable   # a private copy, not the cache

    def test_teardown_frees_blocks_and_closes_port(self):
        arr = np.arange(20, dtype=np.int64).reshape(10, 2)
        t = TcpTransport()
        resolve_array_ref(t.make_ref(t.publish("a", arr)))
        host, port = t.store_address
        assert port_listening(port, host)
        t.teardown()
        assert t.store_address is None
        assert not port_listening(port, host)
        epoch = t.last_epoch
        assert epoch.freed_blocks == 1
        assert epoch.fetched_blocks == 1
        assert epoch.fetched_bytes == arr.nbytes

    def test_teardown_idempotent_and_restartable(self):
        arr = np.arange(8, dtype=np.int64).reshape(4, 2)
        t = TcpTransport()
        t.publish("a", arr)
        t.teardown()
        t.teardown()
        out = resolve_array_ref(t.make_ref(t.publish("a", arr)))
        assert np.array_equal(out, arr)
        t.teardown()

    def test_fetch_cache_one_get_per_block(self):
        clear_fetch_cache()
        arr = np.arange(40, dtype=np.int64).reshape(20, 2)
        t = TcpTransport()
        try:
            key = t.publish("a", arr)
            for rows in ([1, 2], [3], None):
                rows = None if rows is None else np.asarray(rows)
                resolve_array_ref(t.make_ref(key, rows))
        finally:
            t.teardown()
        assert t.last_epoch.fetched_blocks == 1   # cache absorbed 2 GETs

    def test_external_store_not_stopped_by_teardown(self):
        arr = np.arange(8, dtype=np.int64).reshape(4, 2)
        with BlockStoreServer() as srv:
            t = TcpTransport(store=(srv.host, srv.port))
            resolve_array_ref(t.make_ref(t.publish("a", arr)))
            t.teardown()
            assert srv.blocks == ()          # our blocks were freed...
            assert port_listening(srv.port)  # ...the shared store lives


class TestTransportRegistry:
    def test_tcp_is_registered(self):
        assert "tcp" in available_transports()
        t = create_transport("tcp")
        assert t.name == "tcp"
        t.teardown()

    def test_unknown_transport_names_registered_ones(self):
        with pytest.raises(ConfigError) as exc:
            create_transport("carrier-pigeon")
        for name in ("pickle", "shm", "tcp"):
            assert name in str(exc.value)

    def test_bad_env_value_raises_config_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRANSPORT", "quantum")
        with pytest.raises(ConfigError) as exc:
            create_transport()
        for name in ("pickle", "shm", "tcp"):
            assert name in str(exc.value)

    def test_env_selects_tcp(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRANSPORT", "tcp")
        t = create_transport()
        assert t.name == "tcp"
        t.teardown()


class TestHostSpecs:
    def test_parse_remote_and_local(self):
        specs = parse_host_specs("10.0.0.1:7070, local:3 ,local")
        assert [s.kind for s in specs] == ["tcp", "local", "local"]
        assert specs[0].host == "10.0.0.1" and specs[0].port == 7070
        assert specs[1].slots == 3 and specs[2].slots == 1

    @pytest.mark.parametrize("bad", ["", "hostonly", "h:notaport",
                                     "h:0", "local:0", "local:x"])
    def test_bad_specs_raise_config_error(self, bad):
        with pytest.raises(ConfigError):
            parse_host_specs(bad if bad else [])

    def test_none_hosts_raise_with_hint(self):
        with pytest.raises(ConfigError, match="REPRO_HOSTS"):
            parse_host_specs(None)

    def test_remote_backend_without_hosts_is_config_error(self):
        from repro.api import RunConfig

        with pytest.raises(ConfigError, match="hosts"):
            RunConfig(backend="remote", hosts=None)

    def test_env_hosts_apply(self, monkeypatch):
        from repro.api import RunConfig

        monkeypatch.setenv("REPRO_HOSTS", "127.0.0.1:7070,local:2")
        cfg = RunConfig(backend="remote")
        assert cfg.hosts == ("127.0.0.1:7070", "local:2")

    def test_unknown_backend_lists_remote(self):
        from repro.runtime import create_executor

        with pytest.raises(ConfigError) as exc:
            create_executor("quantum")
        assert "remote" in str(exc.value)


class TestWorkerAgent:
    def test_handshake_advertises_slots_and_pid(self):
        import os

        with WorkerAgent(slots=3, mode="inline") as agent:
            sock = socket.create_connection((agent.host, agent.port))
            try:
                from repro.net.protocol import OP_HELLO

                _op, meta, _ = request(sock, OP_HELLO)
                assert meta["service"] == "worker-agent"
                assert meta["slots"] == 3
                assert meta["pid"] == os.getpid()
            finally:
                sock.close()

    def test_task_frames_run_and_reply(self):
        with WorkerAgent(mode="inline") as agent:
            sock = socket.create_connection((agent.host, agent.port))
            try:
                payload = pickle.dumps((double_task, 21))
                op, _meta, reply = request(sock, OP_TASK,
                                           payload=payload)
                assert op == OP_DATA
                assert pickle.loads(reply) == 42
            finally:
                sock.close()
        assert agent.tasks_run == 1

    def test_agent_runs_tasks_in_worker_processes(self):
        """Default mode executes on a process pool, not the GIL-bound
        serving thread — and the pool actually parallelizes per slot."""
        import os

        with WorkerAgent(slots=2) as agent:
            ex = RemoteExecutor(hosts=[f"127.0.0.1:{agent.port}"],
                                transport="pickle")
            try:
                pids = ex.map_tasks(pid_task, [1, 2, 3, 4])
            finally:
                ex.close()
        assert all(pid != os.getpid() for pid in pids)

    def test_failing_task_answers_err_and_agent_survives(self):
        with WorkerAgent(mode="inline") as agent:
            sock = socket.create_connection((agent.host, agent.port))
            try:
                send_frame(sock, OP_TASK,
                           payload=pickle.dumps((failing_task, 7)))
                op, meta, _ = recv_frame(sock)
                assert op == OP_ERR
                assert meta["error"] == "RuntimeError"
                assert "exploded" in meta["message"]
                # Same connection keeps working after the failure.
                op, _meta, reply = request(
                    sock, OP_TASK, payload=pickle.dumps((double_task, 1)))
                assert pickle.loads(reply) == 2
            finally:
                sock.close()
        assert agent.tasks_failed == 1 and agent.tasks_run == 1


class TestRemoteExecutor:
    def test_map_preserves_order_across_hosts(self, agents):
        ex = create_executor("remote", hosts=hosts_of(agents),
                             transport="pickle")
        try:
            out = ex.map_tasks(double_task, list(range(20)))
            assert out == [2 * i for i in range(20)]
            assert sum(a.tasks_run for a in agents) == 20
            # Both hosts actually participated.
            assert all(a.tasks_run > 0 for a in agents)
        finally:
            ex.close()

    def test_mixed_local_and_remote_slots(self, agents):
        ex = RemoteExecutor(hosts=[*hosts_of(agents), "local:2"],
                            transport="pickle")
        try:
            out = ex.map_tasks(double_task, list(range(30)))
            assert out == [2 * i for i in range(30)]
            assert sum(a.tasks_run for a in agents) < 30  # local ran some
        finally:
            ex.close()

    def test_remote_task_failure_is_worker_crashed(self, agents):
        from repro.errors import WorkerCrashed

        ex = RemoteExecutor(hosts=hosts_of(agents), transport="pickle")
        try:
            with pytest.raises(WorkerCrashed, match="exploded"):
                ex.map_tasks(failing_task, [1, 2, 3])
        finally:
            ex.close()

    def test_unreachable_host_is_config_error(self):
        # Bind-then-close to get a port with nothing listening.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        ex = RemoteExecutor(hosts=[f"127.0.0.1:{port}"],
                            transport="pickle", connect_timeout=1.0)
        with pytest.raises(ConfigError, match="serve"):
            ex.map_tasks(double_task, [1])
        ex.close()

    def test_heartbeat_marks_dead_host(self, agents):
        import time

        ex = RemoteExecutor(hosts=hosts_of(agents), transport="pickle",
                            heartbeat_interval=0.1)
        try:
            ex.setup()
            assert all(ex.host_status().values())
            agents[1].stop()
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                status = ex.host_status()
                if not status[hosts_of(agents)[1]]:
                    break
                time.sleep(0.05)
            status = ex.host_status()
            assert status[hosts_of(agents)[0]]
            assert not status[hosts_of(agents)[1]]
        finally:
            ex.close()

    def test_dead_host_queued_slots_fail_with_host_label(self, agents):
        """Idle slots of a flagged host surface as WorkerCrashed (with
        the host label), never as an anonymous attribute error."""
        from repro.errors import WorkerCrashed

        label = hosts_of(agents)[0]
        ex = RemoteExecutor(hosts=[label], transport="pickle",
                            heartbeat_interval=0)
        try:
            ex.setup()
            ex._mark_dead(ex.host_specs[0])
            with pytest.raises(WorkerCrashed, match=label):
                ex.map_tasks(double_task, [1, 2, 3])
        finally:
            ex.close()

    def test_close_resets_dead_flags_for_reopen(self, agents):
        """A host flagged in one run gets a fresh start after close()."""
        ex = RemoteExecutor(hosts=hosts_of(agents), transport="pickle",
                            heartbeat_interval=0)
        try:
            ex.setup()
            ex._mark_dead(ex.host_specs[0])
            assert not ex.host_status()[hosts_of(agents)[0]]
            ex.close()
            assert ex.map_tasks(double_task, [1, 2]) == [2, 4]  # reopen
            assert all(ex.host_status().values())
        finally:
            ex.close()

    def test_agent_death_mid_session_crashes_cleanly(self, agents):
        """Executor close() releases sockets/blocks after a dead worker."""
        session = JoinSession(workers=2, backend="remote",
                              transport="tcp", hosts=hosts_of(agents),
                              scale=1e-5, samples=10)
        job = session.query("wb", "Q1")
        ex = session.executor()
        ex.setup()                      # connections established...
        for agent in agents:
            agent.stop()                # ...then every worker host dies
        result = job.run("hcubej")
        assert not result.ok and result.failure == "crash"
        assert "died" in result.extra["crash_reason"]
        # The failed run's epoch already tore its block store down.
        assert ex.transport.store_address is None
        session.close()   # idempotent full teardown with dead workers


class TestSessionAcceptance:
    """ISSUE 4 acceptance: six engines, >= 2 agents, descriptor shipping."""

    def test_all_engines_match_serial_counts(self, agents, monkeypatch):
        # The CI matrix exports REPRO_TRANSPORT; clear it so this test
        # exercises the documented remote-backend default (tcp).
        monkeypatch.delenv("REPRO_TRANSPORT", raising=False)
        with JoinSession(workers=4, scale=1e-5, samples=10) as serial:
            base = serial.query("wb", "Q1").compare()
        assert base.agreed

        with JoinSession(workers=4, backend="remote",
                         hosts=hosts_of(agents), scale=1e-5,
                         samples=10) as session:
            assert session.transport_label == "tcp"
            report = session.query("wb", "Q1").compare()
        assert report.agreed, report.counts
        assert report.count == base.count
        assert {r.engine for r in report.results} == \
            {r.engine for r in base.results}
        # Both agents actually executed tasks.
        assert all(agent.tasks_run > 0 for agent in agents)

    def test_data_plane_shows_descriptor_only_shipping(self, agents):
        with JoinSession(workers=4, backend="remote", transport="tcp",
                         hosts=hosts_of(agents), scale=1e-5,
                         samples=10) as session:
            result = session.query("wb", "Q1").run("hcubej")
        assert result.ok
        plane = result.data_plane
        assert plane["transport"] == "tcp"
        # Partition bytes are accounted to the block store (fetched),
        # not to the coordinator's task payloads (shipped).
        assert plane["published_bytes"] > 0
        assert plane["fetched_bytes"] >= plane["published_bytes"]
        assert plane["shipped_bytes"] < plane["fetched_bytes"]
        assert plane["freed_blocks"] == plane["published_blocks"]

        # The same run over the pickle plane ships strictly more.
        with JoinSession(workers=4, backend="remote",
                         hosts=hosts_of(agents), transport="pickle",
                         scale=1e-5, samples=10) as session:
            inline = session.query("wb", "Q1").run("hcubej")
        assert inline.ok and inline.count == result.count
        assert plane["shipped_bytes"] < \
            inline.data_plane["shipped_bytes"]

    def test_session_exit_leaves_no_listening_ports(self, agents):
        with JoinSession(workers=2, backend="remote", transport="tcp",
                         hosts=hosts_of(agents), scale=1e-5,
                         samples=10) as session:
            ex = session.executor()
            ex.setup()
            ex.transport.setup()
            host, port = ex.transport.store_address
            assert port_listening(port, host)
        assert not port_listening(port, host)

    def test_remote_backend_agrees_under_shm_and_pickle(self, agents):
        """The remote backend runs every registered transport on
        loopback (shm only works because the agents share the host)."""
        counts = set()
        for transport in available_transports():
            with JoinSession(workers=2, backend="remote",
                             hosts=hosts_of(agents), transport=transport,
                             scale=1e-5, samples=10) as session:
                result = session.query("wb", "Q1").run("adj")
            assert result.ok, (transport, result.failure)
            counts.add(result.count)
        assert len(counts) == 1


class TestServeCommand:
    def test_serve_starts_and_exits(self, capsys):
        from repro.cli import main

        assert main(["serve", "--port", "0", "--slots", "2",
                     "--max-seconds", "0.01"]) == 0
        out = capsys.readouterr().out
        assert "listening on 127.0.0.1:" in out
        assert "slots=2" in out
        assert "stopped" in out

    def test_serve_subprocess_two_terminal_walkthrough(self):
        """The README story: two `repro serve` processes, one driver."""
        import re
        import subprocess
        import sys

        procs = []
        try:
            hosts = []
            for _ in range(2):
                proc = subprocess.Popen(
                    [sys.executable, "-m", "repro", "serve", "--port",
                     "0", "--slots", "1"],
                    stdout=subprocess.PIPE, text=True, bufsize=1)
                procs.append(proc)
                line = proc.stdout.readline()
                match = re.search(r"listening on ([\d.]+):(\d+)", line)
                assert match, f"no address line in {line!r}"
                hosts.append(f"{match.group(1)}:{match.group(2)}")
            with JoinSession(workers=2, backend="remote",
                             transport="tcp", hosts=hosts,
                             scale=1e-5, samples=10) as session:
                result = session.query("wb", "Q1").run("adj")
            assert result.ok
            assert result.data_plane["transport"] == "tcp"
        finally:
            for proc in procs:
                proc.terminate()
            for proc in procs:
                proc.wait(timeout=10)
