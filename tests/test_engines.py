"""Tests for repro.engines — the five Sec. VII competitors."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import Database, Relation
from repro.distributed import Cluster, CostModelParams
from repro.engines import (
    ADJ,
    BigJoin,
    HCubeJ,
    HCubeJCache,
    SparkSQLJoin,
    attach_degree_order,
    run_engine_safely,
)
from repro.errors import BudgetExceeded, OutOfMemory
from repro.query import paper_query
from repro.wcoj import leapfrog_join
from repro.workloads import graph_database_for, make_testcase


def all_engines(samples=30):
    return [SparkSQLJoin(), BigJoin(), HCubeJ(), HCubeJCache(),
            ADJ(num_samples=samples)]


@pytest.fixture(scope="module")
def q1_case():
    return make_testcase("wb", "Q1", scale=2e-5)


@pytest.fixture(scope="module")
def cluster():
    return Cluster(num_workers=4)


class TestEngineAgreement:
    def test_all_engines_agree_on_q1(self, q1_case, cluster):
        q, db = q1_case
        expected = leapfrog_join(q, db).count
        for engine in all_engines():
            result = engine.run(q, db, cluster)
            assert result.count == expected, engine.name

    @pytest.mark.parametrize("qname", ["Q4", "Q9", "Q11"])
    def test_engines_agree_on_other_queries(self, qname, cluster):
        q = paper_query(qname)
        rng = np.random.default_rng(42)
        db = graph_database_for(q, rng.integers(0, 25, size=(150, 2)))
        expected = leapfrog_join(q, db).count
        for engine in all_engines():
            assert engine.run(q, db, cluster).count == expected, engine.name

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_agreement_property_random_graphs(self, seed):
        q = paper_query("Q1")
        rng = np.random.default_rng(seed)
        db = graph_database_for(q, rng.integers(0, 10, size=(60, 2)))
        cluster = Cluster(num_workers=3)
        counts = {e.name: e.run(q, db, cluster).count
                  for e in all_engines(samples=10)}
        assert len(set(counts.values())) == 1, counts


class TestCostAccounting:
    def test_every_engine_reports_positive_total(self, q1_case, cluster):
        q, db = q1_case
        for engine in all_engines():
            r = engine.run(q, db, cluster)
            assert r.total_seconds > 0, engine.name
            assert r.shuffled_tuples >= 0

    def test_one_round_engines_single_round(self, q1_case, cluster):
        q, db = q1_case
        for engine in (HCubeJ(), HCubeJCache(), ADJ(num_samples=20)):
            assert engine.run(q, db, cluster).rounds == 1

    def test_multi_round_engines_report_rounds(self, q1_case, cluster):
        q, db = q1_case
        assert SparkSQLJoin().run(q, db, cluster).rounds == q.num_atoms - 1
        assert BigJoin().run(q, db, cluster).rounds == q.num_attributes

    def test_adj_reports_phase_breakdown(self, cluster):
        q, db = make_testcase("lj", "Q5", scale=8e-6)
        r = ADJ(num_samples=30).run(q, db, cluster)
        b = r.breakdown
        assert b.optimization > 0
        assert b.communication > 0
        assert b.computation > 0
        if r.extra["precomputed"]:
            assert b.precompute > 0

    def test_hcubej_optimization_tiny_vs_adj(self, cluster):
        """Tables II-IV: Comm-First optimization is far cheaper."""
        q, db = make_testcase("lj", "Q5", scale=8e-6)
        hc = HCubeJ().run(q, db, cluster)
        adj = ADJ(num_samples=30).run(q, db, cluster)
        assert hc.breakdown.optimization < adj.breakdown.optimization


class TestFailureModes:
    def test_sparksql_budget(self, cluster):
        q, db = make_testcase("lj", "Q5", scale=1.5e-5)
        with pytest.raises(BudgetExceeded):
            SparkSQLJoin(budget_tuples=100).run(q, db, cluster)

    def test_bigjoin_budget(self, cluster):
        q, db = make_testcase("lj", "Q5", scale=1.5e-5)
        with pytest.raises(BudgetExceeded):
            BigJoin(budget_bindings=10).run(q, db, cluster)

    def test_hcubej_work_budget(self, cluster):
        q, db = make_testcase("lj", "Q5", scale=1.5e-5)
        with pytest.raises(BudgetExceeded):
            HCubeJ(work_budget=10).run(q, db, cluster)

    def test_oom_on_tiny_memory(self, q1_case):
        q, db = q1_case
        tiny = Cluster(num_workers=2, memory_tuples_per_worker=5)
        with pytest.raises((OutOfMemory, Exception)):
            HCubeJ().run(q, db, tiny)

    def test_run_engine_safely_wraps_failures(self, cluster):
        q, db = make_testcase("lj", "Q5", scale=1.5e-5)
        r = run_engine_safely(SparkSQLJoin(budget_tuples=100), q, db,
                              cluster)
        assert r.failure == "budget"
        assert not r.ok

    def test_run_engine_safely_passes_success(self, q1_case, cluster):
        q, db = q1_case
        r = run_engine_safely(HCubeJ(), q, db, cluster)
        assert r.ok


class TestDegreeOrder:
    def test_covers_all_attributes(self, q1_case):
        q, db = q1_case
        order = attach_degree_order(q, db)
        assert set(order) == set(q.attributes)

    def test_deterministic(self, q1_case):
        q, db = q1_case
        assert attach_degree_order(q, db) == attach_degree_order(q, db)


class TestADJSpecifics:
    def test_adj_beats_hcubej_computation_on_dense_query(self, cluster):
        """Fig. 1(b): co-optimization slashes the computation phase."""
        q, db = make_testcase("lj", "Q5", scale=1.5e-5)
        hc = HCubeJ().run(q, db, cluster)
        adj = ADJ(num_samples=30).run(q, db, cluster)
        assert adj.count == hc.count
        if adj.extra["precomputed"]:
            assert adj.breakdown.computation < hc.breakdown.computation

    def test_run_with_plan_override(self, cluster):
        from repro.core import communication_first_plan
        q, db = make_testcase("wb", "Q1", scale=2e-5)
        plan = communication_first_plan(q, db, cluster)
        engine = ADJ(num_samples=10)
        r = engine.run_with_plan(plan, db, cluster)
        assert r.count == leapfrog_join(q, db).count
        assert r.breakdown.optimization == 0.0

    def test_adj_uses_merge_impl(self):
        assert ADJ.hcube_impl == "merge"
        assert HCubeJ.hcube_impl == "push"

    def test_cache_engine_records_cache_stats(self, cluster):
        q, db = make_testcase("lj", "Q4", scale=1e-5)
        r = HCubeJCache().run(q, db, cluster)
        assert "cache_hits" in r.extra
        assert r.extra["cache_hits"] + r.extra["cache_misses"] > 0
