"""Tests for repro.analysis: every rule fires on a bad fixture and
stays quiet on a good one, suppressions need reasons, the baseline
grandfathers findings, and the repository itself lints clean."""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (Baseline, Finding, LintConfig,
                            available_checkers, checker_spec,
                            load_baseline, register_checker, run,
                            write_baseline)
from repro.analysis.registry import create_checker
from repro.errors import ConfigError

REPO_ROOT = Path(__file__).resolve().parent.parent


def _cli_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return env


def lint_source(tmp_path, source, *, rules=None, name="mod.py",
                **config_kwargs):
    """Lint one synthetic module and return its findings."""
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    config_kwargs.setdefault("env_catalog_override", frozenset())
    config_kwargs.setdefault("registry_keys_override", {})
    config_kwargs.setdefault("documented_env_override", frozenset())
    config = LintConfig(root=tmp_path, **config_kwargs)
    return run([path], rules=rules, config=config)


def rules_of(findings):
    return {f.rule for f in findings}


# ---------------------------------------------------------------------------
# registry


def test_all_six_rules_registered():
    rules = available_checkers()
    assert set(rules) >= {"spawn-safety", "lazy-net", "lock-discipline",
                          "env-registry", "registry-consistency",
                          "error-taxonomy"}
    for rule in rules:
        spec = checker_spec(rule)
        assert spec.summary
        assert create_checker(rule).rule == rule


def test_duplicate_checker_registration_rejected():
    with pytest.raises(ConfigError):
        register_checker("spawn-safety", object)


def test_unknown_rule_rejected(tmp_path):
    with pytest.raises(ConfigError):
        lint_source(tmp_path, "x = 1\n", rules=["no-such-rule"])


# ---------------------------------------------------------------------------
# spawn-safety


def test_spawn_safety_fires_on_lambda_over_seam(tmp_path):
    findings = lint_source(tmp_path, """
        def go(executor, tasks):
            return executor.map_tasks(lambda t: t, tasks)
    """, rules=["spawn-safety"])
    assert rules_of(findings) == {"spawn-safety"}


def test_spawn_safety_fires_on_local_def_and_bound_method(tmp_path):
    findings = lint_source(tmp_path, """
        class Driver:
            def go(self, executor, tasks):
                def helper(t):
                    return t
                executor.submit_tasks(helper, tasks)
                executor.map_tasks(self.handle, tasks)
    """, rules=["spawn-safety"])
    assert len(findings) == 2


def test_spawn_safety_fires_on_lambda_in_task_payload(tmp_path):
    findings = lint_source(tmp_path, """
        def build(kernel):
            return WorkerTask(cube=(0,), kernel=lambda q: q)
    """, rules=["spawn-safety"])
    assert rules_of(findings) == {"spawn-safety"}
    assert "kernel" in findings[0].message


def test_spawn_safety_clean_on_module_level_callable(tmp_path):
    findings = lint_source(tmp_path, """
        from functools import partial

        def execute_worker_task(task):
            return task

        def go(executor, tasks):
            executor.map_tasks(execute_worker_task, tasks)
            executor.submit_tasks(partial(execute_worker_task), tasks)
            return WorkerTask(cube=(0,), kernel="adaptive")
    """, rules=["spawn-safety"])
    assert findings == []


# ---------------------------------------------------------------------------
# lazy-net


def test_lazy_net_fires_on_module_scope_import(tmp_path):
    findings = lint_source(
        tmp_path, "from repro.net import WorkerAgent\n",
        rules=["lazy-net"])
    assert rules_of(findings) == {"lazy-net"}


def test_lazy_net_fires_on_plain_import(tmp_path):
    findings = lint_source(tmp_path, "import repro.net.transport\n",
                           rules=["lazy-net"])
    assert rules_of(findings) == {"lazy-net"}


def test_lazy_net_fires_on_relative_import(tmp_path):
    (tmp_path / "repro").mkdir()
    (tmp_path / "repro" / "__init__.py").write_text("")
    findings = lint_source(
        tmp_path, "from .net import executor\n", rules=["lazy-net"],
        name="repro/runtime.py")
    assert rules_of(findings) == {"lazy-net"}


def test_lazy_net_clean_on_function_local_import(tmp_path):
    findings = lint_source(tmp_path, """
        def serve():
            from repro.net import WorkerAgent
            return WorkerAgent
    """, rules=["lazy-net"])
    assert findings == []


def test_lazy_net_clean_inside_net_package(tmp_path):
    (tmp_path / "repro").mkdir()
    (tmp_path / "repro" / "__init__.py").write_text("")
    (tmp_path / "repro" / "net").mkdir()
    (tmp_path / "repro" / "net" / "__init__.py").write_text("")
    findings = lint_source(
        tmp_path, "from repro.net.protocol import request\n",
        rules=["lazy-net"], name="repro/net/agent.py")
    assert findings == []


# ---------------------------------------------------------------------------
# lock-discipline


_UNLOCKED_TRANSPORT = """
    class DemoTransport:
        def publish(self, epoch, block):
            self.stats.published_blocks += 1
            self._staged[epoch] = block
"""

_LOCKED_TRANSPORT = """
    class DemoTransport:
        def publish(self, epoch, block):
            with self._lock:
                self.stats.published_blocks += 1
                self._staged[epoch] = block

        def _teardown_locked(self, epoch):
            self._staged.pop(epoch, None)
            self.last_epoch = epoch

        def __init__(self):
            self.stats.published_blocks = 0
"""


def test_lock_discipline_fires_on_unlocked_mutations(tmp_path):
    findings = lint_source(tmp_path, _UNLOCKED_TRANSPORT,
                           rules=["lock-discipline"])
    assert len(findings) == 2
    assert rules_of(findings) == {"lock-discipline"}


def test_lock_discipline_clean_under_lock_and_exemptions(tmp_path):
    findings = lint_source(tmp_path, _LOCKED_TRANSPORT,
                           rules=["lock-discipline"])
    assert findings == []


def test_lock_discipline_ignores_non_transport_classes(tmp_path):
    findings = lint_source(tmp_path, """
        class Ledger:
            def add(self, epoch):
                self._entries[epoch] = 1
    """, rules=["lock-discipline"])
    assert findings == []


# ---------------------------------------------------------------------------
# env-registry


def test_env_registry_fires_on_undeclared_read(tmp_path):
    findings = lint_source(tmp_path, """
        import os
        value = os.environ.get("REPRO_MYSTERY")
    """, rules=["env-registry"])
    assert rules_of(findings) == {"env-registry"}
    assert "REPRO_MYSTERY" in findings[0].message


def test_env_registry_fires_on_undocumented_constant(tmp_path):
    findings = lint_source(tmp_path, """
        DEMO_ENV_VAR = "REPRO_DEMO"
    """, rules=["env-registry"],
        env_catalog_override=frozenset({"REPRO_DEMO"}),
        documented_env_override=frozenset())
    assert rules_of(findings) == {"env-registry"}
    assert "not documented" in findings[0].message


def test_env_registry_clean_when_declared_and_documented(tmp_path):
    findings = lint_source(tmp_path, """
        import os
        DEMO_ENV_VAR = "REPRO_DEMO"
        value = os.environ["REPRO_DEMO"]
    """, rules=["env-registry"],
        env_catalog_override=frozenset({"REPRO_DEMO"}),
        documented_env_override=frozenset({"REPRO_DEMO"}))
    assert findings == []


def test_env_registry_exempts_bench_namespace(tmp_path):
    findings = lint_source(tmp_path, """
        import os
        scale = os.environ.get("REPRO_BENCH_SCALE", "1")
    """, rules=["env-registry"])
    assert findings == []


# ---------------------------------------------------------------------------
# registry-consistency


def test_registry_consistency_fires_on_dynamic_key(tmp_path):
    findings = lint_source(tmp_path, """
        def install(name, cls):
            register_kernel(name, cls)
    """, rules=["registry-consistency"])
    assert rules_of(findings) == {"registry-consistency"}


def test_registry_consistency_fires_on_duplicate_key(tmp_path):
    findings = lint_source(tmp_path, """
        register_kernel("wcoj", A)
        register_kernel("wcoj", B)
    """, rules=["registry-consistency"])
    assert len(findings) == 1
    assert "again" in findings[0].message


def test_registry_consistency_fires_on_hand_rolled_lineup(tmp_path):
    findings = lint_source(
        tmp_path, 'LINEUP = ("adj", "hcubej")\n',
        rules=["registry-consistency"],
        registry_keys_override={
            "engines": frozenset({"adj", "hcubej", "sparksql"})})
    assert rules_of(findings) == {"registry-consistency"}


def test_registry_consistency_clean_on_constants_and_home(tmp_path):
    (tmp_path / "repro").mkdir()
    (tmp_path / "repro" / "__init__.py").write_text("")
    (tmp_path / "repro" / "engines").mkdir()
    (tmp_path / "repro" / "engines" / "__init__.py").write_text("")
    findings = lint_source(tmp_path, """
        RULE = "adj"
        BUILTINS = ("adj", "hcubej")
        register_engine(RULE, object)
    """, rules=["registry-consistency"],
        registry_keys_override={
            "engines": frozenset({"adj", "hcubej", "sparksql"})},
        name="repro/engines/builtin.py")
    assert findings == []


# ---------------------------------------------------------------------------
# error-taxonomy


def test_error_taxonomy_fires_on_builtin_raise(tmp_path):
    findings = lint_source(tmp_path, """
        def check(x):
            if x < 0:
                raise ValueError("negative")
    """, rules=["error-taxonomy"])
    assert rules_of(findings) == {"error-taxonomy"}


def test_error_taxonomy_allows_protocol_exceptions(tmp_path):
    findings = lint_source(tmp_path, """
        def get(self, key):
            raise KeyError(key)

        def todo(self):
            raise NotImplementedError

        def convert(self):
            raise ConfigError("bad knob")
    """, rules=["error-taxonomy"])
    assert findings == []


def test_error_taxonomy_fires_on_bad_metric_and_span_names(tmp_path):
    findings = lint_source(tmp_path, """
        def record(metrics, tracer):
            metrics.counter("PublishedBytes").inc()
            metrics.counter("flat").inc()
            with tracer.span("Worker Task"):
                pass
    """, rules=["error-taxonomy"])
    assert len(findings) == 3


def test_error_taxonomy_clean_on_conventional_names(tmp_path):
    findings = lint_source(tmp_path, """
        def record(metrics, tracer):
            metrics.counter("transport.published_bytes").inc()
            metrics.histogram("scheduler.route_seconds")
            with tracer.span("worker_task", cat="runtime"):
                pass
            with tracer.span(f"route_{x}"):
                pass
    """, rules=["error-taxonomy"])
    assert findings == []


# ---------------------------------------------------------------------------
# suppressions


def test_suppression_with_reason_silences_finding(tmp_path):
    findings = lint_source(tmp_path, """
        def check(x):
            # repro: lint-ignore[error-taxonomy] stdlib contract here
            raise ValueError("negative")
    """, rules=["error-taxonomy"])
    assert findings == []


def test_suppression_inline_covers_own_line(tmp_path):
    findings = lint_source(tmp_path, """
        def check(x):
            raise ValueError("bad")  # repro: lint-ignore[error-taxonomy] intentional
    """, rules=["error-taxonomy"])
    assert findings == []


def test_suppression_without_reason_is_a_finding(tmp_path):
    findings = lint_source(tmp_path, """
        def check(x):
            # repro: lint-ignore[error-taxonomy]
            raise ValueError("negative")
    """, rules=["error-taxonomy"])
    assert rules_of(findings) == {"lint-ignore", "error-taxonomy"}


def test_suppression_of_unknown_rule_is_a_finding(tmp_path):
    findings = lint_source(
        tmp_path, "x = 1  # repro: lint-ignore[no-such-rule] why\n")
    assert rules_of(findings) == {"lint-ignore"}


def test_suppression_only_silences_named_rule(tmp_path):
    findings = lint_source(tmp_path, """
        def go(executor, tasks):
            # repro: lint-ignore[error-taxonomy] wrong rule named
            executor.map_tasks(lambda t: t, tasks)
    """, rules=["spawn-safety", "error-taxonomy"])
    assert rules_of(findings) == {"spawn-safety"}


# ---------------------------------------------------------------------------
# baseline


def test_baseline_grandfathers_and_catches_new(tmp_path):
    source = """
        def check(x):
            raise ValueError("negative")
    """
    findings = lint_source(tmp_path, source, rules=["error-taxonomy"])
    assert len(findings) == 1
    baseline_path = tmp_path / "baseline.json"
    write_baseline(baseline_path, findings, "pre-dates the taxonomy")
    config = LintConfig(root=tmp_path,
                        env_catalog_override=frozenset(),
                        registry_keys_override={},
                        documented_env_override=frozenset())
    clean = run([tmp_path / "mod.py"], rules=["error-taxonomy"],
                baseline=baseline_path, config=config)
    assert clean == []
    # A *new* finding in the same file is not grandfathered.
    (tmp_path / "mod.py").write_text(textwrap.dedent(source) + textwrap.dedent("""
        def other(y):
            raise RuntimeError("boom")
    """), encoding="utf-8")
    fresh = run([tmp_path / "mod.py"], rules=["error-taxonomy"],
                baseline=baseline_path, config=config)
    assert len(fresh) == 1
    assert "RuntimeError" in fresh[0].message


def test_baseline_entry_without_reason_rejected(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({
        "version": 1,
        "findings": [{"rule": "lazy-net", "path": "x.py",
                      "fingerprint": "ab", "reason": "  "}],
    }), encoding="utf-8")
    with pytest.raises(ConfigError):
        load_baseline(path)


def test_write_baseline_requires_reason(tmp_path):
    with pytest.raises(ConfigError):
        write_baseline(tmp_path / "b.json", [], "   ")


def test_baseline_fingerprint_ignores_line_numbers():
    a = Finding(path="x.py", line=3, col=0, rule="lazy-net", message="m")
    b = Finding(path="x.py", line=99, col=4, rule="lazy-net", message="m")
    assert a.fingerprint == b.fingerprint
    baseline = Baseline(entries={(a.rule, a.path, a.fingerprint): "why"})
    assert baseline.covers(b)


# ---------------------------------------------------------------------------
# engine plumbing


def test_parse_error_is_a_finding(tmp_path):
    findings = lint_source(tmp_path, "def broken(:\n")
    assert rules_of(findings) == {"parse-error"}


def test_missing_path_is_config_error(tmp_path):
    with pytest.raises(ConfigError):
        run([tmp_path / "nope"], config=LintConfig(root=tmp_path))


# ---------------------------------------------------------------------------
# the repository itself


def test_repository_lints_clean():
    config = LintConfig(root=REPO_ROOT)
    findings = run([REPO_ROOT / "src" / "repro", REPO_ROOT / "benchmarks"],
                   baseline=REPO_ROOT / "lint-baseline.json",
                   config=config)
    assert findings == [], "\n".join(f.render() for f in findings)


def test_cli_lint_exits_zero_on_repo():
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "lint", "--json"],
        cwd=REPO_ROOT, capture_output=True, text=True,
        env=_cli_env(), timeout=120)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    payload = json.loads(proc.stdout)
    assert payload["count"] == 0


def test_cli_lint_nonzero_on_finding(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import repro.net\n", encoding="utf-8")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "lint", str(bad),
         "--rules", "lazy-net", "--root", str(REPO_ROOT)],
        cwd=REPO_ROOT, capture_output=True, text=True,
        env=_cli_env(), timeout=120)
    assert proc.returncode == 1
    assert "lazy-net" in proc.stdout


def test_cli_lint_list_rules():
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "lint", "--list-rules"],
        cwd=REPO_ROOT, capture_output=True, text=True,
        env=_cli_env(), timeout=120)
    assert proc.returncode == 0
    for rule in ("spawn-safety", "lazy-net", "lock-discipline",
                 "env-registry", "registry-consistency",
                 "error-taxonomy"):
        assert rule in proc.stdout
