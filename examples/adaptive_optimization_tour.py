"""A guided tour of ADJ's optimizer on the paper's running example.

Run with:  python examples/adaptive_optimization_tour.py

Walks through the machinery of Sec. III on the query of Eq. (2):

    Q(a,b,c,d,e) :- R1(a,b,c) >< R2(a,d) >< R3(c,d) >< R4(b,e) >< R5(c,e)

showing the hypergraph, the optimal hypertree (Fig. 5), the candidate
relations, the reduced attribute-order space, the Algorithm 2 search
trace, and the final co-optimized execution.
"""

import numpy as np

from repro import JoinSession
from repro.core import CardinalityEstimator, Optimizer
from repro.data import Database, Relation, generate_power_law_edges
from repro.ghd import optimal_hypertree
from repro.query import Hypergraph, example_query
from repro.wcoj import leapfrog_join


def build_database(seed: int = 5) -> Database:
    """R1 is a ternary relation (paths of length 2); R2-R5 are edges."""
    edges = generate_power_law_edges(1500, seed=seed)
    binary = Relation("edges", ("x", "y"), edges)
    paths = binary.natural_join(binary.rename({"x": "y", "y": "z"}))
    rng = np.random.default_rng(seed)
    keep = rng.random(len(paths)) < min(1.0, 4000 / max(1, len(paths)))
    return Database([
        Relation("R1", ("x", "y", "z"), paths.data[keep]),
        Relation("R2", ("x", "y"), edges),
        Relation("R3", ("x", "y"), edges),
        Relation("R4", ("x", "y"), edges),
        Relation("R5", ("x", "y"), edges),
    ])


def main() -> None:
    query = example_query()
    db = build_database()
    print("query:", query)
    print("hypergraph:", Hypergraph.of_query(query))
    for rel in db:
        print(f"  {rel}")

    # -- Sec. III-A: the hypertree shrinks the search space ----------------
    tree = optimal_hypertree(query)
    print(f"\noptimal hypertree (fhw={tree.width:.2f}):")
    for bag in tree.bags:
        members = ", ".join(query.atoms[i].relation
                            for i in bag.atom_indices)
        print(f"  {bag}: joins [{members}]  width="
              f"{tree.bag_widths[bag.index]:.2f}")
    print("tree edges:", tree.tree_edges)
    valid = list(tree.valid_attribute_orders())
    import math
    print(f"valid attribute orders: {len(valid)} of "
          f"{math.factorial(query.num_attributes)} permutations")

    # -- Sec. III-B: Algorithm 2 ------------------------------------------
    with JoinSession(workers=8, samples=100, seed=0) as session:
        cluster = session.cluster
        estimator = CardinalityEstimator(db, num_samples=100, seed=0)
        report = Optimizer(query, db, cluster, hypertree=tree,
                           estimator=estimator).run()
        print(f"\nAlgorithm 2 explored {report.explored_configurations} "
              "configurations; decision trace (reverse traversal order):")
        for v, pre, cost in report.cost_trace:
            choice = "PRE-COMPUTE" if pre else "keep raw"
            print(f"  bag v{v}: {choice:12s} (estimated cost "
                  f"{cost:.4f} model-s)")
        plan = report.plan
        print("chosen plan:", plan.describe())
        print("rewritten query:", plan.rewritten_query())

        # -- the same plan, through the lazy job API -----------------------
        job = session.query_from(query, db)
        explain = job.explain(hypertree=tree)
        print("job.explain modeled cost:",
              {k: round(v, 4) for k, v in explain.cost_breakdown.items()})

        # -- execute and verify --------------------------------------------
        result = job.run("adj")
        expected = leapfrog_join(query, db).count
        assert result.count == expected
        print(f"\nresult count: {result.count} (verified against plain "
              "Leapfrog)")
        print("cost breakdown:",
              {k: round(v, 4)
               for k, v in result.breakdown.as_row().items()})


if __name__ == "__main__":
    main()
