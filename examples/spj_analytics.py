"""Select-project-join analytics on top of ADJ (the paper's future work).

Run with:  python examples/spj_analytics.py

The paper's conclusion names SPJ co-optimization as future work; this
library ships the front end: selections are pushed below the join (each
predicate filters every atom containing its variable *before* any data
is shuffled), the join runs through any distributed engine, and the
projection deduplicates afterwards.

Scenario: find the distinct "hub pairs" (a, c) such that the triangle
a-b-c exists with all three vertices among the first 64 node ids (the
hubs of the power-law analogue — low ids have the highest degrees).
"""

from repro import JoinSession
from repro.data import generate_power_law_edges
from repro.engines import registry
from repro.query import Predicate, SPJQuery, evaluate_spj, triangle_query
from repro.wcoj import leapfrog_join
from repro.workloads import graph_database_for


def main() -> None:
    query = triangle_query()
    edges = generate_power_law_edges(3000, seed=9)
    db = graph_database_for(query, edges)
    print(f"graph: {edges.shape[0]} edges")

    spj = SPJQuery(
        query,
        selections=(
            Predicate("a", "<", 64),
            Predicate("b", "<", 64),
            Predicate("c", "<", 64),
        ),
        projection=("a", "c"),
    )
    print(f"query: {spj}")

    # Pushdown shrinks what the engines shuffle:
    from repro.query import push_down_selections
    reduced_db, _ = push_down_selections(spj, db)
    before = sum(len(db[a.relation]) for a in query.atoms)
    after = reduced_db.total_tuples
    print(f"selection pushdown: {before} -> {after} tuples "
          f"({1 - after / before:.0%} never shuffled)")

    # The engine comes from the registry; the session supplies the
    # cluster (4 workers) without any manual lifecycle code.
    with JoinSession(workers=4) as session:
        result = evaluate_spj(spj, db,
                              engine=registry.create("adj", samples=50),
                              cluster=session.cluster)
    print(f"distinct hub pairs: {len(result)}")

    # Cross-check against filtering the full join after the fact.
    full = leapfrog_join(query, db, materialize=True).relation
    expected = {(t[0], t[2]) for t in full.as_set()
                if t[0] < 64 and t[1] < 64 and t[2] < 64}
    assert result.as_set() == expected
    print("verified against post-hoc filtering of the full join")


if __name__ == "__main__":
    main()
