"""Quickstart: evaluate a complex join with ADJ on a simulated cluster.

Run with:  python examples/quickstart.py

Builds a small social-network-style graph, poses the paper's Q5 (a
5-cycle with two chords — a "house" pattern with a diagonal), and lets
ADJ co-optimize pre-computing, communication and computation — all
through the :class:`repro.JoinSession` front door, which owns cluster,
executor and transport lifecycle.
"""

from repro import JoinSession
from repro.data import generate_power_law_edges
from repro.query import paper_query
from repro.workloads import graph_database_for


def main() -> None:
    # 1. A graph: 2000 edges, heavy-tailed degrees (hubs!), seeded.
    edges = generate_power_law_edges(2000, seed=42)
    print(f"graph: {edges.shape[0]} edges")

    # 2. A complex join query: Q5 from the paper (subgraph pattern with
    #    5 variables and 7 edge atoms).
    query = paper_query("Q5")
    print(f"query: {query}")

    # 3. A database: one relation copy per atom (Sec. VII-A convention).
    db = graph_database_for(query, edges)

    # 4. A session: 8 simulated workers, paper-style cost model.  The
    #    session tears everything down when the `with` block ends.
    with JoinSession(workers=8, samples=100, seed=0) as session:
        job = session.query_from(query, db)

        # 5. Run ADJ - it samples, optimizes, pre-computes and joins.
        result = job.run("adj")

        print(f"\nADJ found {result.count} embeddings of Q5")
        print(f"chosen plan: {result.extra['plan']}")
        print(f"pre-computed: {result.extra['precomputed'] or '(nothing)'}")
        print("cost breakdown (model-seconds):")
        for phase, seconds in result.breakdown.as_row().items():
            print(f"  {phase:>14}: {seconds:8.4f}")

        # 6. Compare with the communication-first baseline.
        baseline = job.run("hcubej")
        assert baseline.count == result.count
        print(f"\nHCubeJ (comm-first) total: {baseline.total_seconds:8.4f}")
        print(f"ADJ    (co-opt)     total: {result.total_seconds:8.4f}")


if __name__ == "__main__":
    main()
