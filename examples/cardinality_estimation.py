"""Sampling-based cardinality estimation (Sec. IV) in action.

Run with:  python examples/cardinality_estimation.py

Shows the Lemma 2 sample-size bound, the accuracy/cost trade-off of the
estimator, and the communication saved by the semijoin-reduced
distributed sampling procedure.
"""

import time

from repro import JoinSession
from repro.core import DistributedSampler, required_samples
from repro.data import generate_power_law_edges
from repro.query import paper_query
from repro.wcoj import leapfrog_join
from repro.workloads import graph_database_for


def main() -> None:
    query = paper_query("Q4")
    edges = generate_power_law_edges(900, seed=3)
    db = graph_database_for(query, edges)
    true = leapfrog_join(query, db).count
    print(f"query: {query.name}, graph: {edges.shape[0]} edges, "
          f"true cardinality: {true}")

    # -- Lemma 2: how many samples for a target guarantee? -----------------
    print("\nLemma 2 sample sizes k(p, delta):")
    for p, delta in ((0.2, 0.1), (0.1, 0.05), (0.05, 0.01)):
        print(f"  error {p:4.0%} @ confidence {1 - delta:4.0%}: "
              f"k = {required_samples(p, delta)}")

    # -- accuracy vs budget --------------------------------------------------
    # QueryJob.estimate is pure sampler work: the session never creates
    # an executor for it.
    print(f"\n{'samples':>8} {'estimate':>12} {'D':>7} {'time(s)':>8}")
    with JoinSession(workers=4, seed=1) as session:
        job = session.query_from(query, db)
        for k in (5, 20, 80, 400):
            t0 = time.perf_counter()
            est = job.estimate(samples=k)
            elapsed = time.perf_counter() - t0
            hi = max(est.estimate, float(true), 1.0)
            lo = max(1.0, min(est.estimate, float(true)))
            tag = " (exact)" if est.exact else ""
            print(f"{k:>8} {est.estimate:>12.0f} {hi / lo:>7.3f} "
                  f"{elapsed:>8.3f}{tag}")
        assert not session.executor_created

    # -- distributed sampling: the semijoin reduction -------------------------
    report = DistributedSampler(db, num_samples=100, seed=1).sample(query)
    saved = (1 - report.reduced_shuffle_tuples
             / max(1, report.naive_shuffle_tuples))
    print("\ndistributed sampling (Sec. IV):")
    print(f"  naive shuffle:   {report.naive_shuffle_tuples:>8} tuples")
    print(f"  reduced shuffle: {report.reduced_shuffle_tuples:>8} tuples "
          f"({saved:.0%} saved by the semijoin reduction)")
    print(f"  estimate: {report.estimate.estimate:.0f} "
          f"(true {true})")


if __name__ == "__main__":
    main()
