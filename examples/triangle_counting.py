"""Distributed triangle counting: all five engines on one graph.

Run with:  python examples/triangle_counting.py

Triangle counting (Q1) is the entry-level complex join: cyclic, so
binary-join engines shuffle an edge-squared intermediate, while
worst-case optimal engines touch far less data.
"""

from repro.data import generate_power_law_edges
from repro.distributed import Cluster
from repro.engines import (
    ADJ,
    BigJoin,
    HCubeJ,
    HCubeJCache,
    SparkSQLJoin,
    run_engine_safely,
)
from repro.query import triangle_query
from repro.wcoj import agm_bound
from repro.workloads import graph_database_for


def main() -> None:
    edges = generate_power_law_edges(4000, seed=7)
    query = triangle_query()
    db = graph_database_for(query, edges)
    cluster = Cluster(num_workers=8)

    print(f"graph: {edges.shape[0]} edges")
    print(f"AGM worst-case bound: {agm_bound(query, db):.0f} triangles\n")

    engines = [
        SparkSQLJoin(),
        BigJoin(),
        HCubeJ(),
        HCubeJCache(),
        ADJ(num_samples=50),
    ]
    print(f"{'engine':14} {'triangles':>10} {'shuffled':>10} "
          f"{'total(s)':>10} {'rounds':>7}")
    counts = set()
    for engine in engines:
        r = run_engine_safely(engine, query, db, cluster)
        status = f"{r.count}" if r.ok else r.failure
        print(f"{engine.name:14} {status:>10} {r.shuffled_tuples:>10} "
              f"{r.total_seconds:>10.4f} {r.rounds:>7}")
        if r.ok:
            counts.add(r.count)
    assert len(counts) == 1, "engines disagree!"
    print(f"\nall engines agree: {counts.pop()} triangles")


if __name__ == "__main__":
    main()
