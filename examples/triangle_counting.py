"""Distributed triangle counting: every registered engine on one graph.

Run with:  python examples/triangle_counting.py

Triangle counting (Q1) is the entry-level complex join: cyclic, so
binary-join engines shuffle an edge-squared intermediate, while
worst-case optimal engines touch far less data.  One
``session.query_from(...).compare()`` call runs the whole registry
lineup and cross-checks the counts.
"""

from repro import JoinSession
from repro.data import generate_power_law_edges
from repro.query import triangle_query
from repro.wcoj import agm_bound
from repro.workloads import graph_database_for


def main() -> None:
    edges = generate_power_law_edges(4000, seed=7)
    query = triangle_query()
    db = graph_database_for(query, edges)

    print(f"graph: {edges.shape[0]} edges")
    print(f"AGM worst-case bound: {agm_bound(query, db):.0f} triangles\n")

    with JoinSession(workers=8, samples=50) as session:
        print(f"engines: {', '.join(session.engines())}\n")
        report = session.query_from(query, db).compare()

    print(f"{'engine':14} {'triangles':>10} {'shuffled':>10} "
          f"{'total(s)':>10} {'rounds':>7}")
    for r in report.results:
        status = f"{r.count}" if r.ok else r.failure
        print(f"{r.engine:14} {status:>10} {r.shuffled_tuples:>10} "
              f"{r.total_seconds:>10.4f} {r.rounds:>7}")
    assert report.agreed, "engines disagree!"
    print(f"\nall engines agree: {report.count} triangles")


if __name__ == "__main__":
    main()
