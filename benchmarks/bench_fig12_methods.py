"""Fig. 12: the headline comparison of all five methods.

(a)-(c): queries fixed to Q1/Q2/Q3, varying the dataset.
(d)-(f): datasets fixed to AS/LJ/OK, varying the query Q1-Q6.

Expected shape (paper): SparkSQL only survives Q1; BigJoin only Q1-Q2;
the one-round engines handle everything, and ADJ leads via the optimized
HCube (Q1-Q3) and co-optimization (Q4-Q6).  Failures render as '>BUDGET'
(timeout analogue) or 'OOM'.
"""

import pytest

from repro.data import dataset_names
from repro.engines import run_engine_safely

from .common import (
    BENCH_MEMORY,
    bench_cluster,
    engine_lineup,
    fmt_seconds,
    fmt_table,
    lineup_headers,
    load_case,
    report,
)


def _compare(cases):
    cluster = bench_cluster(memory_tuples=BENCH_MEMORY)
    rows = []
    counts = {}
    for ds, qname in cases:
        query, db = load_case(ds, qname)
        total_input = sum(len(db[a.relation]) for a in query.atoms)
        row = [f"({ds.upper()},{qname})"]
        for engine in engine_lineup(total_input):
            r = run_engine_safely(engine, query, db, cluster)
            row.append(fmt_seconds(r.breakdown.total if r.ok else None,
                                   r.failure))
            if r.ok:
                counts.setdefault((ds, qname), set()).add(r.count)
        rows.append(row)
    # Safety: all successful engines agreed on every test-case.
    for key, vals in counts.items():
        assert len(vals) == 1, f"count disagreement on {key}: {vals}"
    return rows


HEADERS = ["test-case", *lineup_headers()]


@pytest.mark.parametrize("query_name", ["Q1", "Q2", "Q3"])
def test_fig12_varying_dataset(benchmark, query_name):
    cases = [(ds, query_name) for ds in dataset_names()]
    rows = benchmark.pedantic(_compare, args=(cases,), rounds=1,
                              iterations=1)
    text = fmt_table(HEADERS, rows,
                     title=f"Fig. 12({query_name}) — methods x datasets "
                           "(model-seconds)")
    report(f"fig12_datasets_{query_name}", text)


@pytest.mark.parametrize("dataset", ["as", "lj", "ok"])
def test_fig12_varying_query(benchmark, dataset):
    cases = [(dataset, q) for q in ("Q1", "Q2", "Q3", "Q4", "Q5", "Q6")]
    rows = benchmark.pedantic(_compare, args=(cases,), rounds=1,
                              iterations=1)
    text = fmt_table(HEADERS, rows,
                     title=f"Fig. 12({dataset.upper()}) — methods x "
                           "queries (model-seconds)")
    report(f"fig12_queries_{dataset}", text)
    # The paper's qualitative claim: ADJ handles at least everything the
    # other methods handle (it completes all cases in the paper; at bench
    # scale the 5-clique Q3 on the densest analogues may hit the work
    # budget, which EXPERIMENTS.md documents).
    def completed(col: int) -> int:
        return sum(1 for r in rows if r[col] not in (">BUDGET", "OOM"))

    adj_done = completed(5)
    assert adj_done >= max(completed(c) for c in range(1, 5)), rows
