"""Ablation: Algorithm 2's greedy vs exhaustive plan search.

DESIGN.md calls out the greedy reverse-order search as the central design
choice of the optimizer (Lemma 1: O(n*^2) cost evaluations instead of
O(2^{n*} x n*!)).  This bench quantifies what the greedy gives up: the
configurations priced, the optimizer wall time, and the estimated cost
of the chosen plan, for Q4-Q6 on LJ.
"""

import pytest

from repro.core import CardinalityEstimator, exhaustive_plan, optimize_plan

from .common import BENCH_SAMPLES, bench_cluster, fmt_table, load_case, report

QUERIES = ["Q4", "Q5", "Q6"]


def test_ablation_plan_search(benchmark):
    cluster = bench_cluster()

    def run():
        rows = []
        for qname in QUERIES:
            query, db = load_case("lj", qname)
            greedy = optimize_plan(
                query, db, cluster,
                estimator=CardinalityEstimator(db, num_samples=BENCH_SAMPLES,
                                               seed=0))
            oracle = exhaustive_plan(
                query, db, cluster,
                estimator=CardinalityEstimator(db, num_samples=BENCH_SAMPLES,
                                               seed=0))
            ratio = (greedy.plan.estimated_cost
                     / max(1e-12, oracle.plan.estimated_cost))
            rows.append([
                qname,
                str(greedy.explored_configurations),
                str(oracle.explored_configurations),
                f"{greedy.plan.estimated_cost:.4f}",
                f"{oracle.plan.estimated_cost:.4f}",
                f"{ratio:.3f}",
                f"{greedy.wall_seconds:.2f}",
                f"{oracle.wall_seconds:.2f}",
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = fmt_table(
        ["query", "greedy#", "oracle#", "greedy cost", "oracle cost",
         "ratio", "greedy s", "oracle s"],
        rows,
        title="Ablation — Algorithm 2 greedy vs exhaustive plan search "
              "(LJ)")
    report("ablation_plan_search", text)
    for r in rows:
        # The greedy explores no more configurations than the oracle and
        # stays within 3x of the oracle's estimated cost here.
        assert int(r[1]) <= int(r[2])
        assert float(r[5]) < 3.0, f"greedy far from optimal on {r[0]}"
