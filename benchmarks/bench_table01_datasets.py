"""Table I: dataset statistics (paper sizes and scaled analogues)."""

from repro.data import DATASETS, dataset_names, load_dataset

from .common import BENCH_SCALE, fmt_table, report


def test_table01_datasets(benchmark):
    def build():
        rows = []
        for key in dataset_names():
            spec = DATASETS[key]
            edges = load_dataset(key, scale=BENCH_SCALE)
            rows.append([
                key.upper(),
                f"{spec.paper_edges / 1e6:.1f}M",
                f"{spec.paper_size_mb:.1f}",
                f"{edges.shape[0]}",
                f"{spec.exponent:.2f}",
            ])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    text = fmt_table(
        ["Dataset", "|R| (paper)", "MB (paper)",
         f"|R| (scale={BENCH_SCALE:g})", "exponent"],
        rows,
        title="Table I: datasets (paper values vs scaled analogues)")
    report("table01_datasets", text)
    sizes = [int(r[3]) for r in rows]
    assert sizes == sorted(sizes), "analogues must preserve size ordering"
