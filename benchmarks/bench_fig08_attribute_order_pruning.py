"""Fig. 8: effectiveness of attribute-order pruning.

For Q4-Q6 over every dataset the paper compares the intermediate tuples
produced by Leapfrog under:

- Invalid-Max  — worst order *outside* the hypertree-valid space,
- Valid-Max    — worst order inside the valid space,
- All-Selected — the order HCubeJ's heuristic picks from all orders,
- Valid-Selected — the order ADJ picks from the valid space.

Claim: valid orders beat invalid ones, and selecting within the valid
space beats selecting over everything.
"""

import itertools

import pytest

from repro.core import CardinalityEstimator, optimize_plan
from repro.data import dataset_names
from repro.engines import attach_degree_order
from repro.ghd import optimal_hypertree
from repro.wcoj import leapfrog_join

from .common import (
    BENCH_SAMPLES,
    bench_cluster,
    fmt_table,
    load_case,
    report,
)

QUERIES = ["Q4", "Q5", "Q6"]
#: Order enumeration is 120 Leapfrog runs per test-case; use a smaller
#: scale than the other benches.
FIG8_SCALE_FACTOR = 0.3
#: Per-order work cap; bad orders are cut off and report their partial
#: intermediate count (a lower bound — the paper's frame-top bars).
PER_ORDER_BUDGET = 250_000


def _intermediate(query, db, order) -> tuple[int, bool]:
    """(intermediate tuple count, was the run cut off by the budget?)"""
    from repro.errors import BudgetExceeded
    from repro.wcoj import LeapfrogStats

    stats = LeapfrogStats()
    try:
        leapfrog_join(query, db, order, budget=PER_ORDER_BUDGET,
                      stats=stats)
    except BudgetExceeded:
        return stats.total_intermediate, True
    return stats.total_intermediate, False


@pytest.mark.parametrize("query_name", QUERIES)
def test_fig08_order_pruning(benchmark, query_name):
    from .common import BENCH_SCALE
    scale = BENCH_SCALE * FIG8_SCALE_FACTOR
    tree = optimal_hypertree(load_case("wb", query_name, scale)[0])

    def run():
        rows = []
        capped_flags = []
        for ds in dataset_names():
            query, db = load_case(ds, query_name, scale)
            valid = set(tree.valid_attribute_orders())
            invalid_max = valid_max = 0
            any_capped = False
            for order in itertools.permutations(query.attributes):
                tuples, capped = _intermediate(query, db, order)
                any_capped |= capped
                if order in valid:
                    valid_max = max(valid_max, tuples)
                else:
                    invalid_max = max(invalid_max, tuples)
            all_selected, _ = _intermediate(
                query, db, attach_degree_order(query, db))
            est = CardinalityEstimator(db, num_samples=BENCH_SAMPLES,
                                       seed=0)
            plan = optimize_plan(query, db, bench_cluster(),
                                 hypertree=tree, estimator=est).plan
            valid_selected, _ = _intermediate(query, db,
                                              plan.attribute_order)
            rows.append([ds.upper(), invalid_max, valid_max, all_selected,
                         valid_selected])
            capped_flags.append(any_capped)
        return rows, capped_flags

    rows, capped_flags = benchmark.pedantic(run, rounds=1, iterations=1)
    text = fmt_table(
        ["dataset", "Invalid-Max", "Valid-Max", "All-Selected",
         "Valid-Selected"],
        [[str(c) + ("*" if i == 0 and capped else "")
          for i, c in enumerate(r)]
         for r, capped in zip(rows, capped_flags)],
        title=(f"Fig. 8 — {query_name}: intermediate tuples by "
               f"attribute-order class (scale={scale:g}; '*' = some "
               "orders were budget-capped)"))
    report(f"fig08_{query_name}", text)
    # Paper's headline: the worst valid order never beats the worst
    # invalid order.  Capped rows compare lower bounds, so allow slack.
    for r, capped in zip(rows, capped_flags):
        slack = 1.5 if capped else 1.0
        assert r[2] <= r[1] * slack, f"Valid-Max > Invalid-Max on {r[0]}"
