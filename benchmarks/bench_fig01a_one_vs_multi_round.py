"""Fig. 1(a): one-round vs multi-round joins — shuffled tuples.

The paper plots the number of shuffled tuples of a multi-round binary
join (SparkSQL) against the one-round HCubeJ on (LJ, Q5) and (LJ, Q6):
the multi-round engine shuffles orders of magnitude more because it moves
every intermediate result.
"""

import pytest

from repro.engines import HCubeJ, SparkSQLJoin, run_engine_safely

from .common import (
    WORK_BUDGET,
    bench_cluster,
    fmt_table,
    load_case,
    report,
)

CASES = ["Q5", "Q6"]


@pytest.mark.parametrize("query_name", CASES)
def test_fig01a_shuffled_tuples(benchmark, query_name):
    query, db = load_case("lj", query_name)
    cluster = bench_cluster()

    def run():
        multi = run_engine_safely(
            SparkSQLJoin(budget_tuples=None), query, db, cluster)
        one = run_engine_safely(
            HCubeJ(work_budget=WORK_BUDGET), query, db, cluster)
        return multi, one

    multi, one = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        ["Multi-Round (SparkSQL)", f"{multi.shuffled_tuples}",
         multi.failure or "ok"],
        ["One-Round (HCubeJ)", f"{one.shuffled_tuples}",
         one.failure or "ok"],
    ]
    text = fmt_table(["method", "shuffled tuples", "status"], rows,
                     title=f"Fig. 1(a) — (LJ, {query_name})")
    report(f"fig01a_{query_name}", text)
    if multi.ok and one.ok:
        assert multi.shuffled_tuples > one.shuffled_tuples, (
            "one-round must shuffle fewer tuples than multi-round on "
            "complex joins")
