"""Fig. 10: cost and accuracy of the sampling process on LJ.

The paper sweeps the sampling budget from 2x10^2 to 10^7 on (LJ, Q4/Q5/Q6)
and plots (a) aggregated sampling time and (b) the maximum relative
difference D = max(est, true) / min(est, true), which converges to 1
beyond ~10^4 samples.
"""

import time

import pytest

from repro.core import CardinalityEstimator
from repro.wcoj import leapfrog_join

from .common import WORK_BUDGET, fmt_table, load_case, report

QUERIES = ["Q4", "Q5", "Q6"]
BUDGETS = [20, 100, 1_000, 10_000, 100_000]


@pytest.mark.parametrize("query_name", QUERIES)
def test_fig10_sampling_cost_accuracy(benchmark, query_name):
    query, db = load_case("lj", query_name)
    true = leapfrog_join(query, db, budget=WORK_BUDGET * 4).count

    def run():
        rows = []
        for k in BUDGETS:
            t0 = time.perf_counter()
            est = CardinalityEstimator(db, num_samples=k, seed=1
                                       ).estimate(query)
            elapsed = time.perf_counter() - t0
            hi = max(est.estimate, float(true), 1.0)
            lo = max(1.0, min(est.estimate, float(true)))
            rows.append([f"{k}", f"{elapsed:.3f}", f"{hi / lo:.3f}",
                         "exact" if est.exact else "sampled"])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = fmt_table(
        ["samples", "time (s)", "max D", "mode"],
        rows,
        title=f"Fig. 10 — (LJ, {query_name}): sampling budget sweep "
              f"(true count = {true})")
    report(f"fig10_{query_name}", text)
    # Convergence claim: the largest budget is at least as accurate as
    # the smallest.
    assert float(rows[-1][2]) <= float(rows[0][2]) + 1e-9
    # And the largest budget should be essentially exact (D close to 1).
    assert float(rows[-1][2]) < 1.05
