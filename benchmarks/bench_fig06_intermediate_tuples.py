"""Fig. 6: share of intermediate tuples at the last hypertree nodes.

The paper shows that for Q5/Q6 the extensions into the n-th and (n-1)-th
traversed hypertree nodes dominate the intermediate tuples produced by
Leapfrog — the observation motivating Algorithm 2's reverse-order greedy.
"""

import pytest

from repro.data import dataset_names
from repro.ghd import optimal_hypertree
from repro.wcoj import leapfrog_join

from .common import BENCH_SCALE, WORK_BUDGET, fmt_table, load_case, report

QUERIES = ["Q5", "Q6"]
#: Smaller scale so the dense EN/OK analogues finish within budget.
FIG6_SCALE_FACTOR = 0.5


@pytest.mark.parametrize("query_name", QUERIES)
def test_fig06_level_shares(benchmark, query_name):
    scale = BENCH_SCALE * FIG6_SCALE_FACTOR
    tree = optimal_hypertree(load_case("wb", query_name, scale)[0])
    traversal = next(tree.traversal_orders())
    order = tree.attribute_order(traversal)
    bags = {b.index: b for b in tree.bags}
    # Depth ranges per traversed node under this attribute order.
    node_depths: list[list[int]] = []
    seen: set[str] = set()
    for idx in traversal:
        depths = [d for d, a in enumerate(order)
                  if a in bags[idx].attributes and a not in seen]
        seen |= {order[d] for d in depths}
        node_depths.append(depths)

    def run():
        rows = []
        for ds in dataset_names():
            query, db = load_case(ds, query_name, scale)
            try:
                stats = leapfrog_join(query, db, order,
                                      budget=WORK_BUDGET).stats
            except Exception:
                rows.append([ds.upper(), "-", "-", "-"])
                continue
            total = max(1, stats.total_tuples)
            shares = [sum(stats.level_tuples[d] for d in depths) / total
                      for depths in node_depths]
            nth = shares[-1]
            n1th = shares[-2] if len(shares) >= 2 else 0.0
            rest = max(0.0, 1.0 - nth - n1th)
            rows.append([ds.upper(), f"{nth:.3f}", f"{n1th:.3f}",
                         f"{rest:.3f}"])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = fmt_table(
        ["dataset", "(n)th", "(n-1)th", "rest"],
        rows,
        title=(f"Fig. 6 — {query_name}: fraction of intermediate tuples "
               f"by traversed node (ord={'<'.join(order)})"))
    report(f"fig06_{query_name}", text)
    # Paper's claim: the last two nodes dominate on most datasets.
    dominated = sum(1 for r in rows if r[1] != "-"
                    and float(r[1]) + float(r[2]) > 0.5)
    measured = sum(1 for r in rows if r[1] != "-")
    assert measured == 0 or dominated >= measured / 2
