"""Fig. 1(b): Communication-First vs Co-Opt cost split on (LJ, Q5/Q6).

The paper shows the comm-first strategy (HCubeJ) achieving small
communication but huge computation, while co-optimization (ADJ) trades a
little communication and pre-computing for a large computation saving.
"""

import pytest

from repro.engines import ADJ, HCubeJ, run_engine_safely

from .common import (
    BENCH_SAMPLES,
    WORK_BUDGET,
    bench_cluster,
    fmt_seconds,
    fmt_table,
    load_case,
    report,
)

CASES = ["Q5", "Q6"]


@pytest.mark.parametrize("query_name", CASES)
def test_fig01b_cost_split(benchmark, query_name):
    query, db = load_case("lj", query_name)
    cluster = bench_cluster()

    def run():
        comm_first = run_engine_safely(
            HCubeJ(work_budget=WORK_BUDGET), query, db, cluster)
        co_opt = run_engine_safely(
            ADJ(num_samples=BENCH_SAMPLES, work_budget=WORK_BUDGET),
            query, db, cluster)
        return comm_first, co_opt

    comm_first, co_opt = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for label, r in (("Comm-First", comm_first), ("Co-Opt", co_opt)):
        b = r.breakdown
        rows.append([
            label,
            fmt_seconds(b.communication, r.failure),
            fmt_seconds(b.precompute + b.communication, r.failure),
            fmt_seconds(b.computation, r.failure),
            fmt_seconds(b.total, r.failure),
        ])
    text = fmt_table(
        ["strategy", "Comm (s)", "Pre+Comm (s)", "Comp (s)", "Total (s)"],
        rows, title=f"Fig. 1(b) — (LJ, {query_name}), model-seconds")
    report(f"fig01b_{query_name}", text)
    if comm_first.ok and co_opt.ok and co_opt.extra.get("precomputed"):
        assert co_opt.breakdown.computation < comm_first.breakdown.computation
