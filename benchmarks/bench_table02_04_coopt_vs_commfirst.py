"""Tables II-IV: Co-Optimization vs Communication-First decomposition.

For AS (Table II), LJ (Table III) and OK (Table IV) on Q4-Q6 the paper
breaks the total into Optimization / Pre-Computing / Communication /
Computation.  Co-Opt pays more optimization and some pre-computing +
communication to slash computation; Comm-First times out on most cases.
"""

import pytest

from repro.engines import ADJ, HCubeJ, run_engine_safely

from .common import (
    BENCH_SAMPLES,
    WORK_BUDGET,
    bench_cluster,
    fmt_seconds,
    fmt_table,
    load_case,
    report,
)

DATASETS = {"as": "Table II", "lj": "Table III", "ok": "Table IV"}
QUERIES = ["Q4", "Q5", "Q6"]


@pytest.mark.parametrize("dataset", list(DATASETS))
def test_tables_coopt_vs_commfirst(benchmark, dataset):
    cluster = bench_cluster()

    def run():
        rows = []
        for qname in QUERIES:
            query, db = load_case(dataset, qname)
            co = run_engine_safely(
                ADJ(num_samples=BENCH_SAMPLES, work_budget=WORK_BUDGET),
                query, db, cluster)
            cf = run_engine_safely(
                HCubeJ(work_budget=WORK_BUDGET), query, db, cluster)
            b, f = co.breakdown, co.failure
            rows.append([
                qname,
                fmt_seconds(b.optimization, f),
                fmt_seconds(b.precompute, f),
                fmt_seconds(b.communication, f),
                fmt_seconds(b.computation, f),
                fmt_seconds(b.total, f),
                fmt_seconds(cf.breakdown.optimization, cf.failure),
                fmt_seconds(cf.breakdown.communication, cf.failure),
                fmt_seconds(cf.breakdown.computation, cf.failure),
                fmt_seconds(cf.breakdown.total, cf.failure),
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    headers = ["query",
               "co:Opt", "co:Pre", "co:Comm", "co:Comp", "co:Total",
               "cf:Opt", "cf:Comm", "cf:Comp", "cf:Total"]
    text = fmt_table(
        headers, rows,
        title=(f"{DATASETS[dataset]} — Co-Opt vs Comm-First on "
               f"{dataset.upper()} (model-seconds)"))
    report(f"table_coopt_{dataset}", text)
    # Qualitative checks where both strategies completed: co-opt spends
    # more on optimization, comm-first spends nothing on pre-computing.
    for r in rows:
        if ">" not in r[1] and ">" not in r[6]:
            assert float(r[1]) >= float(r[6])
