"""Fig. 11: ADJ speed-up when growing the cluster from 1 to 28 workers.

The paper reports near-linear speed-up on Q2-Q4/Q6, limited scalability
on the cheap Q1 (system overhead dominates) and on Q5 (skew stragglers).
Speed-up here is model-seconds(1 worker) / model-seconds(w workers).
"""

import pytest

from repro.engines import ADJ, run_engine_safely

from .common import (
    BENCH_SAMPLES,
    WORK_BUDGET,
    bench_cluster,
    fmt_table,
    load_case,
    report,
)

QUERIES = ["Q1", "Q2", "Q3", "Q4", "Q5", "Q6"]
WORKER_COUNTS = [1, 2, 4, 8, 16, 28]


@pytest.mark.parametrize("query_name", QUERIES)
def test_fig11_speedup(benchmark, query_name):
    query, db = load_case("lj", query_name)

    def run():
        totals = {}
        for w in WORKER_COUNTS:
            cluster = bench_cluster(workers=w)
            result = run_engine_safely(
                ADJ(num_samples=BENCH_SAMPLES, work_budget=WORK_BUDGET * 4),
                query, db, cluster)
            totals[w] = result.breakdown.total if result.ok else None
        return totals

    totals = benchmark.pedantic(run, rounds=1, iterations=1)
    base = totals[WORKER_COUNTS[0]]
    rows = []
    for w in WORKER_COUNTS:
        t = totals[w]
        speedup = (base / t) if (base and t) else None
        rows.append([str(w),
                     f"{t:.4f}" if t is not None else "-",
                     f"{speedup:.2f}" if speedup else "-"])
    text = fmt_table(["workers", "total (s)", "speed-up"], rows,
                     title=f"Fig. 11 — (LJ, {query_name}): ADJ speed-up")
    report(f"fig11_{query_name}", text)
    if base and totals[WORKER_COUNTS[-1]]:
        assert totals[WORKER_COUNTS[-1]] <= base, \
            "more workers must not be slower in model-seconds"
