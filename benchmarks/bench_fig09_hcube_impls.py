"""Fig. 9: HCube implementations — Push vs Pull vs Merge on Q2.

The paper reports communication improvements of up to two orders of
magnitude for Pull/Merge over Push, and a further computation win for
Merge because tries arrive pre-built.
"""

import pytest

from repro.data import dataset_names
from repro.distributed import HypercubeGrid, hcube_shuffle, optimize_shares
from repro.wcoj import leapfrog_join

from .common import bench_cluster, fmt_table, load_case, report

IMPLS = ["push", "pull", "merge"]


def _run_impl(query, db, cluster, impl):
    sizes = {a.relation: len(db[a.relation]) for a in query.atoms}
    shares = optimize_shares(query, sizes, cluster.num_workers)
    grid = HypercubeGrid(query, shares, cluster.num_workers)
    ledger = cluster.new_ledger()
    shuffle = hcube_shuffle(query, db, grid, impl=impl)
    ledger.charge_shuffle(shuffle.stats, impl)
    rate = (cluster.params.trie_merge_rate if shuffle.prebuilt_tries
            else cluster.params.trie_build_rate)
    ledger.charge_worker_work(
        {w: float(l) for w, l in shuffle.worker_loads.items()}, rate=rate)
    worker_work = {w: 0.0 for w in range(cluster.num_workers)}
    for cube, cdb in enumerate(shuffle.cube_databases):
        res = leapfrog_join(shuffle.local_query, cdb)
        worker_work[grid.worker_of_cube(cube)] += res.stats.intersection_work
    ledger.charge_worker_work(worker_work)
    return ledger.comm_seconds, ledger.comp_seconds


def test_fig09_hcube_implementations(benchmark):
    cluster = bench_cluster()

    def run():
        rows = []
        for ds in dataset_names():
            query, db = load_case(ds, "Q2")
            row = [ds.upper()]
            for impl in IMPLS:
                comm, comp = _run_impl(query, db, cluster, impl)
                row.extend([f"{comm:.4f}", f"{comp:.4f}"])
            rows.append(row)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    headers = ["dataset"]
    for impl in IMPLS:
        headers += [f"{impl} comm(s)", f"{impl} comp(s)"]
    text = fmt_table(headers, rows,
                     title="Fig. 9 — HCube implementations on Q2 "
                           "(model-seconds)")
    report("fig09_hcube_impls", text)
    for r in rows:
        push_comm, pull_comm, merge_comm = (float(r[1]), float(r[3]),
                                            float(r[5]))
        push_comp, merge_comp = float(r[2]), float(r[6])
        assert pull_comm < push_comm, f"pull must beat push comm on {r[0]}"
        assert merge_comm <= pull_comm + 1e-9
        assert merge_comp < push_comp, f"merge must beat push comp on {r[0]}"
