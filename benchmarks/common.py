"""Shared infrastructure for the experiment benches.

Every bench regenerates one table or figure of the paper.  Results are
printed (visible with ``pytest -s``) *and* written to
``benchmarks/results/<name>.txt`` so ``--benchmark-only`` runs leave a
readable record; EXPERIMENTS.md summarizes them against the paper.

Scales: the paper's graphs are 13M-234M edges; the analogues default to
``REPRO_BENCH_SCALE`` (1.2e-5) of that so the whole bench suite finishes
in minutes on one machine.  Budgets replace the paper's 12-hour timeout.
"""

from __future__ import annotations

import functools
import os
from pathlib import Path

from repro.distributed import Cluster
from repro.engines import EngineOptions, registry
from repro.workloads import make_testcase

RESULTS_DIR = Path(__file__).parent / "results"

#: Default edge-count scale for benches (fraction of the paper's sizes).
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.2e-5"))

#: Worker count for benches (the paper uses 28).
BENCH_WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "8"))

#: Leapfrog work budget standing in for the paper's 12-hour timeout.
WORK_BUDGET = int(float(os.environ.get("REPRO_BENCH_WORK_BUDGET", "2e7")))

#: Intermediate-tuple budgets for the multi-round baselines.
SPARKSQL_BUDGET = int(float(os.environ.get("REPRO_BENCH_SPARK_BUDGET",
                                           "2e6")))
BIGJOIN_BUDGET = int(float(os.environ.get("REPRO_BENCH_BIGJOIN_BUDGET",
                                          "1.5e6")))

#: Samples for ADJ's optimizer inside benches.
BENCH_SAMPLES = int(os.environ.get("REPRO_BENCH_SAMPLES", "30"))

#: Per-worker memory in tuples for the Fig. 12 memory-constrained runs.
#: Sized like the paper's fixed 28 GB/worker: the mid-size datasets fit
#: under the Push implementation's footprint, EN/OK do not (their OOM is
#: the paper's Fig. 12(f) story), and the Merge implementation fits
#: everywhere.  Scales with REPRO_BENCH_SCALE.
BENCH_MEMORY = int(float(os.environ.get(
    "REPRO_BENCH_MEMORY", str(16_000 * BENCH_SCALE / 1.2e-5))))


#: Budgets relative to a test-case's total input tuples — the analogue
#: of the paper's fixed 12-hour wall, which allows an (input-relative)
#: bounded amount of intermediate materialization for every method.
SPARKSQL_INPUT_FACTOR = 10
BIGJOIN_INPUT_FACTOR = 8

#: The Fig. 12 headline lineup (the paper's five methods, in order).
#: A newly registered engine must not silently join the figure, so this
#: is deliberately pinned rather than derived from the registry.
# repro: lint-ignore[registry-consistency] Fig. 12 is the paper's fixed five-method lineup in publication order
FIG12_ENGINES = ("sparksql", "bigjoin", "hcubej", "hcubej-cache", "adj")


def bench_cluster(workers: int | None = None,
                  memory_tuples: float | None = None) -> Cluster:
    return Cluster(num_workers=workers or BENCH_WORKERS,
                   memory_tuples_per_worker=memory_tuples)


def bench_options(total_input: int | None = None,
                  **overrides) -> EngineOptions:
    """Bench-calibrated engine options.

    With ``total_input`` the multi-round budgets scale with the input
    (the Fig. 12 convention); otherwise the absolute env-var budgets
    apply.  ``overrides`` are EngineOptions field names.
    """
    opts = EngineOptions(
        samples=BENCH_SAMPLES,
        work_budget=WORK_BUDGET,
        budget_tuples=(SPARKSQL_INPUT_FACTOR * total_input
                       if total_input else SPARKSQL_BUDGET),
        budget_bindings=(BIGJOIN_INPUT_FACTOR * total_input
                         if total_input else BIGJOIN_BUDGET))
    return opts.merged_with(**overrides) if overrides else opts


def engine_lineup(total_input: int | None = None,
                  names=FIG12_ENGINES,
                  options: EngineOptions | None = None) -> list:
    """Registry-built engines for a bench run (one source of truth).

    Every engine receives the same :class:`EngineOptions`; each picks
    only the fields it declares, so the lineup stays consistent as
    engines are added to the registry.
    """
    opts = bench_options(total_input)
    if options is not None:
        opts = opts.merged_with(options)
    return [registry.create(name, opts) for name in names]


def lineup_headers(names=FIG12_ENGINES) -> list[str]:
    """Human-facing engine names for table headers, from the registry."""
    return [registry.display_name(name) for name in names]


@functools.lru_cache(maxsize=64)
def load_case(dataset: str, query_name: str, scale: float | None = None):
    """Cached test-case loading (datasets are reused across benches)."""
    return make_testcase(dataset, query_name,
                         scale=BENCH_SCALE if scale is None else scale)


def fmt_seconds(value: float | None, failure: str | None = None) -> str:
    if failure == "budget":
        return ">BUDGET"
    if failure == "oom":
        return "OOM"
    if value is None:
        return "-"
    return f"{value:10.4f}"


def fmt_table(headers: list[str], rows: list[list[str]],
              title: str = "") -> str:
    widths = [max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows
              else len(str(h)) for i, h in enumerate(headers)]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(c).rjust(w)
                               for c, w in zip(row, widths)))
    return "\n".join(lines)


def report(name: str, text: str) -> None:
    """Print an experiment table and persist it under benchmarks/results."""
    print(f"\n=== {name} ===")
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    header = (f"# scale={BENCH_SCALE} workers={BENCH_WORKERS} "
              f"work_budget={WORK_BUDGET}\n")
    path.write_text(header + text + "\n")
