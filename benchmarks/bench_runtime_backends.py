"""Runtime backends x transports: modeled vs *measured*, real bytes.

Unlike the paper-figure benches (which report model-seconds from the
cost ledgers), this bench actually executes a one-round HCube plan on the
``serial``, ``threads`` and ``processes`` backends of
:mod:`repro.runtime`, under all three data-plane transports (``pickle``
partitions, zero-copy ``shm`` descriptors, and loopback ``tcp``
block-store descriptors), sweeping worker counts.  It reports the
modeled total, the measured wall-clock, the measured speedup over
``serial`` at the same worker count and transport, and the bytes the
coordinator actually serialized into task payloads (``shipped``) — the
column that shrinks under ``shm`` and ``tcp`` (workers fetch partitions
from the block store instead; that traffic lands in ``fetched``).

Workload: triangle counting (Q1) on a synthetic heavy-tailed (skewed)
power-law graph — hub vertices make per-worker Leapfrog work expensive
enough to amortize the process-pool pickling overhead.  On a machine
with >= 4 usable cores the ``processes`` row at 4 workers should show a
>= 1.3x measured speedup over ``serial``; with fewer cores (CI
containers are often pinned to 1) the bench still runs and the table
records the honest — smaller — ratio next to the available-core count.

Run:  PYTHONPATH=src python benchmarks/bench_runtime_backends.py
      [--json BENCH_runtime.json]
Env:  REPRO_BENCH_SKEW_EDGES (default 12000),
      REPRO_BENCH_RUNTIME_WORKERS (default "1,2,4").

``--json`` writes the per-(backend, transport, workers) records so the
perf trajectory is machine-readable across PRs.
"""

from __future__ import annotations

import argparse
import json
import os
import time

from common import fmt_table, report

from repro.data import Database, Relation
from repro.data.datasets import generate_power_law_edges
from repro.distributed import Cluster
from repro.engines import HCubeJ, run_engine_safely
from repro.query import paper_query
from repro.runtime import available_parallelism, create_executor

SKEW_EDGES = int(float(os.environ.get("REPRO_BENCH_SKEW_EDGES", "12000")))
WORKER_SWEEP = tuple(
    int(w) for w in
    os.environ.get("REPRO_BENCH_RUNTIME_WORKERS", "1,2,4").split(","))
BACKENDS = ("serial", "threads", "processes")
TRANSPORT_SWEEP = ("pickle", "shm", "tcp")


def skew_testcase():
    """Triangle query over one synthetic skewed (power-law) graph."""
    query = paper_query("Q1")
    edges = generate_power_law_edges(
        SKEW_EDGES, num_nodes=max(64, SKEW_EDGES // 6),
        exponent=1.7, seed=7, symmetric=True)
    db = Database(Relation(atom.relation, ("src", "dst"), edges,
                           dedup=True)
                  for atom in query.atoms)
    return query, db


def run_backends():
    """Sweep backends x transports x workers; return JSON-able records."""
    query, db = skew_testcase()
    records = []
    counts = set()
    serial_measured: dict[tuple[int, str], float] = {}
    for workers in WORKER_SWEEP:
        cluster = Cluster(num_workers=workers)
        for backend in BACKENDS:
            for transport in TRANSPORT_SWEEP:
                executor = create_executor(backend, max_workers=workers,
                                           transport=transport)
                try:
                    start = time.perf_counter()
                    result = run_engine_safely(HCubeJ(), query, db,
                                               cluster, executor=executor)
                    measured = time.perf_counter() - start
                finally:
                    executor.close()
                assert result.ok, \
                    f"{backend}/{transport} failed: {result.failure}"
                counts.add(result.count)
                if backend == "serial":
                    serial_measured[(workers, transport)] = measured
                plane = result.extra.get("data_plane", {})
                tel = result.telemetry
                records.append({
                    "backend": backend,
                    "transport": transport,
                    "workers": workers,
                    "count": result.count,
                    "modeled_seconds": result.breakdown.total,
                    "measured_seconds": measured,
                    "shuffle_seconds":
                        tel.phase_seconds.get("shuffle", 0.0),
                    "publish_seconds":
                        tel.phase_seconds.get("publish", 0.0),
                    "join_seconds":
                        tel.phase_seconds.get("local_join", 0.0),
                    "speedup_vs_serial":
                        serial_measured[(workers, transport)] / measured,
                    "coordinator_shipped_bytes":
                        plane.get("shipped_bytes", 0),
                    "published_bytes": plane.get("published_bytes", 0),
                    "fetched_bytes": plane.get("fetched_bytes", 0),
                    "freed_blocks": plane.get("freed_blocks", 0),
                })
    assert len(counts) == 1, f"backends disagree: {counts}"
    # The descriptor-only planes must move strictly fewer coordinator-
    # pickled bytes than the pickle plane on the same (backend, workers)
    # run — and under tcp the partition bytes must show up as block
    # store fetches instead.
    by_key = {(r["backend"], r["workers"], r["transport"]): r
              for r in records}
    for workers in WORKER_SWEEP:
        for backend in BACKENDS:
            pik = by_key[(backend, workers, "pickle")]
            for transport in ("shm", "tcp"):
                rec = by_key[(backend, workers, transport)]
                assert (rec["coordinator_shipped_bytes"]
                        < pik["coordinator_shipped_bytes"]), \
                    (f"{transport} did not reduce shipped bytes at "
                     f"{backend}/{workers}")
            tcp = by_key[(backend, workers, "tcp")]
            assert tcp["fetched_bytes"] >= tcp["published_bytes"] > 0, \
                f"tcp fetches not accounted at {backend}/{workers}"
    return records


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write machine-readable records "
                             "(e.g. BENCH_runtime.json)")
    args = parser.parse_args(argv)
    cores = available_parallelism()
    records = run_backends()
    rows = [[r["backend"], r["transport"], r["workers"],
             f"{r['count']:,}",
             f"{r['modeled_seconds']:.4f}",
             f"{r['measured_seconds']:.4f}",
             f"{r['coordinator_shipped_bytes']:,}",
             f"{r['fetched_bytes']:,}",
             f"{r['speedup_vs_serial']:.2f}x"]
            for r in records]
    table = fmt_table(
        ["backend", "transport", "workers", "count", "modeled_s",
         "measured_s", "shipped_B", "fetched_B", "speedup_vs_serial"],
        rows,
        title=(f"Runtime backends x transports on the synthetic skew "
               f"graph ({SKEW_EDGES:,} edges, {cores} usable core(s))"))
    note = ("\nNote: 'modeled_s' is the cost-model total for the "
            "simulated 28-node-style cluster; 'measured_s' is real "
            "wall-clock on this machine.  'shipped_B' counts bytes the "
            "coordinator serialized into task payloads — full partition "
            "matrices under the pickle transport, (block, dtype, shape, "
            "row-index) descriptors under shm and tcp.  'fetched_B' "
            "counts bytes workers pulled back out of the tcp block "
            "store (zero for the other transports: shm readers attach "
            "segments directly).  The processes backend needs >= as "
            "many usable cores as workers to show its speedup; this "
            f"machine exposes {cores}.")
    report("runtime_backends", table + note)
    if args.json:
        payload = {
            "bench": "runtime_backends",
            "skew_edges": SKEW_EDGES,
            "usable_cores": cores,
            "records": records,
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"wrote {args.json} ({len(records)} records)")


def test_bench_runtime_backends():
    """Tier-2 entry point: the sweep runs and backends agree."""
    main([])


if __name__ == "__main__":
    main()
