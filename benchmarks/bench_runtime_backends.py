"""Runtime backends: modeled vs *measured* seconds, real speedup.

Unlike the paper-figure benches (which report model-seconds from the
cost ledgers), this bench actually executes a one-round HCube plan on the
``serial``, ``threads`` and ``processes`` backends of
:mod:`repro.runtime`, sweeping worker counts, and reports both columns
side by side: the modeled total and the measured wall-clock, plus the
measured speedup of each backend over ``serial`` at the same worker
count.

Workload: triangle counting (Q1) on a synthetic heavy-tailed (skewed)
power-law graph — hub vertices make per-worker Leapfrog work expensive
enough to amortize the process-pool pickling overhead.  On a machine
with >= 4 usable cores the ``processes`` row at 4 workers should show a
>= 1.3x measured speedup over ``serial``; with fewer cores (CI
containers are often pinned to 1) the bench still runs and the table
records the honest — smaller — ratio next to the available-core count.

Run:  PYTHONPATH=src python benchmarks/bench_runtime_backends.py
Env:  REPRO_BENCH_SKEW_EDGES (default 12000),
      REPRO_BENCH_RUNTIME_WORKERS (default "1,2,4").
"""

from __future__ import annotations

import os
import time

from common import fmt_table, report

from repro.data import Database, Relation
from repro.data.datasets import generate_power_law_edges
from repro.distributed import Cluster
from repro.engines import HCubeJ, run_engine_safely
from repro.query import paper_query
from repro.runtime import available_parallelism, create_executor

SKEW_EDGES = int(float(os.environ.get("REPRO_BENCH_SKEW_EDGES", "12000")))
WORKER_SWEEP = tuple(
    int(w) for w in
    os.environ.get("REPRO_BENCH_RUNTIME_WORKERS", "1,2,4").split(","))
BACKENDS = ("serial", "threads", "processes")


def skew_testcase():
    """Triangle query over one synthetic skewed (power-law) graph."""
    query = paper_query("Q1")
    edges = generate_power_law_edges(
        SKEW_EDGES, num_nodes=max(64, SKEW_EDGES // 6),
        exponent=1.7, seed=7, symmetric=True)
    db = Database(Relation(atom.relation, ("src", "dst"), edges,
                           dedup=True)
                  for atom in query.atoms)
    return query, db


def run_backends():
    query, db = skew_testcase()
    rows = []
    counts = set()
    serial_measured: dict[int, float] = {}
    for workers in WORKER_SWEEP:
        cluster = Cluster(num_workers=workers)
        for backend in BACKENDS:
            executor = create_executor(backend, max_workers=workers)
            try:
                start = time.perf_counter()
                result = run_engine_safely(HCubeJ(), query, db, cluster,
                                           executor=executor)
                measured = time.perf_counter() - start
            finally:
                executor.close()
            assert result.ok, f"{backend} failed: {result.failure}"
            counts.add(result.count)
            if backend == "serial":
                serial_measured[workers] = measured
            speedup = serial_measured[workers] / measured
            tel = result.telemetry
            rows.append([
                backend,
                workers,
                f"{result.count:,}",
                f"{result.breakdown.total:.4f}",
                f"{measured:.4f}",
                f"{tel.phase_seconds.get('shuffle', 0.0):.4f}",
                f"{tel.phase_seconds.get('local_join', 0.0):.4f}",
                f"{speedup:.2f}x",
            ])
    assert len(counts) == 1, f"backends disagree: {counts}"
    return rows


def main() -> None:
    cores = available_parallelism()
    rows = run_backends()
    table = fmt_table(
        ["backend", "workers", "count", "modeled_s", "measured_s",
         "shuffle_s", "join_s", "speedup_vs_serial"],
        rows,
        title=(f"Runtime backends on the synthetic skew graph "
               f"({SKEW_EDGES:,} edges, {cores} usable core(s))"))
    note = ("\nNote: 'modeled_s' is the cost-model total for the "
            "simulated 28-node-style cluster; 'measured_s' is real "
            "wall-clock on this machine.  The processes backend needs "
            ">= as many usable cores as workers to show its speedup; "
            f"this machine exposes {cores}.")
    report("runtime_backends", table + note)


def test_bench_runtime_backends():
    """Tier-2 entry point: the sweep runs and backends agree."""
    main()


if __name__ == "__main__":
    main()
