"""Runtime backends x transports x pipeline: modeled vs *measured*.

Unlike the paper-figure benches (which report model-seconds from the
cost ledgers), this bench actually executes a one-round HCube plan on
the ``serial``, ``threads`` and ``processes`` backends of
:mod:`repro.runtime`, under all three data-plane transports (``pickle``
partitions, zero-copy ``shm`` descriptors, and loopback ``tcp``
block-store descriptors), sweeping worker counts — and, since PR 5,
with pipelined epochs both **on** (routing parallelized, publish
overlapped with execution) and **off** (the historical strict
route -> publish -> execute barriers), so the pipelining win is
machine-readable from the first run.

Columns: the modeled total, the measured wall-clock, the measured
speedup over ``serial`` at the same (workers, transport, pipeline), the
bytes the coordinator serialized into task payloads (``shipped`` — the
column that shrinks under ``shm``/``tcp``), and ``overlap_s`` — the
wall-clock window during which task production (routing/publish/mint)
and task execution coexisted, zero by construction with the pipeline
off.

Workload: triangle counting (Q1) on a synthetic heavy-tailed (skewed)
power-law graph — hub vertices make per-worker Leapfrog work expensive
enough to amortize the process-pool pickling overhead.  On a machine
with >= 4 usable cores the ``processes`` row at 4 workers should show a
>= 1.3x measured speedup over ``serial``, and pipeline=on should be
measurably faster than pipeline=off for ``processes``+``shm`` (the
coordinator's publish memcpy hides behind worker execution); with fewer
cores (CI containers are often pinned to 1) the bench still runs and
the table records the honest — smaller — ratios next to the
available-core count.

Since PR 7 the bench also sweeps the :mod:`repro.kernels` layer —
``wcoj`` vs ``binary`` vs ``adaptive`` — on two deliberately opposed
workloads: an *acyclic* 2-path (Q7) over a sparse uniform graph, where
the vectorized hash-join kernel wins by an order of magnitude, and the
*cyclic* skewed triangle (Q1), where the binary plan's quadratic
intermediate makes Leapfrog the only sane choice.  The sweep asserts
all kernels agree on counts and that ``adaptive`` never loses to the
worst pure kernel.

Since PR 10 the bench can also sweep the :mod:`repro.service` layer
(``--service-json`` / ``--only-service``): cold vs warm-cache latency
for one query through a warm :class:`QueryService`, then sustained
queries/sec at client concurrency 1/4/8 — once with the result cache
on (server-side cache-hit throughput) and once bypassing it (real
concurrent executions multiplexed onto the shared warm cluster).

Run:  PYTHONPATH=src python benchmarks/bench_runtime_backends.py
      [--json BENCH_runtime.json] [--kernels-json BENCH_kernels.json]
      [--only-kernels] [--trace-dir traces/] [--profile-dir profiles/]
      [--service-json BENCH_service.json] [--only-service]

``--trace-dir`` additionally writes one Chrome trace-event JSON per
(backend, transport, workers, pipeline) config — the pipelined overlap
window is directly visible in Perfetto as worker-task spans crossing
the coordinator's publish spans.  ``--profile-dir`` runs an EXPLAIN
ANALYZE pass over the two kernel workloads (threads backend, so the
phases have measured wall-clock) and writes one ``profile_<name>.json``
each plus a combined ``BENCH_profile.json`` — the per-phase
modeled-vs-measured breakdown, machine-readable across PRs.
Env:  REPRO_BENCH_SKEW_EDGES (default 12000),
      REPRO_BENCH_KERNEL_EDGES (default 30000),
      REPRO_BENCH_RUNTIME_WORKERS (default "1,2,4"),
      REPRO_BENCH_HOSTS (optional "host:port,..." — adds a
      remote-backend sweep against running `repro serve` agents).

``--json`` writes the per-(backend, transport, workers, pipeline)
records and ``--kernels-json`` the per-(workload, kernel) records so
the perf trajectory is machine-readable across PRs.
"""

from __future__ import annotations

import argparse
import json
import os
import time

from common import fmt_table, report

from repro.data import Database, Relation
from repro.data.datasets import generate_erdos_renyi_edges, \
    generate_power_law_edges
from repro.distributed import Cluster
from repro.engines import HCubeJ, run_engine_safely
from repro.kernels import available_kernels
from repro.obs.tracing import NOOP_TRACER, Tracer, use_tracer, \
    write_chrome_trace
from repro.query import paper_query
from repro.runtime import available_parallelism, available_transports, \
    create_executor

SKEW_EDGES = int(float(os.environ.get("REPRO_BENCH_SKEW_EDGES", "12000")))
KERNEL_EDGES = int(float(os.environ.get("REPRO_BENCH_KERNEL_EDGES",
                                        "30000")))
#: Best-of-N wall-clock per (workload, kernel) config.
KERNEL_REPS = 3
WORKER_SWEEP = tuple(
    int(w) for w in
    os.environ.get("REPRO_BENCH_RUNTIME_WORKERS", "1,2,4").split(","))
BACKENDS = ("serial", "threads", "processes")
TRANSPORT_SWEEP = available_transports()
PIPELINE_SWEEP = (False, True)
#: Optional running worker agents for a remote-backend leg.
REMOTE_HOSTS = os.environ.get("REPRO_BENCH_HOSTS") or None


def skew_testcase():
    """Triangle query over one synthetic skewed (power-law) graph."""
    query = paper_query("Q1")
    edges = generate_power_law_edges(
        SKEW_EDGES, num_nodes=max(64, SKEW_EDGES // 6),
        exponent=1.7, seed=7, symmetric=True)
    db = Database(Relation(atom.relation, ("src", "dst"), edges,
                           dedup=True)
                  for atom in query.atoms)
    return query, db


def path_testcase():
    """Acyclic 2-path (Q7) over a sparse uniform graph (avg degree 1).

    Sized so the greedy join-size estimate stays under the adaptive
    planner's blowup limit: the hash-join kernel is the right call, and
    Leapfrog pays one Python-level iteration per distinct binding of
    the first attribute.
    """
    query = paper_query("Q7")
    edges = generate_erdos_renyi_edges(
        KERNEL_EDGES, num_nodes=max(64, KERNEL_EDGES), seed=11,
        symmetric=False)
    db = Database(Relation(atom.relation, ("src", "dst"), edges,
                           dedup=True)
                  for atom in query.atoms)
    return query, db


def run_kernels():
    """Sweep kernels over one acyclic and one cyclic workload.

    Serial, one worker, inline path: wall-clock differences are pure
    kernel differences (no transport or pool noise).  Asserts all
    kernels agree on counts and ``adaptive`` never loses to the worst
    pure kernel.
    """
    workloads = [("Q7_path_uniform", *path_testcase()),
                 ("Q1_triangle_skew", *skew_testcase())]
    cluster = Cluster(num_workers=1)
    records = []
    for name, query, db in workloads:
        counts = set()
        times: dict[str, float] = {}
        for kernel in available_kernels():
            engine = HCubeJ(kernel=kernel)
            best = float("inf")
            result = None
            for _ in range(KERNEL_REPS):
                start = time.perf_counter()
                result = run_engine_safely(engine, query, db, cluster)
                best = min(best, time.perf_counter() - start)
            assert result.ok, f"{name}/{kernel} failed: {result.failure}"
            counts.add(result.count)
            times[kernel] = best
            records.append({
                "workload": name,
                "kernel": kernel,
                "resolved": result.extra.get("kernel"),
                "reason": result.extra.get("kernel_reason"),
                "count": result.count,
                "best_seconds": best,
            })
        assert len(counts) == 1, f"kernels disagree on {name}: {counts}"
        for rec in records:
            if rec["workload"] == name:
                rec["speedup_vs_wcoj"] = times["wcoj"] / \
                    rec["best_seconds"]
        worst_pure = max(times[k] for k in times if k != "adaptive")
        # Lenient in-bench guard (CI repeats it on the emitted JSON):
        # adaptive is one of the pure kernels plus a selection pass, so
        # losing to the *worst* pure kernel means the planner chose
        # badly — 15% headroom absorbs wall-clock noise.
        assert times["adaptive"] <= worst_pure * 1.15, \
            (f"adaptive lost to the worst pure kernel on {name}: "
             f"{times}")
    return records


def run_profiles(profile_dir) -> list[dict]:
    """EXPLAIN ANALYZE the two kernel workloads; write profile JSONs.

    Goes through the real ``QueryJob.run(profile=True)`` path (scoped
    metrics window, query ids, span slice) on the threads backend so
    every phase row carries a measured wall-clock column.
    """
    from repro.api import JoinSession
    from repro.api.job import QueryJob

    workloads = [("Q7_path_uniform", *path_testcase()),
                 ("Q1_triangle_skew", *skew_testcase())]
    os.makedirs(profile_dir, exist_ok=True)
    docs = []
    with JoinSession(workers=2, backend="threads",
                     transport="pickle") as session:
        for name, query, db in workloads:
            result = QueryJob(session, query, db).run(
                "hcubej", profile=True)
            assert result.ok, f"profile {name} failed: {result.failure}"
            doc = result.profile.as_dict()
            doc["workload"] = name
            path = os.path.join(profile_dir, f"profile_{name}.json")
            with open(path, "w") as fh:
                json.dump(doc, fh, indent=2)
            print(f"wrote {path}")
            docs.append(doc)
    combined = os.path.join(profile_dir, "BENCH_profile.json")
    with open(combined, "w") as fh:
        json.dump({"bench": "profile",
                   "kernel_edges": KERNEL_EDGES,
                   "skew_edges": SKEW_EDGES,
                   "usable_cores": available_parallelism(),
                   "profiles": docs}, fh, indent=2)
    print(f"wrote {combined} ({len(docs)} profiles)")
    return docs


#: Per-thread query repetitions in the service qps sweep.
SERVICE_ROUNDS = 3
SERVICE_CONCURRENCY = (1, 4, 8)


def run_service():
    """Cold vs warm-cache latency, then qps at concurrency 1/4/8.

    One warm :class:`QueryService` on the threads backend serves every
    request.  The qps sweep runs twice per concurrency level: with the
    result cache on (measuring the server's cache-hit throughput) and
    bypassing it (real executions, epoch-isolated on the shared
    executor).  Asserts every concurrent count equals the cold count.
    """
    from concurrent.futures import ThreadPoolExecutor

    from repro.api import RunConfig
    from repro.service import QueryService

    query, db = skew_testcase()
    records = []
    config = RunConfig(workers=max(WORKER_SWEEP), backend="threads",
                       transport="pickle")
    with QueryService(config=config,
                      max_concurrent=max(SERVICE_CONCURRENCY)) as svc:
        start = time.perf_counter()
        cold = svc.execute(query, db)
        cold_s = time.perf_counter() - start
        assert cold.ok, f"cold service run failed: {cold.failure}"
        warm_best = float("inf")
        for _ in range(SERVICE_ROUNDS):
            start = time.perf_counter()
            warm = svc.execute(query, db)
            warm_best = min(warm_best, time.perf_counter() - start)
            assert warm.ok and warm.count == cold.count
            assert warm.extra.get("result_cache") == "hit", \
                "warm repeat missed the result cache"
        records.append({
            "mode": "latency", "concurrency": 1,
            "count": cold.count,
            "cold_seconds": cold_s,
            "warm_seconds": warm_best,
            "warm_speedup": cold_s / warm_best,
        })

        def one_client(use_cache):
            for _ in range(SERVICE_ROUNDS):
                result = svc.execute(query, db, use_cache=use_cache)
                assert result.ok and result.count == cold.count, \
                    f"concurrent run diverged: {result.failure}"
            return SERVICE_ROUNDS

        for cached in (True, False):
            for concurrency in SERVICE_CONCURRENCY:
                with ThreadPoolExecutor(concurrency) as pool:
                    start = time.perf_counter()
                    done = sum(pool.map(
                        lambda _i: one_client(cached),
                        range(concurrency)))
                    elapsed = time.perf_counter() - start
                records.append({
                    "mode": "qps-cached" if cached else "qps-executed",
                    "concurrency": concurrency,
                    "count": cold.count,
                    "queries": done,
                    "seconds": elapsed,
                    "qps": done / elapsed,
                })
        stats = svc.stats()
    for rec in records:
        rec["workers"] = config.workers
        rec["result_cache_entries"] = stats["result_cache_entries"]
    return records


def report_service(records, json_path=None) -> None:
    cores = available_parallelism()
    rows = []
    for r in records:
        if r["mode"] == "latency":
            rows.append(["latency", 1, f"{r['count']:,}",
                         f"{r['cold_seconds']:.4f}",
                         f"{r['warm_seconds']:.4f}",
                         f"{r['warm_speedup']:.1f}x", "-"])
        else:
            rows.append([r["mode"], r["concurrency"],
                         f"{r['count']:,}", "-", "-", "-",
                         f"{r['qps']:.1f}"])
    table = fmt_table(
        ["mode", "clients", "count", "cold_s", "warm_s",
         "warm_speedup", "qps"],
        rows,
        title=(f"QueryService: cold vs warm-cache latency and qps "
               f"({SKEW_EDGES:,}-edge skew triangle, threads backend, "
               f"{cores} usable core(s))"))
    note = ("\nNote: 'qps-cached' serves repeats of one query from the "
            "result cache (zero data-plane bytes per hit); "
            "'qps-executed' bypasses it, so every request is a real "
            "epoch-isolated execution on the shared warm executor.")
    report("service", table + note)
    if json_path:
        payload = {
            "bench": "service",
            "skew_edges": SKEW_EDGES,
            "rounds": SERVICE_ROUNDS,
            "usable_cores": cores,
            "records": records,
        }
        with open(json_path, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"wrote {json_path} ({len(records)} records)")


def _run_once(query, db, cluster, backend, transport, workers,
              pipeline, trace_dir=None) -> dict:
    kwargs = {"hosts": REMOTE_HOSTS} if backend == "remote" else {}
    executor = create_executor(backend, max_workers=workers,
                               transport=transport, pipeline=pipeline,
                               **kwargs)
    tracer = Tracer() if trace_dir else None
    try:
        start = time.perf_counter()
        with use_tracer(tracer if tracer is not None else NOOP_TRACER):
            result = run_engine_safely(HCubeJ(), query, db, cluster,
                                       executor=executor)
        measured = time.perf_counter() - start
    finally:
        executor.close()
    if tracer is not None:
        pipe = "on" if pipeline else "off"
        path = os.path.join(
            trace_dir,
            f"trace_{backend}_{transport}_w{workers}_pipe-{pipe}.json")
        write_chrome_trace(path, tracer.spans)
    assert result.ok, \
        f"{backend}/{transport}/pipeline={pipeline} failed: " \
        f"{result.failure}"
    plane = result.extra.get("data_plane", {})
    tel = result.telemetry
    return {
        "backend": backend,
        "transport": transport,
        "workers": workers,
        "pipeline": "on" if pipeline else "off",
        "count": result.count,
        "modeled_seconds": result.breakdown.total,
        "measured_seconds": measured,
        "shuffle_seconds": tel.phase_seconds.get("shuffle", 0.0),
        "publish_seconds": tel.phase_seconds.get("publish", 0.0),
        "join_seconds": tel.phase_seconds.get("local_join", 0.0),
        "overlap_s": tel.overlap_seconds,
        "coordinator_shipped_bytes": plane.get("shipped_bytes", 0),
        "published_bytes": plane.get("published_bytes", 0),
        "fetched_bytes": plane.get("fetched_bytes", 0),
        "freed_blocks": plane.get("freed_blocks", 0),
    }


def run_backends(trace_dir=None):
    """Sweep backends x transports x workers x pipeline; return records."""
    query, db = skew_testcase()
    records = []
    counts = set()
    serial_measured: dict[tuple[int, str, str], float] = {}
    backends = BACKENDS + (("remote",) if REMOTE_HOSTS else ())
    for workers in WORKER_SWEEP:
        cluster = Cluster(num_workers=workers)
        for backend in backends:
            for transport in TRANSPORT_SWEEP:
                if backend == "remote" and transport == "shm":
                    continue  # agents may not share this host's memory
                for pipeline in PIPELINE_SWEEP:
                    rec = _run_once(query, db, cluster, backend,
                                    transport, workers, pipeline,
                                    trace_dir=trace_dir)
                    counts.add(rec["count"])
                    key = (workers, transport, rec["pipeline"])
                    if backend == "serial":
                        serial_measured[key] = rec["measured_seconds"]
                    rec["speedup_vs_serial"] = (
                        serial_measured.get(key, rec["measured_seconds"])
                        / rec["measured_seconds"])
                    records.append(rec)
    assert len(counts) == 1, f"backends disagree: {counts}"
    # The descriptor-only planes must move strictly fewer coordinator-
    # pickled bytes than the pickle plane on the same (backend, workers,
    # pipeline) run — and under tcp the partition bytes must show up as
    # block store fetches instead.  Pipelining must not change any
    # data-plane total.
    by_key = {(r["backend"], r["workers"], r["transport"], r["pipeline"]):
              r for r in records}
    for workers in WORKER_SWEEP:
        for backend in BACKENDS:
            for pipeline in ("off", "on"):
                pik = by_key[(backend, workers, "pickle", pipeline)]
                for transport in ("shm", "tcp"):
                    rec = by_key[(backend, workers, transport, pipeline)]
                    assert (rec["coordinator_shipped_bytes"]
                            < pik["coordinator_shipped_bytes"]), \
                        (f"{transport} did not reduce shipped bytes at "
                         f"{backend}/{workers}/pipeline={pipeline}")
                tcp = by_key[(backend, workers, "tcp", pipeline)]
                assert tcp["fetched_bytes"] >= tcp["published_bytes"] \
                    > 0, \
                    f"tcp fetches not accounted at {backend}/{workers}"
            for transport in TRANSPORT_SWEEP:
                on = by_key[(backend, workers, transport, "on")]
                off = by_key[(backend, workers, transport, "off")]
                for key in ("count", "coordinator_shipped_bytes",
                            "published_bytes"):
                    assert on[key] == off[key], \
                        (f"pipeline changed {key} at "
                         f"{backend}/{transport}/{workers}")
                assert off["overlap_s"] == 0.0
    return records


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write machine-readable records "
                             "(e.g. BENCH_runtime.json)")
    parser.add_argument("--kernels-json", metavar="PATH", default=None,
                        help="write the kernel-sweep records "
                             "(e.g. BENCH_kernels.json)")
    parser.add_argument("--only-kernels", action="store_true",
                        help="run only the kernel sweep (skip the "
                             "backend x transport x pipeline sweep)")
    parser.add_argument("--trace-dir", metavar="DIR", default=None,
                        help="write one Chrome trace-event JSON per "
                             "(backend, transport, workers, pipeline) "
                             "config into DIR — load in Perfetto to "
                             "see the pipelined overlap window")
    parser.add_argument("--profile-dir", metavar="DIR", default=None,
                        help="EXPLAIN ANALYZE the two kernel workloads "
                             "and write profile_<name>.json plus a "
                             "combined BENCH_profile.json into DIR")
    parser.add_argument("--service-json", metavar="PATH", default=None,
                        help="run the QueryService sweep (cold vs "
                             "warm-cache latency, qps at concurrency "
                             "1/4/8) and write the records (e.g. "
                             "BENCH_service.json)")
    parser.add_argument("--only-service", action="store_true",
                        help="run only the QueryService sweep")
    args = parser.parse_args(argv)
    if args.trace_dir:
        os.makedirs(args.trace_dir, exist_ok=True)
    if args.only_service or args.service_json:
        report_service(run_service(), json_path=args.service_json)
        if args.only_service:
            return
    cores = available_parallelism()
    kernel_records = run_kernels()
    kernel_rows = [[r["workload"], r["kernel"], r["resolved"],
                    f"{r['count']:,}", f"{r['best_seconds']:.4f}",
                    f"{r['speedup_vs_wcoj']:.2f}x"]
                   for r in kernel_records]
    kernel_table = fmt_table(
        ["workload", "kernel", "resolved", "count", "best_s",
         "speedup_vs_wcoj"],
        kernel_rows,
        title=(f"Join kernels on opposed workloads (acyclic "
               f"{KERNEL_EDGES:,}-edge path, cyclic {SKEW_EDGES:,}-edge "
               f"skew triangle; best of {KERNEL_REPS}, serial inline)"))
    report("kernels", kernel_table)
    if args.kernels_json:
        payload = {
            "bench": "kernels",
            "kernel_edges": KERNEL_EDGES,
            "skew_edges": SKEW_EDGES,
            "reps": KERNEL_REPS,
            "usable_cores": cores,
            "records": kernel_records,
        }
        with open(args.kernels_json, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"wrote {args.kernels_json} ({len(kernel_records)} records)")
    if args.profile_dir:
        run_profiles(args.profile_dir)
    if args.only_kernels:
        return
    records = run_backends(trace_dir=args.trace_dir)
    rows = [[r["backend"], r["transport"], r["workers"], r["pipeline"],
             f"{r['count']:,}",
             f"{r['modeled_seconds']:.4f}",
             f"{r['measured_seconds']:.4f}",
             f"{r['overlap_s']:.4f}",
             f"{r['coordinator_shipped_bytes']:,}",
             f"{r['fetched_bytes']:,}",
             f"{r['speedup_vs_serial']:.2f}x"]
            for r in records]
    table = fmt_table(
        ["backend", "transport", "workers", "pipeline", "count",
         "modeled_s", "measured_s", "overlap_s", "shipped_B",
         "fetched_B", "speedup_vs_serial"],
        rows,
        title=(f"Runtime backends x transports x pipeline on the "
               f"synthetic skew graph ({SKEW_EDGES:,} edges, "
               f"{cores} usable core(s))"))
    # Pipeline win, summarized per (backend, transport) at the largest
    # worker count (wall-clock; expect on <= off on multi-core hosts).
    by_key = {(r["backend"], r["workers"], r["transport"], r["pipeline"]):
              r for r in records}
    w = max(WORKER_SWEEP)
    gains = []
    for backend in sorted({r["backend"] for r in records}):
        for transport in TRANSPORT_SWEEP:
            on = by_key.get((backend, w, transport, "on"))
            off = by_key.get((backend, w, transport, "off"))
            if on and off:
                gains.append(
                    f"  {backend}/{transport} x{w}: "
                    f"off={off['measured_seconds']:.4f}s "
                    f"on={on['measured_seconds']:.4f}s "
                    f"({off['measured_seconds'] / on['measured_seconds']:.2f}x, "
                    f"overlap={on['overlap_s']:.4f}s)")
    note = ("\nPipeline on-vs-off at the widest sweep point:\n"
            + "\n".join(gains)
            + "\n\nNote: 'modeled_s' is the cost-model total for the "
            "simulated 28-node-style cluster; 'measured_s' is real "
            "wall-clock on this machine.  'overlap_s' is the window "
            "during which the coordinator was still routing/publishing "
            "while workers already executed tasks (0 with the pipeline "
            "off, and 0 on the serial backend — inline execution has "
            "no concurrency to claim).  'shipped_B' counts bytes the "
            "coordinator serialized "
            "into task payloads — full partition matrices under the "
            "pickle transport, descriptors under shm and tcp.  "
            "'fetched_B' counts bytes workers pulled back out of the "
            "tcp block store.  The processes backend needs >= as many "
            "usable cores as workers to show its speedup — and the "
            "pipeline needs >= 2 usable cores to show overlap wins; "
            f"this machine exposes {cores}.")
    report("runtime_backends", table + note)
    if args.json:
        payload = {
            "bench": "runtime_backends",
            "skew_edges": SKEW_EDGES,
            "usable_cores": cores,
            "records": records,
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"wrote {args.json} ({len(records)} records)")


def test_bench_runtime_backends():
    """Tier-2 entry point: the sweep runs and backends agree."""
    main([])


if __name__ == "__main__":
    main()
