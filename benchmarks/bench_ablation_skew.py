"""Ablation: skew and stragglers across queries (explains Fig. 11 / Q5).

The paper attributes Q5's limited scalability to the "last straggler"
effect.  This bench measures, per query on LJ, the per-worker Leapfrog
work distribution of HCubeJ and reports the imbalance (max/mean), the
Gini coefficient and the straggler slowdown factor.
"""

import pytest

from repro.distributed import skew_report, straggler_slowdown
from repro.engines import HCubeJ, run_engine_safely

from .common import (
    WORK_BUDGET,
    bench_cluster,
    fmt_table,
    load_case,
    report,
)

QUERIES = ["Q1", "Q2", "Q4", "Q5", "Q6"]


def test_ablation_skew(benchmark):
    cluster = bench_cluster()

    def run():
        rows = []
        for qname in QUERIES:
            query, db = load_case("lj", qname)
            result = run_engine_safely(
                HCubeJ(work_budget=WORK_BUDGET * 4), query, db, cluster)
            if not result.ok or not result.extra.get("worker_work"):
                rows.append([qname, "-", "-", "-"])
                continue
            work = result.extra["worker_work"]
            rep = skew_report(work)
            rows.append([qname,
                         f"{rep.imbalance:.2f}",
                         f"{rep.gini:.2f}",
                         f"{straggler_slowdown(work):.2f}"])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = fmt_table(
        ["query", "imbalance (max/mean)", "gini", "straggler slowdown"],
        rows,
        title="Ablation — per-worker computation skew on LJ (HCubeJ)")
    report("ablation_skew", text)
    measured = [r for r in rows if r[1] != "-"]
    assert measured, "no query produced a skew measurement"
    # Some skew must exist on a power-law graph (imbalance > 1).
    assert any(float(r[1]) > 1.0 for r in measured)
