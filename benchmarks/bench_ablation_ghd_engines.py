"""Ablation: ADJ vs EmptyHeaded-style Yannakakis over the same GHD.

Sec. VI argues EmptyHeaded's tree-decomposition approach "improves the
computation efficiency at a great cost of memory consumption".  Both
engines here share the same optimal hypertree; Yannakakis materializes
*every* bag and fully reduces, while ADJ materializes only the bags its
cost model judges worthwhile.  The bench reports total model-seconds and
the peak materialized bag footprint.
"""

import pytest

from repro.engines import ADJ, YannakakisJoin, run_engine_safely

from .common import (
    BENCH_SAMPLES,
    WORK_BUDGET,
    bench_cluster,
    fmt_seconds,
    fmt_table,
    load_case,
    report,
)

QUERIES = ["Q1", "Q4", "Q5", "Q6"]


def test_ablation_ghd_engines(benchmark):
    cluster = bench_cluster()

    def run():
        rows = []
        for qname in QUERIES:
            query, db = load_case("lj", qname)
            adj = run_engine_safely(
                ADJ(num_samples=BENCH_SAMPLES, work_budget=WORK_BUDGET),
                query, db, cluster)
            yan = run_engine_safely(
                YannakakisJoin(work_budget=WORK_BUDGET), query, db,
                cluster)
            if adj.ok and yan.ok:
                assert adj.count == yan.count, qname
            bag_tuples = sum(yan.extra.get("bag_sizes", [])) if yan.ok \
                else None
            rows.append([
                qname,
                fmt_seconds(adj.total_seconds if adj.ok else None,
                            adj.failure),
                str(len(adj.extra.get("precomputed", ())))
                if adj.ok else "-",
                fmt_seconds(yan.total_seconds if yan.ok else None,
                            yan.failure),
                str(bag_tuples) if bag_tuples is not None else "-",
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = fmt_table(
        ["query", "ADJ total(s)", "ADJ #bags materialized",
         "Yannakakis total(s)", "Yannakakis bag tuples"],
        rows,
        title="Ablation — selective (ADJ) vs exhaustive (Yannakakis) bag "
              "materialization on LJ")
    report("ablation_ghd_engines", text)
