"""Checker interface and per-module context for the lint engine.

A checker sees one parsed module at a time (:class:`ModuleContext`) plus
the run-wide :class:`LintConfig`, and yields
:class:`~repro.analysis.findings.Finding` objects.  Checkers are pure
AST consumers — they never import the module under analysis — so linting
broken or half-written code is safe.
"""

from __future__ import annotations

import ast
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator

from .findings import Finding
from .suppress import Suppressions

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import LintConfig

__all__ = ["ModuleContext", "Checker", "iter_with_parents",
           "module_name_for"]


def module_name_for(path: Path) -> str:
    """Dotted module name from the package layout on disk.

    Walks up while ``__init__.py`` exists, so ``src/repro/net/agent.py``
    becomes ``repro.net.agent`` regardless of where ``src`` lives.  A
    file outside any package is just its stem.
    """
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) if parts else path.stem


@dataclass
class ModuleContext:
    """One parsed source file, ready for checkers."""

    path: Path                     # absolute path on disk
    relpath: str                   # posix path relative to the lint root
    module: str                    # dotted module name ("repro.net.agent")
    source: str
    tree: ast.Module
    suppressions: Suppressions
    _parents: dict[ast.AST, ast.AST] = field(default_factory=dict,
                                             repr=False)

    @property
    def package(self) -> str:
        """The package this module lives in ("" for top-level files)."""
        if self.path.stem == "__init__":
            return self.module
        return self.module.rpartition(".")[0]

    def parent_map(self) -> dict[ast.AST, ast.AST]:
        """child node -> parent node, built once per module on demand."""
        if not self._parents:
            for parent, child in iter_with_parents(self.tree):
                self._parents[child] = parent
        return self._parents

    def enclosing(self, node: ast.AST, *types: type) -> ast.AST | None:
        """Nearest ancestor of ``node`` that is one of ``types``."""
        parents = self.parent_map()
        current = parents.get(node)
        while current is not None:
            if isinstance(current, types):
                return current
            current = parents.get(current)
        return None

    def finding(self, node: ast.AST, rule: str, message: str,
                hint: str = "") -> Finding:
        return Finding(path=self.relpath,
                       line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0),
                       rule=rule, message=message, hint=hint)


def iter_with_parents(tree: ast.AST) -> Iterator[tuple[ast.AST, ast.AST]]:
    """Yield ``(parent, child)`` for every edge of the AST."""
    stack: list[ast.AST] = [tree]
    while stack:
        node = stack.pop()
        for child in ast.iter_child_nodes(node):
            yield node, child
            stack.append(child)


class Checker(ABC):
    """One domain rule.  Subclasses set ``rule`` and ``summary``."""

    #: Rule id, kebab-case; what suppressions and ``--rules`` name.
    rule: str = "abstract"
    #: One-line description shown by ``repro lint --list-rules``.
    summary: str = ""

    @abstractmethod
    def check(self, ctx: ModuleContext,
              config: "LintConfig") -> Iterable[Finding]:
        """Yield findings for one module."""
