"""repro.analysis — a domain-aware lint engine for this stack.

General-purpose linters check style; this package machine-checks the
invariants *this* codebase depends on: what crosses the executor seam
must pickle (spawn-safety), ``import repro`` stays light (lazy-net),
transports mutate shared state under the lock (lock-discipline),
every env knob is declared and documented (env-registry), registries
stay the single source of truth (registry-consistency), and API paths
raise :class:`~repro.errors.ReproError` with well-named observability
(error-taxonomy).

Library entry point::

    from repro.analysis import run
    findings = run(["src/repro"])       # [] means clean

CLI: ``python -m repro lint`` (see docs/static_analysis.md).
Checkers live in a string-keyed registry mirroring
:mod:`repro.engines.registry`; third parties add rules with
:func:`register_checker`.
"""

from __future__ import annotations

from .base import Checker, ModuleContext
from .baseline import Baseline, load_baseline, write_baseline
from .engine import (DEFAULT_BASELINE_NAME, LintConfig, collect_files,
                     lint_file, run)
from .findings import Finding
from .registry import (available_checkers, checker_spec, create_checker,
                       register_checker)
from .suppress import SUPPRESSION_RULE

from . import checkers  # noqa: F401  (registers the built-in rules)

__all__ = [
    "Baseline",
    "Checker",
    "DEFAULT_BASELINE_NAME",
    "Finding",
    "LintConfig",
    "ModuleContext",
    "SUPPRESSION_RULE",
    "available_checkers",
    "checker_spec",
    "collect_files",
    "create_checker",
    "lint_file",
    "load_baseline",
    "register_checker",
    "run",
    "write_baseline",
]
