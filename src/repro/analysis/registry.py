"""String-keyed checker registry, mirroring :mod:`repro.engines.registry`.

The CLI ``--rules`` choices, the suppression validator and the engine's
default checker lineup all resolve here; a new checker registered with
:func:`register_checker` immediately shows up in all three.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..errors import ConfigError
from .base import Checker

__all__ = ["CheckerSpec", "register_checker", "available_checkers",
           "checker_spec", "create_checker"]


@dataclass(frozen=True)
class CheckerSpec:
    """One registered checker: rule id, factory, one-line summary."""

    rule: str
    factory: Callable[[], Checker]
    summary: str = ""


_REGISTRY: dict[str, CheckerSpec] = {}


def register_checker(rule: str,
                     factory: Callable[[], Checker] | None = None, *,
                     summary: str = ""):
    """Register a checker factory under ``rule``.

    Usable as a call (``register_checker("lazy-net", LazyNetChecker)``)
    or a decorator (``@register_checker("my-rule")``).  Re-registering
    an existing rule is a :class:`~repro.errors.ConfigError`, exactly
    like the engine/kernel/transport registries.
    """
    def _add(f: Callable[[], Checker]):
        if rule in _REGISTRY:
            raise ConfigError(f"checker {rule!r} is already registered")
        _REGISTRY[rule] = CheckerSpec(rule=rule, factory=f,
                                      summary=summary)
        return f

    if factory is None:
        return _add
    return _add(factory)


def available_checkers() -> tuple[str, ...]:
    """Registered rule ids, in registration order."""
    return tuple(_REGISTRY)


def checker_spec(rule: str) -> CheckerSpec:
    """The :class:`CheckerSpec` for ``rule`` (raises ConfigError)."""
    try:
        return _REGISTRY[rule]
    except KeyError:
        raise ConfigError(
            f"unknown lint rule {rule!r}; "
            f"choose from {available_checkers()}") from None


def create_checker(rule: str) -> Checker:
    """Instantiate the checker registered under ``rule``."""
    return checker_spec(rule).factory()
