"""Inline suppressions: ``# repro: lint-ignore[RULE] reason``.

A suppression *must* carry a reason — the whole point of the syntax is
that every intentionally-kept violation documents why it is safe, right
where the next reader will look.  A reason-less (or unknown-rule)
suppression is itself a finding under the reserved ``lint-ignore`` rule,
and that finding cannot be suppressed.

Placement: an inline suppression covers findings on its own line; a
comment that stands alone on a line covers the next source line
(matching how such comments read).  Several rules may share one
comment: ``# repro: lint-ignore[spawn-safety, lock-discipline] reason``.
"""

from __future__ import annotations

import re
import tokenize
from dataclasses import dataclass, field
from io import StringIO
from typing import Iterable

from .findings import Finding

__all__ = ["SUPPRESSION_RULE", "Suppressions", "parse_suppressions"]

#: Reserved rule id for malformed suppressions (never suppressible).
SUPPRESSION_RULE = "lint-ignore"

_COMMENT_RE = re.compile(
    r"#\s*repro:\s*lint-ignore\[(?P<rules>[^\]]*)\]\s*(?P<reason>.*)$")


@dataclass
class Suppressions:
    """Parsed suppression comments of one module."""

    #: line (1-based) -> set of suppressed rule ids on that line.
    by_line: dict[int, set[str]] = field(default_factory=dict)
    #: Malformed suppressions, reported as ``lint-ignore`` findings.
    bad: list[Finding] = field(default_factory=list)

    def is_suppressed(self, rule: str, line: int) -> bool:
        rules = self.by_line.get(line)
        return bool(rules) and rule in rules


def parse_suppressions(path: str, source: str,
                       known_rules: Iterable[str]) -> Suppressions:
    """Extract every suppression comment of ``source``.

    ``known_rules`` is the set of registered checker rule ids; naming an
    unregistered rule is malformed (it would silently suppress nothing —
    almost always a typo).
    """
    known = set(known_rules)
    lines = source.splitlines()
    result = Suppressions()
    try:
        tokens = list(tokenize.generate_tokens(StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return result   # the parse-error finding covers this file
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _COMMENT_RE.search(tok.string)
        if match is None:
            continue
        line, col = tok.start
        rules = {r.strip() for r in match.group("rules").split(",")
                 if r.strip()}
        reason = match.group("reason").strip()
        unknown = sorted(r for r in rules if r not in known)
        if not rules:
            result.bad.append(Finding(
                path=path, line=line, col=col, rule=SUPPRESSION_RULE,
                message="lint-ignore names no rule",
                hint="write '# repro: lint-ignore[RULE] reason'"))
            continue
        if unknown:
            result.bad.append(Finding(
                path=path, line=line, col=col, rule=SUPPRESSION_RULE,
                message=f"lint-ignore names unknown rule(s) "
                        f"{', '.join(unknown)}",
                hint="run 'repro lint --list-rules' for the catalog"))
            continue
        if not reason:
            result.bad.append(Finding(
                path=path, line=line, col=col, rule=SUPPRESSION_RULE,
                message=f"lint-ignore[{', '.join(sorted(rules))}] "
                        f"carries no reason",
                hint="a suppression must say why the violation is safe"))
            continue
        # A comment alone on its line covers the next line; an inline
        # comment covers its own line.
        prefix = lines[line - 1][:col] if line - 1 < len(lines) else ""
        target = line + 1 if not prefix.strip() else line
        result.by_line.setdefault(target, set()).update(rules)
    return result
