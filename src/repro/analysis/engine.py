"""The lint engine: collect files, parse, run checkers, subtract noise.

:func:`run` is the library entry point (``repro lint`` is a thin CLI on
top of it), so future tooling — e.g. admission checks in a long-lived
query service — can gate code programmatically::

    from repro.analysis import run
    findings = run(["src/repro"])          # [] means clean

The pipeline per file: parse → run every selected checker → drop
findings suppressed by a reasoned ``# repro: lint-ignore[RULE] reason``
comment → drop findings covered by the baseline.  Malformed
suppressions surface as ``lint-ignore`` findings and are never
suppressed themselves.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from ..errors import ConfigError
from .base import Checker, ModuleContext, module_name_for
from .baseline import Baseline, load_baseline
from .findings import Finding
from .registry import available_checkers, create_checker
from .suppress import SUPPRESSION_RULE, parse_suppressions

__all__ = ["LintConfig", "run", "lint_file", "collect_files",
           "DEFAULT_BASELINE_NAME"]

#: File name the CLI looks for next to the lint root.
DEFAULT_BASELINE_NAME = "lint-baseline.json"

#: Directories never descended into.
_SKIP_DIRS = {".git", "__pycache__", ".venv", "venv", "node_modules",
              "build", "dist", ".mypy_cache", ".ruff_cache",
              ".pytest_cache", ".claude", "results"}

_ENV_VAR_RE = re.compile(r"\bREPRO_[A-Z0-9_]+\b")


@dataclass
class LintConfig:
    """Run-wide knobs and cross-file facts the checkers consult.

    The three ``*_override`` fields exist for fixture tests: they
    replace the live catalogs (RunConfig's env registry, the engine/
    kernel/transport registries, docs/api.md) so a checker can be
    exercised on synthetic files without the real repo around them.
    """

    #: Root the reports are relative to, and where docs/ and the
    #: default baseline live.
    root: Path = field(default_factory=Path.cwd)
    #: Declared REPRO_* environment variables; None loads
    #: :data:`repro.api.config.ENV_CATALOG` on first use.
    env_catalog_override: "frozenset[str] | None" = None
    #: ``{"engines": {...}, "kernels": {...}, "transports": {...}}``;
    #: None loads the live registries on first use.
    registry_keys_override: "dict[str, frozenset[str]] | None" = None
    #: REPRO_* names considered documented; None parses
    #: ``<root>/docs/api.md`` on first use (missing file -> no check).
    documented_env_override: "frozenset[str] | None" = None

    _env_catalog: "frozenset[str] | None" = field(default=None,
                                                  repr=False)
    _registry_keys: "dict[str, frozenset[str]] | None" = field(
        default=None, repr=False)
    _documented: "frozenset[str] | None" = field(default=None, repr=False)

    def env_catalog(self) -> frozenset[str]:
        """Every declared REPRO_* variable name."""
        if self.env_catalog_override is not None:
            return self.env_catalog_override
        if self._env_catalog is None:
            from ..api.config import ENV_CATALOG

            self._env_catalog = frozenset(ENV_CATALOG)
        return self._env_catalog

    def registry_keys(self) -> dict[str, frozenset[str]]:
        """Registered keys per registry kind (live unless overridden)."""
        if self.registry_keys_override is not None:
            return self.registry_keys_override
        if self._registry_keys is None:
            from ..engines import registry as engines_registry
            from ..kernels import available_kernels
            from ..runtime.transport import available_transports

            self._registry_keys = {
                "engines": frozenset(engines_registry.available()),
                "kernels": frozenset(available_kernels()),
                "transports": frozenset(available_transports()),
            }
        return self._registry_keys

    def documented_env_vars(self) -> "frozenset[str] | None":
        """REPRO_* names documented in docs/api.md (None: docs absent)."""
        if self.documented_env_override is not None:
            return self.documented_env_override
        if self._documented is None:
            doc = self.root / "docs" / "api.md"
            if not doc.exists():
                return None
            self._documented = frozenset(
                _ENV_VAR_RE.findall(doc.read_text(encoding="utf-8")))
        return self._documented


def collect_files(paths: Iterable["Path | str"]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise ConfigError(f"lint path {path} does not exist")
        if path.is_file():
            if path.suffix == ".py":
                seen.add(path.resolve())
            continue
        for candidate in path.rglob("*.py"):
            if not any(part in _SKIP_DIRS for part in candidate.parts):
                seen.add(candidate.resolve())
    return sorted(seen)


def _relpath(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def _resolve_checkers(rules: "Sequence[str] | None") -> list[Checker]:
    names = tuple(rules) if rules is not None else available_checkers()
    return [create_checker(name) for name in names]


def lint_file(path: "Path | str", config: LintConfig,
              checkers: "Sequence[Checker] | None" = None
              ) -> Iterator[Finding]:
    """Run the selected checkers over one file."""
    path = Path(path)
    relpath = _relpath(path, config.root)
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        yield Finding(path=relpath, line=exc.lineno or 1,
                      col=(exc.offset or 1) - 1, rule="parse-error",
                      message=f"file does not parse: {exc.msg}")
        return
    known = (*available_checkers(), SUPPRESSION_RULE, "parse-error")
    suppressions = parse_suppressions(relpath, source, known)
    ctx = ModuleContext(path=path, relpath=relpath,
                        module=module_name_for(path), source=source,
                        tree=tree, suppressions=suppressions)
    yield from suppressions.bad
    if checkers is None:
        checkers = _resolve_checkers(None)
    for checker in checkers:
        for finding in checker.check(ctx, config):
            if not suppressions.is_suppressed(finding.rule, finding.line):
                yield finding


def run(paths: Iterable["Path | str"], *,
        rules: "Sequence[str] | None" = None,
        baseline: "Baseline | Path | str | None" = None,
        root: "Path | str | None" = None,
        config: "LintConfig | None" = None) -> list[Finding]:
    """Lint ``paths`` and return the surviving findings, sorted.

    ``rules`` restricts the checker lineup (default: all registered).
    ``baseline`` subtracts grandfathered findings — pass a loaded
    :class:`Baseline` or a path to the JSON file.  An empty return
    value means the tree is clean.
    """
    if config is None:
        config = LintConfig(root=Path(root) if root is not None
                            else Path.cwd())
    checkers = _resolve_checkers(rules)
    findings: list[Finding] = []
    for path in collect_files(paths):
        findings.extend(lint_file(path, config, checkers))
    if baseline is not None:
        if not isinstance(baseline, Baseline):
            baseline = load_baseline(baseline)
        findings = baseline.filter(findings)
    return sorted(findings)
