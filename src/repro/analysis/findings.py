"""The unit of lint output: one :class:`Finding` per violated invariant.

A finding names the rule, the file, the position and a human message;
its :attr:`~Finding.fingerprint` deliberately excludes line/column so a
baselined finding keeps matching while unrelated edits move it around
the file (the same trick ruff's and ESLint's baselines use).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

__all__ = ["Finding"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str                 # posix-style path, relative to the lint root
    line: int                 # 1-based
    col: int                  # 0-based, as ast reports it
    rule: str                 # checker rule id, e.g. "lazy-net"
    message: str
    #: Short hint on how to fix or legitimately suppress the finding.
    hint: str = field(default="", compare=False)

    @property
    def fingerprint(self) -> str:
        """Stable identity for baseline matching (position-independent)."""
        raw = f"{self.rule}::{self.path}::{self.message}"
        return hashlib.sha256(raw.encode("utf-8")).hexdigest()[:16]

    def as_dict(self) -> dict:
        """JSON-ready representation (the ``--json`` report format)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
            "fingerprint": self.fingerprint,
        }

    def render(self) -> str:
        """The human one-liner: ``path:line:col: [rule] message``."""
        return (f"{self.path}:{self.line}:{self.col}: "
                f"[{self.rule}] {self.message}")
