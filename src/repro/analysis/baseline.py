"""Baseline file: grandfathered findings, each with a written reason.

The baseline lets the lint gate be adopted on a codebase with existing
findings without drowning the signal: known findings are recorded once
(with a justification) and only *new* findings fail the run.  An entry
without a reason is rejected at load time — a silent baseline entry is
exactly the un-auditable suppression this engine exists to prevent.

Format (``lint-baseline.json`` at the repo root)::

    {
      "version": 1,
      "findings": [
        {"rule": "lazy-net", "path": "src/repro/foo.py",
         "fingerprint": "ab12...", "reason": "why this stays"}
      ]
    }

Fingerprints come from :attr:`repro.analysis.findings.Finding
.fingerprint` and ignore line numbers, so unrelated edits do not
invalidate the baseline.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from ..errors import ConfigError
from .findings import Finding

__all__ = ["Baseline", "load_baseline", "write_baseline"]

_VERSION = 1


@dataclass
class Baseline:
    """Set of grandfathered findings keyed by (rule, path, fingerprint)."""

    path: Path | None = None
    entries: dict[tuple[str, str, str], str] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.entries)

    def covers(self, finding: Finding) -> bool:
        key = (finding.rule, finding.path, finding.fingerprint)
        return key in self.entries

    def filter(self, findings: Iterable[Finding]) -> list[Finding]:
        """Findings not covered by the baseline."""
        return [f for f in findings if not self.covers(f)]


def load_baseline(path: "Path | str") -> Baseline:
    """Parse a baseline file; every entry must carry a reason."""
    path = Path(path)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise ConfigError(f"baseline file {path} does not exist") from None
    except json.JSONDecodeError as exc:
        raise ConfigError(f"baseline file {path} is not valid JSON: "
                          f"{exc}") from None
    if not isinstance(data, dict) or data.get("version") != _VERSION:
        raise ConfigError(f"baseline file {path} must be a JSON object "
                          f"with \"version\": {_VERSION}")
    baseline = Baseline(path=path)
    for i, entry in enumerate(data.get("findings", [])):
        try:
            rule = entry["rule"]
            rel = entry["path"]
            fingerprint = entry["fingerprint"]
            reason = str(entry.get("reason", "")).strip()
        except (TypeError, KeyError) as exc:
            raise ConfigError(
                f"baseline entry #{i} in {path} is missing {exc}"
            ) from None
        if not reason:
            raise ConfigError(
                f"baseline entry #{i} ({rule} in {rel}) in {path} has "
                f"no reason; every grandfathered finding must say why "
                f"it is kept")
        baseline.entries[(rule, rel, fingerprint)] = reason
    return baseline


def write_baseline(path: "Path | str", findings: Sequence[Finding],
                   reason: str) -> Baseline:
    """Write ``findings`` as a baseline, all sharing one ``reason``.

    The programmatic counterpart of hand-editing the JSON — used by
    tooling that adopts the gate on an existing tree.  ``reason`` must
    be non-empty for the same reason load rejects empty ones.
    """
    reason = reason.strip()
    if not reason:
        raise ConfigError("a baseline needs a non-empty reason")
    path = Path(path)
    payload = {
        "version": _VERSION,
        "findings": [
            {"rule": f.rule, "path": f.path,
             "fingerprint": f.fingerprint, "reason": reason,
             "message": f.message}
            for f in sorted(findings)
        ],
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n",
                    encoding="utf-8")
    return load_baseline(path)
