"""error-taxonomy: raise ReproError subclasses; name spans/metrics well.

Callers of the library catch :class:`repro.errors.ReproError` to
distinguish "this stack rejected the input" from genuine bugs
(docs/api.md).  A bare ``ValueError`` raised on an API path escapes
that contract.  ``ConfigError`` deliberately subclasses both
``ReproError`` and ``ValueError``, so converting a legacy ``raise
ValueError`` is backward compatible.

Builtin exceptions that *are* the protocol stay allowed: ``KeyError`` /
``IndexError`` / ``AttributeError`` for mapping/sequence/attribute
contracts, ``TypeError`` for misuse of a call signature,
``StopIteration`` and ``NotImplementedError`` for their usual roles.

The same checker audits observability naming (docs/observability.md):
metric names are dotted lowercase (``transport.published_bytes``) so
dashboards can group by component; span names are single lowercase
tokens (``worker_task``).
"""

from __future__ import annotations

import ast
import re
from typing import TYPE_CHECKING, Iterable, Iterator

from ..base import Checker, ModuleContext
from ..findings import Finding
from ..registry import register_checker

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine import LintConfig

RULE = "error-taxonomy"

#: Builtins that must not be raised directly on library paths.
_FLAGGED_RAISES = {
    "Exception", "BaseException", "ValueError", "RuntimeError",
    "OSError", "IOError", "ConnectionError", "ConnectionResetError",
    "BrokenPipeError", "EOFError", "TimeoutError", "FileNotFoundError",
    "PermissionError", "LookupError", "ArithmeticError",
}

_RAISE_HINT = ("raise a ReproError subclass (repro.errors) — "
               "ConfigError also subclasses ValueError, so converting "
               "is backward compatible")

_METRIC_METHODS = {"counter", "gauge", "histogram"}
_SPAN_METHODS = {"span", "add_span"}

_METRIC_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$")
_METRIC_PREFIX_RE = re.compile(r"^[a-z][a-z0-9_.]*$")
_SPAN_RE = re.compile(r"^[a-z][a-z0-9_]*$")

_NAME_HINT = ("metric names are dotted lowercase like "
              "'transport.published_bytes'; span names are single "
              "lowercase tokens like 'worker_task' "
              "(docs/observability.md)")


def _exception_name(node: "ast.expr | None") -> str:
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _name_arg(node: ast.Call) -> "tuple[str, bool] | None":
    """(name, is_prefix_only) for the first argument, if checkable."""
    if not node.args:
        return None
    arg = node.args[0]
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        return arg.value, False
    if isinstance(arg, ast.JoinedStr) and arg.values and \
            isinstance(arg.values[0], ast.Constant) and \
            isinstance(arg.values[0].value, str):
        return arg.values[0].value, True
    return None


class ErrorTaxonomyChecker(Checker):
    rule = RULE
    summary = ("library paths raise ReproError subclasses; metric/span "
               "names follow the dotted-lowercase convention")

    def check(self, ctx: ModuleContext,
              config: "LintConfig") -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Raise):
                yield from self._check_raise(ctx, node)
            elif isinstance(node, ast.Call):
                yield from self._check_obs_name(ctx, node)

    def _check_raise(self, ctx: ModuleContext,
                     node: ast.Raise) -> Iterator[Finding]:
        name = _exception_name(node.exc)
        if name in _FLAGGED_RAISES:
            yield ctx.finding(
                node, self.rule,
                f"raises builtin {name}; callers catch ReproError to "
                f"tell stack rejections from bugs", hint=_RAISE_HINT)

    def _check_obs_name(self, ctx: ModuleContext,
                        node: ast.Call) -> Iterator[Finding]:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        checked = _name_arg(node)
        if checked is None:
            return
        name, prefix_only = checked
        if func.attr in _METRIC_METHODS:
            pattern = _METRIC_PREFIX_RE if prefix_only else _METRIC_RE
            if not pattern.match(name):
                yield ctx.finding(
                    node, self.rule,
                    f"metric name {name!r} is not dotted lowercase",
                    hint=_NAME_HINT)
        elif func.attr in _SPAN_METHODS:
            if prefix_only:
                if not _SPAN_RE.match(name.rstrip("_")):
                    yield ctx.finding(
                        node, self.rule,
                        f"span name prefix {name!r} is not a lowercase "
                        f"token", hint=_NAME_HINT)
            elif not _SPAN_RE.match(name):
                yield ctx.finding(
                    node, self.rule,
                    f"span name {name!r} is not a single lowercase "
                    f"token", hint=_NAME_HINT)


register_checker(RULE, ErrorTaxonomyChecker,
                 summary=ErrorTaxonomyChecker.summary)
