"""Built-in domain checkers.

Importing this package registers every built-in rule with
:mod:`repro.analysis.registry` — the same pattern
:mod:`repro.engines.registry` and :mod:`repro.kernels` use for their
built-ins.  Each module registers exactly one rule at its bottom.
"""

from __future__ import annotations

from . import (  # noqa: F401  (imported for registration side effects)
    env_registry,
    error_taxonomy,
    lazy_net,
    lock_discipline,
    registry_consistency,
    spawn_safety,
)

__all__ = ["spawn_safety", "lazy_net", "lock_discipline", "env_registry",
           "registry_consistency", "error_taxonomy"]
