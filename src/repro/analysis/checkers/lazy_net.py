"""lazy-net: ``import repro`` must never pull in :mod:`repro.net`.

PR 4's rule: the networking package (sockets, agents, block stores) is
registered lazily everywhere — ``"tcp"`` resolves through a
``module:attr`` string, the ``remote`` backend through
``_LAZY_BACKENDS`` — so that importing the library, or any non-remote
path through it, stays light and never touches socket machinery.  The
three legitimate call sites import :mod:`repro.net` *function-locally*
(``cli._cmd_serve``, ``resolve_array_ref``, ``RunConfig.__post_init__``).

This checker flags any module-scope (or class-scope) import of
``repro.net`` outside ``src/repro/net/`` itself, including relative
spellings (``from ..net import ...``).
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterable

from ..base import Checker, ModuleContext
from ..findings import Finding
from ..registry import register_checker

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine import LintConfig

RULE = "lazy-net"

_NET = "repro.net"

_HINT = ("move the import inside the function that needs it, or "
         "register the dependency lazily ('module:attr') like the tcp "
         "transport and the remote backend do")


def _resolve_from(node: ast.ImportFrom, package: str) -> str:
    """Absolute dotted target of an ImportFrom (best effort)."""
    if not node.level:
        return node.module or ""
    parts = package.split(".") if package else []
    if node.level - 1:
        parts = parts[: -(node.level - 1)] if node.level - 1 <= len(parts) \
            else []
    base = ".".join(parts)
    if node.module:
        return f"{base}.{node.module}" if base else node.module
    return base


def _targets_net(target: str) -> bool:
    return target == _NET or target.startswith(_NET + ".")


class LazyNetChecker(Checker):
    rule = RULE
    summary = ("no module-scope import of repro.net outside "
               "src/repro/net/ — 'import repro' stays light")

    def check(self, ctx: ModuleContext,
              config: "LintConfig") -> Iterable[Finding]:
        if ctx.module == _NET or ctx.module.startswith(_NET + "."):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            # Function-local imports are the sanctioned escape hatch.
            if ctx.enclosing(node, ast.FunctionDef,
                             ast.AsyncFunctionDef) is not None:
                continue
            if isinstance(node, ast.Import):
                offenders = [a.name for a in node.names
                             if _targets_net(a.name)]
                if offenders:
                    yield ctx.finding(
                        node, self.rule,
                        f"module-scope import of {offenders[0]!r}; "
                        f"repro.net must stay lazily imported",
                        hint=_HINT)
                continue
            target = _resolve_from(node, ctx.package)
            imported_net = _targets_net(target) or (
                target in ("repro", ctx.package) and any(
                    _targets_net(f"{target}.{a.name}")
                    for a in node.names))
            if imported_net:
                spelled = ("." * node.level) + (node.module or "")
                yield ctx.finding(
                    node, self.rule,
                    f"module-scope 'from {spelled} import ...' resolves "
                    f"to repro.net; repro.net must stay lazily imported",
                    hint=_HINT)


register_checker(RULE, LazyNetChecker, summary=LazyNetChecker.summary)
