"""spawn-safety: what crosses the executor seam must survive pickling.

Process backends and remote ``WorkerAgent``s ship ``(task_function,
task)`` pairs by pickling them into spawned interpreters (docs/
runtime.md).  Pickle serializes functions *by reference*, so anything
that is not a module-level callable — a lambda, a closure, a function
defined inside another function, a bound method — either fails to
pickle or silently rebinds to the wrong state on the worker.  The rule:

- the ``fn`` handed to ``Executor.map_tasks`` / ``submit_tasks`` must be
  a module-level function (``functools.partial`` is allowed only around
  one);
- arguments stamped onto task payloads (``WorkerTask``, ``BagTask``,
  ``PartitionJoinTask``) must not be lambdas or locally-defined
  callables — plain data and strings only (this is why ``kernel`` rides
  as a registry key, not a kernel object).
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterable, Iterator

from ..base import Checker, ModuleContext
from ..findings import Finding
from ..registry import register_checker

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine import LintConfig

RULE = "spawn-safety"

#: Executor methods whose first argument travels to worker processes.
_SEAM_METHODS = {"map_tasks", "submit_tasks"}

#: Task payload classes shipped through executors (docs/runtime.md).
_TASK_CLASSES = {"WorkerTask", "BagTask", "PartitionJoinTask"}

_HINT = ("move the callable to module scope (spawned workers import it "
         "by reference), or ship plain data/registry keys instead")


def _local_callables(tree: ast.Module,
                     ctx: ModuleContext) -> set[str]:
    """Names bound to lambdas, or to defs/classes nested in functions."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            if ctx.enclosing(node, ast.FunctionDef,
                             ast.AsyncFunctionDef) is not None:
                names.add(node.name)
        elif isinstance(node, ast.Assign) and \
                isinstance(node.value, ast.Lambda):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def _describe(node: ast.expr, local: set[str]) -> str | None:
    """Why this expression is not spawn-safe (None: looks fine)."""
    if isinstance(node, ast.Lambda):
        return "a lambda"
    if isinstance(node, ast.Name) and node.id in local:
        return f"locally-defined callable {node.id!r}"
    if isinstance(node, ast.Attribute):
        return f"bound method / attribute lookup {node.attr!r}"
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else "")
        if name == "partial" and node.args:
            return _describe(node.args[0], local)
    return None


class SpawnSafetyChecker(Checker):
    rule = RULE
    summary = ("callables crossing the executor seam must be "
               "module-level; task payloads carry plain data")

    def check(self, ctx: ModuleContext,
              config: "LintConfig") -> Iterable[Finding]:
        local = _local_callables(ctx.tree, ctx)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            yield from self._check_seam_call(ctx, node, local)
            yield from self._check_task_payload(ctx, node, local)

    def _check_seam_call(self, ctx: ModuleContext, node: ast.Call,
                         local: set[str]) -> Iterator[Finding]:
        func = node.func
        if not (isinstance(func, ast.Attribute)
                and func.attr in _SEAM_METHODS):
            return
        if not node.args:
            return
        problem = _describe(node.args[0], local)
        if problem:
            yield ctx.finding(
                node, self.rule,
                f"{problem} passed to {func.attr}() crosses the "
                f"executor seam; process/remote backends pickle task "
                f"functions by reference", hint=_HINT)

    def _check_task_payload(self, ctx: ModuleContext, node: ast.Call,
                            local: set[str]) -> Iterator[Finding]:
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else "")
        if name not in _TASK_CLASSES:
            return
        args = [(None, a) for a in node.args] + \
            [(kw.arg, kw.value) for kw in node.keywords]
        for label, value in args:
            if isinstance(value, ast.Lambda) or (
                    isinstance(value, ast.Name) and value.id in local):
                what = "a lambda" if isinstance(value, ast.Lambda) \
                    else f"locally-defined callable {value.id!r}"
                where = f"field {label!r}" if label else "a field"
                yield ctx.finding(
                    value, self.rule,
                    f"{what} stamped onto {name} ({where}); task "
                    f"payloads must be plain data that survives spawn "
                    f"pools and remote agents", hint=_HINT)


register_checker(RULE, SpawnSafetyChecker,
                 summary=SpawnSafetyChecker.summary)
