"""env-registry: every ``REPRO_*`` environment read is declared.

``RunConfig`` is the single front door for configuration; its
``ENV_CATALOG`` (repro.api.config) declares every environment variable
the stack honours, and docs/api.md documents them.  An env read that
bypasses the catalog is configuration the user cannot discover — it
works on the author's machine and silently defaults everywhere else.

Two patterns count as a read of a literal name:

- direct reads: ``os.environ.get("REPRO_X")``, ``os.environ["REPRO_X"]``,
  ``os.getenv("REPRO_X")``;
- the repo's declaration idiom: a module-level ``FOO_ENV_VAR =
  "REPRO_X"`` constant (the actual read then goes through the name).

Each literal must appear in ``ENV_CATALOG`` and — when the lint root
has a ``docs/api.md`` — in that file's env-var table.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterable, Iterator

from ..base import Checker, ModuleContext
from ..findings import Finding
from ..registry import register_checker

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine import LintConfig

RULE = "env-registry"

_PREFIX = "REPRO_"

#: Benchmark-harness knobs (REPRO_BENCH_*) configure the measurement
#: scripts under benchmarks/, not the library; they are documented in
#: benchmarks/common.py and deliberately not part of RunConfig's
#: catalog.
_EXEMPT_PREFIX = "REPRO_BENCH_"

_HINT = ("declare the variable in ENV_CATALOG (repro.api.config) and "
         "document it in docs/api.md so RunConfig stays the single "
         "front door for configuration")


def _dotted(node: ast.expr) -> str:
    """Best-effort dotted name of an expression ("os.environ", ...)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return f"{base}.{node.attr}" if base else node.attr
    return ""


def _literal_env_name(node: ast.expr) -> "str | None":
    if isinstance(node, ast.Constant) and isinstance(node.value, str) \
            and node.value.startswith(_PREFIX):
        return node.value
    return None


def _env_reads(tree: ast.Module) -> Iterator[tuple[ast.AST, str, str]]:
    """Yield (node, env_name, how) for every literal REPRO_* read."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            func = _dotted(node.func)
            is_get = func.endswith("environ.get") or \
                func in ("os.getenv", "getenv")
            if is_get and node.args:
                name = _literal_env_name(node.args[0])
                if name:
                    yield node, name, f"{func}(...)"
        elif isinstance(node, ast.Subscript):
            if _dotted(node.value).endswith("environ"):
                name = _literal_env_name(node.slice)
                if name:
                    yield node, name, "os.environ[...]"


def _env_var_constants(tree: ast.Module
                       ) -> Iterator[tuple[ast.AST, str, str]]:
    """Module-level ``FOO_ENV_VAR = "REPRO_X"`` declarations."""
    for node in tree.body:
        if not isinstance(node, ast.Assign):
            continue
        name = _literal_env_name(node.value)
        if name is None:
            continue
        for target in node.targets:
            if isinstance(target, ast.Name) and \
                    target.id.endswith("_ENV_VAR"):
                yield node, name, f"{target.id} constant"


class EnvRegistryChecker(Checker):
    rule = RULE
    summary = ("every REPRO_* env read is declared in ENV_CATALOG and "
               "documented in docs/api.md")

    def check(self, ctx: ModuleContext,
              config: "LintConfig") -> Iterable[Finding]:
        catalog = config.env_catalog()
        documented = config.documented_env_vars()
        # The catalog module itself declares names as literals; its own
        # reads are still checked, only the declaration list is not.
        declares_catalog = ctx.module == "repro.api.config"
        sites = list(_env_reads(ctx.tree))
        if not declares_catalog:
            sites += list(_env_var_constants(ctx.tree))
        for node, name, how in sites:
            if name.startswith(_EXEMPT_PREFIX):
                continue
            if name not in catalog:
                yield ctx.finding(
                    node, self.rule,
                    f"{how} reads {name!r} which is not declared in "
                    f"ENV_CATALOG", hint=_HINT)
            elif documented is not None and name not in documented:
                yield ctx.finding(
                    node, self.rule,
                    f"{name!r} is declared but not documented in "
                    f"docs/api.md", hint=_HINT)


register_checker(RULE, EnvRegistryChecker,
                 summary=EnvRegistryChecker.summary)
