"""lock-discipline: transport shared state mutates under the lock.

PR 5 made epochs pipelined: the scheduler publishes epoch *e+1* while
workers still execute epoch *e*, so ``Transport`` subclasses are hit
from the routing thread and the execution pool at once.  The contract
(docs/runtime.md): every mutation of cross-thread state — the
``TransportStats`` counters, ``last_epoch``, and the private staging
dicts — happens inside ``with self._lock:`` (a reentrant lock), or in a
method that documents the caller holds it via the ``*_locked`` name
suffix (``_teardown_locked`` in repro.net.transport is the exemplar).
``__init__`` is exempt: no other thread can see the object yet.

The checker is structural, not a race detector: it looks at classes
named ``*Transport`` and flags mutations that are lexically outside any
``with self.<...lock...>:`` block in a non-exempt method.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterable, Iterator

from ..base import Checker, ModuleContext
from ..findings import Finding
from ..registry import register_checker

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine import LintConfig

RULE = "lock-discipline"

#: dict/set/list mutator method names on private attributes.
_MUTATORS = {"pop", "clear", "update", "setdefault", "append", "add",
             "remove", "discard", "extend", "popitem", "insert"}

_HINT = ("wrap the mutation in 'with self._lock:', or move it into a "
         "'*_locked' helper whose name promises the caller holds the "
         "lock (see _teardown_locked in repro.net.transport)")


def _is_self_attr(node: ast.expr, attr: "str | None" = None) -> bool:
    return (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and (attr is None or node.attr == attr))


def _guarded_state(node: ast.expr) -> "str | None":
    """Human name of the shared state ``node`` touches, if any."""
    # self.stats.<counter>
    if isinstance(node, ast.Attribute) and _is_self_attr(node.value,
                                                         "stats"):
        return f"self.stats.{node.attr}"
    # self.last_epoch
    if _is_self_attr(node, "last_epoch"):
        return "self.last_epoch"
    # self._private[...]  (staging dicts)
    if isinstance(node, ast.Subscript) and \
            isinstance(node.value, ast.Attribute) and \
            _is_self_attr(node.value) and node.value.attr.startswith("_") \
            and "lock" not in node.value.attr:
        return f"self.{node.value.attr}[...]"
    return None


class LockDisciplineChecker(Checker):
    rule = RULE
    summary = ("Transport stats/staging mutations happen under "
               "self._lock or inside *_locked methods")

    def check(self, ctx: ModuleContext,
              config: "LintConfig") -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef) and \
                    node.name.endswith("Transport"):
                yield from self._check_class(ctx, node)

    def _check_class(self, ctx: ModuleContext,
                     cls: ast.ClassDef) -> Iterator[Finding]:
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                continue
            if method.name == "__init__" or \
                    method.name.endswith("_locked"):
                continue
            yield from self._check_method(ctx, cls, method)

    def _check_method(self, ctx: ModuleContext, cls: ast.ClassDef,
                      method: ast.AST) -> Iterator[Finding]:
        for node in ast.walk(method):
            state = self._mutation(node)
            if state is None:
                continue
            if self._under_lock(ctx, node, method):
                continue
            yield ctx.finding(
                node, self.rule,
                f"{cls.name}.{getattr(method, 'name', '?')} mutates "
                f"{state} outside 'with self._lock:'; pipelined epochs "
                f"hit transports from two threads at once", hint=_HINT)

    @staticmethod
    def _mutation(node: ast.AST) -> "str | None":
        """Shared-state name if ``node`` is a mutation of it."""
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for target in targets:
                state = _guarded_state(target)
                if state:
                    return state
        elif isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                node.func.attr in _MUTATORS:
            owner = node.func.value
            if isinstance(owner, ast.Attribute) and _is_self_attr(owner) \
                    and owner.attr.startswith("_") \
                    and "lock" not in owner.attr:
                return f"self.{owner.attr}.{node.func.attr}(...)"
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                state = _guarded_state(target)
                if state:
                    return state
        return None

    @staticmethod
    def _lock_item(item: ast.withitem) -> bool:
        expr = item.context_expr
        if isinstance(expr, ast.Call):
            expr = expr.func
        return isinstance(expr, ast.Attribute) and \
            "lock" in expr.attr.lower() and _is_self_attr(expr)

    def _under_lock(self, ctx: ModuleContext, node: ast.AST,
                    method: ast.AST) -> bool:
        parents = ctx.parent_map()
        current = parents.get(node)
        while current is not None and current is not method:
            if isinstance(current, ast.With) and \
                    any(self._lock_item(i) for i in current.items):
                return True
            # Mutations inside a nested *_locked helper are the
            # helper's business, not this method's.
            if isinstance(current, (ast.FunctionDef,
                                    ast.AsyncFunctionDef)) and \
                    current.name.endswith("_locked"):
                return True
            current = parents.get(current)
        return False


register_checker(RULE, LockDisciplineChecker,
                 summary=LockDisciplineChecker.summary)
