"""registry-consistency: registries are the single source of truth.

The stack names everything through string-keyed registries — engines,
kernels, transports, and now lint checkers.  Two ways that discipline
rots:

- **dynamic keys**: ``register(some_variable, ...)`` makes the lineup
  undiscoverable by reading the code (and by this linter);
- **shadow lineups**: a hand-written ``("yannakakis", "sparksql", ...)``
  tuple that mirrors a registry drifts the moment someone registers a
  new entry — the CLI/benchmarks silently stop covering it.

The checker flags non-literal registration keys, duplicate literal keys
within a file, and module-level list/tuple literals whose elements are
all keys of one live registry (the registry's own package is exempt —
someone has to write the built-in lineup down once).
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterable, Iterator

from ..base import Checker, ModuleContext
from ..findings import Finding
from ..registry import register_checker

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine import LintConfig

RULE = "registry-consistency"

#: registration function name -> registry it feeds.
_REGISTER_FUNCS = {
    "register": "engines",
    "register_engine": "engines",
    "register_kernel": "kernels",
    "register_transport": "transports",
    "register_checker": "checkers",
}

#: Packages allowed to spell a registry's keys out literally: the
#: package that defines the registry and registers the built-ins.
_HOME_PACKAGES = {
    "engines": ("repro.engines",),
    "kernels": ("repro.kernels",),
    "transports": ("repro.runtime", "repro.net"),
}

_KEY_HINT = ("registries are greppable contracts; use a string literal "
             "so the lineup can be read (and linted) statically")
_LINEUP_HINT = ("derive the list from the registry (e.g. "
                "available()/available_kernels()/available_transports()) "
                "instead of spelling the keys out again")


def _call_name(node: ast.Call) -> str:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _registration_key(node: ast.Call) -> "ast.expr | None":
    if node.args:
        return node.args[0]
    for kw in node.keywords:
        if kw.arg in ("key", "name", "rule"):
            return kw.value
    return None


def _module_constants(tree: ast.Module) -> dict[str, str]:
    """Module-level ``NAME = "literal"`` bindings (the ``RULE = ...``
    idiom counts as a static key)."""
    constants: dict[str, str] = {}
    for node in tree.body:
        if isinstance(node, ast.Assign) and \
                isinstance(node.value, ast.Constant) and \
                isinstance(node.value.value, str):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    constants[target.id] = node.value.value
    return constants


def _string_elements(node: ast.expr) -> "list[str] | None":
    """Elements of a list/tuple literal if they are all strings."""
    if not isinstance(node, (ast.List, ast.Tuple)) or not node.elts:
        return None
    values: list[str] = []
    for elt in node.elts:
        if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
            values.append(elt.value)
        else:
            return None
    return values


class RegistryConsistencyChecker(Checker):
    rule = RULE
    summary = ("registration keys are static literals, registered once; "
               "no hand-rolled copies of registry lineups")

    def check(self, ctx: ModuleContext,
              config: "LintConfig") -> Iterable[Finding]:
        yield from self._check_registrations(ctx)
        yield from self._check_lineups(ctx, config)

    def _check_registrations(self,
                             ctx: ModuleContext) -> Iterator[Finding]:
        seen: dict[tuple[str, str], int] = {}
        constants = _module_constants(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            registry = _REGISTER_FUNCS.get(name)
            if registry is None:
                continue
            key = _registration_key(node)
            if key is None:
                continue
            if isinstance(key, ast.Constant) and \
                    isinstance(key.value, str):
                value = key.value
            elif isinstance(key, ast.Name) and key.id in constants:
                value = constants[key.id]
            else:
                yield ctx.finding(
                    node, self.rule,
                    f"{name}() called with a non-literal key; registry "
                    f"keys must be static string literals",
                    hint=_KEY_HINT)
                continue
            ident = (registry, value)
            if ident in seen:
                yield ctx.finding(
                    node, self.rule,
                    f"{name}() registers {value!r} again (first "
                    f"registration at line {seen[ident]}); one key, "
                    f"one registration", hint=_KEY_HINT)
            else:
                seen[ident] = node.lineno

    def _check_lineups(self, ctx: ModuleContext,
                       config: "LintConfig") -> Iterator[Finding]:
        registries = config.registry_keys()
        for node in ctx.tree.body:
            if not isinstance(node, ast.Assign):
                continue
            values = _string_elements(node.value)
            if values is None or len(values) < 2:
                continue
            for kind, keys in registries.items():
                if not keys or not set(values) <= keys:
                    continue
                homes = _HOME_PACKAGES.get(kind, ())
                if any(ctx.module == h or ctx.module.startswith(h + ".")
                       for h in homes):
                    continue
                target = node.targets[0]
                label = target.id if isinstance(target, ast.Name) \
                    else "this literal"
                yield ctx.finding(
                    node, self.rule,
                    f"{label} hand-rolls {len(values)} keys of the "
                    f"{kind} registry; it will drift when the registry "
                    f"grows", hint=_LINEUP_HINT)
                break


register_checker(RULE, RegistryConsistencyChecker,
                 summary=RegistryConsistencyChecker.summary)
