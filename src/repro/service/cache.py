"""Plan and result caches for the query service.

Both caches key on a *canonical query signature* — the datalog
rendering of the :class:`~repro.query.query.JoinQuery`, which is
deterministic for a given query structure — plus whatever else can
change the answer:

- :class:`PlanCache` holds GHD hypertrees keyed on the signature and
  the catalog stats (per-relation cardinalities) the optimizer would
  consult.  A hit feeds ``EngineOptions.hypertree``, so repeated
  queries skip hypertree search entirely.
- :class:`ResultCache` holds successful counts keyed on the signature,
  the engine/knobs, and :meth:`repro.data.database.Database
  .fingerprint` — cached entries stay valid exactly as long as the
  content hash does, and :meth:`ResultCache.invalidate` drops them
  explicitly when a catalog is known to have changed.

Cached *results* are rebuilt on the way out: a warm hit returns a fresh
:class:`~repro.engines.base.EngineResult` whose ``data_plane`` is all
zeros with ``transport="cache"`` — the honest report, since a warm run
publishes and ships nothing.

Both caches are thread-safe (one lock each; entries are immutable) and
LRU: the plan cache bounds entry *count*, the result cache bounds
estimated *bytes* (``REPRO_RESULT_CACHE_BYTES``).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from ..data.database import Database
from ..distributed.metrics import CostBreakdown
from ..engines.base import EngineOptions, EngineResult
from ..ghd.decomposition import Hypertree
from ..obs.metrics import METRICS
from ..query.query import JoinQuery
from ..runtime.transport import TransportStats

__all__ = ["PlanCache", "ResultCache", "plan_key", "result_key",
           "cached_result"]


def query_signature(query: JoinQuery) -> str:
    """Deterministic text form of a query (its datalog rendering)."""
    return repr(query)


def catalog_stats(query: JoinQuery, db: Database) -> tuple:
    """The per-relation stats a plan for ``query`` depends on."""
    return tuple(sorted(
        (atom.relation, len(db[atom.relation]))
        for atom in query.atoms))


def plan_key(query: JoinQuery, db: Database,
             samples: int | None = None, seed: int | None = None) -> tuple:
    return (query_signature(query), catalog_stats(query, db),
            samples, seed)


def result_key(query: JoinQuery, db: Database, engine: str,
               options: EngineOptions | None = None) -> tuple:
    """Result-cache key: query text + engine + knobs + content hash.

    Includes every :class:`EngineOptions` field that can change the
    *count* or the failure mode (budgets, order, kernel...), so a
    downgraded tenant's budget-clamped run never poisons the cache for
    a full-budget tenant.
    """
    knobs = None
    if options is not None:
        knobs = (options.samples, options.seed, options.work_budget,
                 options.budget_tuples, options.budget_bindings,
                 options.order, options.kernel)
    return (query_signature(query), engine, knobs, db.fingerprint())


def cached_result(entry: "_ResultEntry", query_id: str | None = None
                  ) -> EngineResult:
    """Materialize a warm hit: same count, zeroed data plane."""
    extra: dict = {
        "result_cache": "hit",
        "data_plane": dict(TransportStats().as_dict(), transport="cache"),
    }
    if query_id is not None:
        extra["query_id"] = query_id
    return EngineResult(engine=entry.engine, query=entry.query,
                        count=entry.count, breakdown=entry.breakdown,
                        shuffled_tuples=0, rounds=entry.rounds,
                        extra=extra)


@dataclass(frozen=True)
class _ResultEntry:
    engine: str
    query: str
    count: int
    rounds: int
    breakdown: CostBreakdown
    nbytes: int


class PlanCache:
    """LRU cache of GHD hypertrees, bounded by entry count."""

    def __init__(self, capacity: int = 128):
        self.capacity = max(1, int(capacity))
        self._entries: "OrderedDict[tuple, Hypertree]" = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: tuple) -> Hypertree | None:
        with self._lock:
            tree = self._entries.get(key)
            if tree is not None:
                self._entries.move_to_end(key)
                METRICS.counter("service.plan_cache_hits").inc()
            else:
                METRICS.counter("service.plan_cache_misses").inc()
            return tree

    def put(self, key: tuple, tree: Hypertree) -> None:
        with self._lock:
            self._entries[key] = tree
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


class ResultCache:
    """LRU cache of successful counts, bounded by estimated bytes.

    Only *successful* results are cached — failures (budget trips,
    crashes) must re-execute, both because they are tenant-specific and
    because a transient crash should not become sticky.
    """

    def __init__(self, max_bytes: int = 64 << 20):
        self.max_bytes = max(0, int(max_bytes))
        self._entries: "OrderedDict[tuple, _ResultEntry]" = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()

    @staticmethod
    def _estimate_bytes(key: tuple, result: EngineResult) -> int:
        # Counts-only results are small; a conservative fixed floor
        # plus the key text keeps the accounting honest without
        # serializing anything.
        return 512 + len(str(key))

    def get(self, key: tuple, query_id: str | None = None
            ) -> EngineResult | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                METRICS.counter("service.result_cache_misses").inc()
                return None
            self._entries.move_to_end(key)
            METRICS.counter("service.result_cache_hits").inc()
        return cached_result(entry, query_id=query_id)

    def put(self, key: tuple, result: EngineResult) -> None:
        if not result.ok or self.max_bytes <= 0:
            return
        entry = _ResultEntry(engine=result.engine, query=result.query,
                             count=result.count, rounds=result.rounds,
                             breakdown=result.breakdown,
                             nbytes=self._estimate_bytes(key, result))
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old.nbytes
            self._entries[key] = entry
            self._bytes += entry.nbytes
            while self._bytes > self.max_bytes and self._entries:
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= evicted.nbytes
                METRICS.counter("service.result_cache_evictions").inc()
            METRICS.gauge("service.result_cache_bytes").set(self._bytes)

    def invalidate(self, fingerprint: str | None = None) -> int:
        """Drop entries for one database fingerprint (or all); returns
        how many were dropped.  The explicit-invalidation path for
        callers that mutate a catalog in place."""
        with self._lock:
            if fingerprint is None:
                dropped = len(self._entries)
                self._entries.clear()
                self._bytes = 0
            else:
                stale = [k for k in self._entries if k[-1] == fingerprint]
                dropped = len(stale)
                for k in stale:
                    self._bytes -= self._entries.pop(k).nbytes
            METRICS.gauge("service.result_cache_bytes").set(self._bytes)
        return dropped

    def __len__(self) -> int:
        return len(self._entries)
