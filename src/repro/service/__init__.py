"""repro.service — the multi-tenant query service layer.

Builds the shared warm-cluster story on top of
:class:`~repro.api.context.ClusterContext`::

    from repro.service import QueryService

    with QueryService(max_concurrent=8,
                      tenant_budgets={"free": 50_000}) as svc:
        future = svc.submit("Q(a,b,c) :- R(a,b), S(b,c)", db,
                            engine="adj", tenant="free")
        result = future.result()

:class:`QueryService` provides bounded admission, per-tenant work
budgets (reject / queue / downgrade policies), a GHD plan cache and a
fingerprint-keyed result cache.  The wire front door lives in
:mod:`repro.net.service` (``repro serve-sql`` / ``repro query``); see
docs/service.md for the architecture tour.
"""

from ..api.context import ClusterContext
from ..errors import AdmissionError
from .cache import PlanCache, ResultCache, plan_key, result_key
from .service import (BUDGET_POLICIES, MAX_CONCURRENT_ENV_VAR,
                      RESULT_CACHE_ENV_VAR, QueryRequest, QueryService,
                      default_max_concurrent, default_result_cache_bytes)

__all__ = [
    "QueryService",
    "QueryRequest",
    "ClusterContext",
    "AdmissionError",
    "PlanCache",
    "ResultCache",
    "plan_key",
    "result_key",
    "BUDGET_POLICIES",
    "MAX_CONCURRENT_ENV_VAR",
    "RESULT_CACHE_ENV_VAR",
    "default_max_concurrent",
    "default_result_cache_bytes",
]
