"""QueryService: multi-tenant concurrent query execution on a warm cluster.

The service layer of the stack (docs/service.md)::

    ┌ ServiceClient / CLI / REPL ┐        (repro.net.service)
    │        QueryService        │  ← admission, budgets, caches
    │       ClusterContext       │  ← shared executor + data plane
    └─ ExecutorView per query ───┘  ← per-epoch isolation

A :class:`QueryService` owns one
:class:`~repro.api.context.ClusterContext` and multiplexes many
callers' queries onto it:

- **Bounded admission** — at most ``max_concurrent`` queries execute at
  once and at most ``queue_depth`` more may wait; beyond that
  :meth:`submit` raises :class:`~repro.errors.AdmissionError`
  (``reason="capacity"``) immediately — backpressure, not failure.
- **Per-tenant work budgets** — the engines' ``work_budget`` /
  ``BudgetExceeded`` tripwire promoted into a scheduler policy.  Each
  tenant gets a budget of intersection-work units (optionally refilled
  every ``window_seconds``); an over-budget tenant is handled per
  ``budget_policy``: ``"reject"`` (429-style, at submit),
  ``"queue"`` (wait for the next refill, bounded by
  ``queue_timeout``), or ``"downgrade"`` (run with ``work_budget``
  clamped to what remains — the run itself then trips ``BudgetExceeded``
  cleanly if it needs more).  Other tenants are never affected.
- **Plan cache** — GHD hypertrees keyed on query + catalog stats; hits
  skip hypertree search via ``EngineOptions.hypertree``.
- **Result cache** — successful counts keyed on
  ``(query, engine, knobs, Database.fingerprint())``; a warm hit ships
  zero bytes (``data_plane`` all zeros, ``transport="cache"``) and
  :meth:`invalidate` drops entries when a catalog mutates.

Everything is observable under ``service.*`` metrics (admissions,
rejections, cache hit/miss, active/queued gauges, latency histogram) —
scrape them via the agent EXPO endpoint or ``session.metrics()``.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass

from ..api.context import ClusterContext
from ..api.session import JoinSession
from ..data.database import Database
from ..engines.base import EngineOptions, EngineResult
from ..errors import AdmissionError, ConfigError
from ..ghd.decomposition import optimal_hypertree
from ..obs.log import get_logger, kv
from ..obs.metrics import METRICS
from ..query.parser import parse_query
from ..query.query import JoinQuery
from .cache import PlanCache, ResultCache, plan_key, result_key

log = get_logger("repro.service")

__all__ = ["QueryService", "QueryRequest", "BUDGET_POLICIES",
           "MAX_CONCURRENT_ENV_VAR", "RESULT_CACHE_ENV_VAR",
           "default_max_concurrent", "default_result_cache_bytes"]

#: Environment variable bounding concurrent query execution.
MAX_CONCURRENT_ENV_VAR = "REPRO_MAX_CONCURRENT"
#: Environment variable bounding the result cache (bytes; 0 disables).
RESULT_CACHE_ENV_VAR = "REPRO_RESULT_CACHE_BYTES"

BUDGET_POLICIES = ("reject", "queue", "downgrade")

_DEFAULT_MAX_CONCURRENT = 4
_DEFAULT_RESULT_CACHE_BYTES = 64 << 20


def _env_int(var: str, default: int, minimum: int) -> int:
    raw = os.environ.get(var)
    if raw is None:
        return default
    try:
        value = int(float(raw))
    except ValueError:
        raise ConfigError(f"{var} must be a number, got {raw!r}") from None
    if value < minimum:
        raise ConfigError(f"{var} must be >= {minimum}, got {raw!r}")
    return value


def default_max_concurrent() -> int:
    """Concurrent-query bound from ``REPRO_MAX_CONCURRENT`` (default 4)."""
    return _env_int(MAX_CONCURRENT_ENV_VAR, _DEFAULT_MAX_CONCURRENT, 1)


def default_result_cache_bytes() -> int:
    """Result-cache budget from ``REPRO_RESULT_CACHE_BYTES``
    (default 64 MiB; 0 disables caching)."""
    return _env_int(RESULT_CACHE_ENV_VAR, _DEFAULT_RESULT_CACHE_BYTES, 0)


@dataclass
class QueryRequest:
    """One unit of admitted work."""

    query: JoinQuery
    db: Database
    engine: str = "adj"
    tenant: str = "default"
    options: EngineOptions | None = None
    use_cache: bool = True
    profile: bool = False


class _TenantState:
    """Work-unit accounting for one tenant (guarded by the service lock)."""

    def __init__(self, budget: int, window_seconds: float | None):
        self.budget = int(budget)
        self.window_seconds = window_seconds
        self.consumed = 0
        self.window_start = time.monotonic()

    def remaining(self, now: float) -> int:
        if (self.window_seconds is not None
                and now - self.window_start >= self.window_seconds):
            self.consumed = 0
            self.window_start = now
        return self.budget - self.consumed

    def charge(self, work: int) -> None:
        self.consumed += max(0, int(work))


class QueryService:
    """Admission-controlled, cached, multi-tenant query execution."""

    def __init__(self, context: ClusterContext | None = None,
                 config=None, *,
                 max_concurrent: int | None = None,
                 queue_depth: int | None = None,
                 tenant_budgets: "dict[str, int] | None" = None,
                 budget_policy: str = "reject",
                 budget_window: float | None = None,
                 queue_timeout: float = 30.0,
                 result_cache_bytes: int | None = None,
                 plan_cache_size: int = 128):
        if budget_policy not in BUDGET_POLICIES:
            raise ConfigError(
                f"budget_policy must be one of {BUDGET_POLICIES}, "
                f"got {budget_policy!r}")
        if context is not None and config is not None:
            raise ConfigError("pass either context= or config=, not both")
        self.max_concurrent = (default_max_concurrent()
                               if max_concurrent is None
                               else max(1, int(max_concurrent)))
        self.queue_depth = (2 * self.max_concurrent if queue_depth is None
                            else max(0, int(queue_depth)))
        self.budget_policy = budget_policy
        self.budget_window = budget_window
        self.queue_timeout = queue_timeout
        self.plan_cache = PlanCache(capacity=plan_cache_size)
        self.result_cache = ResultCache(
            max_bytes=default_result_cache_bytes()
            if result_cache_bytes is None else result_cache_bytes)
        self._context = (context or ClusterContext(config)).acquire()
        self._session = JoinSession(context=self._context)
        self._tenants: dict[str, _TenantState] = {}
        for tenant, budget in (tenant_budgets or {}).items():
            self._tenants[tenant] = _TenantState(budget, budget_window)
        self._lock = threading.Lock()
        self._budget_cond = threading.Condition(self._lock)
        self._inflight = 0        # admitted, not yet finished
        self._active = 0          # actually executing
        self._closed = False
        self._pool = ThreadPoolExecutor(
            max_workers=self.max_concurrent,
            thread_name_prefix="repro-service")

    # -- lifecycle -----------------------------------------------------------

    @property
    def context(self) -> ClusterContext:
        return self._context

    def warm(self) -> "QueryService":
        """Stand the shared executor up ahead of the first query."""
        self._context.executor()
        return self

    def close(self) -> None:
        """Drain in-flight queries, then release the context (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._budget_cond.notify_all()
        self._pool.shutdown(wait=True)
        try:
            self._session.close()
        finally:
            self._context.release()
        log.info("service closed %s", kv(
            plans=len(self.plan_cache), results=len(self.result_cache)))

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- tenants -------------------------------------------------------------

    def set_tenant_budget(self, tenant: str, work_budget: int,
                          window_seconds: float | None = None) -> None:
        """Install (or replace) a tenant's work budget.

        ``window_seconds`` overrides the service-wide ``budget_window``
        for this tenant; None inherits it.
        """
        window = (self.budget_window if window_seconds is None
                  else window_seconds)
        with self._lock:
            self._tenants[tenant] = _TenantState(work_budget, window)
            self._budget_cond.notify_all()

    def tenant_remaining(self, tenant: str) -> int | None:
        """Work units the tenant may still spend (None = unlimited)."""
        with self._lock:
            state = self._tenants.get(tenant)
            return None if state is None else state.remaining(
                time.monotonic())

    # -- admission + execution -----------------------------------------------

    def submit(self, query: "JoinQuery | str", db: Database,
               engine: str = "adj", tenant: str = "default",
               options: EngineOptions | None = None,
               use_cache: bool = True,
               profile: bool = False) -> "Future[EngineResult]":
        """Admit one query; returns a Future resolving to its result.

        Raises :class:`AdmissionError` *synchronously* when the bounded
        queue is full (``reason="capacity"``) or — under the ``reject``
        policy — when the tenant's budget is exhausted
        (``reason="budget"``).  Execution failures never surface as
        exceptions: the Future resolves to a failed
        :class:`EngineResult`, exactly like ``QueryJob.run``.
        """
        if isinstance(query, str):
            query = parse_query(query)
        request = QueryRequest(query=query, db=db, engine=engine,
                               tenant=tenant, options=options,
                               use_cache=use_cache, profile=profile)
        METRICS.counter("service.submitted").inc()
        with self._lock:
            if self._closed:
                raise ConfigError("this QueryService is closed")
            if self._inflight >= self.max_concurrent + self.queue_depth:
                METRICS.counter("service.rejected_capacity").inc()
                raise AdmissionError(
                    f"admission queue full ({self._inflight} in flight, "
                    f"bound {self.max_concurrent}+{self.queue_depth}); "
                    f"retry later", reason="capacity", tenant=tenant)
            if self.budget_policy == "reject":
                state = self._tenants.get(tenant)
                if state is not None \
                        and state.remaining(time.monotonic()) <= 0:
                    METRICS.counter("service.rejected_budget").inc()
                    raise AdmissionError(
                        f"tenant {tenant!r} is over its work budget "
                        f"({state.budget} units)", reason="budget",
                        tenant=tenant)
            self._inflight += 1
            METRICS.gauge("service.queued").set(
                self._inflight - self._active)
        try:
            return self._pool.submit(self._run_request, request)
        except RuntimeError:
            # shutdown raced the submit
            with self._lock:
                self._inflight -= 1
            raise ConfigError("this QueryService is closed") from None

    def execute(self, query: "JoinQuery | str", db: Database,
                engine: str = "adj", tenant: str = "default",
                options: EngineOptions | None = None,
                use_cache: bool = True,
                profile: bool = False) -> EngineResult:
        """Synchronous :meth:`submit` — blocks for the result."""
        return self.submit(query, db, engine=engine, tenant=tenant,
                           options=options, use_cache=use_cache,
                           profile=profile).result()

    # -- internals -----------------------------------------------------------

    def _await_budget(self, request: QueryRequest) -> int | None:
        """Apply the budget policy inside the driver thread.

        Returns the work budget the run must respect (None = the
        session default).  ``queue`` blocks here — on a driver thread,
        never the caller's — until the tenant's window refills.
        """
        with self._lock:
            state = self._tenants.get(request.tenant)
            if state is None:
                return None
            now = time.monotonic()
            remaining = state.remaining(now)
            if self.budget_policy == "downgrade":
                # Clamp instead of refusing: the run itself trips
                # BudgetExceeded cleanly if it needs more than remains.
                if remaining < state.budget:
                    METRICS.counter("service.downgraded").inc()
                return max(1, remaining)
            if self.budget_policy == "queue" and remaining <= 0:
                if state.window_seconds is None:
                    raise AdmissionError(
                        f"tenant {request.tenant!r} is over its work "
                        f"budget and has no refill window",
                        reason="budget", tenant=request.tenant)
                deadline = now + self.queue_timeout
                while remaining <= 0:
                    if self._closed:
                        raise ConfigError("this QueryService is closed")
                    now = time.monotonic()
                    if now >= deadline:
                        METRICS.counter("service.rejected_budget").inc()
                        raise AdmissionError(
                            f"tenant {request.tenant!r} stayed over "
                            f"budget for {self.queue_timeout}s",
                            reason="budget", tenant=request.tenant)
                    refill_in = max(0.01, state.window_seconds
                                    - (now - state.window_start))
                    METRICS.counter("service.budget_waits").inc()
                    self._budget_cond.wait(
                        timeout=min(refill_in, deadline - now))
                    remaining = state.remaining(time.monotonic())
            return max(1, remaining) if remaining < state.budget else None

    def _charge(self, request: QueryRequest, result: EngineResult,
                clamped: int | None) -> None:
        with self._lock:
            state = self._tenants.get(request.tenant)
            if state is None:
                return
            work = result.extra.get("leapfrog_work")
            if work is None:
                # Budget-tripped runs burned (at least) their clamp;
                # other failures charge nothing measurable.
                work = clamped or 0 if result.failure == "budget" else 0
            state.charge(int(work))

    def _run_request(self, request: QueryRequest) -> EngineResult:
        start = time.perf_counter()
        with self._lock:
            self._active += 1
            METRICS.gauge("service.active").set(self._active)
            METRICS.gauge("service.queued").set(
                self._inflight - self._active)
        try:
            clamped = self._await_budget(request)
            opts = self._session.config.engine_options(request.options)
            if clamped is not None:
                current = opts.work_budget
                opts = opts.merged_with(None, work_budget=(
                    clamped if current is None else min(clamped, current)))
            rkey = None
            if request.use_cache:
                rkey = result_key(request.query, request.db,
                                  request.engine, opts)
                hit = self.result_cache.get(
                    rkey, query_id=self._context.next_query_id(
                        request.query.name))
                if hit is not None:
                    METRICS.counter("service.completed").inc()
                    return hit
            pkey = plan_key(request.query, request.db,
                            opts.samples, opts.seed)
            tree = self.plan_cache.get(pkey)
            if tree is None:
                tree = optimal_hypertree(request.query)
                self.plan_cache.put(pkey, tree)
            opts = opts.merged_with(None, hypertree=tree)
            job = self._session.query_from(request.query, request.db)
            result = job.run(request.engine, options=opts,
                             profile=request.profile)
            self._charge(request, result, clamped)
            if result.ok and rkey is not None:
                self.result_cache.put(rkey, result)
            METRICS.counter("service.completed").inc()
            if not result.ok:
                METRICS.counter("service.failed_runs").inc()
            return result
        finally:
            with self._lock:
                self._active -= 1
                self._inflight -= 1
                METRICS.gauge("service.active").set(self._active)
                METRICS.gauge("service.queued").set(
                    self._inflight - self._active)
            METRICS.histogram("service.seconds").observe(
                time.perf_counter() - start)

    # -- maintenance ---------------------------------------------------------

    def invalidate(self, db: "Database | str | None" = None) -> int:
        """Drop cached results for ``db`` (a Database or a fingerprint);
        None drops everything.  Returns the number of entries dropped."""
        fingerprint = db.fingerprint() if isinstance(db, Database) else db
        return self.result_cache.invalidate(fingerprint)

    def stats(self) -> dict:
        """A point-in-time snapshot for monitors and the wire STAT op."""
        with self._lock:
            tenants = {name: state.remaining(time.monotonic())
                       for name, state in self._tenants.items()}
            return {
                "active": self._active,
                "queued": self._inflight - self._active,
                "inflight": self._inflight,
                "max_concurrent": self.max_concurrent,
                "queue_depth": self.queue_depth,
                "budget_policy": self.budget_policy,
                "plan_cache_entries": len(self.plan_cache),
                "result_cache_entries": len(self.result_cache),
                "tenants": tenants,
                "closed": self._closed,
            }

    def __repr__(self) -> str:
        return (f"QueryService(max_concurrent={self.max_concurrent}, "
                f"queue_depth={self.queue_depth}, "
                f"policy={self.budget_policy!r})")
