"""repro.api — the stable front door (session, jobs, config, registry).

Typical use::

    from repro.api import JoinSession

    with JoinSession(workers=8) as session:
        report = session.query("lj", "Q5").compare()
        assert report.agreed

See docs/api.md for the full tour: session lifecycle, the engine
registry, and configuration precedence (explicit > env > defaults).
"""

from ..engines import registry
from ..engines.base import EngineOptions, EngineResult
from .config import RunConfig
from .context import ClusterContext
from .job import ComparisonReport, ExplainReport, QueryJob
from .session import JoinSession

__all__ = [
    "JoinSession",
    "ClusterContext",
    "QueryJob",
    "ExplainReport",
    "ComparisonReport",
    "RunConfig",
    "EngineOptions",
    "EngineResult",
    "registry",
]
