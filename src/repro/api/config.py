"""Typed run configuration with environment-variable defaults.

One :class:`RunConfig` answers every "how should this run?" question —
worker count, runtime backend, data-plane transport, optimizer sampling,
budgets, memory — that used to be scattered across per-engine kwargs,
``Cluster`` fields and ``executor_for`` arguments.

Precedence is **explicit argument > environment variable > built-in
default**: every field's default factory reads its ``REPRO_*`` variable,
so a value passed to ``RunConfig(...)`` (e.g. from a CLI flag) always
wins, and an unset field falls back to the documented default.

Environment variables::

    REPRO_WORKERS      simulated worker count         (default 8)
    REPRO_BACKEND      serial | threads | processes | remote
                                                      (default serial)
    REPRO_TRANSPORT    pickle | shm | tcp — resolved by the transport
                       layer at executor creation, not here (an env-set
                       transport alone does not force the runtime path)
    REPRO_HOSTS        worker hosts for the remote backend, e.g.
                       "127.0.0.1:7070,127.0.0.1:7071,local:2"
    REPRO_SAMPLES      optimizer sample budget        (default 100)
    REPRO_SEED         sampling seed                  (default 0)
    REPRO_SCALE        dataset scale — resolved by repro.data.datasets
    REPRO_WORK_BUDGET  Leapfrog work budget           (default None)
    REPRO_KERNEL       join kernel: wcoj | binary | adaptive
                                                      (default adaptive)
    REPRO_MEMORY_TUPLES per-worker memory budget      (default None)
    REPRO_PIPELINE     pipelined epochs: on | off     (default on)
    REPRO_PROFILE      EXPLAIN ANALYZE profiles: on | off  (default off)
    REPRO_TRACE        Chrome-trace output path       (default None)
    REPRO_LOG          log level for the repro.* loggers
                                                      (default warning)
    REPRO_BIND_HOST    address block stores bind      (default 127.0.0.1)
    REPRO_ADVERTISE_HOST  address advertised to peers for block fetches
                                                      (default: bind host)
    REPRO_NET_CACHE_BYTES remote block-fetch cache budget in bytes
                                                      (default 256 MiB)

:data:`ENV_CATALOG` is the machine-readable registry of these names;
the ``env-registry`` lint rule (docs/static_analysis.md) rejects any
``REPRO_*`` read that is not declared here and documented in
docs/api.md.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass, field

from ..distributed.cluster import RUNTIME_BACKENDS, Cluster, default_workers
from ..engines.base import EngineOptions
from ..errors import ConfigError
from ..kernels import KERNEL_ENV_VAR, default_kernel, kernel_spec
from ..obs.log import LOG_ENV_VAR, resolve_level
from ..obs.tracing import TRACE_ENV_VAR
from ..runtime.executor import PIPELINE_ENV_VAR, default_pipeline

__all__ = ["RunConfig", "EngineOptions", "ENV_CATALOG", "default_backend",
           "default_hosts", "default_kernel", "default_log_level",
           "default_pipeline", "default_profile", "default_samples",
           "default_seed", "default_trace_path", "KERNEL_ENV_VAR",
           "LOG_ENV_VAR", "PIPELINE_ENV_VAR", "PROFILE_ENV_VAR",
           "TRACE_ENV_VAR"]


HOSTS_ENV_VAR = "REPRO_HOSTS"

#: Every environment variable the stack honours, in one place.  New
#: REPRO_* knobs must be added here (and to docs/api.md) before any
#: code reads them — the env-registry lint rule enforces it.
ENV_CATALOG: tuple[str, ...] = (
    "REPRO_WORKERS",
    "REPRO_BACKEND",
    "REPRO_TRANSPORT",
    "REPRO_HOSTS",
    "REPRO_SAMPLES",
    "REPRO_SEED",
    "REPRO_SCALE",
    "REPRO_WORK_BUDGET",
    "REPRO_KERNEL",
    "REPRO_MEMORY_TUPLES",
    "REPRO_PIPELINE",
    "REPRO_PROFILE",
    "REPRO_TRACE",
    "REPRO_LOG",
    "REPRO_BIND_HOST",
    "REPRO_ADVERTISE_HOST",
    "REPRO_NET_CACHE_BYTES",
    "REPRO_SERVICE_PORT",
    "REPRO_RESULT_CACHE_BYTES",
    "REPRO_MAX_CONCURRENT",
)


def default_hosts() -> tuple[str, ...] | None:
    """Host specs from ``REPRO_HOSTS`` (None when unset/empty).

    Mirrors :func:`repro.net.executor.default_hosts` rather than
    importing it: this factory runs on every :class:`RunConfig`
    construction, and ``import repro.api`` must not pull in the
    networking package (it is registered lazily everywhere else too —
    only ``backend="remote"`` touches :mod:`repro.net`).
    """
    raw = os.environ.get(HOSTS_ENV_VAR)
    if raw is None:
        return None
    hosts = tuple(part.strip() for part in raw.split(",") if part.strip())
    return hosts or None

BACKEND_ENV_VAR = "REPRO_BACKEND"
PROFILE_ENV_VAR = "REPRO_PROFILE"
SAMPLES_ENV_VAR = "REPRO_SAMPLES"
SEED_ENV_VAR = "REPRO_SEED"
WORK_BUDGET_ENV_VAR = "REPRO_WORK_BUDGET"
MEMORY_ENV_VAR = "REPRO_MEMORY_TUPLES"

_DEFAULT_SAMPLES = 100
_DEFAULT_SEED = 0


def _env_int(var: str, default: int | None, minimum: int | None = None
             ) -> int | None:
    raw = os.environ.get(var)
    if raw is None:
        return default
    try:
        value = int(float(raw))
    except ValueError:
        raise ConfigError(f"{var} must be a number, got {raw!r}") from None
    if minimum is not None and value < minimum:
        raise ConfigError(f"{var} must be >= {minimum}, got {raw!r}")
    return value


def default_backend() -> str:
    """Runtime backend, overridable through REPRO_BACKEND."""
    raw = os.environ.get(BACKEND_ENV_VAR)
    if raw is None:
        return "serial"
    if raw not in RUNTIME_BACKENDS:
        raise ConfigError(
            f"{BACKEND_ENV_VAR} must be one of {RUNTIME_BACKENDS}, "
            f"got {raw!r}")
    return raw


def default_trace_path() -> str | None:
    """Chrome-trace output path from REPRO_TRACE (None when unset)."""
    raw = os.environ.get(TRACE_ENV_VAR)
    return raw.strip() or None if raw is not None else None


def default_log_level() -> str | None:
    """Log level from REPRO_LOG (None defers to configure_logging)."""
    raw = os.environ.get(LOG_ENV_VAR)
    return raw.strip() or None if raw is not None else None


_PROFILE_VALUES = {"on": True, "1": True, "true": True, "yes": True,
                   "off": False, "0": False, "false": False, "no": False}


def default_profile() -> bool:
    """EXPLAIN ANALYZE default from ``REPRO_PROFILE`` (off unless set)."""
    raw = os.environ.get(PROFILE_ENV_VAR)
    if raw is None:
        return False
    value = _PROFILE_VALUES.get(raw.strip().lower())
    if value is None:
        raise ConfigError(
            f"{PROFILE_ENV_VAR} must be one of "
            f"{sorted(_PROFILE_VALUES)}, got {raw!r}")
    return value


def default_samples() -> int:
    return _env_int(SAMPLES_ENV_VAR, _DEFAULT_SAMPLES, minimum=1)


def default_seed() -> int:
    return _env_int(SEED_ENV_VAR, _DEFAULT_SEED)


@dataclass(frozen=True)
class RunConfig:
    """Everything a :class:`repro.api.JoinSession` needs to run queries."""

    #: Simulated worker count (REPRO_WORKERS).
    workers: int = field(default_factory=default_workers)
    #: Runtime backend: serial | threads | processes (REPRO_BACKEND).
    backend: str = field(default_factory=default_backend)
    #: Data-plane transport name; None keeps the inline (simulated) path
    #: on the serial backend and defers to REPRO_TRANSPORT when an
    #: executor is created.  Setting it explicitly forces the runtime
    #: path even on the serial backend, mirroring the CLI.
    transport: str | None = None
    #: Worker hosts for the ``remote`` backend (REPRO_HOSTS): a tuple of
    #: ``"host:port"`` agent addresses and/or ``"local[:slots]"``
    #: entries; None is fine for every other backend.
    hosts: tuple[str, ...] | None = field(default_factory=default_hosts)
    #: Optimizer sample budget (REPRO_SAMPLES).
    samples: int = field(default_factory=default_samples)
    #: Sampling seed (REPRO_SEED).
    seed: int = field(default_factory=default_seed)
    #: Dataset scale for named test-cases; None defers to REPRO_SCALE /
    #: the dataset default inside repro.data.datasets.
    scale: float | None = None
    #: Leapfrog work budget, the 12-hour-timeout analogue
    #: (REPRO_WORK_BUDGET).
    work_budget: int | None = field(
        default_factory=lambda: _env_int(WORK_BUDGET_ENV_VAR, None,
                                         minimum=1))
    #: :mod:`repro.kernels` key driving per-cube/per-bag join execution
    #: (REPRO_KERNEL, default ``adaptive``).  ``wcoj`` reproduces the
    #: historical pure-Leapfrog counters exactly.
    kernel: str = field(default_factory=default_kernel)
    #: Per-worker memory budget in tuples; None disables OOM checking
    #: (REPRO_MEMORY_TUPLES).
    memory_tuples: float | None = field(
        default_factory=lambda: _env_int(MEMORY_ENV_VAR, None, minimum=1))
    #: Pipelined epochs (REPRO_PIPELINE, default on): overlap routing/
    #: publish with task execution on runtime backends.  ``False``
    #: restores the strict route -> publish -> execute barriers
    #: (the A/B baseline; results are count-identical either way).
    pipeline: bool = field(default_factory=default_pipeline)
    #: EXPLAIN ANALYZE by default: every ``QueryJob.run`` assembles a
    #: :class:`repro.obs.profile.QueryProfile` onto the result
    #: (``REPRO_PROFILE``, default off — profiling records spans into a
    #: run-local tracer, so the zero-overhead contract only holds when
    #: this is off).  Per-call ``run(profile=...)`` wins over it.
    profile: bool = field(default_factory=default_profile)
    #: Where to write the Chrome-trace JSON timeline of every run in
    #: the session; None disables tracing entirely — the hot paths see
    #: only the zero-cost noop tracer (REPRO_TRACE, docs/observability.md).
    trace_path: str | None = field(default_factory=default_trace_path)
    #: Level for the ``repro.*`` structured loggers; None keeps the
    #: REPRO_LOG / ``warning`` default inside configure_logging.
    log_level: str | None = field(default_factory=default_log_level)

    def __post_init__(self):
        if self.workers < 1:
            raise ConfigError(f"workers must be >= 1, got {self.workers}")
        if self.log_level is not None:
            try:
                resolve_level(self.log_level)
            except ValueError as exc:
                raise ConfigError(str(exc)) from None
        if self.backend not in RUNTIME_BACKENDS:
            raise ConfigError(
                f"unknown backend {self.backend!r}; "
                f"choose from {RUNTIME_BACKENDS}")
        kernel_spec(self.kernel)   # validates; raises ConfigError
        if self.hosts is not None and not isinstance(self.hosts, tuple):
            # Accept a comma-separated string or any iterable of specs.
            hosts = (tuple(p.strip() for p in self.hosts.split(",")
                           if p.strip())
                     if isinstance(self.hosts, str)
                     else tuple(str(h) for h in self.hosts))
            object.__setattr__(self, "hosts", hosts or None)
        if self.backend == "remote":
            from ..net.executor import parse_host_specs

            parse_host_specs(self.hosts)   # validates; raises ConfigError

    def replace(self, **changes) -> "RunConfig":
        """A copy with ``changes`` applied (None values are dropped, so
        optional CLI flags pass through untouched)."""
        changes = {k: v for k, v in changes.items() if v is not None}
        return dataclasses.replace(self, **changes) if changes else self

    def make_cluster(self) -> Cluster:
        return Cluster(num_workers=self.workers, runtime=self.backend,
                       memory_tuples_per_worker=self.memory_tuples)

    @property
    def uses_runtime(self) -> bool:
        """Whether engine runs go through a real executor.

        Mirrors the CLI rule: any non-serial backend, or an explicitly
        chosen transport (which exercises the data plane even under
        serial), takes the runtime path.
        """
        return self.backend != "serial" or self.transport is not None

    def engine_options(self, options: EngineOptions | None = None,
                       **overrides) -> EngineOptions:
        """Session-level defaults folded into an :class:`EngineOptions`.

        Per-call ``options`` and field-name ``overrides`` win over the
        config's ``samples``/``seed``/``work_budget``.
        """
        base = EngineOptions(samples=self.samples, seed=self.seed,
                             work_budget=self.work_budget,
                             kernel=self.kernel)
        return base.merged_with(options, **overrides)
