"""JoinSession: the one front door to the reproduction.

Owns the cluster, the (lazily created) executor and its data-plane
transport, in the way ``SparkSession`` owns a Spark application's
resources::

    from repro import JoinSession

    with JoinSession(workers=8, backend="processes",
                     transport="shm") as session:
        job = session.query("lj", "Q5")        # named paper test-case
        print(job.explain().describe())        # plans only — no shuffle
        result = job.run("adj")                # one engine
        report = job.compare()                 # every registered engine

Resource ownership actually lives in a
:class:`~repro.api.context.ClusterContext`: a session constructed the
historical way creates a *private* context (same behaviour, bit for
bit), while ``JoinSession(context=ctx)`` attaches to a shared one — many
sessions then multiplex queries onto one warm pool, each run isolated on
a per-query :class:`~repro.runtime.executor.ExecutorView`.

Lifecycle guarantees:

- the executor is created on first use only (``explain``/``estimate``
  never create one);
- ``close()`` — and therefore ``with`` exit — waits for in-flight runs
  (new work is refused immediately), then releases the session's hold
  on its context; a private context tears down the executor and
  whatever its transport published (shared-memory segments), even when
  a worker crashed mid-run, while a shared context stays warm for its
  other holders;
- ``close()`` is idempotent, and a closed session refuses new work.
"""

from __future__ import annotations

import threading

from ..data.database import Database
from ..distributed.cluster import Cluster
from ..engines import registry
from ..errors import ConfigError
from ..obs.log import configure_logging, get_logger, kv
from ..obs.metrics import METRICS, snapshot_delta
from ..obs.tracing import NOOP_TRACER, Tracer, write_chrome_trace
from ..query.parser import parse_query
from ..query.query import JoinQuery
from ..runtime.executor import Executor
from ..runtime.transport import default_transport_name
from ..workloads.generators import make_testcase
from .config import RunConfig
from .context import ClusterContext
from .job import QueryJob

log = get_logger("repro.api.session")

__all__ = ["JoinSession"]


class JoinSession:
    """Facade owning cluster, executor and transport lifecycle."""

    def __init__(self, workers: int | None = None,
                 backend: str | None = None,
                 transport: str | None = None, *,
                 hosts=None,
                 samples: int | None = None,
                 seed: int | None = None,
                 scale: float | None = None,
                 work_budget: int | None = None,
                 kernel: str | None = None,
                 memory_tuples: float | None = None,
                 pipeline: bool | None = None,
                 profile: bool | None = None,
                 trace_path: str | None = None,
                 log_level: str | None = None,
                 config: RunConfig | None = None,
                 cluster: Cluster | None = None,
                 context: ClusterContext | None = None):
        """Keyword arguments override ``config`` (itself env-defaulted).

        ``cluster`` substitutes a pre-built :class:`Cluster` (custom cost
        model params); its worker count and runtime hint then win over
        the config's.  Passing ``workers=``/``backend=`` that *conflict*
        with an explicit cluster is a :class:`ConfigError` — silently
        preferring one would mask the mistake.

        ``context`` attaches this session to a shared
        :class:`ClusterContext` instead of creating a private one.
        Resource-owning knobs (``workers``, ``backend``, ``transport``,
        ``hosts``, ``memory_tuples``, ``pipeline``, ``config``,
        ``cluster``) then belong to the context and cannot be
        overridden here; per-caller knobs (``samples``, ``seed``,
        ``scale``, ``work_budget``, ``kernel``, ``profile``,
        ``trace_path``, ``log_level``) still apply.
        """
        if context is not None:
            owned = {"workers": workers, "backend": backend,
                     "transport": transport, "hosts": hosts,
                     "memory_tuples": memory_tuples,
                     "pipeline": pipeline,
                     "config": config, "cluster": cluster}
            conflicts = sorted(k for k, v in owned.items()
                               if v is not None)
            if conflicts:
                raise ConfigError(
                    f"{', '.join(conflicts)} cannot be set when "
                    f"attaching to a shared ClusterContext — resource "
                    f"ownership belongs to the context")
            config = context.config
        if cluster is not None:
            if workers is not None and workers != cluster.num_workers:
                raise ConfigError(
                    f"workers={workers} conflicts with the supplied "
                    f"cluster's num_workers={cluster.num_workers}")
            if backend is not None and backend != cluster.runtime:
                raise ConfigError(
                    f"backend={backend!r} conflicts with the supplied "
                    f"cluster's runtime={cluster.runtime!r}")
        self.config = (config or RunConfig()).replace(
            workers=workers, backend=backend, transport=transport,
            hosts=hosts, samples=samples, seed=seed, scale=scale,
            work_budget=work_budget, kernel=kernel,
            memory_tuples=memory_tuples,
            pipeline=pipeline, profile=profile, trace_path=trace_path,
            log_level=log_level)
        if cluster is not None:
            self.config = self.config.replace(
                workers=cluster.num_workers, backend=cluster.runtime)
        if context is not None:
            self._context = context.acquire()
            self._owns_context = False
        else:
            self._context = ClusterContext(self.config,
                                           cluster=cluster).acquire()
            self._owns_context = True
        self._cluster = self._context.cluster
        self._tracer: Tracer | None = None
        self._closed = False
        # In-flight run accounting: close() waits on this condition so
        # a run that already started can never have its transport torn
        # down underneath it (the close()-vs-run() race).
        self._run_cond = threading.Condition()
        self._active_runs = 0
        if self.config.log_level is not None:
            configure_logging(self.config.log_level)

    # -- resources -----------------------------------------------------------

    @property
    def cluster(self) -> Cluster:
        return self._cluster

    @property
    def context(self) -> ClusterContext:
        """The (private or shared) context owning this session's resources."""
        return self._context

    @property
    def shared(self) -> bool:
        """True when attached to a caller-supplied shared context."""
        return not self._owns_context

    @property
    def executor_created(self) -> bool:
        """Whether the lazy executor exists yet (telemetry/testing)."""
        return self._context.executor_created

    @property
    def _executor(self) -> Executor | None:
        # Compatibility peephole: the base executor now lives on the
        # context.
        return self._context._executor

    @property
    def transport_label(self) -> str:
        """What carries task payloads: a transport name, or ``inline``."""
        if not self.config.uses_runtime:
            return "inline"
        if self.config.transport:
            return self.config.transport
        # Mirror RemoteExecutor's default: the remote backend rides the
        # tcp block store unless REPRO_TRANSPORT says otherwise.
        if self.config.backend == "remote":
            return default_transport_name(fallback="tcp")
        return default_transport_name()

    def executor(self) -> Executor | None:
        """The executor runs should use, created on first call.

        Returns None on the pure-serial path (no explicit transport),
        which keeps the historical inline evaluation.  A private
        session hands back the context's base executor (the historical
        single-caller behaviour); a session attached to a *shared*
        context gets a fresh per-query
        :class:`~repro.runtime.executor.ExecutorView`, so concurrent
        runs never interleave epochs.
        """
        self._check_open()
        if not self.config.uses_runtime:
            return None
        if self._owns_context:
            return self._context.executor()
        return self._context.checkout()

    def _check_open(self) -> None:
        if self._closed:
            raise ConfigError("this JoinSession is closed")

    def _begin_run(self) -> None:
        """Register an in-flight run (refused once close() started)."""
        with self._run_cond:
            self._check_open()
            self._active_runs += 1

    def _end_run(self) -> None:
        with self._run_cond:
            self._active_runs -= 1
            self._run_cond.notify_all()

    # -- observability -------------------------------------------------------

    def tracer(self):
        """The session's span tracer.

        A real :class:`~repro.obs.tracing.Tracer` when the config sets a
        ``trace_path`` (created on first call, shared by every run so
        the trace file holds the whole session's timeline); the noop
        singleton otherwise — hot paths pay nothing when tracing is off.
        """
        if self.config.trace_path is None:
            return NOOP_TRACER
        if self._tracer is None:
            self._tracer = Tracer()
        return self._tracer

    def metrics(self, delta_from: dict | None = None) -> dict:
        """Snapshot of the process-wide metrics registry.

        Counters are cumulative across runs and sessions (they live on
        :data:`repro.obs.metrics.METRICS`).  For per-run numbers pass a
        previous snapshot as ``delta_from`` — the supported windowing
        path::

            before = session.metrics()
            job.run("adj")
            window = session.metrics(delta_from=before)

        which returns only what changed (counter differences; histogram
        ``count/sum/mean`` over the window — see
        :func:`repro.obs.metrics.snapshot_delta`).  ``transport.*``
        totals agree with the summed :attr:`EngineResult.data_plane`
        stats of the runs that fed them.  For exact windowed quantiles
        and cross-process attribution, profile the run instead
        (``job.run(profile=True)``).
        """
        snapshot = METRICS.snapshot()
        if delta_from is None:
            return snapshot
        return snapshot_delta(delta_from, snapshot)

    def next_query_id(self, name: str | None = None) -> str:
        """Mint the next query id (``q0001:Q9``).

        ``QueryJob.run`` calls this for profiled/traced runs; the id
        tags every span and scoped metric of that run.  Ids are minted
        by the context (context-wide sequence), so sessions sharing a
        context never collide on attribution labels.
        """
        return self._context.next_query_id(name)

    def write_trace(self, path: str | None = None) -> int:
        """Write the session's Chrome-trace JSON; returns the span count.

        ``close()`` calls this automatically with the configured
        ``trace_path``; call it explicitly to snapshot mid-session.
        """
        path = path or self.config.trace_path
        if path is None or self._tracer is None:
            return 0
        count = write_chrome_trace(path, self._tracer.spans)
        log.info("trace written %s", kv(path=path, spans=count))
        return count

    # -- queries -------------------------------------------------------------

    def query(self, dataset: str, query_name: str,
              scale: float | None = None,
              seed: int | None = None) -> QueryJob:
        """A job for a named paper test-case, e.g. ``("lj", "Q5")``."""
        self._check_open()
        q, db = make_testcase(
            dataset, query_name,
            scale=self.config.scale if scale is None else scale,
            seed=seed)
        return QueryJob(self, q, db)

    def query_from(self, query: JoinQuery | str, db: Database) -> QueryJob:
        """A job for an explicit query (object or datalog-style text)."""
        self._check_open()
        if isinstance(query, str):
            query = parse_query(query)
        return QueryJob(self, query, db)

    def engines(self) -> tuple[str, ...]:
        """Registered engine keys (:mod:`repro.engines.registry`)."""
        return registry.available()

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Release this session's hold on its context (idempotent).

        New work is refused the moment ``close()`` is called, but runs
        already in flight finish cleanly first — ``close()`` blocks on
        them, so a transport can never be torn down mid-run.  A private
        context then releases its executor and whatever the transport
        published; a shared context stays warm for its other holders.

        Also flushes the session trace to ``config.trace_path`` when
        tracing was on and any spans were recorded.
        """
        with self._run_cond:
            already_closed, self._closed = self._closed, True
            while self._active_runs > 0:
                self._run_cond.wait()
        if already_closed:
            return
        try:
            self._context.release()
        finally:
            self.write_trace()

    def __enter__(self) -> "JoinSession":
        self._check_open()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (f"JoinSession(workers={self.config.workers}, "
                f"backend={self.config.backend!r}, "
                f"transport={self.transport_label!r}, {state})")
