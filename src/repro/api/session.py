"""JoinSession: the one front door to the reproduction.

Owns the cluster, the (lazily created) executor and its data-plane
transport, in the way ``SparkSession`` owns a Spark application's
resources::

    from repro import JoinSession

    with JoinSession(workers=8, backend="processes",
                     transport="shm") as session:
        job = session.query("lj", "Q5")        # named paper test-case
        print(job.explain().describe())        # plans only — no shuffle
        result = job.run("adj")                # one engine
        report = job.compare()                 # every registered engine

Lifecycle guarantees:

- the executor is created on first use only (``explain``/``estimate``
  never create one);
- ``close()`` — and therefore ``with`` exit — tears down the executor
  and whatever its transport published (shared-memory segments), even
  when a worker crashed mid-run;
- ``close()`` is idempotent, and a closed session refuses new work.
"""

from __future__ import annotations

import threading

from ..data.database import Database
from ..distributed.cluster import Cluster
from ..engines import registry
from ..errors import ConfigError
from ..obs.log import configure_logging, get_logger, kv
from ..obs.metrics import METRICS, snapshot_delta
from ..obs.tracing import NOOP_TRACER, Tracer, write_chrome_trace
from ..query.parser import parse_query
from ..query.query import JoinQuery
from ..runtime.executor import Executor, executor_for
from ..runtime.transport import default_transport_name
from ..workloads.generators import make_testcase
from .config import RunConfig
from .job import QueryJob

log = get_logger("repro.api.session")

__all__ = ["JoinSession"]


class JoinSession:
    """Facade owning cluster, executor and transport lifecycle."""

    def __init__(self, workers: int | None = None,
                 backend: str | None = None,
                 transport: str | None = None, *,
                 hosts=None,
                 samples: int | None = None,
                 seed: int | None = None,
                 scale: float | None = None,
                 work_budget: int | None = None,
                 kernel: str | None = None,
                 memory_tuples: float | None = None,
                 pipeline: bool | None = None,
                 profile: bool | None = None,
                 trace_path: str | None = None,
                 log_level: str | None = None,
                 config: RunConfig | None = None,
                 cluster: Cluster | None = None):
        """Keyword arguments override ``config`` (itself env-defaulted).

        ``cluster`` substitutes a pre-built :class:`Cluster` (custom cost
        model params); its worker count and runtime hint then win over
        the config's.  Passing ``workers=``/``backend=`` that *conflict*
        with an explicit cluster is a :class:`ConfigError` — silently
        preferring one would mask the mistake.
        """
        if cluster is not None:
            if workers is not None and workers != cluster.num_workers:
                raise ConfigError(
                    f"workers={workers} conflicts with the supplied "
                    f"cluster's num_workers={cluster.num_workers}")
            if backend is not None and backend != cluster.runtime:
                raise ConfigError(
                    f"backend={backend!r} conflicts with the supplied "
                    f"cluster's runtime={cluster.runtime!r}")
        self.config = (config or RunConfig()).replace(
            workers=workers, backend=backend, transport=transport,
            hosts=hosts, samples=samples, seed=seed, scale=scale,
            work_budget=work_budget, kernel=kernel,
            memory_tuples=memory_tuples,
            pipeline=pipeline, profile=profile, trace_path=trace_path,
            log_level=log_level)
        if cluster is not None:
            self.config = self.config.replace(
                workers=cluster.num_workers, backend=cluster.runtime)
        self._cluster = cluster or self.config.make_cluster()
        self._executor: Executor | None = None
        self._tracer: Tracer | None = None
        self._query_seq = 0
        self._query_seq_lock = threading.Lock()
        self._closed = False
        if self.config.log_level is not None:
            configure_logging(self.config.log_level)

    # -- resources -----------------------------------------------------------

    @property
    def cluster(self) -> Cluster:
        return self._cluster

    @property
    def executor_created(self) -> bool:
        """Whether the lazy executor exists yet (telemetry/testing)."""
        return self._executor is not None

    @property
    def transport_label(self) -> str:
        """What carries task payloads: a transport name, or ``inline``."""
        if not self.config.uses_runtime:
            return "inline"
        if self.config.transport:
            return self.config.transport
        # Mirror RemoteExecutor's default: the remote backend rides the
        # tcp block store unless REPRO_TRANSPORT says otherwise.
        if self.config.backend == "remote":
            return default_transport_name(fallback="tcp")
        return default_transport_name()

    def executor(self) -> Executor | None:
        """The session's executor, created on first call.

        Returns None on the pure-serial path (no explicit transport),
        which keeps the historical inline evaluation.
        """
        self._check_open()
        if not self.config.uses_runtime:
            return None
        if self._executor is None:
            self._executor = executor_for(self._cluster,
                                          transport=self.config.transport,
                                          hosts=self.config.hosts,
                                          pipeline=self.config.pipeline)
        return self._executor

    def _check_open(self) -> None:
        if self._closed:
            raise ConfigError("this JoinSession is closed")

    # -- observability -------------------------------------------------------

    def tracer(self):
        """The session's span tracer.

        A real :class:`~repro.obs.tracing.Tracer` when the config sets a
        ``trace_path`` (created on first call, shared by every run so
        the trace file holds the whole session's timeline); the noop
        singleton otherwise — hot paths pay nothing when tracing is off.
        """
        if self.config.trace_path is None:
            return NOOP_TRACER
        if self._tracer is None:
            self._tracer = Tracer()
        return self._tracer

    def metrics(self, delta_from: dict | None = None) -> dict:
        """Snapshot of the process-wide metrics registry.

        Counters are cumulative across runs and sessions (they live on
        :data:`repro.obs.metrics.METRICS`).  For per-run numbers pass a
        previous snapshot as ``delta_from`` — the supported windowing
        path::

            before = session.metrics()
            job.run("adj")
            window = session.metrics(delta_from=before)

        which returns only what changed (counter differences; histogram
        ``count/sum/mean`` over the window — see
        :func:`repro.obs.metrics.snapshot_delta`).  ``transport.*``
        totals agree with the summed :attr:`EngineResult.data_plane`
        stats of the runs that fed them.  For exact windowed quantiles
        and cross-process attribution, profile the run instead
        (``job.run(profile=True)``).
        """
        snapshot = METRICS.snapshot()
        if delta_from is None:
            return snapshot
        return snapshot_delta(delta_from, snapshot)

    def next_query_id(self, name: str | None = None) -> str:
        """Mint the next per-session query id (``q0001:Q9``).

        ``QueryJob.run`` calls this for profiled/traced runs; the id
        tags every span and scoped metric of that run.
        """
        with self._query_seq_lock:
            self._query_seq += 1
            seq = self._query_seq
        return f"q{seq:04d}:{name or '?'}"

    def write_trace(self, path: str | None = None) -> int:
        """Write the session's Chrome-trace JSON; returns the span count.

        ``close()`` calls this automatically with the configured
        ``trace_path``; call it explicitly to snapshot mid-session.
        """
        path = path or self.config.trace_path
        if path is None or self._tracer is None:
            return 0
        count = write_chrome_trace(path, self._tracer.spans)
        log.info("trace written %s", kv(path=path, spans=count))
        return count

    # -- queries -------------------------------------------------------------

    def query(self, dataset: str, query_name: str,
              scale: float | None = None,
              seed: int | None = None) -> QueryJob:
        """A job for a named paper test-case, e.g. ``("lj", "Q5")``."""
        self._check_open()
        q, db = make_testcase(
            dataset, query_name,
            scale=self.config.scale if scale is None else scale,
            seed=seed)
        return QueryJob(self, q, db)

    def query_from(self, query: JoinQuery | str, db: Database) -> QueryJob:
        """A job for an explicit query (object or datalog-style text)."""
        self._check_open()
        if isinstance(query, str):
            query = parse_query(query)
        return QueryJob(self, query, db)

    def engines(self) -> tuple[str, ...]:
        """Registered engine keys (:mod:`repro.engines.registry`)."""
        return registry.available()

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Release the executor and its transport (idempotent).

        Also flushes the session trace to ``config.trace_path`` when
        tracing was on and any spans were recorded.
        """
        already_closed, self._closed = self._closed, True
        if self._executor is not None:
            try:
                self._executor.close()
            finally:
                self._executor = None
        if not already_closed:
            self.write_trace()

    def __enter__(self) -> "JoinSession":
        self._check_open()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (f"JoinSession(workers={self.config.workers}, "
                f"backend={self.config.backend!r}, "
                f"transport={self.transport_label!r}, {state})")
