"""Deprecation shims for the pre-JoinSession top-level entry points.

``repro.run_engine_safely`` and ``repro.executor_for`` predate the
façade: callers assembled engine, cluster, executor and transport by
hand and had to remember to ``close()`` the executor.  Both names keep
working unchanged — same signatures, same behaviour — but accessing
them from the package root now emits a :class:`DeprecationWarning`
pointing at :class:`repro.api.JoinSession`.

The un-deprecated originals live on at ``repro.engines.run_engine_safely``
and ``repro.runtime.executor_for`` for library-internal plumbing and
existing tests.
"""

from __future__ import annotations

import functools
import warnings

from ..engines.base import run_engine_safely as _run_engine_safely
from ..runtime.executor import executor_for as _executor_for

__all__ = ["run_engine_safely", "executor_for"]


def _deprecated(func, name: str, hint: str):
    @functools.wraps(func)
    def wrapper(*args, **kwargs):
        warnings.warn(
            f"repro.{name} is deprecated; {hint}",
            DeprecationWarning, stacklevel=2)
        return func(*args, **kwargs)
    return wrapper


run_engine_safely = _deprecated(
    _run_engine_safely, "run_engine_safely",
    "use repro.JoinSession — session.query_from(query, db).run(engine) "
    "owns the executor lifecycle for you (or import "
    "repro.engines.run_engine_safely directly)")

executor_for = _deprecated(
    _executor_for, "executor_for",
    "use repro.JoinSession, which creates and tears down the executor "
    "(or import repro.runtime.executor_for directly)")
