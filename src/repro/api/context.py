"""ClusterContext: shared, refcounted ownership of a warm cluster.

Historically every :class:`~repro.api.session.JoinSession` owned its
executor and data-plane transport outright, so a warm cluster (live
worker pool, attached shm segments, a running block store) served
exactly one caller and died with it.  A :class:`ClusterContext` splits
that ownership out: it holds the cluster description, the lazily
created executor and — for the tcp data plane — one shared block store,
and hands each *query* a private
:class:`~repro.runtime.executor.ExecutorView` whose transport and epoch
id are its own.  Sessions become thin per-caller views::

    from repro.api import ClusterContext, JoinSession

    with ClusterContext(RunConfig(workers=8, backend="threads")) as ctx:
        with JoinSession(context=ctx) as a, JoinSession(context=ctx) as b:
            ...   # a and b share one warm pool, safely, concurrently

Lifecycle is refcounted: every attached session (and the ``with`` block
itself) holds one reference; the last :meth:`release` closes the
executor and the shared store.  A session constructed *without* a
context creates a private one — exactly today's single-caller
behaviour, bit for bit.
"""

from __future__ import annotations

import os
import threading

from ..distributed.cluster import Cluster
from ..errors import ConfigError
from ..obs.log import get_logger, kv
from ..runtime.executor import Executor, ExecutorView, executor_for
from ..runtime.transport import create_transport, default_transport_name
from .config import RunConfig

log = get_logger("repro.api.context")

__all__ = ["ClusterContext"]


class ClusterContext:
    """Refcounted owner of cluster + executor + data-plane staging.

    Thread-safe: :meth:`acquire`/:meth:`release`, lazy executor
    creation, and :meth:`checkout` may all be called from concurrent
    query threads.  Everything expensive is created on first use and
    stays warm until the last reference is released.
    """

    def __init__(self, config: RunConfig | None = None, *,
                 cluster: Cluster | None = None):
        self.config = config or RunConfig()
        if cluster is not None:
            self.config = self.config.replace(
                workers=cluster.num_workers, backend=cluster.runtime)
        self.cluster = cluster or self.config.make_cluster()
        self._executor: Executor | None = None
        self._store = None          # shared tcp block store (lazy)
        self._refs = 0
        self._epoch_seq = 0
        self._query_seq = 0
        self._lock = threading.RLock()
        self._closed = False

    # -- refcounted lifecycle ------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def refs(self) -> int:
        """Live references (attached sessions + explicit acquires)."""
        return self._refs

    def acquire(self) -> "ClusterContext":
        """Take a reference; a closed context refuses new holders."""
        with self._lock:
            self._check_open()
            self._refs += 1
        return self

    def release(self) -> None:
        """Drop a reference; the last one closes the context."""
        with self._lock:
            if self._refs <= 0:
                raise ConfigError(
                    "ClusterContext.release() without a matching acquire()")
            self._refs -= 1
            last = self._refs == 0 and not self._closed
        if last:
            self.close()

    def close(self) -> None:
        """Release executor + shared store unconditionally (idempotent).

        Normally reached through the last :meth:`release`; calling it
        directly force-closes even with references outstanding (their
        next checkout fails cleanly with :class:`ConfigError`).
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            executor, self._executor = self._executor, None
            store, self._store = self._store, None
        try:
            if executor is not None:
                executor.close()
        finally:
            if store is not None:
                store.stop()
        log.info("context closed %s",
                 kv(backend=self.config.backend or "serial",
                    queries=self._query_seq))

    def _check_open(self) -> None:
        if self._closed:
            raise ConfigError("this ClusterContext is closed")

    def __enter__(self) -> "ClusterContext":
        return self.acquire()

    def __exit__(self, *exc) -> None:
        self.release()

    # -- shared resources ----------------------------------------------------

    @property
    def executor_created(self) -> bool:
        """Whether the lazy base executor exists yet (telemetry/testing)."""
        return self._executor is not None

    def executor(self) -> Executor | None:
        """The shared base executor, created on first call.

        None on the pure-serial path (no runtime configured), which
        keeps the historical inline evaluation.
        """
        with self._lock:
            self._check_open()
            if not self.config.uses_runtime:
                return None
            if self._executor is None:
                self._executor = executor_for(
                    self.cluster, transport=self.config.transport,
                    hosts=self.config.hosts,
                    pipeline=self.config.pipeline)
            return self._executor

    def checkout(self) -> Executor | None:
        """A per-query :class:`ExecutorView` over the shared executor.

        The view delegates execution to the shared pool but owns a
        private transport stamped with a fresh epoch id, so concurrent
        queries never interleave published blocks, ``TransportStats``
        or frozen ``last_epoch`` counters.  Engines tear the view's
        transport down as usual; the pool stays warm.  None on the
        pure-serial path.
        """
        base = self.executor()
        if base is None:
            return None
        with self._lock:
            self._epoch_seq += 1
            epoch = f"e{self._epoch_seq:04d}"
        return ExecutorView(base, transport=self._view_transport(),
                            epoch=epoch)

    def transport_name(self) -> str:
        """The transport views publish through (config/env resolved)."""
        if self.config.transport:
            return self.config.transport
        if self.config.backend == "remote":
            # Mirror RemoteExecutor's default: the remote backend rides
            # the tcp block store unless REPRO_TRANSPORT says otherwise.
            return default_transport_name(fallback="tcp")
        return default_transport_name()

    def _view_transport(self):
        name = self.transport_name()
        if name != "tcp":
            # pickle/shm stage per-instance: a fresh transport per view
            # is already fully isolated.
            return create_transport(name)
        # tcp views share one warm block store owned by the context —
        # repeated queries reuse the listening socket, and uuid-suffixed
        # block ids keep concurrent epochs collision-free.  Each view
        # still frees exactly the blocks it published.
        from ..net.transport import TcpTransport

        return TcpTransport(store=self._store_address())

    def _store_address(self) -> tuple[str, int]:
        with self._lock:
            self._check_open()
            if self._store is None:
                from ..net.blockstore import BlockStoreServer
                from ..net.transport import BIND_HOST_ENV_VAR

                bind = os.environ.get(BIND_HOST_ENV_VAR, "127.0.0.1")
                self._store = BlockStoreServer(host=bind).start()
                log.info("shared block store started %s",
                         kv(host=self._store.host, port=self._store.port))
            return self._store.address

    @property
    def store_blocks(self) -> tuple[str, ...]:
        """Blocks live in the shared tcp store (leak check; () if none)."""
        store = self._store
        return store.blocks if store is not None else ()

    # -- per-query bookkeeping -----------------------------------------------

    def next_query_id(self, name: str | None = None) -> str:
        """Mint the next context-wide query id (``q0001:Q9``).

        Context-wide (not per-session) so concurrent sessions sharing
        one context never collide on span/metric attribution labels.
        """
        with self._lock:
            self._query_seq += 1
            seq = self._query_seq
        return f"q{seq:04d}:{name or '?'}"

    # -- conveniences --------------------------------------------------------

    def session(self, **kwargs):
        """A :class:`~repro.api.session.JoinSession` attached to this
        context (equivalent to ``JoinSession(context=self, **kwargs)``)."""
        from .session import JoinSession

        return JoinSession(context=self, **kwargs)

    def __repr__(self) -> str:
        state = "closed" if self._closed else f"refs={self._refs}"
        return (f"ClusterContext(workers={self.config.workers}, "
                f"backend={self.config.backend!r}, {state})")
