"""Lazy query jobs: explain, run, estimate, compare.

A :class:`QueryJob` is a (query, database) pair bound to a
:class:`~repro.api.session.JoinSession`.  Nothing is shuffled or
executed until ``run``/``compare`` is called; ``explain`` and
``estimate`` are pure planner/sampler work on the coordinator (no
executor is created, no transport publishes anything — tested via the
data-plane counters).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..core.optimizer import Optimizer, OptimizerReport
from ..core.sampling import CardinalityEstimator
from ..data.database import Database
from ..engines import registry
from ..engines.base import Engine, EngineOptions, EngineResult, \
    run_engine_safely
from ..errors import ConfigError
from ..ghd.decomposition import Hypertree, optimal_hypertree
from ..obs.metrics import METRICS
from ..obs.profile import build_profile
from ..obs.tracing import Tracer, chrome_trace_events, use_tracer
from ..query.query import JoinQuery

__all__ = ["QueryJob", "ExplainReport", "ComparisonReport"]


@dataclass(frozen=True)
class ExplainReport:
    """Plan + GHD + modeled cost breakdown, produced without executing."""

    query: JoinQuery
    hypertree: Hypertree
    report: OptimizerReport
    #: Modeled model-seconds per phase of the chosen plan:
    #: precompute (costM), communication (costC), computation (costE).
    cost_breakdown: dict[str, float] = field(default_factory=dict)
    #: Per-bag :mod:`repro.kernels` decisions under the session's
    #: kernel: ``{bag_index: (key, reason)}``.
    kernel_decisions: dict[int, tuple[str, str]] = \
        field(default_factory=dict)

    @property
    def plan(self):
        return self.report.plan

    @property
    def estimated_total(self) -> float:
        return self.plan.estimated_cost

    def describe(self) -> str:
        """The CLI ``plan`` rendering: hypertree, plan, costs."""
        query, tree = self.query, self.hypertree
        lines = [f"query: {query!r}",
                 f"hypertree (fhw={tree.width:.2f}):"]
        for bag in tree.bags:
            members = ", ".join(query.atoms[i].relation
                                for i in bag.atom_indices)
            lines.append(
                f"  v{bag.index}: [{members}]  attrs="
                f"{{{','.join(sorted(bag.attributes))}}}  "
                f"width={tree.bag_widths[bag.index]:.2f}")
        lines.append(f"tree edges: {tree.tree_edges}")
        lines.append("")
        lines.append(self.plan.describe())
        lines.append(f"rewritten: {self.plan.rewritten_query()!r}")
        costs = ", ".join(f"{k}={v:.4f}"
                          for k, v in self.cost_breakdown.items())
        lines.append(f"modeled cost (model-s): {costs} "
                     f"-> total={self.estimated_total:.4f}")
        lines.append(f"explored {self.report.explored_configurations} "
                     f"configurations in {self.report.wall_seconds:.2f}s")
        if self.kernel_decisions:
            lines.append("kernel decisions:")
            for index, (key, reason) in sorted(
                    self.kernel_decisions.items()):
                lines.append(f"  v{index}: {key}  ({reason})")
        return "\n".join(lines)


@dataclass(frozen=True)
class ComparisonReport:
    """Results of running several engines on one job, agreement-checked."""

    results: tuple[EngineResult, ...]

    @property
    def counts(self) -> set[int]:
        return {r.count for r in self.results if r.ok}

    @property
    def agreed(self) -> bool:
        """True when every *successful* engine produced the same count."""
        return len(self.counts) <= 1

    @property
    def count(self) -> int | None:
        """The agreed count, or None when engines disagree / all failed."""
        counts = self.counts
        return counts.pop() if len(counts) == 1 else None

    @property
    def failures(self) -> tuple[EngineResult, ...]:
        return tuple(r for r in self.results if not r.ok)

    def describe(self) -> str:
        lines = [f"{'engine':14} {'count':>12} {'total(s)':>10} "
                 f"{'wall(s)':>10}"]
        for r in self.results:
            if r.ok:
                wall = (f"{r.measured_seconds:10.3f}"
                        if r.measured_seconds is not None else f"{'-':>10}")
                lines.append(f"{r.engine:14} {r.count:>12,} "
                             f"{r.total_seconds:>10.4f} {wall}")
            else:
                lines.append(f"{r.engine:14} {'FAILED (' + r.failure + ')':>12}")
        if not self.agreed:
            lines.append(f"DISAGREEMENT: {sorted(self.counts)}")
        return "\n".join(lines)


class QueryJob:
    """A lazily-evaluated query bound to a session's resources."""

    def __init__(self, session, query: JoinQuery, db: Database):
        self.session = session
        self.query = query
        self.db = db

    def __repr__(self) -> str:
        return f"QueryJob({self.query.name!r}, {self.query.num_atoms} atoms)"

    # -- pure planner work (no execution) ------------------------------------

    def explain(self, options: EngineOptions | None = None,
                **overrides) -> ExplainReport:
        """The ADJ plan for this query: GHD, plan, modeled costs.

        Runs Algorithm 2 on the coordinator only — no shuffle, no
        executor, no transport traffic.
        """
        from ..engines.adj import ADJ

        opts = self.session.config.engine_options(options, **overrides)
        tree = opts.hypertree or optimal_hypertree(self.query)
        estimator = CardinalityEstimator(
            self.db, num_samples=opts.samples, seed=opts.seed)
        # Mirror ADJ's optimizer settings so the explained plan is the
        # plan job.run("adj") would execute.
        optimizer = Optimizer(self.query, self.db, self.session.cluster,
                              hypertree=tree, estimator=estimator,
                              hcube_impl=ADJ.hcube_impl)
        report = optimizer.run()
        plan = report.plan
        model = optimizer.cost_model
        breakdown = {
            "precompute": sum(model.cost_m(i) for i in plan.precompute),
            "communication": model.cost_c(plan.precompute),
            "computation": sum(
                model.cost_e(idx, plan.precompute, plan.traversal[:i])
                for i, idx in enumerate(plan.traversal)),
        }
        # Per-bag kernel decisions (pure — no spans/metrics recorded):
        # what repro.kernels would pick for each bag's subquery under
        # the session's configured kernel.
        from ..kernels.adaptive import choose_kernel

        decisions: dict[int, tuple[str, str]] = {}
        for bag in tree.bags:
            sub = JoinQuery(
                [self.query.atoms[i] for i in bag.atom_indices],
                name=f"bag{bag.index}")
            choice = choose_kernel(self.session.config.kernel, sub,
                                   self.db)
            decisions[bag.index] = (choice.key, choice.reason)
        return ExplainReport(query=self.query, hypertree=tree,
                             report=report, cost_breakdown=breakdown,
                             kernel_decisions=decisions)

    def estimate(self, samples: int | None = None,
                 seed: int | None = None):
        """Sampling-based cardinality estimate (Sec. IV), coordinator-only."""
        cfg = self.session.config
        estimator = CardinalityEstimator(
            self.db,
            num_samples=cfg.samples if samples is None else samples,
            seed=cfg.seed if seed is None else seed)
        return estimator.estimate(self.query)

    # -- execution -----------------------------------------------------------

    def _resolve(self, engine: str | Engine,
                 options: EngineOptions | None, **overrides) -> Engine:
        if isinstance(engine, str):
            opts = self.session.config.engine_options(options, **overrides)
            return registry.create(engine, opts)
        # An engine instance is already fully configured: silently
        # dropping caller options would mask a mistake.
        if options is not None or overrides:
            raise ConfigError(
                f"options cannot be applied to an engine instance "
                f"({type(engine).__name__}); pass a registry key, or "
                f"construct the instance with the desired knobs")
        return engine

    def run(self, engine: str | Engine = "adj",
            options: EngineOptions | None = None,
            profile: bool | None = None,
            **overrides) -> EngineResult:
        """Run one engine (registry key or instance) on this job.

        Failures (OOM / budget / worker crash) come back as a failed
        :class:`EngineResult`, never as an exception — the session's
        executor stays owned and is torn down by ``session.close()``.

        ``profile=True`` (default: ``RunConfig.profile`` /
        ``REPRO_PROFILE``) assembles an EXPLAIN ANALYZE
        :class:`~repro.obs.profile.QueryProfile` onto
        ``result.profile``: spans are recorded into the session tracer
        (or a run-local one when tracing is off) and the run executes
        under a :meth:`~repro.obs.metrics.MetricsRegistry.scope`
        labeled with its ``query_id``, so every span and metric of the
        run — including those shipped home from pool children and
        remote agents — carries per-query attribution.
        """
        obj = self._resolve(engine, options, **overrides)
        # Register with the session *before* touching shared resources:
        # session.close() waits for registered runs, so an executor or
        # transport can never be torn down underneath this run.
        self.session._begin_run()
        try:
            return self._run_resolved(obj, engine, profile)
        finally:
            self.session._end_run()

    def _run_resolved(self, obj: Engine, engine: "str | Engine",
                      profile: bool | None) -> EngineResult:
        executor = self.session.executor()
        tracer = self.session.tracer()
        if profile is None:
            profile = self.session.config.profile
        METRICS.counter("query.runs").inc()
        if not tracer.enabled and not profile:
            # The zero-overhead fast path: no tracer install, no scope,
            # no Span objects anywhere (regression-tested).
            start = time.perf_counter()
            result = run_engine_safely(obj, self.query, self.db,
                                       self.session.cluster,
                                       executor=executor)
            METRICS.histogram("query.seconds").observe(
                time.perf_counter() - start)
            if not result.ok:
                METRICS.counter("query.failures").inc()
            return result
        # Install the run tracer (thread-local wins in worker threads;
        # the module-global makes routing/publish threads on this
        # process visible too) and hand the run's own slice of the
        # timeline back on the result.  Profiled-but-untraced runs use
        # a run-local tracer so the session trace file stays opt-in.
        run_tracer = tracer if tracer.enabled else Tracer()
        query_id = self.session.next_query_id(self.query.name)
        scope = METRICS.scope(query_id) if profile else None
        if profile:
            METRICS.counter("query.profiled").inc()
        mark = run_tracer.mark()
        previous_query_id = run_tracer.query_id
        run_tracer.query_id = query_id
        start = time.perf_counter()
        try:
            with use_tracer(run_tracer):
                with run_tracer.span(
                        "engine_run", cat="engine",
                        engine=getattr(obj, "name", str(engine)),
                        query=self.query.name or "?",
                        kernel=self.session.config.kernel):
                    if scope is not None:
                        with scope:
                            result = run_engine_safely(
                                obj, self.query, self.db,
                                self.session.cluster, executor=executor)
                    else:
                        result = run_engine_safely(
                            obj, self.query, self.db,
                            self.session.cluster, executor=executor)
        finally:
            run_tracer.query_id = previous_query_id
        METRICS.histogram("query.seconds").observe(
            time.perf_counter() - start)
        if not result.ok:
            METRICS.counter("query.failures").inc()
        spans = run_tracer.spans[mark:]
        result.extra["trace"] = {
            "traceEvents": chrome_trace_events(spans),
            "displayTimeUnit": "ms",
        }
        if profile:
            result.extra["profile"] = build_profile(
                result, query_id=query_id,
                backend=self.session.config.backend,
                transport_label=self.session.transport_label,
                spans=spans, metrics_window=scope.snapshot())
        return result

    def compare(self, engines=None, options: EngineOptions | None = None,
                profile: bool | None = None,
                **overrides) -> ComparisonReport:
        """Run several engines and cross-check their counts.

        ``engines`` defaults to every registered engine; entries may be
        registry keys or engine instances.  ``profile`` passes through
        to each :meth:`run`, so every result carries its own
        :class:`~repro.obs.profile.QueryProfile`.
        """
        names = self.session.engines() if engines is None else engines
        return ComparisonReport(results=tuple(
            self.run(e, options, profile=profile, **overrides)
            for e in names))
