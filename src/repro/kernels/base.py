"""String-keyed join-kernel registry: one source of truth for kernel names.

Mirrors :mod:`repro.engines.registry` (and the transport registry): the
CLI ``run --kernel`` choices, :class:`repro.api.RunConfig` validation and
the worker task functions all resolve kernels here.

A *kernel* is the physical join strategy that evaluates one localized
subquery — a worker's HCube cube, a GHD bag, or an inline query — behind
a single interface:

>>> from repro.kernels import create_kernel
>>> result = create_kernel("binary").execute(query, db, order)

Built-ins: ``wcoj`` (vectorized Leapfrog triejoin), ``binary`` (fully
vectorized left-deep hash joins) and ``adaptive`` (the default — scores
the subquery with the catalog stats and picks one of the two; see
docs/kernels.md).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Protocol, Sequence

from ..errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..data.database import Database
    from ..query.query import JoinQuery
    from ..wcoj.cache import IntersectionCache
    from ..wcoj.leapfrog import JoinResult, LeapfrogStats

__all__ = ["JoinKernel", "KernelSpec", "register_kernel",
           "available_kernels", "kernel_spec", "create_kernel",
           "default_kernel", "KERNEL_ENV_VAR", "DEFAULT_KERNEL"]

KERNEL_ENV_VAR = "REPRO_KERNEL"
DEFAULT_KERNEL = "adaptive"


class JoinKernel(Protocol):
    """The common interface every physical join kernel implements.

    ``execute`` mirrors :func:`repro.wcoj.leapfrog.leapfrog_join`: it
    evaluates ``query`` over ``db``, returns a
    :class:`~repro.wcoj.leapfrog.JoinResult` whose ``stats`` is reset and
    populated in place (pass a caller-owned ``stats`` to inspect partial
    work after a :class:`~repro.errors.BudgetExceeded`), and materializes
    the result relation (attributes = ``order``) only when asked.
    Kernels without an intersection cache ignore ``cache``.
    """

    key: str

    def execute(self, query: "JoinQuery", db: "Database",
                order: Sequence[str] | None = None, *,
                materialize: bool = False,
                budget: int | None = None,
                cache: "IntersectionCache | None" = None,
                stats: "LeapfrogStats | None" = None) -> "JoinResult":
        ...  # pragma: no cover - protocol


@dataclass(frozen=True)
class KernelSpec:
    """One registered kernel: key, zero-arg factory, one-line summary."""

    key: str
    factory: Callable[[], JoinKernel]
    summary: str = ""


_REGISTRY: dict[str, KernelSpec] = {}


def register_kernel(key: str, factory: Callable[[], JoinKernel] | None = None,
                    *, summary: str = ""):
    """Register a kernel factory under ``key``.

    Usable as a call (``register_kernel("wcoj", WcojKernel)``) or a
    decorator (``@register_kernel("mykernel")``).  Re-registering an
    existing key is an error.
    """
    def _add(f: Callable[[], JoinKernel]):
        if key in _REGISTRY:
            raise ConfigError(f"kernel {key!r} is already registered")
        _REGISTRY[key] = KernelSpec(key=key, factory=f, summary=summary)
        return f

    if factory is None:
        return _add
    return _add(factory)


def available_kernels() -> tuple[str, ...]:
    """Registered kernel keys, in registration order."""
    return tuple(_REGISTRY)


def kernel_spec(key: str) -> KernelSpec:
    """The :class:`KernelSpec` for ``key`` (raises ConfigError)."""
    try:
        return _REGISTRY[key]
    except KeyError:
        raise ConfigError(
            f"unknown kernel {key!r}; choose from {available_kernels()}"
        ) from None


def create_kernel(key: str) -> JoinKernel:
    """Instantiate the kernel registered under ``key``."""
    return kernel_spec(key).factory()


def default_kernel() -> str:
    """Kernel key, overridable through REPRO_KERNEL (validated here)."""
    raw = os.environ.get(KERNEL_ENV_VAR)
    if raw is None or not raw.strip():
        return DEFAULT_KERNEL
    return kernel_spec(raw.strip()).key
