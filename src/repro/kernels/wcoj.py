"""The ``wcoj`` kernel: vectorized Leapfrog triejoin.

A thin adapter over :func:`repro.wcoj.leapfrog.leapfrog_join` — the
worst-case-optimal path every engine used exclusively before the kernel
layer existed.  ``kernel="wcoj"`` therefore reproduces the seed counters
(``level_tuples``, ``intersection_work``) exactly; the regression tests
pin this.
"""

from __future__ import annotations

from typing import Sequence

from ..data.database import Database
from ..query.query import JoinQuery
from ..wcoj.cache import IntersectionCache
from ..wcoj.leapfrog import JoinResult, LeapfrogStats, leapfrog_join


class WcojKernel:
    """Leapfrog triejoin behind the :class:`JoinKernel` interface."""

    key = "wcoj"

    def execute(self, query: JoinQuery, db: Database,
                order: Sequence[str] | None = None, *,
                materialize: bool = False,
                budget: int | None = None,
                cache: IntersectionCache | None = None,
                stats: LeapfrogStats | None = None) -> JoinResult:
        return leapfrog_join(query, db, order, materialize=materialize,
                             cache=cache, budget=budget, stats=stats)
