"""The ``adaptive`` kernel: score each subquery, pick binary or Leapfrog.

Follows the unified-architecture result (PAPERS.md, arXiv:2505.19918):
binary hash joins win on acyclic, low-blowup subqueries (fully
vectorized, no per-value recursion) while Leapfrog's worst-case-optimal
intersections win on cyclic or skew-exploding ones.  The chooser reuses
machinery this repo already had:

- :meth:`Hypergraph.is_alpha_acyclic` (GYO reduction) detects cyclicity;
- the greedy binary planner's System-R estimates — served by the
  memoized :meth:`Relation.distinct_count` catalog stats — predict the
  intermediate-result blowup binary joins would pay.

Decision rule (see docs/kernels.md)::

    cyclic                                     -> wcoj
    acyclic and max intermediate estimate
        <= BLOWUP_FACTOR * largest input       -> binary
    acyclic but estimates explode (skew)       -> wcoj

:func:`choose_kernel` is the pure rule (used by ``explain()``);
:func:`select_kernel` additionally records the decision as a
``kernel_select`` span and a ``kernel.selected.<key>`` metrics counter.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

from ..data.database import Database
from ..obs.metrics import METRICS
from ..obs.tracing import current_tracer
from ..query.hypergraph import Hypergraph
from ..query.query import JoinQuery
from ..wcoj.binary_join import greedy_plan_with_estimates
from ..wcoj.cache import IntersectionCache
from ..wcoj.leapfrog import JoinResult, LeapfrogStats
from .base import create_kernel, kernel_spec

__all__ = ["AdaptiveKernel", "KernelChoice", "choose_kernel",
           "select_kernel", "BLOWUP_FACTOR"]

#: Binary joins are chosen only while the largest estimated intermediate
#: stays within this factor of the largest input relation — beyond it
#: the subquery is treated as skew-exploding and Leapfrog's worst-case
#: bound takes over.
BLOWUP_FACTOR = 4.0


@dataclass(frozen=True)
class KernelChoice:
    """A resolved kernel decision for one subquery."""

    key: str        # the concrete kernel to run ("wcoj" | "binary")
    requested: str  # what the caller asked for (e.g. "adaptive")
    reason: str     # human-readable rule that fired


def choose_kernel(requested: str, query: JoinQuery, db: Database
                  ) -> KernelChoice:
    """Resolve ``requested`` to a concrete kernel for ``query`` (pure)."""
    if requested != "adaptive":
        kernel_spec(requested)  # validate the key
        return KernelChoice(key=requested, requested=requested,
                            reason="forced")
    if not Hypergraph.of_query(query).is_alpha_acyclic():
        return KernelChoice(key="wcoj", requested=requested,
                            reason="cyclic query hypergraph")
    _, estimates = greedy_plan_with_estimates(query, db)
    blowup = max(estimates, default=0.0)
    largest = max((len(db[a.relation]) for a in query.atoms), default=0)
    limit = BLOWUP_FACTOR * max(1, largest)
    if blowup <= limit:
        return KernelChoice(
            key="binary", requested=requested,
            reason=(f"acyclic, est. intermediate {blowup:.0f} <= "
                    f"{BLOWUP_FACTOR:g}x largest input {largest}"))
    return KernelChoice(
        key="wcoj", requested=requested,
        reason=(f"acyclic but est. intermediate {blowup:.0f} > "
                f"{BLOWUP_FACTOR:g}x largest input {largest}"))


def select_kernel(requested: str, query: JoinQuery, db: Database, *,
                  scope: str = "") -> KernelChoice:
    """:func:`choose_kernel` + observability.

    Records a ``kernel_select`` span (category ``kernel``) on the active
    tracer and bumps the process-wide ``kernel.selected.<key>`` counter,
    so traces and ``session.metrics()`` show every decision.
    """
    start = time.time()
    t0 = time.perf_counter()
    choice = choose_kernel(requested, query, db)
    dur = time.perf_counter() - t0
    current_tracer().add_span(
        "kernel_select", start, dur, cat="kernel", kernel=choice.key,
        requested=requested, reason=choice.reason, scope=scope,
        query=query.name)
    METRICS.counter(f"kernel.selected.{choice.key}").inc()
    return choice


class AdaptiveKernel:
    """Chooses binary vs wcoj per :meth:`execute` call, then delegates."""

    key = "adaptive"

    def execute(self, query: JoinQuery, db: Database,
                order: Sequence[str] | None = None, *,
                materialize: bool = False,
                budget: int | None = None,
                cache: IntersectionCache | None = None,
                stats: LeapfrogStats | None = None) -> JoinResult:
        choice = select_kernel("adaptive", query, db, scope="execute")
        return create_kernel(choice.key).execute(
            query, db, order, materialize=materialize, budget=budget,
            cache=cache, stats=stats)
