"""repro.kernels — physical join kernels behind one registry.

Every engine routes the per-bag / per-cube join through this layer:
``wcoj`` (vectorized Leapfrog triejoin), ``binary`` (vectorized hash
joins) or ``adaptive`` (the default: per-subquery choice recorded as a
``kernel_select`` span + ``kernel.selected.*`` counter).  Configure via
``RunConfig.kernel`` / ``REPRO_KERNEL`` / CLI ``run --kernel``; see
docs/kernels.md.
"""

from .adaptive import (
    BLOWUP_FACTOR,
    AdaptiveKernel,
    KernelChoice,
    choose_kernel,
    select_kernel,
)
from .base import (
    DEFAULT_KERNEL,
    KERNEL_ENV_VAR,
    JoinKernel,
    KernelSpec,
    available_kernels,
    create_kernel,
    default_kernel,
    kernel_spec,
    register_kernel,
)
from .binary import BinaryKernel, hash_join
from .wcoj import WcojKernel

__all__ = [
    "JoinKernel",
    "KernelSpec",
    "KernelChoice",
    "WcojKernel",
    "BinaryKernel",
    "AdaptiveKernel",
    "hash_join",
    "register_kernel",
    "available_kernels",
    "kernel_spec",
    "create_kernel",
    "default_kernel",
    "choose_kernel",
    "select_kernel",
    "BLOWUP_FACTOR",
    "KERNEL_ENV_VAR",
    "DEFAULT_KERNEL",
]

register_kernel("wcoj", WcojKernel,
                summary="vectorized Leapfrog triejoin (worst-case optimal)")
register_kernel("binary", BinaryKernel,
                summary="left-deep vectorized hash joins (greedy plan)")
register_kernel("adaptive", AdaptiveKernel,
                summary="per-subquery choice: binary when acyclic/low-"
                        "blowup, wcoj otherwise")
