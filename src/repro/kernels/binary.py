"""The ``binary`` kernel: fully vectorized left-deep hash joins.

Atom order comes from the greedy System-R style planner in
:mod:`repro.wcoj.binary_join` (estimates served by the memoized
:meth:`Relation.distinct_count` catalog stats); each step is one
:func:`hash_join` — :meth:`Relation.natural_join`'s vectorized
``row_group_ids`` + ``searchsorted`` probe with run-expansion gathers,
no per-tuple Python loops anywhere.

Work accounting: every join step charges ``len(right) + len(output)``
(plus the initial ``len(left)``) to ``stats.intersection_work`` — the
tuples the step touched — so engine work budgets keep tripping
deterministically under this kernel too, just in binary-join units
rather than Leapfrog intersection units.  ``level_tuples`` gets the
final count in its last slot (intermediate levels are a Leapfrog notion
and stay zero).
"""

from __future__ import annotations

from typing import Sequence

from ..data.database import Database
from ..data.relation import Relation
from ..errors import BudgetExceeded, PlanError
from ..query.query import JoinQuery
from ..wcoj.binary_join import greedy_left_deep_plan
from ..wcoj.cache import IntersectionCache
from ..wcoj.leapfrog import JoinResult, LeapfrogStats

__all__ = ["BinaryKernel", "hash_join"]


def hash_join(left: Relation, right: Relation,
              name: str | None = None) -> Relation:
    """Vectorized hash-style natural join (probe = gathered row groups).

    The single join primitive shared by this kernel, the SparkSQL
    engine's inline path and the partitioned
    :func:`repro.runtime.worker.join_partition_pair_task`.
    """
    return left.natural_join(right, name=name)


class BinaryKernel:
    """Left-deep pairwise hash joins behind :class:`JoinKernel`."""

    key = "binary"

    def execute(self, query: JoinQuery, db: Database,
                order: Sequence[str] | None = None, *,
                materialize: bool = False,
                budget: int | None = None,
                cache: IntersectionCache | None = None,
                stats: LeapfrogStats | None = None) -> JoinResult:
        order = tuple(order) if order is not None else query.attributes
        if set(order) != set(query.attributes):
            raise PlanError(
                f"order {order} is not a permutation of query attributes "
                f"{query.attributes}"
            )
        n = len(order)
        if stats is None:
            stats = LeapfrogStats()
        stats.level_tuples = [0] * n
        stats.level_work = [0] * n
        stats.level_extensions = [0] * n
        stats.intersection_work = 0
        stats.extensions = 0
        stats.emitted = 0

        def atom_relation(i: int) -> Relation:
            atom = query.atoms[i]
            rel = db[atom.relation]
            if rel.arity != atom.arity:
                raise PlanError(
                    f"atom {atom} arity mismatch with relation {rel.name}")
            # dedup=True matches the trie's set semantics, so counts
            # agree with the wcoj kernel even on duplicated input rows.
            return Relation(f"{atom.relation}#{i}", atom.attributes,
                            rel.data, dedup=True)

        plan = greedy_left_deep_plan(query, db)
        current = atom_relation(plan.atom_order[0])
        stats.intersection_work += len(current)
        for i in plan.atom_order[1:]:
            right = atom_relation(i)
            current = hash_join(current, right)
            stats.extensions += 1
            stats.intersection_work += len(right) + len(current)
            if budget is not None and stats.intersection_work > budget:
                raise BudgetExceeded(stats.intersection_work, budget)
        result = current.reorder(order, name=f"{query.name}_result")
        count = len(result)
        stats.level_tuples[n - 1] = count
        stats.emitted = count
        return JoinResult(count=count, stats=stats,
                          relation=result if materialize else None)
