"""Generalized hypertree decompositions (GHDs) of join queries.

Sec. III-A of the paper reduces ADJ's plan space with a hypertree T:

- every *hypernode* (bag) of T is a set of query atoms whose join is a
  candidate pre-computed relation;
- bags containing a common attribute must be connected in T (the running
  intersection property), which makes the residual query almost acyclic;
- among all hypertrees the paper picks one minimizing the worst-case size
  of any bag, i.e. the *fractional hypertree width* (fhw): the maximum
  over bags of the fractional edge cover number of the bag's attributes
  (covers may use any query edge, per GHD semantics).

We enumerate decompositions as **partitions of the atom set into
connected groups** (a disconnected bag would pre-compute a Cartesian
product — never cost-effective), build the join tree as a maximum
spanning tree on shared-attribute counts, and keep partitions satisfying
the running intersection property.  Bag widths are memoized per
attribute set, so the LP runs at most 2^n times.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Sequence

from ..errors import DecompositionError, PlanError
from ..query.hypergraph import Hypergraph
from ..query.query import JoinQuery
from .fractional import fractional_edge_cover

__all__ = ["Bag", "Hypertree", "enumerate_ghds", "optimal_hypertree"]


@dataclass(frozen=True)
class Bag:
    """One hypernode: a set of atoms and the attributes they span."""

    index: int
    atom_indices: tuple[int, ...]
    attributes: frozenset[str]

    @property
    def is_single_atom(self) -> bool:
        return len(self.atom_indices) == 1

    def __str__(self) -> str:
        return f"v{self.index}{{{','.join(sorted(self.attributes))}}}"


class Hypertree:
    """A GHD: bags plus a join tree satisfying running intersection."""

    def __init__(self, query: JoinQuery, bags: Sequence[Bag],
                 tree_edges: Sequence[tuple[int, int]],
                 bag_widths: Sequence[float]):
        self.query = query
        self.bags = tuple(bags)
        self.tree_edges = tuple(
            (min(u, v), max(u, v)) for u, v in tree_edges)
        self.bag_widths = tuple(bag_widths)
        self._valid_order_cache: frozenset[tuple[str, ...]] | None = None
        self._adjacency: dict[int, set[int]] = {
            b.index: set() for b in self.bags}
        for u, v in self.tree_edges:
            self._adjacency[u].add(v)
            self._adjacency[v].add(u)

    # -- shape ----------------------------------------------------------------

    @property
    def num_bags(self) -> int:
        return len(self.bags)

    @property
    def width(self) -> float:
        """The fhw estimate: max bag width."""
        return max(self.bag_widths)

    def neighbors(self, bag_index: int) -> frozenset[int]:
        return frozenset(self._adjacency[bag_index])

    def __repr__(self) -> str:
        bags = "; ".join(
            f"v{b.index}=[{','.join(self.query.atoms[i].relation for i in b.atom_indices)}]"
            for b in self.bags)
        return (f"Hypertree(width={self.width:.2f}, bags=({bags}), "
                f"edges={self.tree_edges})")

    # -- validity -------------------------------------------------------------

    def check_valid(self) -> None:
        """Raise unless bags partition the atoms and RIP holds."""
        covered = sorted(i for b in self.bags for i in b.atom_indices)
        if covered != list(range(self.query.num_atoms)):
            raise DecompositionError(
                f"bags cover atoms {covered}, expected all "
                f"{self.query.num_atoms}")
        if self.num_bags > 1 and len(self.tree_edges) != self.num_bags - 1:
            raise DecompositionError("join tree is not a tree")
        for attr in self.query.attributes:
            holders = [b.index for b in self.bags if attr in b.attributes]
            if not holders:
                raise DecompositionError(f"attribute {attr} in no bag")
            if not self._connected_subset(set(holders)):
                raise DecompositionError(
                    f"bags containing {attr!r} are not connected "
                    "(running intersection violated)")

    def _connected_subset(self, nodes: set[int]) -> bool:
        if len(nodes) <= 1:
            return True
        seen = {next(iter(nodes))}
        frontier = list(seen)
        while frontier:
            u = frontier.pop()
            for v in self._adjacency[u] & nodes:
                if v not in seen:
                    seen.add(v)
                    frontier.append(v)
        return seen == nodes

    # -- traversal orders (Sec. III-A) ------------------------------------------

    def is_traversal_order(self, order: Sequence[int]) -> bool:
        """True iff every prefix of ``order`` is connected in the tree."""
        order = list(order)
        if sorted(order) != sorted(b.index for b in self.bags):
            return False
        placed: set[int] = set()
        for idx in order:
            if placed and not (self._adjacency[idx] & placed):
                return False
            placed.add(idx)
        return True

    def traversal_orders(self) -> Iterator[tuple[int, ...]]:
        """All valid traversal orders (connected expansions of the tree)."""
        indices = [b.index for b in self.bags]

        def extend(placed: tuple[int, ...], remaining: frozenset[int]):
            if not remaining:
                yield placed
                return
            for idx in sorted(remaining):
                if not placed or (self._adjacency[idx] & set(placed)):
                    yield from extend(placed + (idx,), remaining - {idx})

        yield from extend((), frozenset(indices))

    def attribute_order(self, traversal: Sequence[int],
                        inner_orders: dict[int, tuple[str, ...]] | None = None
                        ) -> tuple[str, ...]:
        """The attribute order induced by a bag traversal order.

        Attributes of earlier bags come before the *new* attributes of
        later bags.  Within a bag the new attributes follow
        ``inner_orders[bag]`` when given, else a degree heuristic
        (attributes in more atoms first — the [11] rule of thumb).
        """
        if not self.is_traversal_order(traversal):
            raise PlanError(f"{traversal} is not a valid traversal order")
        by_index = {b.index: b for b in self.bags}
        seen: list[str] = []
        for idx in traversal:
            bag = by_index[idx]
            new = [a for a in self.query.attributes
                   if a in bag.attributes and a not in seen]
            if inner_orders and idx in inner_orders:
                given = [a for a in inner_orders[idx] if a in new]
                if sorted(given) != sorted(new):
                    raise PlanError(
                        f"inner order {inner_orders[idx]} does not cover the "
                        f"new attributes {new} of bag {idx}")
                new = given
            else:
                degree = {
                    a: sum(1 for atom in self.query.atoms
                           if a in atom.attributes)
                    for a in new
                }
                new.sort(key=lambda a: (-degree[a],
                                        self.query.attributes.index(a)))
            seen.extend(new)
        return tuple(seen)

    def valid_attribute_orders(self) -> Iterator[tuple[str, ...]]:
        """Every *valid* attribute order (Sec. III-A's reduced space).

        For each traversal order, new attributes within a bag may appear
        in any permutation.
        """
        by_index = {b.index: b for b in self.bags}
        emitted: set[tuple[str, ...]] = set()
        for traversal in self.traversal_orders():
            groups: list[list[str]] = []
            seen: set[str] = set()
            for idx in traversal:
                bag = by_index[idx]
                new = [a for a in self.query.attributes
                       if a in bag.attributes and a not in seen]
                seen |= set(new)
                if new:
                    groups.append(new)
            for perm_groups in itertools.product(
                    *(itertools.permutations(g) for g in groups)):
                order = tuple(a for g in perm_groups for a in g)
                if order not in emitted:
                    emitted.add(order)
                    yield order

    def is_valid_attribute_order(self, order: Sequence[str]) -> bool:
        """Membership test for the valid-order space (used by Fig. 8).

        Exact: materializes the valid-order set once (queries here have at
        most a handful of attributes, so the space is tiny).
        """
        order = tuple(order)
        if set(order) != set(self.query.attributes):
            return False
        if self._valid_order_cache is None:
            self._valid_order_cache = frozenset(self.valid_attribute_orders())
        return order in self._valid_order_cache


def _connected_atoms(query: JoinQuery, atom_indices: Sequence[int]) -> bool:
    atoms = [query.atoms[i] for i in atom_indices]
    remaining = set(range(1, len(atoms)))
    frontier = set(atoms[0].attributes)
    changed = True
    while changed and remaining:
        changed = False
        for i in list(remaining):
            if frontier & set(atoms[i].attributes):
                frontier |= set(atoms[i].attributes)
                remaining.discard(i)
                changed = True
    return not remaining


def _max_spanning_tree(bags: Sequence[Bag]) -> list[tuple[int, int]] | None:
    """Maximum spanning tree on shared-attribute counts (Kruskal).

    Edges with zero shared attributes are unusable: a join tree link
    between attribute-disjoint bags cannot help RIP, and a disconnected
    query should fail decomposition.
    """
    n = len(bags)
    if n == 1:
        return []
    edges = []
    for i in range(n):
        for j in range(i + 1, n):
            w = len(bags[i].attributes & bags[j].attributes)
            if w > 0:
                edges.append((w, i, j))
    edges.sort(reverse=True)
    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    chosen: list[tuple[int, int]] = []
    for w, i, j in edges:
        ri, rj = find(i), find(j)
        if ri != rj:
            parent[ri] = rj
            chosen.append((bags[i].index, bags[j].index))
            if len(chosen) == n - 1:
                break
    return chosen if len(chosen) == n - 1 else None


def _partitions(items: int, max_blocks: int) -> Iterator[list[list[int]]]:
    """Set partitions of range(items) with at most ``max_blocks`` blocks."""

    def rec(i: int, blocks: list[list[int]]):
        if i == items:
            yield [list(b) for b in blocks]
            return
        for b in blocks:
            b.append(i)
            yield from rec(i + 1, blocks)
            b.pop()
        if len(blocks) < max_blocks:
            blocks.append([i])
            yield from rec(i + 1, blocks)
            blocks.pop()

    yield from rec(0, [])


def enumerate_ghds(query: JoinQuery, max_bags: int | None = None,
                   max_partitions: int = 200_000) -> Iterator[Hypertree]:
    """Yield valid hypertrees of ``query`` (connected-bag partitions)."""
    if not query.is_connected():
        raise DecompositionError(
            "GHD search requires a connected query hypergraph")
    hypergraph = Hypergraph.of_query(query)
    if max_bags is None:
        max_bags = min(query.num_atoms, query.num_attributes)
    width_cache: dict[frozenset[str], float] = {}

    def bag_width(attrs: frozenset[str]) -> float:
        if attrs not in width_cache:
            width_cache[attrs] = fractional_edge_cover(
                hypergraph, tuple(attrs)).objective
        return width_cache[attrs]

    count = 0
    for blocks in _partitions(query.num_atoms, max_bags):
        count += 1
        if count > max_partitions:
            break
        if not all(_connected_atoms(query, b) for b in blocks):
            continue
        bags = []
        for bi, block in enumerate(blocks):
            attrs = frozenset(
                a for i in block for a in query.atoms[i].attributes)
            bags.append(Bag(bi, tuple(block), attrs))
        tree = _max_spanning_tree(bags)
        if tree is None:
            continue
        widths = [bag_width(b.attributes) for b in bags]
        candidate = Hypertree(query, bags, tree, widths)
        try:
            candidate.check_valid()
        except DecompositionError:
            continue
        yield candidate


def optimal_hypertree(query: JoinQuery, max_bags: int | None = None,
                      max_partitions: int = 200_000) -> Hypertree:
    """The hypertree minimizing (width, total bag width, -num bags).

    Primary criterion is the paper's: minimize the worst-case size
    exponent of any pre-computed bag.  Among ties, prefer smaller total
    width, then *more* bags — finer decompositions give the ADJ optimizer
    more pre-computation choices.
    """
    best: Hypertree | None = None
    best_key: tuple | None = None
    for t in enumerate_ghds(query, max_bags=max_bags,
                            max_partitions=max_partitions):
        key = (round(t.width, 9), round(sum(t.bag_widths), 9), -t.num_bags)
        if best_key is None or key < best_key:
            best, best_key = t, key
    if best is None:
        raise DecompositionError(f"no valid hypertree found for {query}")
    return best
