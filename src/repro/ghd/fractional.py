"""Fractional edge covers: the LP behind the AGM bound and fhw.

``fractional_edge_cover(H, weights)`` solves

    minimize    sum_e  w_e * x_e
    subject to  sum_{e contains v} x_e >= 1   for every vertex v
                x_e >= 0

With unit weights the optimum is the *fractional edge cover number*
rho*(H); with ``w_e = log |R_e|`` the optimum exponentiates to the AGM
worst-case output bound (Atserias-Grohe-Marx).  The fhw of a hypertree
bag is rho* of the bag's vertex set using all query edges (Gottlob et
al., used by the paper in Sec. III-A to pick the hypertree).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy.optimize import linprog

from ..errors import DecompositionError
from ..query.hypergraph import Hypergraph

__all__ = [
    "FractionalCover",
    "fractional_edge_cover",
    "fractional_cover_number",
    "vertex_cover_lp",
]


@dataclass(frozen=True)
class FractionalCover:
    """Solution of a fractional edge cover LP."""

    objective: float
    weights: tuple[float, ...]   # x_e per edge, aligned with H.edges

    def support(self, tol: float = 1e-9) -> tuple[int, ...]:
        """Indices of edges with non-zero weight."""
        return tuple(i for i, w in enumerate(self.weights) if w > tol)


def fractional_edge_cover(hypergraph: Hypergraph,
                          vertices: Sequence[str] | None = None,
                          edge_weights: Sequence[float] | None = None
                          ) -> FractionalCover:
    """Solve the fractional edge cover LP.

    Parameters
    ----------
    hypergraph:
        The hypergraph supplying the candidate edges.
    vertices:
        The vertex set to cover.  Defaults to all vertices; passing a bag's
        vertex set computes the bag's width contribution for a GHD.
    edge_weights:
        LP objective weights per edge (default all 1.0).
    """
    cover_vertices = tuple(vertices) if vertices is not None \
        else hypergraph.vertices
    edges = hypergraph.edges
    if not cover_vertices:
        return FractionalCover(0.0, tuple(0.0 for _ in edges))
    for v in cover_vertices:
        if not any(v in e for e in edges):
            raise DecompositionError(
                f"vertex {v!r} is not covered by any edge; LP infeasible")
    num_edges = len(edges)
    weights = np.ones(num_edges) if edge_weights is None \
        else np.asarray(edge_weights, dtype=float)
    if weights.shape != (num_edges,):
        raise DecompositionError(
            f"need {num_edges} edge weights, got {weights.shape}")
    # linprog minimizes c @ x with A_ub @ x <= b_ub; coverage constraints
    # sum_{e ni v} x_e >= 1 become -sum <= -1.
    a_ub = np.zeros((len(cover_vertices), num_edges))
    for i, v in enumerate(cover_vertices):
        for j, e in enumerate(edges):
            if v in e:
                a_ub[i, j] = -1.0
    b_ub = -np.ones(len(cover_vertices))
    result = linprog(weights, A_ub=a_ub, b_ub=b_ub,
                     bounds=[(0, None)] * num_edges, method="highs")
    if not result.success:  # pragma: no cover - guarded by the check above
        raise DecompositionError(f"edge cover LP failed: {result.message}")
    x = tuple(float(max(0.0, v)) for v in result.x)
    return FractionalCover(float(result.fun), x)


def fractional_cover_number(hypergraph: Hypergraph,
                            vertices: Sequence[str] | None = None) -> float:
    """rho*(H) restricted to ``vertices`` (unit weights)."""
    return fractional_edge_cover(hypergraph, vertices).objective


def vertex_cover_lp(hypergraph: Hypergraph) -> float:
    """Fractional vertex *packing* value (LP dual of the edge cover).

    By LP duality this equals rho*(H); exposed for tests of the duality
    invariant.
    """
    vertices = hypergraph.vertices
    edges = hypergraph.edges
    if not vertices or not edges:
        return 0.0
    # maximize sum_v y_v  s.t. for every edge: sum_{v in e} y_v <= 1.
    c = -np.ones(len(vertices))
    a_ub = np.zeros((len(edges), len(vertices)))
    for i, e in enumerate(edges):
        for j, v in enumerate(vertices):
            if v in e:
                a_ub[i, j] = 1.0
    b_ub = np.ones(len(edges))
    result = linprog(c, A_ub=a_ub, b_ub=b_ub,
                     bounds=[(0, None)] * len(vertices), method="highs")
    if not result.success:  # pragma: no cover
        raise DecompositionError(f"vertex packing LP failed: {result.message}")
    return float(-result.fun)


def log_agm_exponent(hypergraph: Hypergraph,
                     sizes: Sequence[int]) -> FractionalCover:
    """Cover minimizing sum_e x_e * log|R_e| — the tight AGM objective.

    Empty relations contribute log(1) = 0 weight (an empty relation makes
    the output empty anyway; callers should special-case it).
    """
    weights = [math.log(max(1, s)) for s in sizes]
    return fractional_edge_cover(hypergraph, edge_weights=weights)
