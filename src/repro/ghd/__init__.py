"""Generalized hypertree decompositions and fractional covers."""

from .decomposition import Bag, Hypertree, enumerate_ghds, optimal_hypertree
from .fractional import (
    FractionalCover,
    fractional_cover_number,
    fractional_edge_cover,
    log_agm_exponent,
    vertex_cover_lp,
)

__all__ = [
    "Bag",
    "Hypertree",
    "enumerate_ghds",
    "optimal_hypertree",
    "FractionalCover",
    "fractional_cover_number",
    "fractional_edge_cover",
    "log_agm_exponent",
    "vertex_cover_lp",
]
