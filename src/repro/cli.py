"""Command-line interface: explore the reproduction without writing code.

Examples::

    python -m repro datasets
    python -m repro queries
    python -m repro run lj Q5 --engine adj --scale 2e-5
    python -m repro run wb Q1 --engine all
    python -m repro plan lj Q5 --samples 100
    python -m repro estimate lj Q4 --samples 500 --check
    python -m repro profile lj Q9 --backend threads   # EXPLAIN ANALYZE
    python -m repro lint --list-rules   # the domain lint engine

    # multi-machine: stand up worker agents, then drive them
    python -m repro serve --port 7070 --expo-port 9090  # each worker
    python -m repro run wb Q1 --backend remote \
        --hosts 127.0.0.1:7070,127.0.0.1:7071
    python -m repro stat 127.0.0.1:7070        # one STAT snapshot
    python -m repro top 127.0.0.1:7070,127.0.0.1:7071   # live monitor

    # the query service: one warm cluster, many concurrent callers
    python -m repro serve-sql --port 7075 --max-concurrent 8
    python -m repro query 127.0.0.1:7075 "Q1" --dataset wb
    python -m repro query 127.0.0.1:7075     # interactive REPL

Every command goes through :class:`repro.api.JoinSession`, so the
``--engine`` choices come from :mod:`repro.engines.registry`, the
``--transport`` choices from the transport registry, and executor /
transport lifecycle is owned by the session (flags > env > defaults).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Sequence

from .api import JoinSession, RunConfig
from .data import DATASETS, dataset_names, default_scale, load_dataset
from .distributed.cluster import RUNTIME_BACKENDS
from .engines import registry
from .kernels import available_kernels
from .query import PAPER_QUERIES
from .runtime.transport import available_transports
from .wcoj import leapfrog_join

__all__ = ["main"]


#: The CLI's own scale default — smaller than the library's (1e-4) so
#: interactive runs finish in seconds.  Applies only when neither the
#: --scale flag nor REPRO_SCALE is given.
_CLI_DEFAULT_SCALE = 2e-5


def _resolve_scale(flag: float | None) -> float | None:
    if flag is not None:
        return flag
    if os.environ.get("REPRO_SCALE"):
        return None  # defer to the datasets layer, which reads the env
    return _CLI_DEFAULT_SCALE


def _session_for(args) -> JoinSession:
    """A session configured from CLI flags.

    Every flag defaults to None so precedence is flag > REPRO_* env
    (RunConfig's default factories) > built-in default.
    """
    pipeline_flag = getattr(args, "pipeline", None)
    config = RunConfig().replace(
        workers=args.workers, backend=args.backend,
        transport=args.transport, hosts=getattr(args, "hosts", None),
        samples=args.samples, scale=_resolve_scale(args.scale),
        kernel=getattr(args, "kernel", None),
        pipeline=(None if pipeline_flag is None
                  else pipeline_flag == "on"),
        # store_true flags can only opt in; absence defers to
        # REPRO_PROFILE via RunConfig's default factory.
        profile=(True if getattr(args, "profile", False) else None),
        trace_path=getattr(args, "trace", None),
        log_level=getattr(args, "log_level", None))
    return JoinSession(config=config)


def _parse_host_port(spec: str) -> tuple[str, int]:
    """``HOST:PORT`` -> ``(host, port)`` (stat/top targets)."""
    host, sep, port = spec.rpartition(":")
    if not sep or not host or not port.isdigit():
        raise SystemExit(f"expected HOST:PORT, got {spec!r}")
    return host, int(port)


def _cmd_datasets(args) -> int:
    scale = args.scale if args.scale is not None else default_scale()
    print(f"{'key':>4} {'paper edges':>12} {'scaled':>8}  description")
    for key in dataset_names():
        spec = DATASETS[key]
        edges = load_dataset(key, scale=scale)
        print(f"{key:>4} {spec.paper_edges:>12,} {edges.shape[0]:>8,}  "
              f"{spec.description}")
    return 0


def _cmd_queries(args) -> int:
    for name, query in PAPER_QUERIES.items():
        print(f"{name:>4}: {query!r}")
    return 0


def _fmt_bytes(n) -> str:
    """Compact byte counts for the run table (None renders as '-')."""
    if n is None:
        return "-"
    n = int(n)
    for unit in ("B", "K", "M", "G"):
        if n < 1024 or unit == "G":
            return f"{n}{unit}" if unit == "B" else f"{n:.1f}{unit}"
        n /= 1024
    return f"{n}"  # pragma: no cover - unreachable


def _print_result_row(result) -> None:
    if result.ok:
        b = result.breakdown
        measured = result.measured_seconds
        wall = f"{measured:8.3f}" if measured is not None else f"{'-':>8}"
        plane = result.data_plane or {}
        ship = _fmt_bytes(plane.get("shipped_bytes"))
        fetch = _fmt_bytes(plane.get("fetched_bytes"))
        print(f"{result.engine:14} {result.count:>12,} "
              f"{b.optimization:>8.3f} {b.precompute:>8.3f} "
              f"{b.communication:>8.3f} {b.computation:>8.3f} "
              f"{b.total:>8.3f} {wall} {ship:>8} {fetch:>8}")
    else:
        print(f"{result.engine:14} {'-':>12} "
              f"{'FAILED (' + result.failure + ')':>44}")


def _cmd_run(args) -> int:
    with _session_for(args) as session:
        job = session.query(args.dataset, args.query)
        print(f"test-case ({args.dataset.upper()},{args.query}), "
              f"{len(job.db[job.query.atoms[0].relation]):,} "
              f"edges/relation, {session.cluster.num_workers} workers, "
              f"backend={session.config.backend}, "
              f"transport={session.transport_label}, "
              f"pipeline={'on' if session.config.pipeline else 'off'}, "
              f"kernel={session.config.kernel}")
        print(f"{'engine':14} {'count':>12} {'opt':>8} {'pre':>8} "
              f"{'comm':>8} {'comp':>8} {'total':>8} {'wall':>8} "
              f"{'ship':>8} {'fetch':>8}")
        engines = session.engines() if args.engine == "all" \
            else [args.engine]
        report = job.compare(engines=engines)
        for result in report.results:
            _print_result_row(result)
        for result in report.results:
            if result.profile is not None:
                print()
                print(result.profile.render())
        trace_path = session.config.trace_path
    # Leaving the `with` closed the session, which wrote the trace.
    if trace_path:
        print(f"trace written to {trace_path}")
    if not report.agreed:
        print(f"ERROR: engines disagree: {report.counts}",
              file=sys.stderr)
        return 1
    return 0


def _cmd_profile(args) -> int:
    """EXPLAIN ANALYZE one engine run (tree or JSON)."""
    import json as _json

    with _session_for(args) as session:
        job = session.query(args.dataset, args.query)
        result = job.run(args.engine, profile=True)
    profile = result.profile
    if profile is None:
        print(f"ERROR: run failed before profiling "
              f"({result.failure})", file=sys.stderr)
        return 1
    if args.json:
        print(_json.dumps(profile.as_dict(), indent=2))
    else:
        print(profile.render())
    if not result.ok:
        print(f"ERROR: run failed ({result.failure})", file=sys.stderr)
        return 1
    return 0


def _cmd_stat(args) -> int:
    """One STAT snapshot of a running `repro serve` agent."""
    import json as _json

    from .net.agent import agent_stats

    host, port = _parse_host_port(args.agent)
    try:
        stats = agent_stats(host, port, timeout=args.timeout)
    except OSError as exc:
        print(f"cannot reach agent at {host}:{port}: {exc}",
              file=sys.stderr)
        return 1
    if args.history:
        # Re-request with history included (agent_stats keeps the
        # default reply small; history rides an explicit STAT meta).
        from .net.protocol import OP_BYE, OP_STAT, connect, request, \
            send_frame

        sock = connect(host, port, timeout=args.timeout)
        try:
            _op, stats, _payload = request(
                sock, OP_STAT, {"history": args.history})
            send_frame(sock, OP_BYE, {})
        finally:
            sock.close()
    if args.json:
        print(_json.dumps(stats, indent=2, sort_keys=True))
        return 0
    metrics = stats.get("metrics") or {}
    task_hist = metrics.get("agent.task_seconds") or {}
    print(f"agent {host}:{port}  pid={stats.get('pid')} "
          f"mode={stats.get('mode')}")
    print(f"  slots={stats.get('slots')} "
          f"busy={stats.get('tasks_active', 0)} "
          f"tasks_run={stats.get('tasks_run')} "
          f"failed={stats.get('tasks_failed')}")
    if task_hist.get("count"):
        print(f"  task_seconds: count={task_hist['count']} "
              f"mean={task_hist['mean']:.4f} p95={task_hist['p95']:.4f} "
              f"max={task_hist['max']:.4f}")
    fetched = metrics.get("net.fetched_bytes")
    if fetched is not None:
        print(f"  fetched={_fmt_bytes(fetched)}")
    for sample in stats.get("history", ()):
        print(f"  history ts={sample['ts']:.1f} "
              f"run={sample['tasks_run']} "
              f"failed={sample['tasks_failed']} "
              f"active={sample['tasks_active']}")
    return 0


def _expo_value(text: str, name: str) -> float | None:
    """First sample value of ``name`` in Prometheus exposition text."""
    for line in text.splitlines():
        if line.startswith("#"):
            continue
        sample, _, value = line.rpartition(" ")
        if sample == name or sample.startswith(name + "{"):
            try:
                return float(value)
            except ValueError:
                return None
    return None


class _TopHost:
    """One monitored agent: persistent connection, per-tick sampling.

    HELLO once at connect (service check + advertised slots), then each
    tick a PING (measured round-trip = the heartbeat RTT column), a
    STAT (busy slots, counters, task-latency quantiles) and an EXPO
    scrape (the exposition-fed bytes column) — the three opcodes
    `repro top` exercises.  A dead host renders as ``down`` and is
    re-dialed on the next tick.
    """

    def __init__(self, spec: str, timeout: float = 5.0):
        self.spec = spec
        self.host, self.port = _parse_host_port(spec)
        self.timeout = timeout
        self._sock = None
        self.hello: dict = {}

    def _connect(self):
        from .net.protocol import OP_HELLO, connect, request

        sock = connect(self.host, self.port, timeout=self.timeout)
        _op, meta, _payload = request(sock, OP_HELLO, {})
        self.hello = meta
        self._sock = sock
        return sock

    def close(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                from .net.protocol import OP_BYE, send_frame

                send_frame(sock, OP_BYE, {})
            except OSError:
                pass
            sock.close()

    def sample(self) -> dict:
        """One row of the table; ``{"status": "down"}`` on failure."""
        import time as _time

        from .net.agent import agent_expo
        from .net.protocol import OP_PING, OP_STAT, request

        try:
            sock = self._sock or self._connect()
            t0 = _time.perf_counter()
            request(sock, OP_PING, {})
            rtt = _time.perf_counter() - t0
            _op, stats, _payload = request(sock, OP_STAT, {})
            expo = agent_expo(self.host, self.port,
                              timeout=self.timeout)
        except (OSError, EOFError) as exc:
            self.close()
            return {"host": self.spec, "status": "down",
                    "error": str(exc)}
        metrics = stats.get("metrics") or {}
        task_hist = metrics.get("agent.task_seconds") or {}
        fetched = _expo_value(expo, "repro_net_fetched_bytes_total")
        return {"host": self.spec, "status": "up",
                "pid": stats.get("pid"),
                "slots": stats.get("slots"),
                "busy": stats.get("tasks_active", 0),
                "tasks_run": stats.get("tasks_run", 0),
                "tasks_failed": stats.get("tasks_failed", 0),
                "rtt_ms": rtt * 1e3,
                "task_p95_ms": (task_hist.get("p95", 0.0) * 1e3
                                if task_hist.get("count") else None),
                "fetched_bytes": (int(fetched)
                                  if fetched is not None else None)}


def _render_top(rows, clear: bool) -> None:
    import time as _time

    if clear:
        print("\x1b[2J\x1b[H", end="")
    print(f"repro top — {len(rows)} host"
          f"{'s' if len(rows) != 1 else ''} @ "
          f"{_time.strftime('%H:%M:%S')}")
    print(f"{'host':22} {'st':>4} {'slots':>5} {'busy':>4} "
          f"{'run':>8} {'fail':>5} {'rtt(ms)':>8} {'p95(ms)':>8} "
          f"{'fetched':>8}")
    for row in rows:
        if row["status"] != "up":
            print(f"{row['host']:22} {'down':>4}")
            continue
        p95 = (f"{row['task_p95_ms']:8.2f}"
               if row["task_p95_ms"] is not None else f"{'-':>8}")
        print(f"{row['host']:22} {'up':>4} {row['slots']:>5} "
              f"{row['busy']:>4} {row['tasks_run']:>8} "
              f"{row['tasks_failed']:>5} {row['rtt_ms']:>8.2f} {p95} "
              f"{_fmt_bytes(row['fetched_bytes']):>8}")


def _cmd_top(args) -> int:
    """Live per-host monitor over HELLO/STAT/EXPO."""
    import json as _json
    import time as _time

    specs = [s.strip() for s in args.hosts.split(",") if s.strip()]
    if not specs:
        print("no hosts given", file=sys.stderr)
        return 1
    hosts = [_TopHost(spec, timeout=args.timeout) for spec in specs]
    clear = sys.stdout.isatty() and not args.json \
        and args.iterations != 1
    iteration = 0
    try:
        while True:
            rows = [host.sample() for host in hosts]
            if args.json:
                print(_json.dumps({"iteration": iteration,
                                   "ts": _time.time(), "hosts": rows}),
                      flush=True)
            else:
                _render_top(rows, clear=clear)
            iteration += 1
            if args.iterations is not None \
                    and iteration >= args.iterations:
                break
            _time.sleep(args.interval)
    except KeyboardInterrupt:   # pragma: no cover - interactive exit
        pass
    finally:
        for host in hosts:
            host.close()
    return 0 if any(r["status"] == "up" for r in rows) else 1


def _cmd_serve(args) -> int:
    """Stand up a worker agent and serve until interrupted."""
    from .net import WorkerAgent
    from .obs.log import configure_logging

    configure_logging(args.log_level)
    agent = WorkerAgent(host=args.host, port=args.port, slots=args.slots,
                        mode="inline" if args.inline else "processes",
                        expo_port=args.expo_port)
    try:
        agent.start()
    except OSError as exc:
        print(f"cannot listen on {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 1
    print(f"repro worker agent listening on {agent.host}:{agent.port} "
          f"(slots={agent.slots}, pid={os.getpid()})", flush=True)
    if args.expo_port is not None:
        print(f"metrics exposition on "
              f"http://{agent.host}:{args.expo_port}/metrics", flush=True)

    # `kill <pid>` (how CI stops agents) should shut the task pool down
    # as cleanly as Ctrl-C does.
    def _sigterm(_signum, _frame):  # pragma: no cover - signal path
        raise KeyboardInterrupt

    import signal

    signal.signal(signal.SIGTERM, _sigterm)
    try:
        _serve_wait(agent, args.max_seconds)
    except KeyboardInterrupt:
        pass
    finally:
        agent.stop()
        print(f"worker agent on {agent.host}:{agent.port} stopped "
              f"({agent.tasks_run} tasks run, "
              f"{agent.tasks_failed} failed)", flush=True)
    return 0


def _serve_wait(agent, max_seconds: float | None) -> None:
    """Block while the agent serves (bounded when ``max_seconds`` set).

    Separated out so tests can drive the loop without signals.
    """
    import time

    deadline = None if max_seconds is None else \
        time.monotonic() + max_seconds
    while agent.running:
        if deadline is not None and time.monotonic() >= deadline:
            return
        time.sleep(0.2)


def _parse_tenant_budgets(specs) -> dict[str, int] | None:
    """``NAME=UNITS`` flags -> the service's ``tenant_budgets`` dict."""
    budgets: dict[str, int] = {}
    for spec in specs or ():
        name, sep, units = spec.partition("=")
        try:
            budgets[name] = int(float(units))
        except ValueError:
            sep = ""
        if not sep or not name:
            raise SystemExit(
                f"expected TENANT=UNITS (e.g. free=50000), got {spec!r}")
    return budgets or None


def _cmd_serve_sql(args) -> int:
    """Stand up the query-service front door and serve until stopped."""
    from .api import RunConfig
    from .net.service import QueryServer, default_service_port
    from .obs.log import configure_logging

    configure_logging(args.log_level)
    pipeline_flag = getattr(args, "pipeline", None)
    config = RunConfig().replace(
        workers=args.workers, backend=args.backend,
        transport=args.transport, hosts=args.hosts, kernel=args.kernel,
        pipeline=(None if pipeline_flag is None
                  else pipeline_flag == "on"))
    port = args.port if args.port is not None else default_service_port()
    server = QueryServer(
        host=args.host, port=port, config=config,
        expo_port=args.expo_port,
        max_concurrent=args.max_concurrent,
        queue_depth=args.queue_depth,
        tenant_budgets=_parse_tenant_budgets(args.tenant_budget),
        budget_policy=args.budget_policy,
        budget_window=args.budget_window,
        result_cache_bytes=args.result_cache_bytes)
    try:
        server.start()
    except OSError as exc:
        print(f"cannot listen on {args.host}:{port}: {exc}",
              file=sys.stderr)
        server.service.close()
        return 1
    svc = server.service
    print(f"repro query service listening on "
          f"{server.host}:{server.port} "
          f"(max_concurrent={svc.max_concurrent}, "
          f"queue_depth={svc.queue_depth}, "
          f"policy={svc.budget_policy}, "
          f"backend={config.backend}, pid={os.getpid()})", flush=True)
    if args.expo_port is not None:
        print(f"metrics exposition on "
              f"http://{server.host}:{args.expo_port}/metrics",
              flush=True)

    def _sigterm(_signum, _frame):  # pragma: no cover - signal path
        raise KeyboardInterrupt

    import signal

    signal.signal(signal.SIGTERM, _sigterm)
    try:
        _serve_wait(server, args.max_seconds)
    except KeyboardInterrupt:
        pass
    finally:
        stats = server.service.stats()
        server.stop()
        print(f"query service on {server.host}:{server.port} stopped "
              f"(plan_cache={stats['plan_cache_entries']}, "
              f"result_cache={stats['result_cache_entries']})",
              flush=True)
    return 0


def _print_wire_result(meta: dict) -> None:
    if meta.get("ok"):
        plane = meta.get("data_plane") or {}
        parts = [f"count={meta['count']:,}",
                 f"engine={meta['engine']}",
                 f"seconds={meta['seconds']:.4f}"]
        if meta.get("cached"):
            parts.append("cached=yes")
        elif plane:
            parts.append(f"ship={_fmt_bytes(plane.get('shipped_bytes'))}")
            parts.append(
                f"fetch={_fmt_bytes(plane.get('fetched_bytes'))}")
        if "tenant_remaining" in meta:
            parts.append(f"budget_left={meta['tenant_remaining']}")
        print("  ".join(parts))
    else:
        print(f"FAILED ({meta.get('failure')})")


def _repl(client, args) -> int:
    """The interactive loop behind bare ``repro query HOST:PORT``."""
    import json as _json

    from .errors import AdmissionError, NetError

    print(f"connected to query service at {args.server} "
          f"(max_concurrent={client.hello.get('max_concurrent')}); "
          f"\\stats for server state, \\q to quit")
    while True:
        try:
            line = input("repro> ").strip()
        except (EOFError, KeyboardInterrupt):
            print()
            return 0
        if not line:
            continue
        if line in (r"\q", "quit", "exit"):
            return 0
        if line == r"\stats":
            print(_json.dumps({k: v for k, v in client.stats().items()
                               if k != "metrics"}, indent=2,
                              sort_keys=True))
            continue
        try:
            meta = client.run(line, dataset=args.dataset,
                              engine=args.engine, tenant=args.tenant,
                              scale=args.scale, seed=args.seed,
                              use_cache=not args.no_cache)
        except AdmissionError as exc:
            print(f"REJECTED ({exc.reason}): {exc}")
            continue
        except NetError as exc:
            print(f"ERROR: {exc}")
            continue
        _print_wire_result(meta)


def _cmd_query(args) -> int:
    """One-shot query (or REPL) against a ``serve-sql`` endpoint."""
    import json as _json

    from .errors import AdmissionError, NetError
    from .net.service import ServiceClient

    host, port = _parse_host_port(args.server)
    try:
        client = ServiceClient(host, port, timeout=args.timeout)
    except (OSError, NetError) as exc:
        print(f"cannot reach query service at {args.server}: {exc}",
              file=sys.stderr)
        return 1
    try:
        if args.query_text is None:
            return _repl(client, args)
        try:
            meta = client.run(args.query_text, dataset=args.dataset,
                              engine=args.engine, tenant=args.tenant,
                              scale=args.scale, seed=args.seed,
                              use_cache=not args.no_cache)
        except AdmissionError as exc:
            print(f"REJECTED ({exc.reason}): {exc}", file=sys.stderr)
            return 2
        if args.json:
            print(_json.dumps(meta, indent=2, sort_keys=True))
        else:
            _print_wire_result(meta)
        return 0 if meta.get("ok") else 1
    finally:
        client.close()


def _cmd_lint(args) -> int:
    """Run the domain lint engine (docs/static_analysis.md)."""
    import json as _json
    from pathlib import Path

    # Imported lazily like the net subsystem: most CLI invocations
    # never need the analysis package.
    from .analysis import (DEFAULT_BASELINE_NAME, LintConfig,
                           available_checkers, checker_spec, run)
    from .errors import ConfigError

    if args.list_rules:
        for rule in available_checkers():
            print(f"{rule:22} {checker_spec(rule).summary}")
        return 0

    root = Path(args.root)
    paths = list(args.paths)
    if not paths:
        paths = [p for p in (root / "src" / "repro", root / "benchmarks")
                 if p.exists()] or [root]
    baseline = args.baseline
    if baseline is None:
        default = root / DEFAULT_BASELINE_NAME
        baseline = default if default.exists() else None
    rules = [r.strip() for r in args.rules.split(",") if r.strip()] \
        if args.rules else None

    try:
        findings = run(paths, rules=rules, baseline=baseline,
                       config=LintConfig(root=root))
    except ConfigError as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2

    if args.json:
        print(_json.dumps({"version": 1, "count": len(findings),
                           "findings": [f.as_dict() for f in findings]},
                          indent=2))
    else:
        for finding in findings:
            print(finding.render())
            if finding.hint:
                print(f"    hint: {finding.hint}")
        summary = "clean" if not findings else \
            f"{len(findings)} finding{'s' if len(findings) != 1 else ''}"
        print(f"lint: {summary} "
              f"({len(available_checkers() if rules is None else rules)} "
              f"rules)", file=sys.stderr)
    return 1 if findings else 0


def _cmd_plan(args) -> int:
    with _session_for(args) as session:
        explain = session.query(args.dataset, args.query).explain()
    print(explain.describe())
    return 0


def _cmd_estimate(args) -> int:
    with _session_for(args) as session:
        job = session.query(args.dataset, args.query)
        est = job.estimate(seed=args.seed)
        mode = "exact (full enumeration)" if est.exact else \
            f"{est.num_samples} samples"
        print(f"estimate: {est.estimate:,.0f}  ({mode}, "
              f"|val({est.attribute})|={est.val_size})")
        if not est.exact:
            print(f"Lemma 2 error bound @95%: "
                  f"+/- {est.error_bound(0.05):,.0f}")
        if args.check:
            true = leapfrog_join(job.query, job.db).count
            hi = max(est.estimate, float(true), 1.0)
            lo = max(1.0, min(est.estimate, float(true)))
            print(f"true: {true:,}  (D = {hi / lo:.3f})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Fast Distributed Complex Join "
                    "Processing' (ADJ, ICDE 2021)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list dataset analogues").add_argument(
        "--scale", type=float, default=None)
    sub.add_parser("queries", help="list the paper's query catalog")

    def common(p):
        p.add_argument("dataset", choices=dataset_names())
        p.add_argument("query", type=str.upper,
                       choices=sorted(PAPER_QUERIES))
        p.add_argument("--scale", type=float, default=None,
                       help="dataset scale (default: $REPRO_SCALE or "
                            "2e-5)")
        p.add_argument("--workers", type=int, default=None,
                       help="worker count (default: $REPRO_WORKERS or 8)")
        p.add_argument("--samples", type=int, default=None,
                       help="optimizer samples (default: $REPRO_SAMPLES "
                            "or 100)")
        p.add_argument("--log-level", default=None, dest="log_level",
                       choices=["debug", "info", "warning", "error"],
                       help="level for the repro.* structured loggers "
                            "(default: $REPRO_LOG or warning)")
        p.set_defaults(backend=None, transport=None)

    def runtime_flags(p):
        """Backend/data-plane flags shared by `run` and `profile`."""
        p.add_argument("--backend", default=None,
                       choices=list(RUNTIME_BACKENDS),
                       help="runtime backend for per-worker computation: "
                            "serial/threads/processes run locally, "
                            "'remote' drives worker agents from --hosts "
                            "(default: $REPRO_BACKEND or serial)")
        p.add_argument("--transport", default=None,
                       choices=sorted(available_transports()),
                       help="data plane carrying task payloads: 'pickle' "
                            "ships partition matrices, 'shm' ships "
                            "shared-memory descriptors, 'tcp' ships "
                            "block-store descriptors remote workers "
                            "fetch themselves (default: $REPRO_TRANSPORT; "
                            "pickle, or tcp for --backend remote)")
        p.add_argument("--hosts", default=None,
                       help="comma-separated worker hosts for --backend "
                            "remote: 'host:port' agents (python -m repro "
                            "serve) and/or 'local[:slots]' (default: "
                            "$REPRO_HOSTS)")
        p.add_argument("--kernel", default=None,
                       choices=list(available_kernels()),
                       help="join kernel for per-cube/per-bag execution: "
                            "'wcoj' is pure Leapfrog, 'binary' chains "
                            "vectorized hash joins, 'adaptive' picks per "
                            "subquery (default: $REPRO_KERNEL or "
                            "adaptive); see docs/kernels.md")
        p.add_argument("--pipeline", default=None,
                       choices=["on", "off"],
                       help="pipelined epochs: overlap routing/publish "
                            "with task execution ('off' restores the "
                            "strict barriers for A/B; default: "
                            "$REPRO_PIPELINE or on)")

    run_p = sub.add_parser("run", help="run engines on a test-case")
    common(run_p)
    run_p.add_argument("--engine", default="adj",
                       choices=["all", *registry.available()])
    runtime_flags(run_p)
    run_p.add_argument("--profile", action="store_true",
                       help="EXPLAIN ANALYZE: print a per-phase modeled "
                            "vs measured profile tree after the run "
                            "table (default: $REPRO_PROFILE)")
    run_p.add_argument("--trace", default=None, metavar="PATH",
                       help="write a Chrome trace-event JSON timeline of "
                            "the run (route, publish, every worker task "
                            "— load in Perfetto / chrome://tracing; "
                            "default: $REPRO_TRACE)")

    profile_p = sub.add_parser(
        "profile", help="EXPLAIN ANALYZE one engine run: per-phase "
                        "modeled-vs-measured profile, worker skew, "
                        "data-plane bytes")
    common(profile_p)
    profile_p.add_argument("--engine", default="adj",
                           choices=list(registry.available()))
    runtime_flags(profile_p)
    profile_p.add_argument("--json", action="store_true",
                           help="emit the profile as JSON "
                                "(schema docs/observability.md)")

    stat_p = sub.add_parser(
        "stat", help="one stats snapshot of a running worker agent")
    stat_p.add_argument("agent", metavar="HOST:PORT",
                        help="agent address (python -m repro serve)")
    stat_p.add_argument("--history", type=int, default=0, metavar="N",
                        help="also fetch the last N ring-buffer samples "
                             "(agent keeps 256, ~5s apart)")
    stat_p.add_argument("--timeout", type=float, default=5.0)
    stat_p.add_argument("--json", action="store_true",
                        help="raw STAT meta as JSON")

    top_p = sub.add_parser(
        "top", help="live per-host cluster monitor (HELLO/STAT/EXPO)")
    top_p.add_argument("hosts", metavar="HOSTS",
                       help="comma-separated agent addresses "
                            "(host:port,host:port,...)")
    top_p.add_argument("--interval", type=float, default=2.0,
                       help="seconds between refreshes (default 2)")
    top_p.add_argument("--iterations", type=int, default=None,
                       metavar="N",
                       help="stop after N refreshes (default: run until "
                            "Ctrl-C)")
    top_p.add_argument("--timeout", type=float, default=5.0)
    top_p.add_argument("--json", action="store_true",
                       help="one JSON document per refresh instead of "
                            "the table (CI/scripting)")

    serve_p = sub.add_parser(
        "serve", help="stand up a worker agent for remote coordinators")
    serve_p.add_argument("--port", type=int, default=7070,
                         help="port to listen on (0 picks an ephemeral "
                              "port, printed on startup; default 7070)")
    serve_p.add_argument("--host", default="127.0.0.1",
                         help="interface to bind (default 127.0.0.1; "
                              "use 0.0.0.0 only on trusted networks — "
                              "task frames are pickled)")
    serve_p.add_argument("--slots", type=int, default=None,
                         help="task slots to advertise (default: usable "
                              "CPU count)")
    serve_p.add_argument("--max-seconds", type=float, default=None,
                         help="exit after this long (CI convenience; "
                              "default: serve until Ctrl-C)")
    serve_p.add_argument("--expo-port", type=int, default=None,
                         dest="expo_port", metavar="PORT",
                         help="also serve Prometheus-style text metrics "
                              "over HTTP on this port (GET /metrics; "
                              "default: frames-only, EXPO opcode still "
                              "answers)")
    serve_p.add_argument("--inline", action="store_true",
                         help="run tasks on the connection thread "
                              "instead of the process pool (debugging; "
                              "GIL-bound)")
    serve_p.add_argument("--log-level", default=None, dest="log_level",
                         choices=["debug", "info", "warning", "error"],
                         help="level for the repro.* structured loggers "
                              "(default: $REPRO_LOG or warning)")

    sql_p = sub.add_parser(
        "serve-sql", help="stand up the multi-tenant query service "
                          "(QUERY/CANCEL/RESULT frames over one warm "
                          "cluster)")
    sql_p.add_argument("--port", type=int, default=None,
                       help="port to listen on (0 picks an ephemeral "
                            "port; default: $REPRO_SERVICE_PORT or 7075)")
    sql_p.add_argument("--host", default="127.0.0.1",
                       help="interface to bind (default 127.0.0.1)")
    sql_p.add_argument("--workers", type=int, default=None,
                       help="worker count for the shared cluster "
                            "(default: $REPRO_WORKERS or 8)")
    runtime_flags(sql_p)
    sql_p.add_argument("--max-concurrent", type=int, default=None,
                       dest="max_concurrent", metavar="N",
                       help="queries executing at once (default: "
                            "$REPRO_MAX_CONCURRENT or 4)")
    sql_p.add_argument("--queue-depth", type=int, default=None,
                       dest="queue_depth", metavar="N",
                       help="admitted queries allowed to wait beyond "
                            "the executing ones; more are rejected "
                            "429-style (default: 2x max-concurrent)")
    sql_p.add_argument("--tenant-budget", action="append", default=None,
                       dest="tenant_budget", metavar="TENANT=UNITS",
                       help="work budget for one tenant, repeatable "
                            "(e.g. --tenant-budget free=50000)")
    sql_p.add_argument("--budget-policy", default="reject",
                       dest="budget_policy",
                       choices=["reject", "queue", "downgrade"],
                       help="what happens to an over-budget tenant's "
                            "queries: reject them 429-style, queue "
                            "them until the window refills, or "
                            "downgrade them to the remaining budget "
                            "(default: reject)")
    sql_p.add_argument("--budget-window", type=float, default=None,
                       dest="budget_window", metavar="SECONDS",
                       help="refill tenant budgets every SECONDS "
                            "(default: budgets never refill)")
    sql_p.add_argument("--result-cache-bytes", type=int, default=None,
                       dest="result_cache_bytes", metavar="BYTES",
                       help="result-cache budget; 0 disables (default: "
                            "$REPRO_RESULT_CACHE_BYTES or 64 MiB)")
    sql_p.add_argument("--expo-port", type=int, default=None,
                       dest="expo_port", metavar="PORT",
                       help="also serve Prometheus-style text metrics "
                            "over HTTP on this port (GET /metrics)")
    sql_p.add_argument("--max-seconds", type=float, default=None,
                       help="exit after this long (CI convenience; "
                            "default: serve until Ctrl-C)")
    sql_p.add_argument("--log-level", default=None, dest="log_level",
                       choices=["debug", "info", "warning", "error"],
                       help="level for the repro.* structured loggers "
                            "(default: $REPRO_LOG or warning)")

    query_p = sub.add_parser(
        "query", help="run a query against a serve-sql endpoint "
                      "(interactive REPL when QUERY is omitted)")
    query_p.add_argument("server", metavar="HOST:PORT",
                         help="query-service address (repro serve-sql)")
    query_p.add_argument("query_text", nargs="?", default=None,
                         metavar="QUERY",
                         help="a paper query name (Q1..) or datalog "
                              "text like 'T(a,b,c) :- R(a,b), S(b,c), "
                              "T(a,c)'; omit for a REPL")
    query_p.add_argument("--dataset", default="wb",
                         choices=dataset_names(),
                         help="graph the relations are built from "
                              "(default: wb)")
    query_p.add_argument("--engine", default="adj",
                         choices=list(registry.available()))
    query_p.add_argument("--tenant", default="default",
                         help="tenant to account the work to "
                              "(default: 'default')")
    query_p.add_argument("--scale", type=float, default=None,
                         help="dataset scale (default: the server's "
                              "wire default, 2e-5)")
    query_p.add_argument("--seed", type=int, default=None)
    query_p.add_argument("--no-cache", action="store_true",
                         dest="no_cache",
                         help="bypass the server's result cache")
    query_p.add_argument("--json", action="store_true",
                         help="raw RESULT meta as JSON")
    query_p.add_argument("--timeout", type=float, default=10.0,
                         help="dial/handshake timeout in seconds "
                              "(queries themselves are unbounded)")

    lint_p = sub.add_parser(
        "lint", help="machine-check the stack's domain invariants "
                     "(spawn safety, lazy net, lock discipline, ...)")
    lint_p.add_argument("paths", nargs="*",
                        help="files/directories to lint (default: "
                             "src/repro and benchmarks under --root)")
    lint_p.add_argument("--root", default=".",
                        help="directory findings are reported relative "
                             "to; docs/api.md and the default baseline "
                             "are looked up here (default: .)")
    lint_p.add_argument("--rules", default=None,
                        help="comma-separated rule subset (default: all; "
                             "see --list-rules)")
    lint_p.add_argument("--baseline", default=None, metavar="PATH",
                        help="baseline JSON of grandfathered findings "
                             "(default: <root>/lint-baseline.json when "
                             "present)")
    lint_p.add_argument("--json", action="store_true",
                        help="machine-readable findings on stdout")
    lint_p.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")

    plan_p = sub.add_parser("plan", help="show the ADJ plan for a "
                                         "test-case")
    common(plan_p)

    est_p = sub.add_parser("estimate", help="estimate a cardinality")
    common(est_p)
    est_p.add_argument("--seed", type=int, default=0)
    est_p.add_argument("--check", action="store_true",
                       help="also compute the true count")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "datasets": _cmd_datasets,
        "queries": _cmd_queries,
        "run": _cmd_run,
        "profile": _cmd_profile,
        "stat": _cmd_stat,
        "top": _cmd_top,
        "plan": _cmd_plan,
        "estimate": _cmd_estimate,
        "serve": _cmd_serve,
        "serve-sql": _cmd_serve_sql,
        "query": _cmd_query,
        "lint": _cmd_lint,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
