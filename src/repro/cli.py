"""Command-line interface: explore the reproduction without writing code.

Examples::

    python -m repro datasets
    python -m repro queries
    python -m repro run lj Q5 --engine adj --scale 2e-5
    python -m repro run wb Q1 --engine all
    python -m repro plan lj Q5 --samples 100
    python -m repro estimate lj Q4 --samples 500 --check
    python -m repro lint --list-rules   # the domain lint engine

    # multi-machine: stand up worker agents, then drive them
    python -m repro serve --port 7070          # on each worker host
    python -m repro run wb Q1 --backend remote \
        --hosts 127.0.0.1:7070,127.0.0.1:7071

Every command goes through :class:`repro.api.JoinSession`, so the
``--engine`` choices come from :mod:`repro.engines.registry`, the
``--transport`` choices from the transport registry, and executor /
transport lifecycle is owned by the session (flags > env > defaults).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Sequence

from .api import JoinSession, RunConfig
from .data import DATASETS, dataset_names, default_scale, load_dataset
from .distributed.cluster import RUNTIME_BACKENDS
from .engines import registry
from .kernels import available_kernels
from .query import PAPER_QUERIES
from .runtime.transport import available_transports
from .wcoj import leapfrog_join

__all__ = ["main"]


#: The CLI's own scale default — smaller than the library's (1e-4) so
#: interactive runs finish in seconds.  Applies only when neither the
#: --scale flag nor REPRO_SCALE is given.
_CLI_DEFAULT_SCALE = 2e-5


def _resolve_scale(flag: float | None) -> float | None:
    if flag is not None:
        return flag
    if os.environ.get("REPRO_SCALE"):
        return None  # defer to the datasets layer, which reads the env
    return _CLI_DEFAULT_SCALE


def _session_for(args) -> JoinSession:
    """A session configured from CLI flags.

    Every flag defaults to None so precedence is flag > REPRO_* env
    (RunConfig's default factories) > built-in default.
    """
    pipeline_flag = getattr(args, "pipeline", None)
    config = RunConfig().replace(
        workers=args.workers, backend=args.backend,
        transport=args.transport, hosts=getattr(args, "hosts", None),
        samples=args.samples, scale=_resolve_scale(args.scale),
        kernel=getattr(args, "kernel", None),
        pipeline=(None if pipeline_flag is None
                  else pipeline_flag == "on"),
        trace_path=getattr(args, "trace", None),
        log_level=getattr(args, "log_level", None))
    return JoinSession(config=config)


def _cmd_datasets(args) -> int:
    scale = args.scale if args.scale is not None else default_scale()
    print(f"{'key':>4} {'paper edges':>12} {'scaled':>8}  description")
    for key in dataset_names():
        spec = DATASETS[key]
        edges = load_dataset(key, scale=scale)
        print(f"{key:>4} {spec.paper_edges:>12,} {edges.shape[0]:>8,}  "
              f"{spec.description}")
    return 0


def _cmd_queries(args) -> int:
    for name, query in PAPER_QUERIES.items():
        print(f"{name:>4}: {query!r}")
    return 0


def _fmt_bytes(n) -> str:
    """Compact byte counts for the run table (None renders as '-')."""
    if n is None:
        return "-"
    n = int(n)
    for unit in ("B", "K", "M", "G"):
        if n < 1024 or unit == "G":
            return f"{n}{unit}" if unit == "B" else f"{n:.1f}{unit}"
        n /= 1024
    return f"{n}"  # pragma: no cover - unreachable


def _print_result_row(result) -> None:
    if result.ok:
        b = result.breakdown
        measured = result.measured_seconds
        wall = f"{measured:8.3f}" if measured is not None else f"{'-':>8}"
        plane = result.data_plane or {}
        ship = _fmt_bytes(plane.get("shipped_bytes"))
        fetch = _fmt_bytes(plane.get("fetched_bytes"))
        print(f"{result.engine:14} {result.count:>12,} "
              f"{b.optimization:>8.3f} {b.precompute:>8.3f} "
              f"{b.communication:>8.3f} {b.computation:>8.3f} "
              f"{b.total:>8.3f} {wall} {ship:>8} {fetch:>8}")
    else:
        print(f"{result.engine:14} {'-':>12} "
              f"{'FAILED (' + result.failure + ')':>44}")


def _cmd_run(args) -> int:
    with _session_for(args) as session:
        job = session.query(args.dataset, args.query)
        print(f"test-case ({args.dataset.upper()},{args.query}), "
              f"{len(job.db[job.query.atoms[0].relation]):,} "
              f"edges/relation, {session.cluster.num_workers} workers, "
              f"backend={session.config.backend}, "
              f"transport={session.transport_label}, "
              f"pipeline={'on' if session.config.pipeline else 'off'}, "
              f"kernel={session.config.kernel}")
        print(f"{'engine':14} {'count':>12} {'opt':>8} {'pre':>8} "
              f"{'comm':>8} {'comp':>8} {'total':>8} {'wall':>8} "
              f"{'ship':>8} {'fetch':>8}")
        engines = session.engines() if args.engine == "all" \
            else [args.engine]
        report = job.compare(engines=engines)
        for result in report.results:
            _print_result_row(result)
        trace_path = session.config.trace_path
    # Leaving the `with` closed the session, which wrote the trace.
    if trace_path:
        print(f"trace written to {trace_path}")
    if not report.agreed:
        print(f"ERROR: engines disagree: {report.counts}",
              file=sys.stderr)
        return 1
    return 0


def _cmd_serve(args) -> int:
    """Stand up a worker agent and serve until interrupted."""
    from .net import WorkerAgent
    from .obs.log import configure_logging

    configure_logging(args.log_level)
    agent = WorkerAgent(host=args.host, port=args.port, slots=args.slots,
                        mode="inline" if args.inline else "processes")
    try:
        agent.start()
    except OSError as exc:
        print(f"cannot listen on {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 1
    print(f"repro worker agent listening on {agent.host}:{agent.port} "
          f"(slots={agent.slots}, pid={os.getpid()})", flush=True)

    # `kill <pid>` (how CI stops agents) should shut the task pool down
    # as cleanly as Ctrl-C does.
    def _sigterm(_signum, _frame):  # pragma: no cover - signal path
        raise KeyboardInterrupt

    import signal

    signal.signal(signal.SIGTERM, _sigterm)
    try:
        _serve_wait(agent, args.max_seconds)
    except KeyboardInterrupt:
        pass
    finally:
        agent.stop()
        print(f"worker agent on {agent.host}:{agent.port} stopped "
              f"({agent.tasks_run} tasks run, "
              f"{agent.tasks_failed} failed)", flush=True)
    return 0


def _serve_wait(agent, max_seconds: float | None) -> None:
    """Block while the agent serves (bounded when ``max_seconds`` set).

    Separated out so tests can drive the loop without signals.
    """
    import time

    deadline = None if max_seconds is None else \
        time.monotonic() + max_seconds
    while agent.running:
        if deadline is not None and time.monotonic() >= deadline:
            return
        time.sleep(0.2)


def _cmd_lint(args) -> int:
    """Run the domain lint engine (docs/static_analysis.md)."""
    import json as _json
    from pathlib import Path

    # Imported lazily like the net subsystem: most CLI invocations
    # never need the analysis package.
    from .analysis import (DEFAULT_BASELINE_NAME, LintConfig,
                           available_checkers, checker_spec, run)
    from .errors import ConfigError

    if args.list_rules:
        for rule in available_checkers():
            print(f"{rule:22} {checker_spec(rule).summary}")
        return 0

    root = Path(args.root)
    paths = list(args.paths)
    if not paths:
        paths = [p for p in (root / "src" / "repro", root / "benchmarks")
                 if p.exists()] or [root]
    baseline = args.baseline
    if baseline is None:
        default = root / DEFAULT_BASELINE_NAME
        baseline = default if default.exists() else None
    rules = [r.strip() for r in args.rules.split(",") if r.strip()] \
        if args.rules else None

    try:
        findings = run(paths, rules=rules, baseline=baseline,
                       config=LintConfig(root=root))
    except ConfigError as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2

    if args.json:
        print(_json.dumps({"version": 1, "count": len(findings),
                           "findings": [f.as_dict() for f in findings]},
                          indent=2))
    else:
        for finding in findings:
            print(finding.render())
            if finding.hint:
                print(f"    hint: {finding.hint}")
        summary = "clean" if not findings else \
            f"{len(findings)} finding{'s' if len(findings) != 1 else ''}"
        print(f"lint: {summary} "
              f"({len(available_checkers() if rules is None else rules)} "
              f"rules)", file=sys.stderr)
    return 1 if findings else 0


def _cmd_plan(args) -> int:
    with _session_for(args) as session:
        explain = session.query(args.dataset, args.query).explain()
    print(explain.describe())
    return 0


def _cmd_estimate(args) -> int:
    with _session_for(args) as session:
        job = session.query(args.dataset, args.query)
        est = job.estimate(seed=args.seed)
        mode = "exact (full enumeration)" if est.exact else \
            f"{est.num_samples} samples"
        print(f"estimate: {est.estimate:,.0f}  ({mode}, "
              f"|val({est.attribute})|={est.val_size})")
        if not est.exact:
            print(f"Lemma 2 error bound @95%: "
                  f"+/- {est.error_bound(0.05):,.0f}")
        if args.check:
            true = leapfrog_join(job.query, job.db).count
            hi = max(est.estimate, float(true), 1.0)
            lo = max(1.0, min(est.estimate, float(true)))
            print(f"true: {true:,}  (D = {hi / lo:.3f})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Fast Distributed Complex Join "
                    "Processing' (ADJ, ICDE 2021)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list dataset analogues").add_argument(
        "--scale", type=float, default=None)
    sub.add_parser("queries", help="list the paper's query catalog")

    def common(p):
        p.add_argument("dataset", choices=dataset_names())
        p.add_argument("query", type=str.upper,
                       choices=sorted(PAPER_QUERIES))
        p.add_argument("--scale", type=float, default=None,
                       help="dataset scale (default: $REPRO_SCALE or "
                            "2e-5)")
        p.add_argument("--workers", type=int, default=None,
                       help="worker count (default: $REPRO_WORKERS or 8)")
        p.add_argument("--samples", type=int, default=None,
                       help="optimizer samples (default: $REPRO_SAMPLES "
                            "or 100)")
        p.add_argument("--log-level", default=None, dest="log_level",
                       choices=["debug", "info", "warning", "error"],
                       help="level for the repro.* structured loggers "
                            "(default: $REPRO_LOG or warning)")
        p.set_defaults(backend=None, transport=None)

    run_p = sub.add_parser("run", help="run engines on a test-case")
    common(run_p)
    run_p.add_argument("--engine", default="adj",
                       choices=["all", *registry.available()])
    run_p.add_argument("--backend", default=None,
                       choices=list(RUNTIME_BACKENDS),
                       help="runtime backend for per-worker computation: "
                            "serial/threads/processes run locally, "
                            "'remote' drives worker agents from --hosts "
                            "(default: $REPRO_BACKEND or serial)")
    run_p.add_argument("--transport", default=None,
                       choices=sorted(available_transports()),
                       help="data plane carrying task payloads: 'pickle' "
                            "ships partition matrices, 'shm' ships "
                            "shared-memory descriptors, 'tcp' ships "
                            "block-store descriptors remote workers "
                            "fetch themselves (default: $REPRO_TRANSPORT; "
                            "pickle, or tcp for --backend remote)")
    run_p.add_argument("--hosts", default=None,
                       help="comma-separated worker hosts for --backend "
                            "remote: 'host:port' agents (python -m repro "
                            "serve) and/or 'local[:slots]' (default: "
                            "$REPRO_HOSTS)")
    run_p.add_argument("--kernel", default=None,
                       choices=list(available_kernels()),
                       help="join kernel for per-cube/per-bag execution: "
                            "'wcoj' is pure Leapfrog, 'binary' chains "
                            "vectorized hash joins, 'adaptive' picks per "
                            "subquery (default: $REPRO_KERNEL or "
                            "adaptive); see docs/kernels.md")
    run_p.add_argument("--pipeline", default=None, choices=["on", "off"],
                       help="pipelined epochs: overlap routing/publish "
                            "with task execution ('off' restores the "
                            "strict barriers for A/B; default: "
                            "$REPRO_PIPELINE or on)")
    run_p.add_argument("--trace", default=None, metavar="PATH",
                       help="write a Chrome trace-event JSON timeline of "
                            "the run (route, publish, every worker task "
                            "— load in Perfetto / chrome://tracing; "
                            "default: $REPRO_TRACE)")

    serve_p = sub.add_parser(
        "serve", help="stand up a worker agent for remote coordinators")
    serve_p.add_argument("--port", type=int, default=7070,
                         help="port to listen on (0 picks an ephemeral "
                              "port, printed on startup; default 7070)")
    serve_p.add_argument("--host", default="127.0.0.1",
                         help="interface to bind (default 127.0.0.1; "
                              "use 0.0.0.0 only on trusted networks — "
                              "task frames are pickled)")
    serve_p.add_argument("--slots", type=int, default=None,
                         help="task slots to advertise (default: usable "
                              "CPU count)")
    serve_p.add_argument("--max-seconds", type=float, default=None,
                         help="exit after this long (CI convenience; "
                              "default: serve until Ctrl-C)")
    serve_p.add_argument("--inline", action="store_true",
                         help="run tasks on the connection thread "
                              "instead of the process pool (debugging; "
                              "GIL-bound)")
    serve_p.add_argument("--log-level", default=None, dest="log_level",
                         choices=["debug", "info", "warning", "error"],
                         help="level for the repro.* structured loggers "
                              "(default: $REPRO_LOG or warning)")

    lint_p = sub.add_parser(
        "lint", help="machine-check the stack's domain invariants "
                     "(spawn safety, lazy net, lock discipline, ...)")
    lint_p.add_argument("paths", nargs="*",
                        help="files/directories to lint (default: "
                             "src/repro and benchmarks under --root)")
    lint_p.add_argument("--root", default=".",
                        help="directory findings are reported relative "
                             "to; docs/api.md and the default baseline "
                             "are looked up here (default: .)")
    lint_p.add_argument("--rules", default=None,
                        help="comma-separated rule subset (default: all; "
                             "see --list-rules)")
    lint_p.add_argument("--baseline", default=None, metavar="PATH",
                        help="baseline JSON of grandfathered findings "
                             "(default: <root>/lint-baseline.json when "
                             "present)")
    lint_p.add_argument("--json", action="store_true",
                        help="machine-readable findings on stdout")
    lint_p.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")

    plan_p = sub.add_parser("plan", help="show the ADJ plan for a "
                                         "test-case")
    common(plan_p)

    est_p = sub.add_parser("estimate", help="estimate a cardinality")
    common(est_p)
    est_p.add_argument("--seed", type=int, default=0)
    est_p.add_argument("--check", action="store_true",
                       help="also compute the true count")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "datasets": _cmd_datasets,
        "queries": _cmd_queries,
        "run": _cmd_run,
        "plan": _cmd_plan,
        "estimate": _cmd_estimate,
        "serve": _cmd_serve,
        "lint": _cmd_lint,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
