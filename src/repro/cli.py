"""Command-line interface: explore the reproduction without writing code.

Examples::

    python -m repro datasets
    python -m repro queries
    python -m repro run lj Q5 --engine adj --scale 2e-5
    python -m repro run wb Q1 --engine all
    python -m repro plan lj Q5 --samples 100
    python -m repro estimate lj Q4 --samples 500 --check
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .core import CardinalityEstimator, optimize_plan
from .data import DATASETS, dataset_names, default_scale, load_dataset
from .distributed import Cluster
from .engines import (
    ADJ,
    BigJoin,
    HCubeJ,
    HCubeJCache,
    SparkSQLJoin,
    YannakakisJoin,
    run_engine_safely,
)
from .ghd import optimal_hypertree
from .query import PAPER_QUERIES
from .runtime import executor_for
from .runtime.transport import TRANSPORTS, default_transport_name
from .wcoj import leapfrog_join
from .workloads import make_testcase

__all__ = ["main"]

_ENGINES = {
    "sparksql": SparkSQLJoin,
    "bigjoin": BigJoin,
    "hcubej": HCubeJ,
    "hcubej-cache": HCubeJCache,
    "adj": ADJ,
    "yannakakis": YannakakisJoin,
}


def _build_engine(name: str, samples: int):
    cls = _ENGINES[name]
    if cls is ADJ:
        return ADJ(num_samples=samples)
    return cls()


def _cmd_datasets(args) -> int:
    scale = args.scale if args.scale is not None else default_scale()
    print(f"{'key':>4} {'paper edges':>12} {'scaled':>8}  description")
    for key in dataset_names():
        spec = DATASETS[key]
        edges = load_dataset(key, scale=scale)
        print(f"{key:>4} {spec.paper_edges:>12,} {edges.shape[0]:>8,}  "
              f"{spec.description}")
    return 0


def _cmd_queries(args) -> int:
    for name, query in PAPER_QUERIES.items():
        print(f"{name:>4}: {query!r}")
    return 0


def _cmd_run(args) -> int:
    query, db = make_testcase(args.dataset, args.query, scale=args.scale)
    cluster = Cluster(num_workers=args.workers, runtime=args.backend)
    names = list(_ENGINES) if args.engine == "all" else [args.engine]
    use_runtime = args.backend != "serial" or args.transport is not None
    transport = (args.transport or default_transport_name()) \
        if use_runtime else "inline"
    print(f"test-case ({args.dataset.upper()},{args.query}), "
          f"{len(db[query.atoms[0].relation]):,} edges/relation, "
          f"{cluster.num_workers} workers, backend={args.backend}, "
          f"transport={transport}")
    print(f"{'engine':14} {'count':>12} {'opt':>8} {'pre':>8} "
          f"{'comm':>8} {'comp':>8} {'total':>8} {'wall':>8}")
    counts = set()
    executor = None
    if use_runtime:
        # executor_for caps process pools at the usable CPU count.  An
        # explicit --transport forces the runtime path even on the
        # serial backend so the data plane is exercised.
        executor = executor_for(cluster, transport=transport)
    try:
        for name in names:
            result = run_engine_safely(_build_engine(name, args.samples),
                                       query, db, cluster,
                                       executor=executor)
            if result.ok:
                b = result.breakdown
                measured = result.measured_seconds
                wall = f"{measured:8.3f}" if measured is not None \
                    else f"{'-':>8}"
                print(f"{result.engine:14} {result.count:>12,} "
                      f"{b.optimization:>8.3f} {b.precompute:>8.3f} "
                      f"{b.communication:>8.3f} {b.computation:>8.3f} "
                      f"{b.total:>8.3f} {wall}")
                counts.add(result.count)
            else:
                print(f"{result.engine:14} {'-':>12} "
                      f"{'FAILED (' + result.failure + ')':>44}")
    finally:
        if executor is not None:
            executor.close()
    if len(counts) > 1:
        print(f"ERROR: engines disagree: {counts}", file=sys.stderr)
        return 1
    return 0


def _cmd_plan(args) -> int:
    query, db = make_testcase(args.dataset, args.query, scale=args.scale)
    tree = optimal_hypertree(query)
    print(f"query: {query!r}")
    print(f"hypertree (fhw={tree.width:.2f}):")
    for bag in tree.bags:
        members = ", ".join(query.atoms[i].relation
                            for i in bag.atom_indices)
        print(f"  v{bag.index}: [{members}]  attrs="
              f"{{{','.join(sorted(bag.attributes))}}}  "
              f"width={tree.bag_widths[bag.index]:.2f}")
    print(f"tree edges: {tree.tree_edges}")
    estimator = CardinalityEstimator(db, num_samples=args.samples, seed=0)
    report = optimize_plan(query, db, Cluster(num_workers=args.workers),
                           hypertree=tree, estimator=estimator)
    print(f"\n{report.plan.describe()}")
    print(f"rewritten: {report.plan.rewritten_query()!r}")
    print(f"explored {report.explored_configurations} configurations in "
          f"{report.wall_seconds:.2f}s")
    return 0


def _cmd_estimate(args) -> int:
    query, db = make_testcase(args.dataset, args.query, scale=args.scale)
    est = CardinalityEstimator(db, num_samples=args.samples,
                               seed=args.seed).estimate(query)
    mode = "exact (full enumeration)" if est.exact else \
        f"{est.num_samples} samples"
    print(f"estimate: {est.estimate:,.0f}  ({mode}, "
          f"|val({est.attribute})|={est.val_size})")
    if not est.exact:
        print(f"Lemma 2 error bound @95%: +/- {est.error_bound(0.05):,.0f}")
    if args.check:
        true = leapfrog_join(query, db).count
        hi = max(est.estimate, float(true), 1.0)
        lo = max(1.0, min(est.estimate, float(true)))
        print(f"true: {true:,}  (D = {hi / lo:.3f})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Fast Distributed Complex Join "
                    "Processing' (ADJ, ICDE 2021)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list dataset analogues").add_argument(
        "--scale", type=float, default=None)
    sub.add_parser("queries", help="list the paper's query catalog")

    def common(p):
        p.add_argument("dataset", choices=dataset_names())
        p.add_argument("query", type=str.upper,
                       choices=sorted(PAPER_QUERIES))
        p.add_argument("--scale", type=float, default=2e-5,
                       help="dataset scale (default 2e-5)")
        p.add_argument("--workers", type=int, default=8)
        p.add_argument("--samples", type=int, default=100)

    run_p = sub.add_parser("run", help="run engines on a test-case")
    common(run_p)
    run_p.add_argument("--engine", default="adj",
                       choices=["all", *_ENGINES])
    run_p.add_argument("--backend", default="serial",
                       choices=["serial", "threads", "processes"],
                       help="runtime backend for local per-worker "
                            "computation (default: serial)")
    run_p.add_argument("--transport", default=None,
                       choices=sorted(TRANSPORTS),
                       help="data plane carrying task payloads: 'pickle' "
                            "ships partition matrices, 'shm' ships "
                            "shared-memory descriptors (default: "
                            "$REPRO_TRANSPORT or pickle)")

    plan_p = sub.add_parser("plan", help="show the ADJ plan for a "
                                         "test-case")
    common(plan_p)

    est_p = sub.add_parser("estimate", help="estimate a cardinality")
    common(est_p)
    est_p.add_argument("--seed", type=int, default=0)
    est_p.add_argument("--check", action="store_true",
                       help="also compute the true count")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "datasets": _cmd_datasets,
        "queries": _cmd_queries,
        "run": _cmd_run,
        "plan": _cmd_plan,
        "estimate": _cmd_estimate,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
