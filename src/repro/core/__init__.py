"""ADJ core: plans, sampling estimator, cost model, Algorithm 2 optimizer."""

from .calibration import calibrate, measure_alpha, measure_beta
from .cost_model import CostModel
from .exhaustive import ExhaustiveReport, exhaustive_plan
from .optimizer import (
    Optimizer,
    OptimizerReport,
    communication_first_plan,
    optimize_plan,
)
from .plan import (
    CandidateRelation,
    QueryPlan,
    candidate_relation_for,
    projected_database,
)
from .sampling import (
    CardinalityEstimator,
    DistributedSampleReport,
    DistributedSampler,
    SampleEstimate,
    required_samples,
)

__all__ = [
    "calibrate",
    "measure_alpha",
    "measure_beta",
    "CostModel",
    "ExhaustiveReport",
    "exhaustive_plan",
    "Optimizer",
    "OptimizerReport",
    "communication_first_plan",
    "optimize_plan",
    "CandidateRelation",
    "QueryPlan",
    "candidate_relation_for",
    "projected_database",
    "CardinalityEstimator",
    "DistributedSampleReport",
    "DistributedSampler",
    "SampleEstimate",
    "required_samples",
]
