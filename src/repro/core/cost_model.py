"""The ADJ cost model: costC, costM and costE^i (Sec. III-B).

Given a hypertree T, a tentative pre-computation set C (bag indices) and
a (partial) traversal order O, the model prices:

- ``cost_c(C)``      — shuffling the rewritten query's relations with an
  HCube whose shares are re-optimized for that query (Eq. 3);
- ``cost_m(v)``      — pre-computing bag v: shuffling its member
  relations plus the join work, both estimated by sampling;
- ``cost_e(i, C, first_bags)`` — the Leapfrog steps that extend into the
  i-th traversed bag: |T_{v_{i-1}}| / (beta_i * N*) where |T_{v_{i-1}}|
  is the size of the *prefix join* over the bags traversed so far, and
  beta_i is fast (a trie lookup) when bag i is pre-computed, else the
  work-per-extension rate observed while sampling.

All cardinalities come from :class:`CardinalityEstimator`; all rate
constants from :class:`CostModelParams`.  Everything is cached because
Algorithm 2 revisits the same configurations O(n*^2) times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..data.database import Database
from ..distributed.cluster import Cluster
from ..distributed.partitioner import optimize_shares
from ..errors import OutOfMemory, PlanError
from ..ghd.decomposition import Hypertree
from ..query.query import Atom, JoinQuery
from .plan import candidate_relation_for, projected_database
from .sampling import CardinalityEstimator

__all__ = ["CostModel"]


@dataclass(frozen=True)
class _BagStats:
    """Sampled per-bag statistics from one canonical full-query run."""

    work_per_extension: float    # intersection work per extension into the bag
    tuples: float                # estimated |T| contribution at the bag levels


class CostModel:
    """Prices (C, O) configurations for one query over one database."""

    def __init__(self, query: JoinQuery, db: Database, cluster: Cluster,
                 hypertree: Hypertree,
                 estimator: CardinalityEstimator | None = None,
                 hcube_impl: str = "pull"):
        self.query = query
        self.db = db
        self.cluster = cluster
        self.hypertree = hypertree
        self.estimator = estimator or CardinalityEstimator(db)
        self.hcube_impl = hcube_impl
        self.params = cluster.params
        self._bag_size_cache: dict[int, float] = {}
        self._prefix_cache: dict[frozenset[str], float] = {}
        self._bag_stats_cache: dict[int, _BagStats] | None = None
        self._cost_c_cache: dict[frozenset[int], float] = {}
        self._bags = {b.index: b for b in hypertree.bags}

    # -- cardinalities ----------------------------------------------------------

    def bag_size(self, bag_index: int) -> float:
        """Estimated size of the bag's join (the candidate relation)."""
        if bag_index not in self._bag_size_cache:
            bag = self._bags[bag_index]
            if bag.is_single_atom:
                size = float(len(self.db[self.query.atoms[
                    bag.atom_indices[0]].relation]))
            else:
                cand = candidate_relation_for(self.query, bag)
                sub_q, sub_db = projected_database(
                    cand.subquery, self.db, cand.attributes)
                est = CardinalityEstimator(
                    sub_db, num_samples=self.estimator.num_samples,
                    seed=self.estimator.seed).estimate(sub_q)
                size = est.estimate
                self.estimator.total_work += est.work
            self._bag_size_cache[bag_index] = size
        return self._bag_size_cache[bag_index]

    def prefix_cardinality(self, attrs: frozenset[str]) -> float:
        """Estimated |T_prefix| — partial bindings over ``attrs``."""
        attrs = frozenset(attrs)
        if not attrs:
            return 1.0
        if attrs not in self._prefix_cache:
            sub_q, sub_db = projected_database(self.query, self.db, attrs)
            est = CardinalityEstimator(
                sub_db, num_samples=self.estimator.num_samples,
                seed=self.estimator.seed).estimate(sub_q)
            self._prefix_cache[attrs] = est.estimate
            self.estimator.total_work += est.work
        return self._prefix_cache[attrs]

    def _bag_stats(self) -> dict[int, _BagStats]:
        """Per-bag work rates from one canonical sampled run (see module
        docstring — sampled once, reused for every candidate order)."""
        if self._bag_stats_cache is None:
            canonical = next(self.hypertree.traversal_orders())
            order = self.hypertree.attribute_order(canonical)
            est = self.estimator.estimate(self.query, order)
            stats: dict[int, _BagStats] = {}
            seen: set[str] = set()
            for idx in canonical:
                bag = self._bags[idx]
                depths = [d for d, a in enumerate(order)
                          if a in bag.attributes and a not in seen]
                seen |= {order[d] for d in depths}
                work = sum(est.level_work[d] for d in depths)
                ext = sum(est.level_extensions[d] for d in depths)
                tup = sum(est.level_tuples[d] for d in depths)
                stats[idx] = _BagStats(
                    work_per_extension=(work / ext) if ext else 1.0,
                    tuples=tup)
            self._bag_stats_cache = stats
        return self._bag_stats_cache

    # -- the three costs ----------------------------------------------------------

    def _rewritten(self, precompute: frozenset[int]
                   ) -> tuple[JoinQuery, dict[str, int]]:
        """The Qi for a pre-computation set, plus its relation sizes."""
        atoms: list[Atom] = []
        sizes: dict[str, int] = {}
        for bag in self.hypertree.bags:
            if bag.index in precompute and not bag.is_single_atom:
                cand = candidate_relation_for(self.query, bag)
                atoms.append(Atom(cand.name, cand.attributes))
                sizes[cand.name] = max(1, int(self.bag_size(bag.index)))
            else:
                for i in bag.atom_indices:
                    atom = self.query.atoms[i]
                    atoms.append(atom)
                    sizes.setdefault(atom.relation,
                                     len(self.db[atom.relation]))
        return JoinQuery(atoms, name=f"{self.query.name}'"), sizes

    def cost_c(self, precompute: Iterable[int]) -> float:
        """Communication seconds to HCube-shuffle the rewritten query."""
        key = frozenset(i for i in precompute
                        if not self._bags[i].is_single_atom)
        if key not in self._cost_c_cache:
            rewritten, sizes = self._rewritten(key)
            try:
                shares = optimize_shares(
                    rewritten, sizes, self.cluster.num_workers,
                    memory_tuples=self.cluster.memory_tuples_per_worker)
            except (PlanError, OutOfMemory):
                # No feasible share vector: prohibitively expensive.
                self._cost_c_cache[key] = float("inf")
                return self._cost_c_cache[key]
            alpha = self.params.alpha_for(self.hcube_impl)
            self._cost_c_cache[key] = shares.tuple_copies / alpha
        return self._cost_c_cache[key]

    def cost_m(self, bag_index: int) -> float:
        """Pre-computing seconds for one bag: shuffle + parallel join."""
        bag = self._bags[bag_index]
        if bag.is_single_atom:
            return 0.0
        cand = candidate_relation_for(self.query, bag)
        input_tuples = sum(len(self.db[a.relation])
                           for a in cand.subquery.atoms)
        comm = input_tuples / self.params.alpha_for(self.hcube_impl)
        # Join work: the bag output plus its inputs must be touched at
        # least once; sampling gives the output estimate.
        out = self.bag_size(bag_index)
        work = input_tuples + out
        comp = work / (self.params.beta_work * self.cluster.num_workers)
        return comm + comp

    def cost_e(self, bag_index: int, precompute: Iterable[int],
               earlier_bags: Iterable[int]) -> float:
        """Computation seconds of the steps extending into ``bag_index``
        when the bags in ``earlier_bags`` were traversed before it."""
        earlier = list(earlier_bags)
        attrs: set[str] = set()
        for idx in earlier:
            attrs |= self._bags[idx].attributes
        bindings = self.prefix_cardinality(frozenset(attrs)) if earlier else 1.0
        pre = frozenset(precompute)
        if bag_index in pre:
            rate = self.params.beta_trie_lookup
            seconds = bindings / (rate * self.cluster.num_workers)
        else:
            stats = self._bag_stats().get(bag_index)
            work_per_ext = stats.work_per_extension if stats else 1.0
            seconds = (bindings * work_per_ext
                       / (self.params.beta_work * self.cluster.num_workers))
        return seconds

    # -- convenience ---------------------------------------------------------------

    def plan_cost(self, precompute: frozenset[int],
                  traversal: tuple[int, ...]) -> float:
        """Full plan cost: costC + sum costM + sum costE^i."""
        total = self.cost_c(precompute)
        for idx in precompute:
            total += self.cost_m(idx)
        for i, idx in enumerate(traversal):
            total += self.cost_e(idx, precompute, traversal[:i])
        return total
