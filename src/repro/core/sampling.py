"""Cardinality estimation via distributed sampling (Sec. IV).

The estimator writes |T| = |val(A)| * E[|T_{A=a}|] where ``A`` is the
first attribute of the order, ``val(A)`` is the intersection of the
A-projections of all atoms containing A, and each |T_{A=a}| is obtained
by a Leapfrog run with A fixed to a sampled value.  Lemma 2
(Chernoff-Hoeffding) bounds the error: with
``k = ceil(0.5 * p**-2 * ln(2/delta))`` samples, the estimate of the mean
deviates by more than ``p * b`` with probability at most ``delta``.

``DistributedSampler`` adds the paper's cost-reduction trick: instead of
HCube-shuffling the whole database for sampling, the A-projections are
shuffled first to compute val(A); the database is then semijoin-reduced
by the chosen sample before the (much smaller) shuffle.  Both the naive
and the reduced communication costs are reported so the benefit is
measurable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..data.database import Database
from ..data.relation import Relation
from ..errors import EstimationError
from ..query.query import Atom, JoinQuery
from ..wcoj.leapfrog import build_tries, leapfrog_join

__all__ = ["required_samples", "SampleEstimate", "CardinalityEstimator",
           "DistributedSampler", "DistributedSampleReport"]


def required_samples(error: float, confidence_delta: float) -> int:
    """Lemma 2's sample count: k = ceil(0.5 * p^-2 * ln(2/delta)).

    With k samples, Pr[|mean estimate - mu| > error * b] < delta, where b
    bounds the per-sample value.
    """
    if not 0 < error <= 1:
        raise EstimationError(f"error rate must be in (0, 1], got {error}")
    if not 0 < confidence_delta < 1:
        raise EstimationError(
            f"confidence delta must be in (0, 1), got {confidence_delta}")
    return math.ceil(0.5 * error ** -2 * math.log(2.0 / confidence_delta))


@dataclass
class SampleEstimate:
    """One cardinality estimate plus the statistics the optimizer reuses."""

    estimate: float
    num_samples: int
    val_size: int                       # |val(A)|
    sample_mean: float                  # mean |T_{A=a}|
    sample_max: int                     # b in Lemma 2
    exact: bool                         # full enumeration of val(A)?
    attribute: str
    work: int                           # Leapfrog work spent sampling
    level_tuples: tuple[float, ...] = ()     # scaled E[|T_i|] per depth
    level_work: tuple[float, ...] = ()       # scaled work per depth
    level_extensions: tuple[float, ...] = ()

    def error_bound(self, confidence_delta: float = 0.05) -> float:
        """Half-width of the Lemma-2 bound on |T| at the given confidence."""
        if self.exact or self.num_samples == 0:
            return 0.0
        p = math.sqrt(0.5 * math.log(2.0 / confidence_delta)
                      / self.num_samples)
        return p * self.sample_max * self.val_size


class CardinalityEstimator:
    """Sampling-based estimator over a (local) database.

    Estimates are cached by (atom tuple, order), because the ADJ
    optimizer asks for the same sub-queries repeatedly (Lemma 1's L
    factor is dominated by exactly these calls).
    """

    def __init__(self, db: Database, num_samples: int = 500,
                 seed: int = 0, work_budget_per_sample: int | None = None):
        if num_samples < 1:
            raise EstimationError("need at least one sample")
        self.db = db
        self.num_samples = num_samples
        self.seed = seed
        self.work_budget_per_sample = work_budget_per_sample
        self.total_work = 0
        self.calls = 0
        self._cache: dict[tuple, SampleEstimate] = {}

    # -- public API -----------------------------------------------------------

    def estimate(self, query: JoinQuery,
                 order: tuple[str, ...] | None = None,
                 num_samples: int | None = None) -> SampleEstimate:
        order = tuple(order) if order is not None else query.attributes
        k_req = num_samples if num_samples is not None else self.num_samples
        key = (query.atoms, order, k_req)
        if key in self._cache:
            return self._cache[key]
        est = self._estimate_uncached(query, order, k_req)
        self._cache[key] = est
        self.calls += 1
        self.total_work += est.work
        return est

    # -- internals ------------------------------------------------------------

    def _values_of(self, query: JoinQuery, attr: str) -> np.ndarray:
        """val(A): intersection of the A-projections of atoms containing A."""
        arrays = []
        for atom in query.atoms_with(attr):
            rel = self.db[atom.relation]
            col = atom.attributes.index(attr)
            arrays.append(np.unique(rel.data[:, col]))
        arrays.sort(key=len)
        vals = arrays[0]
        for other in arrays[1:]:
            vals = vals[np.isin(vals, other, assume_unique=True)]
        return vals

    def _estimate_uncached(self, query: JoinQuery, order: tuple[str, ...],
                           k_req: int) -> SampleEstimate:
        attr = order[0]
        n = len(order)
        if n == 1:
            vals = self._values_of(query, attr)
            return SampleEstimate(
                estimate=float(vals.shape[0]), num_samples=0,
                val_size=int(vals.shape[0]), sample_mean=1.0, sample_max=1,
                exact=True, attribute=attr, work=int(vals.shape[0]),
                level_tuples=(float(vals.shape[0]),),
                level_work=(float(vals.shape[0]),),
                level_extensions=(1.0,))
        vals = self._values_of(query, attr)
        val_size = int(vals.shape[0])
        if val_size == 0:
            return SampleEstimate(
                estimate=0.0, num_samples=0, val_size=0, sample_mean=0.0,
                sample_max=0, exact=True, attribute=attr, work=0,
                level_tuples=tuple(0.0 for _ in range(n)),
                level_work=tuple(0.0 for _ in range(n)),
                level_extensions=tuple(0.0 for _ in range(n)))
        rng = np.random.default_rng(self.seed)
        exact = k_req >= val_size
        if exact:
            chosen = vals
        else:
            chosen = rng.choice(vals, size=k_req, replace=True)
        tries = build_tries(query, self.db, order)
        counts = np.empty(chosen.shape[0], dtype=np.float64)
        level_tuples = np.zeros(n)
        level_work = np.zeros(n)
        level_ext = np.zeros(n)
        work = 0
        for i, a in enumerate(chosen):
            result = leapfrog_join(
                query, self.db, order, fixed={attr: int(a)}, tries=tries,
                budget=self.work_budget_per_sample)
            counts[i] = result.count
            stats = result.stats
            level_tuples += stats.level_tuples
            level_work += stats.level_work
            level_ext += stats.level_extensions
            work += stats.intersection_work
        k = int(chosen.shape[0])
        mean = float(counts.mean())
        scale = val_size / k
        return SampleEstimate(
            estimate=mean * val_size,
            num_samples=k,
            val_size=val_size,
            sample_mean=mean,
            sample_max=int(counts.max()),
            exact=exact,
            attribute=attr,
            work=work,
            level_tuples=tuple(float(t) * scale for t in level_tuples),
            level_work=tuple(float(w) * scale for w in level_work),
            level_extensions=tuple(float(e) * scale for e in level_ext),
        )


@dataclass
class DistributedSampleReport:
    """Cost accounting of the distributed sampling pass (Sec. IV)."""

    estimate: SampleEstimate
    naive_shuffle_tuples: int      # shuffling the full database (naive)
    reduced_shuffle_tuples: int    # after the semijoin reduction
    projection_shuffle_tuples: int  # the Pi_A(R) exchange to build val(A)
    sampling_work: int = field(default=0)

    @property
    def total_shuffle_tuples(self) -> int:
        return self.reduced_shuffle_tuples + self.projection_shuffle_tuples


class DistributedSampler:
    """The paper's semijoin-reduced distributed sampling procedure.

    1. ship the A-projections of every atom containing A (cheap);
    2. intersect them into val(A) and pick the sample S';
    3. semijoin-reduce every atom containing A by S';
    4. shuffle the *reduced* database and sample on it.

    The simulation executes the reduction for real and accounts both the
    naive and the reduced shuffle volumes.
    """

    def __init__(self, db: Database, num_samples: int = 500, seed: int = 0):
        self.db = db
        self.num_samples = num_samples
        self.seed = seed

    def sample(self, query: JoinQuery,
               order: tuple[str, ...] | None = None
               ) -> DistributedSampleReport:
        order = tuple(order) if order is not None else query.attributes
        attr = order[0]
        base = CardinalityEstimator(self.db, num_samples=self.num_samples,
                                    seed=self.seed)
        vals = base._values_of(query, attr)
        projection_tuples = 0
        for atom in query.atoms_with(attr):
            rel = self.db[atom.relation]
            col = atom.attributes.index(attr)
            projection_tuples += int(np.unique(rel.data[:, col]).shape[0])
        rng = np.random.default_rng(self.seed)
        if vals.shape[0] and self.num_samples < vals.shape[0]:
            sample_values = np.unique(
                rng.choice(vals, size=self.num_samples, replace=True))
        else:
            sample_values = vals
        # Per-atom reduced slices (unique names: two atoms may reference the
        # same stored relation and be reduced differently).
        reduced = Database()
        reduced_atoms: list[Atom] = []
        reduced_tuples = 0
        for i, atom in enumerate(query.atoms):
            rel = self.db[atom.relation]
            if attr in atom.attributes:
                col_name = rel.attributes[atom.attributes.index(attr)]
                rel = rel.select_in(col_name, sample_values)
            local = Relation(f"{atom.relation}@{i}", rel.attributes,
                             rel.data, dedup=False)
            reduced.add(local)
            reduced_atoms.append(Atom(local.name, atom.attributes))
            reduced_tuples += len(local)
        reduced_query = JoinQuery(reduced_atoms, name=query.name)
        naive_tuples = sum(
            len(self.db[a.relation]) for a in query.atoms)
        estimator = CardinalityEstimator(
            reduced, num_samples=self.num_samples, seed=self.seed)
        estimate = estimator.estimate(reduced_query, order)
        # The reduced database changes val(A) to the sample itself, so the
        # scale factor must come from the *full* val(A).
        if estimate.val_size:
            corrected = estimate.sample_mean * vals.shape[0]
        else:
            corrected = 0.0
        estimate.estimate = corrected
        estimate.val_size = int(vals.shape[0])
        return DistributedSampleReport(
            estimate=estimate,
            naive_shuffle_tuples=naive_tuples,
            reduced_shuffle_tuples=reduced_tuples,
            projection_shuffle_tuples=projection_tuples,
            sampling_work=estimate.work,
        )
