"""Measuring alpha and beta on the running process (Sec. III-B).

The paper calibrates its cost model by timing the cluster: alpha is
tuples shuffled per second, beta is partial bindings extended per second.
Our simulated cluster defaults to pinned rates (reproducible numbers);
``calibrate()`` measures the actual throughput of this process's shuffle
and intersection kernels instead, preserving the paper's methodology for
anyone who wants wall-clock-faithful model-seconds.
"""

from __future__ import annotations

import time
from dataclasses import replace

import numpy as np

from ..data.relation import Relation
from ..distributed.metrics import CostModelParams
from ..distributed.shuffle import hash_partition
from ..wcoj.leapfrog import LeapfrogStats, intersect_sorted

__all__ = ["measure_alpha", "measure_beta", "calibrate"]


def measure_alpha(num_tuples: int = 200_000, num_workers: int = 8,
                  seed: int = 0) -> float:
    """Tuples per second through the hash-partition shuffle kernel."""
    rng = np.random.default_rng(seed)
    rel = Relation("calib", ("a", "b"),
                   rng.integers(0, 1 << 30, size=(num_tuples, 2)))
    t0 = time.perf_counter()
    hash_partition(rel, ("a",), num_workers)
    elapsed = max(1e-9, time.perf_counter() - t0)
    return len(rel) / elapsed


def measure_beta(num_values: int = 100_000, rounds: int = 20,
                 seed: int = 0) -> float:
    """Intersection work units per second through the leapfrog kernel."""
    rng = np.random.default_rng(seed)
    a = np.unique(rng.integers(0, num_values * 4, size=num_values))
    b = np.unique(rng.integers(0, num_values * 4, size=num_values))
    stats = LeapfrogStats()
    t0 = time.perf_counter()
    for _ in range(rounds):
        intersect_sorted([a, b], stats)
    elapsed = max(1e-9, time.perf_counter() - t0)
    return stats.intersection_work / elapsed


def calibrate(base: CostModelParams | None = None,
              seed: int = 0) -> CostModelParams:
    """A :class:`CostModelParams` with measured beta_work / alpha_pull.

    The push/merge alphas keep their pinned *ratios* to alpha_pull (the
    ratios encode serialization overheads we do not re-measure).
    """
    base = base or CostModelParams()
    alpha_pull = measure_alpha(seed=seed)
    beta = measure_beta(seed=seed)
    scale = alpha_pull / base.alpha_pull
    return replace(
        base,
        alpha_pull=alpha_pull,
        alpha_push=base.alpha_push * scale,
        alpha_merge=base.alpha_merge * scale,
        beta_work=beta,
    )
