"""Algorithm 2: the ADJ plan optimizer.

The optimizer fixes the traversal order in *reverse* (last bag first,
because the deepest Leapfrog levels dominate computation — Fig. 6) and,
at every step, compares pre-computing the considered bag against leaving
it as raw relations:

    cost'  = costC(C)            + costE^i(C, O')           (keep raw)
    cost'' = costM(v) + costC(C+v) + costE^i(C+v, O')       (pre-compute)

Only suffix positions are priced during the search (the costE of earlier
bags is identical across candidates at step i, per the paper's remark
after Alg. 2).  The loop runs O(n*^2) cost evaluations (Lemma 1), which
the returned :class:`OptimizerReport` counts so tests can check the bound.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..data.database import Database
from ..distributed.cluster import Cluster
from ..errors import PlanError
from ..ghd.decomposition import Hypertree, optimal_hypertree
from ..query.query import JoinQuery
from .cost_model import CostModel
from .plan import QueryPlan
from .sampling import CardinalityEstimator

__all__ = ["OptimizerReport", "Optimizer", "optimize_plan",
           "communication_first_plan"]


@dataclass
class OptimizerReport:
    """The chosen plan plus how much work choosing it took."""

    plan: QueryPlan
    explored_configurations: int = 0
    sampling_work: int = 0
    wall_seconds: float = 0.0
    cost_trace: list[tuple[int, bool, float]] = field(default_factory=list)


class Optimizer:
    """Algorithm 2 over a fixed query/database/cluster triple."""

    def __init__(self, query: JoinQuery, db: Database, cluster: Cluster,
                 hypertree: Hypertree | None = None,
                 estimator: CardinalityEstimator | None = None,
                 hcube_impl: str = "pull"):
        self.query = query
        self.db = db
        self.cluster = cluster
        self.hypertree = hypertree or optimal_hypertree(query)
        self.estimator = estimator or CardinalityEstimator(db)
        self.cost_model = CostModel(query, db, cluster, self.hypertree,
                                    self.estimator, hcube_impl=hcube_impl)

    def _removal_keeps_connected(self, remaining: set[int], v: int) -> bool:
        """Line 6 of Alg. 2: V \\ {v} must stay connected in T."""
        rest = remaining - {v}
        if len(rest) <= 1:
            return True
        tree = self.hypertree
        start = next(iter(rest))
        seen = {start}
        frontier = [start]
        while frontier:
            u = frontier.pop()
            for w in tree.neighbors(u) & rest:
                if w not in seen:
                    seen.add(w)
                    frontier.append(w)
        return seen == rest

    def run(self) -> OptimizerReport:
        t0 = time.perf_counter()
        tree = self.hypertree
        model = self.cost_model
        bags = {b.index: b for b in tree.bags}
        remaining: set[int] = set(bags)
        chosen_pre: frozenset[int] = frozenset()
        reverse_order: list[int] = []
        explored = 0
        trace: list[tuple[int, bool, float]] = []

        while remaining:
            best: tuple[float, int, bool] | None = None
            for v in sorted(remaining):
                if not self._removal_keeps_connected(remaining, v):
                    continue
                earlier = remaining - {v}
                # cost' — leave v's relations raw.
                cost_keep = (model.cost_c(chosen_pre)
                             + model.cost_e(v, chosen_pre, earlier))
                explored += 1
                if best is None or cost_keep < best[0]:
                    best = (cost_keep, v, False)
                # cost'' — pre-compute v (multi-atom bags only).
                if not bags[v].is_single_atom and v not in chosen_pre:
                    with_v = chosen_pre | {v}
                    cost_pre = (model.cost_m(v)
                                + model.cost_c(with_v)
                                + model.cost_e(v, with_v, earlier))
                    explored += 1
                    if cost_pre < best[0]:
                        best = (cost_pre, v, True)
            if best is None:
                raise PlanError(
                    "no bag can be removed while keeping the hypertree "
                    "connected — malformed hypertree?")
            cost, v_star, precompute = best
            trace.append((v_star, precompute, cost))
            if precompute:
                chosen_pre = chosen_pre | {v_star}
            reverse_order.append(v_star)
            remaining.discard(v_star)

        traversal = tuple(reversed(reverse_order))
        attribute_order = tree.attribute_order(traversal)
        plan = QueryPlan(
            query=self.query,
            hypertree=tree,
            traversal=traversal,
            precompute=chosen_pre,
            attribute_order=attribute_order,
            estimated_cost=model.plan_cost(chosen_pre, traversal),
        )
        return OptimizerReport(
            plan=plan,
            explored_configurations=explored,
            sampling_work=self.estimator.total_work,
            wall_seconds=time.perf_counter() - t0,
            cost_trace=trace,
        )


def optimize_plan(query: JoinQuery, db: Database, cluster: Cluster,
                  **kwargs) -> OptimizerReport:
    """One-shot convenience wrapper around :class:`Optimizer`."""
    return Optimizer(query, db, cluster, **kwargs).run()


def communication_first_plan(query: JoinQuery, db: Database,
                             cluster: Cluster,
                             hypertree: Hypertree | None = None
                             ) -> QueryPlan:
    """The HCubeJ strategy: no pre-computation, default traversal order.

    Used as the paper's Communication-First baseline in Fig. 1(b) and
    Tables II-IV.
    """
    tree = hypertree or optimal_hypertree(query)
    traversal = next(tree.traversal_orders())
    return QueryPlan(
        query=query,
        hypertree=tree,
        traversal=traversal,
        precompute=frozenset(),
        attribute_order=tree.attribute_order(traversal),
    )
