"""Exhaustive plan search — the oracle Algorithm 2 approximates.

Sec. III-B motivates the greedy: the reduced space still holds
O(2^{n*} x n*!) plans and "calculating the cost for each plan could be
costly as well".  This module searches that whole space with the same
cost model, so the ablation bench can measure (a) how many more
configurations exhaustive search prices and (b) how close Algorithm 2's
plan lands to the optimum.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass

from ..data.database import Database
from ..distributed.cluster import Cluster
from ..ghd.decomposition import Hypertree, optimal_hypertree
from ..query.query import JoinQuery
from .cost_model import CostModel
from .plan import QueryPlan
from .sampling import CardinalityEstimator

__all__ = ["ExhaustiveReport", "exhaustive_plan"]


@dataclass
class ExhaustiveReport:
    """The optimum over the full reduced plan space."""

    plan: QueryPlan
    explored_configurations: int
    wall_seconds: float


def _powerset(items: list[int]):
    for r in range(len(items) + 1):
        yield from itertools.combinations(items, r)


def exhaustive_plan(query: JoinQuery, db: Database, cluster: Cluster,
                    hypertree: Hypertree | None = None,
                    estimator: CardinalityEstimator | None = None,
                    hcube_impl: str = "pull") -> ExhaustiveReport:
    """Price every (pre-computation set, traversal order) pair."""
    t0 = time.perf_counter()
    tree = hypertree or optimal_hypertree(query)
    estimator = estimator or CardinalityEstimator(db)
    model = CostModel(query, db, cluster, tree, estimator,
                      hcube_impl=hcube_impl)
    multi = [b.index for b in tree.bags if not b.is_single_atom]
    best: tuple[float, frozenset[int], tuple[int, ...]] | None = None
    explored = 0
    for traversal in tree.traversal_orders():
        for subset in _powerset(multi):
            pre = frozenset(subset)
            cost = model.plan_cost(pre, traversal)
            explored += 1
            key = (cost, tuple(sorted(pre)), traversal)
            if best is None or key < (best[0], tuple(sorted(best[1])),
                                      best[2]):
                best = (cost, pre, traversal)
    cost, pre, traversal = best
    plan = QueryPlan(
        query=query,
        hypertree=tree,
        traversal=traversal,
        precompute=pre,
        attribute_order=tree.attribute_order(traversal),
        estimated_cost=cost,
    )
    return ExhaustiveReport(
        plan=plan,
        explored_configurations=explored,
        wall_seconds=time.perf_counter() - t0,
    )
