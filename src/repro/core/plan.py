"""Query plans: (Qi, ord) pairs over a hypertree (Sec. III).

A plan picks, for each multi-atom bag of the hypertree, whether its join
is pre-computed into a *candidate relation*, plus a bag traversal order
whose induced attribute order drives Leapfrog.  ``rewritten_query``
produces the paper's Qi: pre-computed bags become single atoms, the other
bags contribute their original atoms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..data.database import Database
from ..data.relation import Relation
from ..errors import PlanError
from ..ghd.decomposition import Bag, Hypertree
from ..query.query import Atom, JoinQuery

__all__ = ["CandidateRelation", "QueryPlan", "candidate_relation_for",
           "projected_database"]


@dataclass(frozen=True)
class CandidateRelation:
    """A bag join that may be pre-computed (Fig. 5's R23, R45)."""

    bag_index: int
    name: str
    subquery: JoinQuery
    attributes: tuple[str, ...]

    @property
    def num_atoms(self) -> int:
        return self.subquery.num_atoms


def candidate_relation_for(query: JoinQuery, bag: Bag) -> CandidateRelation:
    """Build the candidate relation descriptor of a bag.

    The candidate's column order follows the query's base attribute
    order restricted to the bag, and its name concatenates the member
    relations (R2, R3 -> ``R2_R3``), mirroring the paper's R23.
    """
    atoms = [query.atoms[i] for i in bag.atom_indices]
    name = "_".join(a.relation for a in atoms)
    attrs = tuple(a for a in query.attributes if a in bag.attributes)
    sub = JoinQuery(atoms, name=f"bag{bag.index}")
    return CandidateRelation(bag.index, name, sub, attrs)


@dataclass(frozen=True)
class QueryPlan:
    """The optimizer's output: which bags to pre-compute and in what order
    to traverse them."""

    query: JoinQuery
    hypertree: Hypertree
    traversal: tuple[int, ...]
    precompute: frozenset[int]
    attribute_order: tuple[str, ...]
    estimated_cost: float = float("inf")
    candidates: tuple[CandidateRelation, ...] = field(default=())

    def __post_init__(self):
        if not self.hypertree.is_traversal_order(self.traversal):
            raise PlanError(f"{self.traversal} is not a valid traversal "
                            "order of the hypertree")
        bags = {b.index: b for b in self.hypertree.bags}
        for idx in self.precompute:
            if idx not in bags:
                raise PlanError(f"unknown bag index {idx} in precompute set")
            if bags[idx].is_single_atom:
                raise PlanError(
                    f"bag {idx} is a single atom; pre-computing it is a "
                    "no-op and must not be requested")
        if set(self.attribute_order) != set(self.query.attributes):
            raise PlanError("attribute order does not cover the query")
        if not self.candidates:
            object.__setattr__(self, "candidates", tuple(
                candidate_relation_for(self.query, bags[idx])
                for idx in sorted(self.precompute)))

    @property
    def precomputes_anything(self) -> bool:
        return bool(self.precompute)

    def rewritten_query(self) -> JoinQuery:
        """The paper's Qi: candidates replace their bags' atoms."""
        by_bag = {c.bag_index: c for c in self.candidates}
        atoms: list[Atom] = []
        for bag in sorted(self.hypertree.bags, key=lambda b: b.index):
            if bag.index in by_bag:
                cand = by_bag[bag.index]
                atoms.append(Atom(cand.name, cand.attributes))
            else:
                atoms.extend(self.query.atoms[i] for i in bag.atom_indices)
        return JoinQuery(atoms, name=f"{self.query.name}'")

    def describe(self) -> str:
        pre = ", ".join(c.name for c in self.candidates) or "(none)"
        return (f"plan[{self.query.name}]: traversal={self.traversal}, "
                f"precompute={pre}, ord={'<'.join(self.attribute_order)}")


def projected_database(query: JoinQuery, db: Database,
                       attrs: Sequence[str]) -> tuple[JoinQuery, Database]:
    """The prefix query over ``attrs`` plus matching projected relations.

    Used to estimate Leapfrog partial-binding counts |T_prefix|: a prefix
    binding survives iff each atom's projection contains its projection,
    so |T_prefix| is exactly the size of this projected join.
    """
    keep = [a for a in query.attributes if a in set(attrs)]
    keep_set = set(keep)
    out_atoms: list[Atom] = []
    out = Database()
    for i, atom in enumerate(query.atoms):
        sub = tuple(a for a in atom.attributes if a in keep_set)
        if not sub:
            continue
        rel = db[atom.relation]
        cols = [atom.attributes.index(a) for a in sub]
        name = f"{atom.relation}@{i}|{''.join(sub)}"
        out.add(Relation(name, sub, rel.data[:, cols], dedup=True))
        out_atoms.append(Atom(name, sub))
    if not out_atoms:
        raise PlanError(f"no atom overlaps attributes {attrs}")
    return JoinQuery(out_atoms, name=f"{query.name}|{''.join(keep)}"), out
