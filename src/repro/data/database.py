"""Database: a catalog of named relations plus memory accounting."""

from __future__ import annotations

import hashlib
from typing import Iterable, Iterator, Mapping

from ..errors import SchemaError
from .relation import Relation

__all__ = ["Database"]


class Database:
    """A collection of relations, addressed by name.

    The paper's database ``D`` (Sec. II).  Construction of per-query
    databases (one relation per query atom, each a copy of a graph) lives
    in :mod:`repro.workloads`.
    """

    def __init__(self, relations: Iterable[Relation] = ()):
        self._relations: dict[str, Relation] = {}
        self._fingerprint: str | None = None
        for rel in relations:
            self.add(rel)

    # -- container protocol -------------------------------------------------------

    def add(self, relation: Relation) -> None:
        if relation.name in self._relations:
            raise SchemaError(f"duplicate relation name {relation.name!r}")
        self._relations[relation.name] = relation
        self._fingerprint = None

    def replace(self, relation: Relation) -> None:
        """Add or overwrite a relation (used when materializing bags)."""
        self._relations[relation.name] = relation
        self._fingerprint = None

    def remove(self, name: str) -> None:
        if name not in self._relations:
            raise SchemaError(f"no relation named {name!r}")
        del self._relations[name]
        self._fingerprint = None

    def __getitem__(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(f"no relation named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[Relation]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self._relations)

    def __repr__(self) -> str:
        body = ", ".join(f"{r.name}:{len(r)}" for r in self)
        return f"Database({body})"

    # -- stats ---------------------------------------------------------------------

    @property
    def total_tuples(self) -> int:
        return sum(len(r) for r in self)

    @property
    def total_values(self) -> int:
        """Total integer values stored (the paper's '#integers' accounting)."""
        return sum(r.num_values for r in self)

    @property
    def nbytes(self) -> int:
        return sum(r.nbytes for r in self)

    def fingerprint(self) -> str:
        """Content hash of the whole catalog (hex sha256).

        Two databases holding equal relations (same names, attributes and
        tuple data) fingerprint identically regardless of insertion order.
        The digest is memoized — :class:`~repro.data.relation.Relation`
        arrays are immutable, so only catalog mutations (:meth:`add`,
        :meth:`replace`, :meth:`remove`) can change the content, and each
        of them drops the cache.  This is the result-cache key material
        for the query service: cached counts stay valid exactly as long
        as the fingerprint does.
        """
        if self._fingerprint is None:
            digest = hashlib.sha256()
            for name in sorted(self._relations):
                rel = self._relations[name]
                digest.update(name.encode())
                digest.update("\x1f".join(rel.attributes).encode())
                digest.update(str(rel.data.shape).encode())
                digest.update(str(rel.data.dtype).encode())
                # Relation data is C-contiguous and write-protected at
                # construction, so hashing the raw buffer is stable.
                digest.update(rel.data.data)
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    def subset(self, names: Iterable[str]) -> "Database":
        """A new database holding only the named relations."""
        return Database(self[n] for n in names)

    def renamed_copy(self, mapping: Mapping[str, str]) -> "Database":
        """Copy with relations renamed (relation names, not attributes)."""
        out = Database()
        for rel in self:
            new_name = mapping.get(rel.name, rel.name)
            out.add(Relation(new_name, rel.attributes, rel.data, dedup=False))
        return out
