"""Synthetic analogues of the paper's six benchmark graphs (Table I).

The paper evaluates on SNAP/LAW graphs: web-BerkStan (WB), as-Skitter
(AS), wiki-Talk (WT), com-LiveJournal (LJ), enwiki-2013 (EN) and
com-Orkut (OK), between 13.2M and 234.4M edges.  Those downloads are not
available offline, and full-size graphs would not fit a single-process
reproduction anyway, so we generate *seeded scaled analogues*:

- the **relative size ordering** WB < AS < WT < LJ < EN < OK is preserved
  (each analogue is ``scale`` x the paper's edge count, default 1e-4);
- degrees follow a **heavy-tailed (Chung-Lu power-law) distribution**, the
  property that makes the paper's cyclic queries computation-bound: hub
  nodes create huge intermediate-binding counts for Leapfrog;
- graphs are **symmetrized** like the paper's undirected SNAP datasets.

DESIGN.md records this substitution; EXPERIMENTS.md records the scale
used for every measured number.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from .relation import Relation

__all__ = [
    "DatasetSpec",
    "DATASETS",
    "dataset_names",
    "default_scale",
    "generate_power_law_edges",
    "generate_erdos_renyi_edges",
    "load_dataset",
    "load_graph_relation",
]

#: Environment variable overriding the default edge-count scale factor.
SCALE_ENV_VAR = "REPRO_SCALE"

_DEFAULT_SCALE = 1e-4
_MIN_EDGES = 200


@dataclass(frozen=True)
class DatasetSpec:
    """Registry entry mirroring one row of the paper's Table I."""

    key: str                 # short name used throughout the paper
    description: str
    paper_edges: int         # |R| in the paper (number of tuples)
    paper_size_mb: float     # on-disk size reported in Table I
    exponent: float          # degree power-law exponent of the analogue
    avg_degree: float        # edges / nodes ratio of the analogue
    seed: int                # base RNG seed so analogues are reproducible

    def scaled_edges(self, scale: float) -> int:
        return max(_MIN_EDGES, int(round(self.paper_edges * scale)))


DATASETS: dict[str, DatasetSpec] = {
    spec.key: spec
    for spec in (
        # Exponents sit in the 1.6-1.9 range: at these scaled-down sizes
        # they empirically give max-degree / mean-degree ratios around 10,
        # matching the hub-dominated shape of the SNAP originals (steeper
        # exponents flatten out once duplicate edges are removed).
        DatasetSpec("wb", "web-BerkStan analogue (web graph)",
                    13_200_000, 101.5, exponent=1.70, avg_degree=4.0, seed=11),
        DatasetSpec("as", "as-Skitter analogue (internet topology)",
                    22_100_000, 169.3, exponent=1.80, avg_degree=4.5, seed=12),
        DatasetSpec("wt", "wiki-Talk analogue (communication network)",
                    50_900_000, 388.2, exponent=1.65, avg_degree=6.0, seed=13),
        DatasetSpec("lj", "com-LiveJournal analogue (social network)",
                    69_400_000, 529.2, exponent=1.85, avg_degree=5.0, seed=14),
        DatasetSpec("en", "enwiki-2013 analogue (hyperlink graph)",
                    183_900_000, 1370.0, exponent=1.75, avg_degree=6.0, seed=15),
        DatasetSpec("ok", "com-Orkut analogue (social network)",
                    234_400_000, 1788.1, exponent=1.90, avg_degree=8.0, seed=16),
    )
}


def dataset_names() -> tuple[str, ...]:
    """Dataset keys in the paper's Table I order."""
    return tuple(DATASETS)


def default_scale() -> float:
    """Scale factor, overridable through the REPRO_SCALE env var."""
    raw = os.environ.get(SCALE_ENV_VAR)
    if raw is None:
        return _DEFAULT_SCALE
    value = float(raw)
    if value <= 0:
        raise ConfigError(f"{SCALE_ENV_VAR} must be positive, got {raw!r}")
    return value


def _dedup_edges(edges: np.ndarray) -> np.ndarray:
    """Drop self-loops and duplicate (src, dst) pairs."""
    edges = edges[edges[:, 0] != edges[:, 1]]
    if edges.shape[0] == 0:
        return edges
    return np.unique(edges, axis=0)


def generate_power_law_edges(num_edges: int, num_nodes: int | None = None,
                             exponent: float = 1.8, seed: int = 0,
                             symmetric: bool = True) -> np.ndarray:
    """Chung-Lu style power-law graph as an (m, 2) int64 edge array.

    Endpoints are sampled proportionally to weights ``w_i = (i+1)^(-1/(g-1))``
    so node 0 is the biggest hub.  Sampling repeats until ``num_edges``
    distinct edges exist (or the graph saturates).
    """
    if num_edges <= 0:
        return np.empty((0, 2), dtype=np.int64)
    if num_nodes is None:
        num_nodes = max(8, num_edges // 4)
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, num_nodes + 1, dtype=np.float64)
    weights = ranks ** (-1.0 / (exponent - 1.0))
    probs = weights / weights.sum()

    target = num_edges
    collected = np.empty((0, 2), dtype=np.int64)
    max_possible = num_nodes * (num_nodes - 1)
    for _ in range(64):
        need = target - collected.shape[0]
        if need <= 0:
            break
        batch = max(need * 2, 256)
        src = rng.choice(num_nodes, size=batch, p=probs)
        dst = rng.choice(num_nodes, size=batch, p=probs)
        fresh = np.stack([src, dst], axis=1).astype(np.int64)
        if symmetric:
            fresh = np.vstack([fresh, fresh[:, ::-1]])
        collected = _dedup_edges(np.vstack([collected, fresh]))
        if collected.shape[0] >= max_possible:
            break
    return collected[:target] if collected.shape[0] > target else collected


def generate_erdos_renyi_edges(num_edges: int, num_nodes: int | None = None,
                               seed: int = 0,
                               symmetric: bool = True) -> np.ndarray:
    """Uniform random graph as an (m, 2) int64 edge array."""
    if num_edges <= 0:
        return np.empty((0, 2), dtype=np.int64)
    if num_nodes is None:
        num_nodes = max(8, num_edges // 4)
    rng = np.random.default_rng(seed)
    collected = np.empty((0, 2), dtype=np.int64)
    max_possible = num_nodes * (num_nodes - 1)
    for _ in range(64):
        need = num_edges - collected.shape[0]
        if need <= 0:
            break
        batch = max(need * 2, 256)
        fresh = rng.integers(0, num_nodes, size=(batch, 2), dtype=np.int64)
        if symmetric:
            fresh = np.vstack([fresh, fresh[:, ::-1]])
        collected = _dedup_edges(np.vstack([collected, fresh]))
        if collected.shape[0] >= max_possible:
            break
    return collected[:num_edges] if collected.shape[0] > num_edges else collected


def load_dataset(name: str, scale: float | None = None,
                 seed: int | None = None) -> np.ndarray:
    """Edge array of the named dataset analogue at the given scale."""
    key = name.lower().rstrip("_")
    if key not in DATASETS:
        raise KeyError(
            f"unknown dataset {name!r}; choose from {dataset_names()}")
    spec = DATASETS[key]
    if scale is None:
        scale = default_scale()
    edges = spec.scaled_edges(scale)
    nodes = max(8, int(round(edges / spec.avg_degree)))
    return generate_power_law_edges(
        edges, num_nodes=nodes, exponent=spec.exponent,
        seed=spec.seed if seed is None else seed, symmetric=True)


def load_graph_relation(name: str, scale: float | None = None,
                        seed: int | None = None,
                        attributes: tuple[str, str] = ("src", "dst")
                        ) -> Relation:
    """The named dataset as a binary :class:`Relation`."""
    return Relation.from_edges(name.lower().rstrip("_"),
                               load_dataset(name, scale=scale, seed=seed),
                               attributes=attributes)
