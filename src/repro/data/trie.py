"""Sorted-array tries: the index structure behind Leapfrog triejoin.

A trie over a relation with column order ``(A1, ..., Ak)`` is the
lexicographically sorted, deduplicated tuple array.  A *node* at depth
``d`` is a contiguous row range ``[lo, hi)`` sharing the first ``d``
column values; its children are the runs of distinct values in column
``d`` inside that range.  All navigation is binary search on column
slices, so the trie costs nothing beyond one sort at build time —
mirroring the array-based tries of Leapfrog implementations (and the
"three arrays" block-trie representation of the paper's Merge HCube).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import SchemaError
from .relation import Relation, lexsorted_rows

__all__ = ["Trie", "TrieIterator"]


class Trie:
    """A read-only trie index over a relation for a fixed column order."""

    __slots__ = ("name", "attributes", "data", "_columns")

    def __init__(self, relation: Relation, order: Sequence[str] | None = None):
        order = tuple(order) if order is not None else relation.attributes
        if set(order) != set(relation.attributes):
            raise SchemaError(
                f"trie order {order} is not a permutation of "
                f"{relation.attributes}"
            )
        self.name = relation.name
        self.attributes = order
        reordered = relation.reorder(order).data
        data = lexsorted_rows(reordered)
        if data.shape[0] > 1:
            keep = np.empty(data.shape[0], dtype=bool)
            keep[0] = True
            np.any(data[1:] != data[:-1], axis=1, out=keep[1:])
            data = data[keep]
        self.data = np.ascontiguousarray(data)
        self.data.setflags(write=False)
        # Pre-sliced contiguous columns: searchsorted on a contiguous 1-d
        # array is much faster than on a strided column view.
        self._columns = tuple(
            np.ascontiguousarray(self.data[:, j])
            for j in range(self.data.shape[1])
        )

    # -- basic protocol ---------------------------------------------------------

    @property
    def arity(self) -> int:
        return len(self.attributes)

    def __len__(self) -> int:
        return int(self.data.shape[0])

    def __repr__(self) -> str:
        return (f"Trie({self.name}[{', '.join(self.attributes)}], "
                f"{len(self)} tuples)")

    @property
    def root(self) -> tuple[int, int]:
        """The row range of the root node (whole relation)."""
        return (0, int(self.data.shape[0]))

    @property
    def num_values(self) -> int:
        return int(self.data.size)

    # -- navigation -------------------------------------------------------------

    def candidates(self, depth: int, lo: int, hi: int) -> np.ndarray:
        """Sorted distinct values of column ``depth`` within ``[lo, hi)``."""
        col = self._columns[depth][lo:hi]
        if col.shape[0] == 0:
            return col
        # The slice is sorted because rows are lexicographically sorted and
        # all rows in [lo, hi) agree on columns < depth.
        keep = np.empty(col.shape[0], dtype=bool)
        keep[0] = True
        np.not_equal(col[1:], col[:-1], out=keep[1:])
        return col[keep]

    def children(self, depth: int, lo: int, hi: int
                 ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Distinct values plus their child sub-ranges.

        Returns ``(values, starts, ends)`` where child ``i`` spans rows
        ``[starts[i], ends[i])``.
        """
        col = self._columns[depth][lo:hi]
        if col.shape[0] == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy(), empty.copy()
        change = np.empty(col.shape[0], dtype=bool)
        change[0] = True
        np.not_equal(col[1:], col[:-1], out=change[1:])
        starts = np.flatnonzero(change).astype(np.int64) + lo
        values = self._columns[depth][starts]
        ends = np.empty_like(starts)
        ends[:-1] = starts[1:]
        ends[-1] = hi
        return values, starts, ends

    def child_range(self, depth: int, lo: int, hi: int, value: int
                    ) -> tuple[int, int]:
        """Row range of the child with ``value`` at ``depth`` (may be empty)."""
        col = self._columns[depth]
        left = lo + int(np.searchsorted(col[lo:hi], value, side="left"))
        right = lo + int(np.searchsorted(col[lo:hi], value, side="right"))
        return (left, right)

    def count_distinct(self, depth: int, lo: int, hi: int) -> int:
        return int(self.candidates(depth, lo, hi).shape[0])

    def prefix_count(self, depth: int) -> int:
        """Number of distinct prefixes of length ``depth`` in the trie."""
        if depth == 0:
            return 1 if len(self) else 0
        if depth >= self.arity:
            return len(self)
        sub = self.data[:, :depth]
        if sub.shape[0] <= 1:
            return int(sub.shape[0])
        change = np.any(sub[1:] != sub[:-1], axis=1)
        return int(change.sum()) + 1

    def iterator(self) -> "TrieIterator":
        return TrieIterator(self)

    def to_relation(self, name: str | None = None) -> Relation:
        return Relation(name or self.name, self.attributes, self.data,
                        dedup=False)

    # -- merging (HCube "Merge" implementation) ----------------------------------

    @classmethod
    def merge(cls, tries: Sequence["Trie"], name: str | None = None) -> "Trie":
        """Union of several tries sharing a schema, as a new trie.

        Used by the Merge HCube variant: a server's local trie is the merge
        of the pre-built block tries it pulled.  The cost *model* charges
        this as a cheap merge (Sec. V); here we simply re-sort, which is
        semantically identical.
        """
        if not tries:
            raise SchemaError("cannot merge zero tries")
        first = tries[0]
        for t in tries[1:]:
            if t.attributes != first.attributes:
                raise SchemaError(
                    f"cannot merge tries with schemas {t.attributes} and "
                    f"{first.attributes}"
                )
        data = np.vstack([t.data for t in tries])
        rel = Relation(name or first.name, first.attributes, data, dedup=True)
        return cls(rel)


class TrieIterator:
    """Linear-iterator interface over a :class:`Trie` (LFTJ-style).

    Implements the classic Leapfrog Triejoin iterator contract:
    ``open`` / ``up`` move vertically, ``next`` / ``seek`` move through the
    sorted distinct values at the current depth, ``key`` reads the current
    value and ``at_end`` reports exhaustion at the current depth.
    """

    __slots__ = ("trie", "_stack", "_pos", "_end", "at_end")

    def __init__(self, trie: Trie):
        self.trie = trie
        # Stack of (lo, hi) ranges; the top is the current node's range.
        self._stack: list[tuple[int, int]] = [trie.root]
        self._pos = 0   # start row of the current value's run
        self._end = 0   # end row of the current value's run
        self.at_end = True

    @property
    def depth(self) -> int:
        """Current depth; 0 means positioned at the root (no open column)."""
        return len(self._stack) - 1

    def key(self) -> int:
        """Value at the current position (undefined when ``at_end``)."""
        return int(self.trie._columns[self.depth - 1][self._pos])

    def open(self) -> None:
        """Descend to the first value of the next column."""
        lo, hi = (self._pos, self._end) if self.depth else self._stack[-1]
        self._stack.append((lo, hi))
        d = self.depth - 1
        if lo >= hi:
            self.at_end = True
            self._pos = self._end = lo
            return
        self._pos = lo
        col = self.trie._columns[d]
        self._end = lo + int(
            np.searchsorted(col[lo:hi], col[lo], side="right"))
        self.at_end = False

    def up(self) -> None:
        """Return to the parent depth, restoring its position there.

        The range pushed by ``open`` is exactly the parent's current value
        run, so popping it restores the parent position.  After returning
        to depth 0 the iterator has no current value (``key`` is undefined).
        """
        if self.depth == 0:
            raise IndexError("cannot go above the trie root")
        popped = self._stack.pop()
        if self.depth == 0:
            self._pos, self._end = self._stack[-1]
            self.at_end = False
            return
        self._pos, self._end = popped
        self.at_end = False

    def next(self) -> None:
        """Advance to the next distinct value at the current depth."""
        node_lo, node_hi = self._stack[-1]
        if self._end >= node_hi:
            self.at_end = True
            return
        d = self.depth - 1
        col = self.trie._columns[d]
        self._pos = self._end
        self._end = self._pos + int(np.searchsorted(
            col[self._pos:node_hi], col[self._pos], side="right"))

    def seek(self, value: int) -> None:
        """Position at the least value >= ``value`` at the current depth."""
        node_lo, node_hi = self._stack[-1]
        d = self.depth - 1
        col = self.trie._columns[d]
        lo = self._pos + int(np.searchsorted(
            col[self._pos:node_hi], value, side="left"))
        if lo >= node_hi:
            self.at_end = True
            self._pos = self._end = node_hi
            return
        self._pos = lo
        self._end = lo + int(np.searchsorted(
            col[lo:node_hi], col[lo], side="right"))
        self.at_end = False

    def child_span(self) -> tuple[int, int]:
        """Row range of the subtree under the current value."""
        return (self._pos, self._end)
