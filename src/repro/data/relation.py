"""Relations: named sets of fixed-arity integer tuples backed by numpy.

A :class:`Relation` is the unit of data everywhere in the library: the
graph datasets are binary relations, HCube shuffles relations between
servers, pre-computed bags are relations, and Leapfrog consumes trie
indexes built from relations.

Values are ``int64``.  The tuple set is deduplicated on construction (the
paper works with set semantics — natural joins of edge relations).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from ..errors import SchemaError

__all__ = ["Relation", "row_group_ids", "lexsorted_rows"]


def _as_data(data, arity: int) -> np.ndarray:
    """Coerce ``data`` to an (n, arity) contiguous int64 array."""
    arr = np.asarray(data, dtype=np.int64)
    if arr.size == 0:
        return np.empty((0, arity), dtype=np.int64)
    if arr.ndim == 1:
        if arity == 1:
            arr = arr.reshape(-1, 1)
        else:
            raise SchemaError(
                f"1-d data given for relation of arity {arity}; expected "
                f"shape (n, {arity})"
            )
    if arr.ndim != 2 or arr.shape[1] != arity:
        raise SchemaError(
            f"data of shape {arr.shape} does not match arity {arity}"
        )
    return np.ascontiguousarray(arr)


def lexsorted_rows(arr: np.ndarray) -> np.ndarray:
    """Return ``arr`` with rows sorted lexicographically (first column major)."""
    if arr.shape[0] <= 1:
        return arr
    # np.lexsort sorts by the *last* key first, so feed columns reversed.
    order = np.lexsort(tuple(arr[:, j] for j in range(arr.shape[1] - 1, -1, -1)))
    return arr[order]


def _dedup_sorted(arr: np.ndarray) -> np.ndarray:
    """Drop duplicate rows from a lexicographically sorted array."""
    if arr.shape[0] <= 1:
        return arr
    keep = np.empty(arr.shape[0], dtype=bool)
    keep[0] = True
    np.any(arr[1:] != arr[:-1], axis=1, out=keep[1:])
    return arr[keep]


def row_group_ids(*arrays: np.ndarray) -> list[np.ndarray]:
    """Assign a shared integer id to equal rows across several arrays.

    All arrays must have the same number of columns.  Rows that compare
    equal (within or across arrays) receive the same id.  This is the
    equality backbone for hash-join-style matching without Python dicts.
    """
    non_empty = [a for a in arrays if a.shape[0]]
    if not non_empty:
        return [np.empty(0, dtype=np.int64) for _ in arrays]
    stacked = np.vstack(non_empty)
    _, inverse = np.unique(stacked, axis=0, return_inverse=True)
    inverse = inverse.astype(np.int64, copy=False)
    out: list[np.ndarray] = []
    offset = 0
    for a in arrays:
        n = a.shape[0]
        out.append(inverse[offset:offset + n])
        offset += n
    return out


class Relation:
    """An immutable named relation over integer attributes.

    Parameters
    ----------
    name:
        Relation name (e.g. ``"R1"``).
    attributes:
        Attribute names in column order; must be distinct.
    data:
        Anything coercible to an ``(n, len(attributes))`` int64 array.
    dedup:
        Deduplicate rows (set semantics).  Callers that already hold a
        deduplicated array may pass ``False`` to skip the sort.
    """

    __slots__ = ("name", "attributes", "data", "_distinct")

    def __init__(self, name: str, attributes: Sequence[str], data=(),
                 dedup: bool = True):
        attributes = tuple(attributes)
        if len(set(attributes)) != len(attributes):
            raise SchemaError(f"duplicate attributes in schema {attributes}")
        if not attributes:
            raise SchemaError("a relation needs at least one attribute")
        self.name = name
        self.attributes = attributes
        arr = _as_data(data, len(attributes))
        if dedup and arr.shape[0] > 1:
            arr = _dedup_sorted(lexsorted_rows(arr))
        self.data = arr
        self.data.setflags(write=False)
        #: Memoized per-column distinct counts (column index -> count);
        #: shared across rename (same data) and remapped by reorder/project.
        self._distinct: dict[int, int] = {}

    # -- construction helpers -------------------------------------------------

    @classmethod
    def from_tuples(cls, name: str, attributes: Sequence[str],
                    tuples: Iterable[Sequence[int]]) -> "Relation":
        """Build a relation from an iterable of python tuples."""
        rows = [tuple(t) for t in tuples]
        return cls(name, attributes, np.asarray(rows, dtype=np.int64)
                   if rows else (), dedup=True)

    @classmethod
    def from_edges(cls, name: str, edges: np.ndarray,
                   attributes: Sequence[str] = ("src", "dst")) -> "Relation":
        """Build a binary relation from an (m, 2) edge array."""
        if len(tuple(attributes)) != 2:
            raise SchemaError("from_edges needs exactly two attributes")
        return cls(name, attributes, edges, dedup=True)

    # -- basic protocol --------------------------------------------------------

    @property
    def arity(self) -> int:
        return len(self.attributes)

    def __len__(self) -> int:
        return int(self.data.shape[0])

    def __bool__(self) -> bool:
        return self.data.shape[0] > 0

    def __iter__(self) -> Iterator[tuple[int, ...]]:
        for row in self.data:
            yield tuple(int(v) for v in row)

    def __contains__(self, t: Sequence[int]) -> bool:
        t = np.asarray(tuple(t), dtype=np.int64)
        if t.shape != (self.arity,):
            return False
        if not len(self):
            return False
        return bool(np.any(np.all(self.data == t, axis=1)))

    def __eq__(self, other) -> bool:
        """Set equality of tuples; name is ignored, schema must match."""
        if not isinstance(other, Relation):
            return NotImplemented
        if self.attributes != other.attributes:
            return False
        if len(self) != len(other):
            return False
        a = lexsorted_rows(self.data)
        b = lexsorted_rows(other.data)
        return bool(np.array_equal(a, b))

    def __hash__(self):  # pragma: no cover - relations are not dict keys
        raise TypeError("Relation is not hashable")

    def __repr__(self) -> str:
        attrs = ", ".join(self.attributes)
        return f"Relation({self.name}({attrs}), {len(self)} tuples)"

    # -- memory accounting ------------------------------------------------------

    @property
    def nbytes(self) -> int:
        """Size of the payload in bytes (8 bytes per value, as int64)."""
        return int(self.data.nbytes)

    @property
    def num_values(self) -> int:
        """Total number of integer values stored (the paper counts these)."""
        return int(self.data.size)

    # -- column access ----------------------------------------------------------

    def column_index(self, attr: str) -> int:
        try:
            return self.attributes.index(attr)
        except ValueError:
            raise SchemaError(
                f"attribute {attr!r} not in schema {self.attributes}"
            ) from None

    def column(self, attr: str) -> np.ndarray:
        """The raw column for ``attr`` (duplicates preserved)."""
        return self.data[:, self.column_index(attr)]

    def distinct_values(self, attr: str) -> np.ndarray:
        """Sorted distinct values of ``attr``."""
        return np.unique(self.column(attr))

    def distinct_count(self, attr: str) -> int:
        """Number of distinct values of ``attr``, memoized per column.

        Plan search (:func:`repro.wcoj.binary_join._estimate_join_size`,
        degree-order selection, the adaptive kernel chooser) asks for the
        same counts repeatedly; the O(n log n) ``np.unique`` runs once.
        """
        j = self.column_index(attr)
        count = self._distinct.get(j)
        if count is None:
            count = int(np.unique(self.data[:, j]).shape[0])
            self._distinct[j] = count
        return count

    # -- relational algebra -------------------------------------------------------

    def _share_distinct(self, out: "Relation",
                        idx: Sequence[int]) -> "Relation":
        """Carry cached distinct counts onto a derived relation.

        Valid whenever ``out``'s column ``k`` holds exactly the values of
        our column ``idx[k]`` (rename/reorder keep rows; projection drops
        duplicate rows only, which never removes a value from a column).
        """
        out._distinct = {k: self._distinct[j]
                         for k, j in enumerate(idx) if j in self._distinct}
        return out

    def project(self, attrs: Sequence[str], name: str | None = None) -> "Relation":
        """Duplicate-eliminating projection onto ``attrs`` (in given order)."""
        attrs = tuple(attrs)
        idx = [self.column_index(a) for a in attrs]
        return self._share_distinct(
            Relation(name or self.name, attrs, self.data[:, idx], dedup=True),
            idx)

    def rename(self, mapping: Mapping[str, str], name: str | None = None) -> "Relation":
        """Rename attributes via ``mapping`` (missing attrs stay)."""
        attrs = tuple(mapping.get(a, a) for a in self.attributes)
        out = Relation(name or self.name, attrs, self.data, dedup=False)
        out._distinct = self._distinct  # same data, same column order
        return out

    def reorder(self, attrs: Sequence[str], name: str | None = None) -> "Relation":
        """Reorder columns to ``attrs`` — a permutation of the schema."""
        attrs = tuple(attrs)
        if set(attrs) != set(self.attributes) or len(attrs) != self.arity:
            raise SchemaError(
                f"{attrs} is not a permutation of {self.attributes}"
            )
        idx = [self.column_index(a) for a in attrs]
        return self._share_distinct(
            Relation(name or self.name, attrs, self.data[:, idx],
                     dedup=False),
            idx)

    def select_equals(self, attr: str, value: int, name: str | None = None) -> "Relation":
        """Selection sigma_{attr = value}."""
        col = self.column(attr)
        return Relation(name or self.name, self.attributes,
                        self.data[col == np.int64(value)], dedup=False)

    def select_in(self, attr: str, values: np.ndarray,
                  name: str | None = None) -> "Relation":
        """Selection sigma_{attr in values}."""
        values = np.asarray(values, dtype=np.int64)
        mask = np.isin(self.column(attr), values)
        return Relation(name or self.name, self.attributes,
                        self.data[mask], dedup=False)

    def common_attributes(self, other: "Relation") -> tuple[str, ...]:
        return tuple(a for a in self.attributes if a in other.attributes)

    def semijoin(self, other: "Relation", name: str | None = None) -> "Relation":
        """Keep tuples whose projection on the shared attrs appears in ``other``."""
        common = self.common_attributes(other)
        if not common:
            # No shared attributes: semijoin keeps everything unless other
            # is empty (then the join would be empty too).
            if len(other) == 0:
                return Relation(name or self.name, self.attributes, (),
                                dedup=False)
            return Relation(name or self.name, self.attributes, self.data,
                            dedup=False)
        left = self.data[:, [self.column_index(a) for a in common]]
        right = other.data[:, [other.column_index(a) for a in common]]
        ids_left, ids_right = row_group_ids(left, right)
        mask = np.isin(ids_left, ids_right)
        return Relation(name or self.name, self.attributes,
                        self.data[mask], dedup=False)

    def natural_join(self, other: "Relation", name: str | None = None) -> "Relation":
        """Natural join (sort-merge on the shared attributes)."""
        common = self.common_attributes(other)
        out_attrs = self.attributes + tuple(
            a for a in other.attributes if a not in common)
        out_name = name or f"({self.name}><{other.name})"
        if not len(self) or not len(other):
            return Relation(out_name, out_attrs, (), dedup=False)
        if not common:
            # Cartesian product.
            n, m = len(self), len(other)
            left = np.repeat(self.data, m, axis=0)
            right = np.tile(other.data, (n, 1))
            return Relation(out_name, out_attrs,
                            np.hstack([left, right]), dedup=True)
        left_keys = self.data[:, [self.column_index(a) for a in common]]
        right_keys = other.data[:, [other.column_index(a) for a in common]]
        ids_left, ids_right = row_group_ids(left_keys, right_keys)
        order = np.argsort(ids_right, kind="stable")
        sorted_right_ids = ids_right[order]
        lo = np.searchsorted(sorted_right_ids, ids_left, side="left")
        hi = np.searchsorted(sorted_right_ids, ids_left, side="right")
        counts = hi - lo
        total = int(counts.sum())
        if total == 0:
            return Relation(out_name, out_attrs, (), dedup=False)
        left_idx = np.repeat(np.arange(len(self)), counts)
        # For each output row, the offset of the matching right tuple within
        # its run of equal keys.
        starts = np.repeat(lo, counts)
        run_offsets = np.arange(total) - np.repeat(
            np.concatenate(([0], np.cumsum(counts)[:-1])), counts)
        right_idx = order[starts + run_offsets]
        rest_cols = [other.column_index(a) for a in other.attributes
                     if a not in common]
        pieces = [self.data[left_idx]]
        if rest_cols:
            pieces.append(other.data[right_idx][:, rest_cols])
        return Relation(out_name, out_attrs, np.hstack(pieces), dedup=True)

    def union(self, other: "Relation", name: str | None = None) -> "Relation":
        """Set union; schemas must match exactly."""
        if self.attributes != other.attributes:
            raise SchemaError(
                f"union of mismatched schemas {self.attributes} vs "
                f"{other.attributes}"
            )
        return Relation(name or self.name, self.attributes,
                        np.vstack([self.data, other.data]), dedup=True)

    def as_set(self) -> frozenset[tuple[int, ...]]:
        """The tuple set as a frozenset (test helper; O(n) python objects)."""
        return frozenset(map(tuple, self.data.tolist()))
