"""Data substrate: relations, tries, databases, synthetic datasets."""

from .database import Database
from .datasets import (
    DATASETS,
    DatasetSpec,
    dataset_names,
    default_scale,
    generate_erdos_renyi_edges,
    generate_power_law_edges,
    load_dataset,
    load_graph_relation,
)
from .relation import Relation, lexsorted_rows, row_group_ids
from .trie import Trie, TrieIterator

__all__ = [
    "Database",
    "DATASETS",
    "DatasetSpec",
    "dataset_names",
    "default_scale",
    "generate_erdos_renyi_edges",
    "generate_power_law_edges",
    "load_dataset",
    "load_graph_relation",
    "Relation",
    "Trie",
    "TrieIterator",
    "lexsorted_rows",
    "row_group_ids",
]
