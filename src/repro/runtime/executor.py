"""Executor backends: where worker tasks actually run.

One interface, three implementations:

- ``serial``    — tasks run inline in the calling process, in submission
  order.  Semantically identical to the historical simulated behaviour
  and the default everywhere.
- ``threads``   — a ``ThreadPoolExecutor``.  Cheap to start and shares
  memory, but Leapfrog is Python/numpy-bound so the GIL caps speedup;
  useful for overlap with I/O and for testing task plumbing.
- ``processes`` — a ``ProcessPoolExecutor``.  Task payloads (numpy column
  batches inside :class:`repro.runtime.scheduler.WorkerTask`) are pickled
  to worker processes, so task functions must be importable top-level
  functions (spawn/fork safe — see docs/runtime.md).

Failure contract: a task that raises anything other than a
:class:`repro.errors.ReproError` — or a worker process that dies — is
converted into :class:`repro.errors.WorkerCrashed` so engines fail
cleanly instead of hanging or leaking backend internals.

Every executor also owns a data-plane :class:`Transport`
(:mod:`repro.runtime.transport`) and exposes ``setup``/``teardown``
lifecycle hooks.  ``teardown`` releases whatever the transport published
(shared-memory segments under ``shm``) and is called from ``close()`` —
including the failure path of ``map_tasks`` — so segments are reclaimed
even when a worker task crashes mid-run.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from concurrent.futures import (
    FIRST_EXCEPTION,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from typing import Callable, Sequence, TypeVar

from ..errors import ConfigError, ReproError, WorkerCrashed
from .transport import Transport, create_transport

__all__ = [
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "available_backends",
    "create_executor",
    "executor_for",
    "available_parallelism",
]

T = TypeVar("T")
R = TypeVar("R")

def available_parallelism() -> int:
    """CPUs this process may actually use (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


class Executor(ABC):
    """Runs a batch of worker tasks and returns their results in order."""

    name: str = "abstract"

    def __init__(self, max_workers: int | None = None,
                 transport: "Transport | str | None" = None):
        self.max_workers = max(1, int(max_workers or 1))
        self._transport: Transport | None = (
            create_transport(transport) if transport is not None else None)

    @property
    def transport(self) -> Transport:
        """The data plane carrying task payload arrays to workers.

        Resolved lazily so an unconfigured executor honours the
        ``REPRO_TRANSPORT`` environment default at first use.
        """
        if self._transport is None:
            self._transport = create_transport()
        return self._transport

    @abstractmethod
    def map_tasks(self, fn: Callable[[T], R], tasks: Sequence[T]
                  ) -> list[R]:
        """Apply ``fn`` to every task; results keep submission order.

        Raises :class:`ReproError` subclasses from tasks unchanged and
        wraps everything else in :class:`WorkerCrashed`.
        """

    def setup(self) -> None:
        """Acquire backend + transport resources ahead of time (idempotent)."""
        self.transport.setup()

    def teardown(self) -> None:
        """Release transport-published resources (idempotent).

        Safe to call between runs: the next publish starts a new epoch.
        """
        if self._transport is not None:
            self._transport.teardown()

    def close(self) -> None:
        """Release pool and transport resources (idempotent)."""
        self.teardown()

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"{type(self).__name__}(max_workers={self.max_workers})"


class SerialExecutor(Executor):
    """Inline execution — today's simulated behaviour, zero overhead."""

    name = "serial"

    def map_tasks(self, fn: Callable[[T], R], tasks: Sequence[T]
                  ) -> list[R]:
        out: list[R] = []
        for i, task in enumerate(tasks):
            try:
                out.append(fn(task))
            except ReproError:
                raise
            except Exception as exc:
                raise WorkerCrashed(i, f"{type(exc).__name__}: {exc}") \
                    from exc
        return out


class _PoolExecutor(Executor):
    """Shared submit/collect logic for the two real pool backends."""

    def __init__(self, max_workers: int | None = None,
                 transport: "Transport | str | None" = None):
        super().__init__(max_workers, transport=transport)
        self._pool = None

    def _make_pool(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def _ensure_pool(self):
        if self._pool is None:
            self._pool = self._make_pool()
        return self._pool

    def setup(self) -> None:
        super().setup()
        self._ensure_pool()

    def map_tasks(self, fn: Callable[[T], R], tasks: Sequence[T]
                  ) -> list[R]:
        tasks = list(tasks)
        if not tasks:
            return []
        pool = self._ensure_pool()
        try:
            futures = [pool.submit(fn, t) for t in tasks]
        except Exception as exc:
            raise WorkerCrashed(-1, f"task submission failed: "
                                    f"{type(exc).__name__}: {exc}") from exc
        # Block until everything finished or something failed — healthy
        # long runs never time out.  On failure, report the future that
        # actually holds the exception (not whichever healthy task is
        # still running) and cancel the rest.
        done, pending = wait(futures, return_when=FIRST_EXCEPTION)
        failed = next(
            (f for f in done if not f.cancelled()
             and f.exception() is not None), None)
        if failed is not None:
            for f in pending:
                f.cancel()
            self.close()  # a broken/aborted pool cannot be reused
            exc = failed.exception()
            if isinstance(exc, ReproError):
                raise exc
            raise WorkerCrashed(
                futures.index(failed),
                f"{type(exc).__name__}: {exc}") from exc
        # No exception => FIRST_EXCEPTION degenerated to ALL_COMPLETED,
        # so every result is ready and result() cannot block.
        return [future.result() for future in futures]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        super().close()


class ThreadExecutor(_PoolExecutor):
    """Thread-pool execution (shared memory, GIL-bound compute)."""

    name = "threads"

    def _make_pool(self):
        return ThreadPoolExecutor(max_workers=self.max_workers,
                                  thread_name_prefix="repro-worker")


class ProcessExecutor(_PoolExecutor):
    """Process-pool execution: real parallelism via pickled partitions."""

    name = "processes"

    def __init__(self, max_workers: int | None = None,
                 transport: "Transport | str | None" = None,
                 start_method: str | None = None):
        super().__init__(max_workers, transport=transport)
        self.start_method = start_method

    def _make_pool(self):
        import multiprocessing

        ctx = (multiprocessing.get_context(self.start_method)
               if self.start_method else None)
        return ProcessPoolExecutor(max_workers=self.max_workers,
                                   mp_context=ctx)


_BACKENDS: dict[str, type[Executor]] = {
    "serial": SerialExecutor,
    "threads": ThreadExecutor,
    "processes": ProcessExecutor,
}

#: Backends resolved on first use, so importing the runtime never pulls
#: in :mod:`repro.net` (and its sockets).
_LAZY_BACKENDS: dict[str, tuple[str, str]] = {
    "remote": ("repro.net.executor", "RemoteExecutor"),
}


def available_backends() -> tuple[str, ...]:
    """Registered executor backend names."""
    return (*_BACKENDS, *_LAZY_BACKENDS)


def create_executor(backend: str, max_workers: int | None = None,
                    transport: "Transport | str | None" = None,
                    **kwargs) -> Executor:
    """Instantiate a backend by name
    (``serial``/``threads``/``processes``/``remote``).

    ``transport`` names (or supplies) the data plane; ``None`` defers to
    ``REPRO_TRANSPORT`` at first use (the ``remote`` backend defaults to
    ``tcp`` instead).
    """
    cls = _BACKENDS.get(backend)
    if cls is None and backend in _LAZY_BACKENDS:
        import importlib

        module, attr = _LAZY_BACKENDS[backend]
        cls = getattr(importlib.import_module(module), attr)
    if cls is None:
        raise ConfigError(
            f"unknown runtime backend {backend!r}; "
            f"choose from {available_backends()}")
    if cls is SerialExecutor:
        return cls(max_workers, transport=transport)
    return cls(max_workers, transport=transport, **kwargs)


def executor_for(cluster,
                 transport: "Transport | str | None" = None,
                 hosts=None) -> Executor:
    """Executor matching a :class:`repro.distributed.Cluster`'s hint.

    The pool size is the cluster's worker count capped at the CPUs the
    process may use — more processes than cores only adds contention.
    The ``remote`` backend is not capped (its parallelism is the slots
    the worker ``hosts`` advertise, not this machine's cores).
    """
    workers = cluster.num_workers
    kwargs = {}
    if cluster.runtime == "processes":
        workers = min(workers, available_parallelism())
    if cluster.runtime == "remote":
        kwargs["hosts"] = hosts
    return create_executor(cluster.runtime, max_workers=workers,
                           transport=transport, **kwargs)
