"""Executor backends: where worker tasks actually run.

One interface, three implementations:

- ``serial``    — tasks run inline in the calling process, in submission
  order.  Semantically identical to the historical simulated behaviour
  and the default everywhere.
- ``threads``   — a ``ThreadPoolExecutor``.  Cheap to start and shares
  memory, but Leapfrog is Python/numpy-bound so the GIL caps speedup;
  useful for overlap with I/O and for testing task plumbing.
- ``processes`` — a ``ProcessPoolExecutor``.  Task payloads (numpy column
  batches inside :class:`repro.runtime.scheduler.WorkerTask`) are pickled
  to worker processes, so task functions must be importable top-level
  functions (spawn/fork safe — see docs/runtime.md).

Two submission APIs share one failure contract:

- ``map_tasks(fn, tasks)`` — the barrier API: every task is known up
  front, results come back as one ordered list.
- ``submit_tasks(fn, tasks)`` — the streaming API: ``tasks`` may be a
  *lazy* iterable (e.g. the scheduler's
  :func:`~repro.runtime.scheduler.iter_routed_tasks` generator, which
  publishes relations and mints descriptors as it goes).  Pool backends
  submit each task the moment the iterable produces it, so the first
  tasks execute while later ones are still being routed/published —
  the pipelined-epoch overlap.  Results are yielded in submission
  order.

Failure contract (both APIs): a task that raises anything other than a
:class:`repro.errors.ReproError` — or a worker process that dies — is
converted into :class:`repro.errors.WorkerCrashed` so engines fail
cleanly instead of hanging or leaking backend internals.  A recoverable
:class:`ReproError` (e.g. ``BudgetExceeded``) propagates unchanged and
leaves the pool *and* the transport untouched: the engine's own
teardown owns the epoch, so failed runs still report real data-plane
counters.  Only a genuine crash (``BrokenProcessPool`` / non-ReproError)
shuts the pool down — and even then the transport is never torn down
from the submission path.

Every executor also owns a data-plane :class:`Transport`
(:mod:`repro.runtime.transport`) and exposes ``setup``/``teardown``
lifecycle hooks.  ``teardown`` releases whatever the transport published
(shared-memory segments under ``shm``) and is called from ``close()``,
so segments are reclaimed even when a worker task crashes mid-run.
"""

from __future__ import annotations

import os
import threading
from abc import ABC, abstractmethod
from concurrent.futures import (
    FIRST_EXCEPTION,
    BrokenExecutor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from typing import Callable, Iterable, Iterator, Sequence, TypeVar

from ..errors import ConfigError, ReproError, WorkerCrashed
from ..obs.tracing import current_tracer
from .transport import Transport, create_transport

__all__ = [
    "Executor",
    "ExecutorView",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "available_backends",
    "create_executor",
    "executor_for",
    "available_parallelism",
    "PIPELINE_ENV_VAR",
    "default_pipeline",
]

T = TypeVar("T")
R = TypeVar("R")

#: Environment variable toggling pipelined epochs (default on).
PIPELINE_ENV_VAR = "REPRO_PIPELINE"

_PIPELINE_VALUES = {"on": True, "1": True, "true": True, "yes": True,
                    "off": False, "0": False, "false": False, "no": False}


def default_pipeline() -> bool:
    """Pipelined-epoch default from ``REPRO_PIPELINE`` (on unless set)."""
    raw = os.environ.get(PIPELINE_ENV_VAR)
    if raw is None:
        return True
    value = _PIPELINE_VALUES.get(raw.strip().lower())
    if value is None:
        raise ConfigError(
            f"{PIPELINE_ENV_VAR} must be one of "
            f"{sorted(_PIPELINE_VALUES)}, got {raw!r}")
    return value


def available_parallelism() -> int:
    """CPUs this process may actually use (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


class Executor(ABC):
    """Runs a batch of worker tasks and returns their results in order."""

    name: str = "abstract"
    #: Whether ``submit_tasks`` really executes tasks concurrently with
    #: their production.  False here (and for ``serial``): the base
    #: implementation runs tasks inline between mints, so there is no
    #: overlap to measure.  Pool backends set True.
    concurrent: bool = False

    def __init__(self, max_workers: int | None = None,
                 transport: "Transport | str | None" = None,
                 pipeline: bool | None = None):
        if max_workers is None:
            max_workers = 1
        max_workers = int(max_workers)
        if max_workers < 1:
            raise ConfigError(
                f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers
        #: Whether engines should stream tasks through ``submit_tasks``
        #: (pipelined epochs) instead of the ``map_tasks`` barrier;
        #: None defers to ``REPRO_PIPELINE`` (default on).
        self.pipeline = default_pipeline() if pipeline is None \
            else bool(pipeline)
        self._transport: Transport | None = (
            create_transport(transport) if transport is not None else None)

    @property
    def transport(self) -> Transport:
        """The data plane carrying task payload arrays to workers.

        Resolved lazily so an unconfigured executor honours the
        ``REPRO_TRANSPORT`` environment default at first use.
        """
        if self._transport is None:
            self._transport = create_transport()
        return self._transport

    @abstractmethod
    def map_tasks(self, fn: Callable[[T], R], tasks: Sequence[T]
                  ) -> list[R]:
        """Apply ``fn`` to every task; results keep submission order.

        Raises :class:`ReproError` subclasses from tasks unchanged and
        wraps everything else in :class:`WorkerCrashed`.
        """

    def submit_tasks(self, fn: Callable[[T], R], tasks: Iterable[T]
                     ) -> Iterator[R]:
        """Streaming variant of :meth:`map_tasks` for *lazy* task sources.

        Consumes ``tasks`` (which may be a generator doing real work —
        publishing relations, minting descriptors) and yields results in
        submission order.  The base implementation executes each task
        inline as soon as the iterable produces it (the serial
        behaviour); pool backends override this to submit tasks as they
        stream in, so execution overlaps with task production.

        Same failure contract as :meth:`map_tasks`: ReproError
        subclasses propagate unchanged, everything else becomes
        :class:`WorkerCrashed`, and neither outcome tears down the
        transport — the caller owns the epoch.
        """
        with current_tracer().span("submit_tasks", cat="executor",
                                   backend=self.name):
            for i, task in enumerate(tasks):
                try:
                    yield fn(task)
                except ReproError:
                    raise
                except Exception as exc:
                    raise WorkerCrashed(
                        i, f"{type(exc).__name__}: {exc}") from exc

    def setup(self) -> None:
        """Acquire backend + transport resources ahead of time (idempotent)."""
        self.transport.setup()

    def teardown(self) -> None:
        """Release transport-published resources (idempotent).

        Safe to call between runs: the next publish starts a new epoch.
        """
        if self._transport is not None:
            self._transport.teardown()

    def close(self) -> None:
        """Release pool and transport resources (idempotent)."""
        self.teardown()

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"{type(self).__name__}(max_workers={self.max_workers})"


class SerialExecutor(Executor):
    """Inline execution — today's simulated behaviour, zero overhead."""

    name = "serial"

    def map_tasks(self, fn: Callable[[T], R], tasks: Sequence[T]
                  ) -> list[R]:
        out: list[R] = []
        with current_tracer().span("map_tasks", cat="executor",
                                   backend=self.name, tasks=len(tasks)):
            for i, task in enumerate(tasks):
                try:
                    out.append(fn(task))
                except ReproError:
                    raise
                except Exception as exc:
                    raise WorkerCrashed(
                        i, f"{type(exc).__name__}: {exc}") from exc
        return out


class _PoolExecutor(Executor):
    """Shared submit/collect logic for the two real pool backends."""

    concurrent = True

    def __init__(self, max_workers: int | None = None,
                 transport: "Transport | str | None" = None,
                 pipeline: bool | None = None):
        super().__init__(max_workers, transport=transport,
                         pipeline=pipeline)
        self._pool = None
        # Guards pool creation/teardown: concurrent queries sharing one
        # warm executor (through ExecutorViews) may race to the first
        # map_tasks call; without the lock two pools get built and one
        # leaks its worker threads/processes.  Reentrant because a
        # failing ``_make_pool`` (e.g. RemoteExecutor with an
        # unreachable host) cleans up via ``close`` -> ``_shutdown_pool``
        # while ``_ensure_pool`` still holds the lock.
        self._pool_lock = threading.RLock()

    def _make_pool(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def _ensure_pool(self):
        with self._pool_lock:
            if self._pool is None:
                self._pool = self._make_pool()
            return self._pool

    def setup(self) -> None:
        super().setup()
        self._ensure_pool()

    def _shutdown_pool(self) -> None:
        """Discard the pool only — the transport (and its epoch counters)
        stays alive, because the *engine* owns the epoch and must be able
        to tear it down itself and read real ``last_epoch`` stats even
        after a failed run."""
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=False, cancel_futures=True)
                self._pool = None

    def _raise_if_cancelled(self, futures) -> None:
        """Surface cross-run cancellation as a clean WorkerCrashed.

        When a *concurrent* run on the same shared pool crashes, its
        ``_shutdown_pool`` cancels every pending future — including
        ours.  A cancelled future holds no exception, so the
        FIRST_EXCEPTION scan misses it and ``result()`` would leak a
        raw ``CancelledError`` out of the failure contract.
        """
        cancelled = next((f for f in futures if f.cancelled()), None)
        if cancelled is not None:
            raise WorkerCrashed(
                futures.index(cancelled),
                "task cancelled: the shared pool was shut down by a "
                "concurrent failure")

    def _raise_failure(self, futures, failed) -> None:
        """Re-raise a failed future per the shared failure contract."""
        exc = failed.exception()
        if isinstance(exc, ReproError):
            # Recoverable (budget trips, modelled OOM, an already-wrapped
            # WorkerCrashed): the pool itself is healthy — keep it.
            raise exc
        # Genuine crash: a broken pool (dead worker process) or an
        # unexpected exception.  The pool may be unusable; discard it —
        # but never the transport (the engine's teardown owns the epoch).
        self._shutdown_pool()
        raise WorkerCrashed(
            futures.index(failed),
            f"{type(exc).__name__}: {exc}") from exc

    def map_tasks(self, fn: Callable[[T], R], tasks: Sequence[T]
                  ) -> list[R]:
        tasks = list(tasks)
        if not tasks:
            return []
        pool = self._ensure_pool()
        with current_tracer().span("map_tasks", cat="executor",
                                   backend=self.name, tasks=len(tasks)):
            try:
                futures = [pool.submit(fn, t) for t in tasks]
            except Exception as exc:
                if isinstance(exc, BrokenExecutor):
                    self._shutdown_pool()
                raise WorkerCrashed(
                    -1, f"task submission failed: "
                        f"{type(exc).__name__}: {exc}") from exc
            # Block until everything finished or something failed —
            # healthy long runs never time out.  On failure, report the
            # future that actually holds the exception (not whichever
            # healthy task is still running) and cancel the rest.
            done, pending = wait(futures, return_when=FIRST_EXCEPTION)
            failed = next(
                (f for f in done if not f.cancelled()
                 and f.exception() is not None), None)
            if failed is not None:
                for f in pending:
                    f.cancel()
                self._raise_failure(futures, failed)
            self._raise_if_cancelled(futures)
            # No exception => FIRST_EXCEPTION degenerated to
            # ALL_COMPLETED, so every result is ready and result()
            # cannot block.
            return [future.result() for future in futures]

    def submit_tasks(self, fn: Callable[[T], R], tasks: Iterable[T]
                     ) -> Iterator[R]:
        """Submit tasks as the (possibly lazy) iterable produces them.

        Pool workers start executing the first tasks while the iterable
        is still minting later ones — the coordinator/worker overlap of
        pipelined epochs.  If an already-submitted task fails while the
        stream is still being consumed, consumption stops early, pending
        tasks are cancelled, and the failure is raised under the shared
        contract.
        """
        pool = self._ensure_pool()
        futures = []
        abort = threading.Event()

        def _watch(future) -> None:
            if not future.cancelled() and future.exception() is not None:
                abort.set()

        with current_tracer().span("submit_tasks", cat="executor",
                                   backend=self.name):
            try:
                for task in tasks:
                    if abort.is_set():
                        break
                    future = pool.submit(fn, task)
                    future.add_done_callback(_watch)
                    futures.append(future)
            except Exception:
                # The task *source* failed (publish error, routing bug):
                # don't leave orphan tasks running against an epoch the
                # caller is about to tear down.
                for f in futures:
                    f.cancel()
                raise
            done, pending = wait(futures, return_when=FIRST_EXCEPTION)
            failed = next(
                (f for f in done if not f.cancelled()
                 and f.exception() is not None), None)
            if failed is not None:
                for f in pending:
                    f.cancel()
                self._raise_failure(futures, failed)
            self._raise_if_cancelled(futures)
            for future in futures:
                yield future.result()

    def close(self) -> None:
        self._shutdown_pool()
        super().close()


class ThreadExecutor(_PoolExecutor):
    """Thread-pool execution (shared memory, GIL-bound compute)."""

    name = "threads"

    def _make_pool(self):
        return ThreadPoolExecutor(max_workers=self.max_workers,
                                  thread_name_prefix="repro-worker")


class ProcessExecutor(_PoolExecutor):
    """Process-pool execution: real parallelism via pickled partitions."""

    name = "processes"

    def __init__(self, max_workers: int | None = None,
                 transport: "Transport | str | None" = None,
                 pipeline: bool | None = None,
                 start_method: str | None = None):
        super().__init__(max_workers, transport=transport,
                         pipeline=pipeline)
        self.start_method = start_method

    def _make_pool(self):
        import multiprocessing

        ctx = (multiprocessing.get_context(self.start_method)
               if self.start_method else None)
        return ProcessPoolExecutor(max_workers=self.max_workers,
                                   mp_context=ctx)


class ExecutorView(Executor):
    """Per-query view of a shared executor: same pool, private data plane.

    Every engine run assumes exclusive use of ``executor.transport`` —
    publish an epoch, tear it down in ``finally``, read the frozen
    ``last_epoch`` counters.  A warm cluster serving concurrent queries
    breaks that single-run assumption, so each query gets a *view*:
    ``map_tasks``/``submit_tasks`` delegate to the shared base executor
    (one worker pool, amortized across queries) while :attr:`transport`
    is a private instance stamped with a per-query epoch id.  Published
    blocks, :class:`~repro.runtime.transport.TransportStats` and the
    frozen ``last_epoch`` of interleaved queries therefore never mix,
    and engines need no changes to run concurrently.

    ``teardown()``/``close()`` release only the view's own transport;
    the shared pool (and whatever transport the base executor may own)
    stays warm for the next query.
    """

    def __init__(self, base: Executor, transport: "Transport | str | None"
                 = None, epoch: str | None = None):
        super().__init__(base.max_workers, transport=transport,
                         pipeline=base.pipeline)
        self._base = base
        self.name = base.name
        self.concurrent = base.concurrent
        self.epoch = epoch
        if epoch is not None:
            self.transport.epoch = epoch

    @property
    def base(self) -> Executor:
        """The shared executor this view delegates execution to."""
        return self._base

    def map_tasks(self, fn: Callable[[T], R], tasks: Sequence[T]
                  ) -> list[R]:
        return self._base.map_tasks(fn, tasks)

    def submit_tasks(self, fn: Callable[[T], R], tasks: Iterable[T]
                     ) -> Iterator[R]:
        return self._base.submit_tasks(fn, tasks)

    def setup(self) -> None:
        # Only the view's own transport: the base pool is built lazily
        # (and thread-safely) on first use, and eagerly creating a
        # transport the base never publishes through would be waste.
        self.transport.setup()

    def close(self) -> None:
        # Deliberately *not* base.close(): the context owns the pool.
        self.teardown()

    def __repr__(self) -> str:
        return (f"ExecutorView(base={self._base!r}, "
                f"epoch={self.epoch!r})")


_BACKENDS: dict[str, type[Executor]] = {
    "serial": SerialExecutor,
    "threads": ThreadExecutor,
    "processes": ProcessExecutor,
}

#: Backends resolved on first use, so importing the runtime never pulls
#: in :mod:`repro.net` (and its sockets).
_LAZY_BACKENDS: dict[str, tuple[str, str]] = {
    "remote": ("repro.net.executor", "RemoteExecutor"),
}


def available_backends() -> tuple[str, ...]:
    """Registered executor backend names."""
    return (*_BACKENDS, *_LAZY_BACKENDS)


def create_executor(backend: str, max_workers: int | None = None,
                    transport: "Transport | str | None" = None,
                    pipeline: bool | None = None,
                    **kwargs) -> Executor:
    """Instantiate a backend by name
    (``serial``/``threads``/``processes``/``remote``).

    ``transport`` names (or supplies) the data plane; ``None`` defers to
    ``REPRO_TRANSPORT`` at first use (the ``remote`` backend defaults to
    ``tcp`` instead).  ``pipeline`` toggles pipelined epochs; ``None``
    defers to ``REPRO_PIPELINE`` (default on).
    """
    cls = _BACKENDS.get(backend)
    if cls is None and backend in _LAZY_BACKENDS:
        import importlib

        module, attr = _LAZY_BACKENDS[backend]
        cls = getattr(importlib.import_module(module), attr)
    if cls is None:
        raise ConfigError(
            f"unknown runtime backend {backend!r}; "
            f"choose from {available_backends()}")
    return cls(max_workers, transport=transport, pipeline=pipeline,
               **kwargs)


def executor_for(cluster,
                 transport: "Transport | str | None" = None,
                 hosts=None,
                 pipeline: bool | None = None) -> Executor:
    """Executor matching a :class:`repro.distributed.Cluster`'s hint.

    The pool size is the cluster's worker count capped at the CPUs the
    process may use — more pool members than cores only adds contention
    (for threads the GIL makes surplus workers pure overhead).  The
    ``remote`` backend is not capped (its parallelism is the slots the
    worker ``hosts`` advertise, not this machine's cores).
    """
    workers = cluster.num_workers
    kwargs = {}
    if cluster.runtime in ("processes", "threads"):
        workers = min(workers, available_parallelism())
    if cluster.runtime == "remote":
        kwargs["hosts"] = hosts
    return create_executor(cluster.runtime, max_workers=workers,
                           transport=transport, pipeline=pipeline,
                           **kwargs)
