"""Scheduler: turn an HCube shuffle result into per-worker tasks.

The HCube locality property guarantees every output tuple is produced by
exactly one cube, so per-worker evaluation is embarrassingly parallel:
group each worker's cubes into one :class:`WorkerTask` (partition →
build tries → run Leapfrog locally → merge counts), hand the batch to an
:class:`repro.runtime.Executor`, and sum the results.  The same merged
counters the simulated path accumulates inline (counts, per-level
intermediate tuples, per-worker intersection work) come back here, so
modeled cost accounting is identical across backends.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Sequence

from ..data.database import Database
from ..distributed.hcube import HCubeRouting, HCubeShuffleResult
from ..errors import BudgetExceeded, WorkerCrashed
from ..obs.metrics import METRICS
from ..obs.tracing import current_tracer, trace_context
from .executor import Executor
from .telemetry import RuntimeTelemetry
from .transport import PickleTransport, Transport
from .worker import WorkerTask, WorkerTaskResult, execute_worker_task

__all__ = ["MergedOutcome", "absorb_result_observability",
           "build_worker_tasks", "build_routed_tasks",
           "iter_routed_tasks", "merge_task_results", "run_worker_tasks",
           "run_streamed", "run_streamed_tasks"]


@dataclass
class MergedOutcome:
    """Sum of all worker task results (the coordinator's view)."""

    count: int = 0
    level_tuples: list[int] = field(default_factory=list)
    total_work: int = 0
    worker_work: dict[int, float] = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0
    tasks: int = 0


def build_worker_tasks(shuffle: HCubeShuffleResult,
                       order: Sequence[str],
                       budget: int | None = None) -> list[WorkerTask]:
    """One :class:`WorkerTask` per worker that owns at least one cube.

    ``budget`` is the engine's *global* intersection-work cap; each task
    receives it whole and the coordinator re-checks the summed work after
    the run (see :func:`merge_task_results`), so a budget violation is
    detected whether it happens inside one worker or only in aggregate.
    """
    grid = shuffle.grid
    local_query = shuffle.local_query
    order = tuple(order)
    tasks: dict[int, WorkerTask] = {}
    for cube, cube_db in enumerate(shuffle.cube_databases):
        worker = grid.worker_of_cube(cube)
        task = tasks.get(worker)
        if task is None:
            task = WorkerTask(worker=worker, query=local_query,
                              order=order, budget=budget)
            tasks[worker] = task
        task.cubes.append(tuple(
            cube_db[atom.relation].data for atom in local_query.atoms))
    return [tasks[w] for w in sorted(tasks)]


def iter_routed_tasks(routing: HCubeRouting, db: Database,
                      order: Sequence[str],
                      budget: int | None = None,
                      transport: Transport | None = None,
                      cache_capacity: Callable[[int], int] | None = None,
                      kernel: str = "wcoj") -> Iterator[WorkerTask]:
    """Stream worker tasks: yield each task as soon as its refs exist.

    The pipelined-epoch task source.  Source relations are published
    lazily — each the first time one of its refs is minted — and a
    worker's :class:`~repro.runtime.worker.WorkerTask` is yielded the
    moment all of its descriptors are mintable, so an executor consuming
    this generator through
    :meth:`~repro.runtime.executor.Executor.submit_tasks` starts
    executing the first workers' tasks while later tasks are still
    being published and sliced.  Task order, contents and transport
    totals are identical to the barrier :func:`build_routed_tasks`
    (which is implemented on top of this generator).

    ``cache_capacity(worker_load)`` sizes an optional worker-local
    intersection cache (HCubeJ+Cache).  ``kernel`` is the
    :mod:`repro.kernels` key each task executes with — a plain string so
    it survives spawned process pools and remote agents.
    """
    transport = transport or PickleTransport()
    grid = routing.grid
    query = grid.query
    local_query = routing.local_query
    order = tuple(order)
    num_atoms = len(query.atoms)
    keys: dict[int, str] = {}
    # Per-query epoch id (stamped on ExecutorView transports): namespace
    # publish keys so interleaved epochs from concurrent queries sharing
    # one staging area never collide.
    epoch = getattr(transport, "epoch", None)
    prefix = f"{epoch}/" if epoch else ""

    def key_for(ai: int) -> str:
        key = keys.get(ai)
        if key is None:
            atom = query.atoms[ai]
            key = transport.publish(f"{prefix}rel:{atom.relation}",
                                    db[atom.relation].data)
            keys[ai] = key
        return key

    cubes_by_worker: dict[int, list[int]] = {}
    for cube in range(grid.num_cubes):
        cubes_by_worker.setdefault(grid.worker_of_cube(cube),
                                   []).append(cube)
    ctx = trace_context()
    for worker in sorted(cubes_by_worker):
        capacity = None
        if cache_capacity is not None:
            capacity = int(cache_capacity(
                routing.worker_loads.get(worker, 0)))
        task = WorkerTask(worker=worker, query=local_query,
                          order=order, budget=budget,
                          cache_capacity=capacity, trace=ctx,
                          kernel=kernel)
        for cube in cubes_by_worker[worker]:
            task.cubes.append(tuple(
                transport.make_ref(key_for(ai),
                                   routing.atom_rows[ai][cube])
                for ai in range(num_atoms)))
        yield task


def build_routed_tasks(routing: HCubeRouting, db: Database,
                       order: Sequence[str],
                       budget: int | None = None,
                       transport: Transport | None = None,
                       cache_capacity: Callable[[int], int] | None = None,
                       kernel: str = "wcoj") -> list[WorkerTask]:
    """Worker tasks from routing assignments, payloads via ``transport``.

    Each source relation is published exactly once; tasks carry one
    :class:`~repro.runtime.transport.ArrayRef` per (atom, cube) instead
    of a materialized partition matrix, so partitioning happens on the
    worker that owns the cube.  The barrier counterpart of
    :func:`iter_routed_tasks` — same tasks, fully materialized.
    """
    return list(iter_routed_tasks(routing, db, order, budget=budget,
                                  transport=transport,
                                  cache_capacity=cache_capacity,
                                  kernel=kernel))


def absorb_result_observability(results: Sequence) -> None:
    """Fold task results into the tracer and the metrics registry.

    Called on the coordinator as soon as results exist — before
    :func:`merge_task_results` gets a chance to raise — so spans shipped
    by a *crashed* remote task still land in the merged timeline, and
    ``runtime.*`` metrics count failed work too.
    """
    tracer = current_tracer()
    durations = METRICS.histogram("runtime.task_seconds")
    for res in results:
        tracer.merge_payload(getattr(res, "spans", None))
        total = getattr(res, "total_seconds", None)
        if total is not None:
            durations.observe(total)
        work = getattr(res, "intersection_work", None) or \
            getattr(res, "work", None)
        if work:
            METRICS.counter("runtime.intersection_work").inc(work)
        if getattr(res, "failure", None):
            METRICS.counter("runtime.tasks_failed").inc()
        else:
            METRICS.counter("runtime.tasks_completed").inc()


def run_worker_tasks(executor: Executor, tasks: Sequence[WorkerTask],
                     telemetry: RuntimeTelemetry | None = None
                     ) -> list[WorkerTaskResult]:
    """Execute tasks on ``executor``, recording measured phase times."""
    start = time.perf_counter()
    results = executor.map_tasks(execute_worker_task, tasks)
    elapsed = time.perf_counter() - start
    absorb_result_observability(results)
    if telemetry is not None:
        telemetry.record("local_join", elapsed)
        for res in results:
            telemetry.record_worker(res.worker, res.total_seconds)
    return results


def run_streamed(executor: Executor, fn: Callable,
                 tasks: Iterable,
                 telemetry: RuntimeTelemetry | None = None,
                 mint_phase: str = "publish",
                 run_phase: str = "local_join") -> list:
    """Execute a *lazy* task stream, overlapping minting with execution.

    ``tasks`` is typically a generator that does real coordinator work
    per task (publishing source arrays, slicing partition refs).  The
    stream is fed to :meth:`~repro.runtime.executor.Executor
    .submit_tasks`, so pool backends execute early tasks while later
    ones are still being minted.

    Telemetry: coordinator time spent inside the generator is recorded
    under ``mint_phase`` and the remaining wall-clock of the phase under
    ``run_phase`` — so their sum stays comparable to the barrier path's
    two phases.  The *overlap window* — the wall-clock between the first
    task's submission and the completion of minting, i.e. how long task
    production and task execution coexisted (zero, by construction, on
    the barrier path) — accumulates into
    :attr:`~repro.runtime.telemetry.RuntimeTelemetry.overlap_seconds`.
    Overlap is only recorded for executors that actually run streamed
    tasks concurrently (``executor.concurrent``): the serial backend
    executes each task inline between mints, so its window would count
    plain execution time as overlap.
    """
    start = time.perf_counter()
    mint_seconds = 0.0
    first_submit: float | None = None
    last_mint = start

    def timed_stream():
        nonlocal mint_seconds, first_submit, last_mint
        iterator = iter(tasks)
        while True:
            t0 = time.perf_counter()
            try:
                task = next(iterator)
            except StopIteration:
                last_mint = time.perf_counter()
                mint_seconds += last_mint - t0
                return
            now = time.perf_counter()
            mint_seconds += now - t0
            last_mint = now
            if first_submit is None:
                first_submit = now
            yield task

    results = list(executor.submit_tasks(fn, timed_stream()))
    elapsed = time.perf_counter() - start
    if telemetry is not None:
        telemetry.record(mint_phase, mint_seconds)
        telemetry.record(run_phase, max(0.0, elapsed - mint_seconds))
        if first_submit is not None and getattr(executor, "concurrent",
                                                False):
            telemetry.record_overlap(max(0.0, last_mint - first_submit))
    return results


def run_streamed_tasks(executor: Executor,
                       tasks: Iterable[WorkerTask],
                       telemetry: RuntimeTelemetry | None = None
                       ) -> list[WorkerTaskResult]:
    """Streamed counterpart of :func:`run_worker_tasks`.

    Same result list and worker telemetry; additionally records the
    mint/execute overlap (see :func:`run_streamed`).
    """
    results = run_streamed(executor, execute_worker_task, tasks,
                           telemetry=telemetry,
                           mint_phase="publish", run_phase="local_join")
    absorb_result_observability(results)
    if telemetry is not None:
        for res in results:
            telemetry.record_worker(res.worker, res.total_seconds)
    return results


def merge_task_results(results: Sequence[WorkerTaskResult],
                       num_levels: int,
                       budget: int | None = None) -> MergedOutcome:
    """Sum worker results; surface failures as the proper error types.

    Raises :class:`BudgetExceeded` if any worker tripped its budget or
    the aggregate work exceeds the global cap, and :class:`WorkerCrashed`
    for anything else — a crashed task never hangs the coordinator.
    """
    merged = MergedOutcome(level_tuples=[0] * num_levels)
    for res in results:
        if res.failure == "crash":
            reason = res.failure_info[0] if res.failure_info else "unknown"
            raise WorkerCrashed(res.worker, reason)
        merged.count += res.count
        merged.total_work += res.intersection_work
        merged.cache_hits += res.cache_hits
        merged.cache_misses += res.cache_misses
        merged.worker_work[res.worker] = \
            merged.worker_work.get(res.worker, 0.0) + res.intersection_work
        for d in range(min(num_levels, len(res.level_tuples))):
            merged.level_tuples[d] += res.level_tuples[d]
        merged.tasks += 1
    # Per-worker budget failures and the aggregate check share one cap.
    for res in results:
        if res.failure == "budget":
            work_done, cap = (res.failure_info if res.failure_info
                              else (merged.total_work, budget or 0))
            raise BudgetExceeded(max(int(work_done), merged.total_work),
                                 int(cap))
    if budget is not None and merged.total_work > budget:
        raise BudgetExceeded(merged.total_work, budget)
    return merged
