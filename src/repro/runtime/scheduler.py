"""Scheduler: turn an HCube shuffle result into per-worker tasks.

The HCube locality property guarantees every output tuple is produced by
exactly one cube, so per-worker evaluation is embarrassingly parallel:
group each worker's cubes into one :class:`WorkerTask` (partition →
build tries → run Leapfrog locally → merge counts), hand the batch to an
:class:`repro.runtime.Executor`, and sum the results.  The same merged
counters the simulated path accumulates inline (counts, per-level
intermediate tuples, per-worker intersection work) come back here, so
modeled cost accounting is identical across backends.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..data.database import Database
from ..distributed.hcube import HCubeRouting, HCubeShuffleResult
from ..errors import BudgetExceeded, WorkerCrashed
from .executor import Executor
from .telemetry import RuntimeTelemetry
from .transport import PickleTransport, Transport
from .worker import WorkerTask, WorkerTaskResult, execute_worker_task

__all__ = ["MergedOutcome", "build_worker_tasks", "build_routed_tasks",
           "merge_task_results", "run_worker_tasks"]


@dataclass
class MergedOutcome:
    """Sum of all worker task results (the coordinator's view)."""

    count: int = 0
    level_tuples: list[int] = field(default_factory=list)
    total_work: int = 0
    worker_work: dict[int, float] = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0
    tasks: int = 0


def build_worker_tasks(shuffle: HCubeShuffleResult,
                       order: Sequence[str],
                       budget: int | None = None) -> list[WorkerTask]:
    """One :class:`WorkerTask` per worker that owns at least one cube.

    ``budget`` is the engine's *global* intersection-work cap; each task
    receives it whole and the coordinator re-checks the summed work after
    the run (see :func:`merge_task_results`), so a budget violation is
    detected whether it happens inside one worker or only in aggregate.
    """
    grid = shuffle.grid
    local_query = shuffle.local_query
    order = tuple(order)
    tasks: dict[int, WorkerTask] = {}
    for cube, cube_db in enumerate(shuffle.cube_databases):
        worker = grid.worker_of_cube(cube)
        task = tasks.get(worker)
        if task is None:
            task = WorkerTask(worker=worker, query=local_query,
                              order=order, budget=budget)
            tasks[worker] = task
        task.cubes.append(tuple(
            cube_db[atom.relation].data for atom in local_query.atoms))
    return [tasks[w] for w in sorted(tasks)]


def build_routed_tasks(routing: HCubeRouting, db: Database,
                       order: Sequence[str],
                       budget: int | None = None,
                       transport: Transport | None = None,
                       cache_capacity: Callable[[int], int] | None = None
                       ) -> list[WorkerTask]:
    """Worker tasks from routing assignments, payloads via ``transport``.

    Each source relation is published exactly once; tasks carry one
    :class:`~repro.runtime.transport.ArrayRef` per (atom, cube) instead
    of a materialized partition matrix, so partitioning happens on the
    worker that owns the cube.  ``cache_capacity(worker_load)`` sizes an
    optional worker-local intersection cache (HCubeJ+Cache).
    """
    transport = transport or PickleTransport()
    grid = routing.grid
    query = grid.query
    local_query = routing.local_query
    order = tuple(order)
    keys = [transport.publish(f"rel:{atom.relation}",
                              db[atom.relation].data)
            for atom in query.atoms]
    tasks: dict[int, WorkerTask] = {}
    for cube in range(grid.num_cubes):
        worker = grid.worker_of_cube(cube)
        task = tasks.get(worker)
        if task is None:
            capacity = None
            if cache_capacity is not None:
                capacity = int(cache_capacity(
                    routing.worker_loads.get(worker, 0)))
            task = WorkerTask(worker=worker, query=local_query,
                              order=order, budget=budget,
                              cache_capacity=capacity)
            tasks[worker] = task
        task.cubes.append(tuple(
            transport.make_ref(keys[ai], routing.atom_rows[ai][cube])
            for ai in range(len(query.atoms))))
    return [tasks[w] for w in sorted(tasks)]


def run_worker_tasks(executor: Executor, tasks: Sequence[WorkerTask],
                     telemetry: RuntimeTelemetry | None = None
                     ) -> list[WorkerTaskResult]:
    """Execute tasks on ``executor``, recording measured phase times."""
    start = time.perf_counter()
    results = executor.map_tasks(execute_worker_task, tasks)
    elapsed = time.perf_counter() - start
    if telemetry is not None:
        telemetry.record("local_join", elapsed)
        for res in results:
            telemetry.record_worker(res.worker, res.total_seconds)
    return results


def merge_task_results(results: Sequence[WorkerTaskResult],
                       num_levels: int,
                       budget: int | None = None) -> MergedOutcome:
    """Sum worker results; surface failures as the proper error types.

    Raises :class:`BudgetExceeded` if any worker tripped its budget or
    the aggregate work exceeds the global cap, and :class:`WorkerCrashed`
    for anything else — a crashed task never hangs the coordinator.
    """
    merged = MergedOutcome(level_tuples=[0] * num_levels)
    for res in results:
        if res.failure == "crash":
            reason = res.failure_info[0] if res.failure_info else "unknown"
            raise WorkerCrashed(res.worker, reason)
        merged.count += res.count
        merged.total_work += res.intersection_work
        merged.cache_hits += res.cache_hits
        merged.cache_misses += res.cache_misses
        merged.worker_work[res.worker] = \
            merged.worker_work.get(res.worker, 0.0) + res.intersection_work
        for d in range(min(num_levels, len(res.level_tuples))):
            merged.level_tuples[d] += res.level_tuples[d]
        merged.tasks += 1
    # Per-worker budget failures and the aggregate check share one cap.
    for res in results:
        if res.failure == "budget":
            work_done, cap = (res.failure_info if res.failure_info
                              else (merged.total_work, budget or 0))
            raise BudgetExceeded(max(int(work_done), merged.total_work),
                                 int(cap))
    if budget is not None and merged.total_work > budget:
        raise BudgetExceeded(merged.total_work, budget)
    return merged
