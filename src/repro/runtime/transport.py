"""Pluggable data-plane transports: how payload arrays reach workers.

The scheduler used to pickle fully materialized partition matrices into
every :class:`repro.runtime.worker.WorkerTask`.  That makes the
coordinator both partition *and* serialize all data serially — the exact
copy-heavy data plane the HCube design is meant to avoid.  A
:class:`Transport` decouples the two concerns:

- ``publish(key, array)`` stages a *source* array once, coordinator-side;
- ``make_ref(key, rows)`` mints a small picklable :class:`ArrayRef`
  descriptor selecting a row subset of the published array;
- :func:`resolve_array_ref` (top-level, spawn-safe) turns a descriptor
  back into a concrete array on the worker.

Three backends, looked up through a string-keyed registry
(:func:`register_transport` / :func:`available_transports`, mirroring
:mod:`repro.engines.registry`):

- :class:`PickleTransport` — descriptors carry the sliced partition
  inline; semantically identical to the historical behaviour (arrays are
  pickled across the process boundary).
- :class:`SharedMemoryTransport` — each source array is copied once into
  a ``multiprocessing.shared_memory`` block; descriptors carry only
  ``(block name, dtype, shape, row indices)``, so large matrices cross
  the process boundary zero-copy and workers slice their own partitions
  locally.  Partitioning work moves off the coordinator.
- ``tcp`` (:class:`repro.net.transport.TcpTransport`, registered lazily
  so importing this module never opens a socket) — sources are PUT into
  a TCP block store and descriptors carry ``(host, port, block_id,
  dtype, shape, rows)``, so *remote* workers fetch and slice their own
  partitions.  The multi-machine data plane; see docs/net.md.

Lifetime rules (see docs/data_plane.md): the coordinator owns every
segment it publishes; ``teardown()`` closes and unlinks all of them and
is idempotent.  Executors call it from ``close()`` so segments are
reclaimed even when a worker task crashes mid-run.  Workers must *copy*
what they need out of a segment before returning (``resolve_array_ref``
does — fancy indexing copies) and never unlink.
"""

from __future__ import annotations

import os
import threading
from abc import ABC, abstractmethod
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from ..errors import ConfigError
from ..obs.metrics import METRICS
from ..obs.tracing import current_tracer

__all__ = [
    "TRANSPORT_ENV_VAR",
    "REF_HEADER_BYTES",
    "ArrayRef",
    "resolve_array_ref",
    "TransportStats",
    "Transport",
    "PickleTransport",
    "SharedMemoryTransport",
    "TransportSpec",
    "register_transport",
    "available_transports",
    "transport_class",
    "default_transport_name",
    "create_transport",
]

#: Environment variable selecting the default transport backend.
TRANSPORT_ENV_VAR = "REPRO_TRANSPORT"

#: Accounted fixed size of one descriptor (kind, block name, dtype,
#: shape) — the part of a ref that is not the payload.
REF_HEADER_BYTES = 64


@dataclass(frozen=True)
class ArrayRef:
    """A picklable reference to (a row subset of) a published array.

    ``kind == "inline"`` carries the partition in ``data`` (the pickle
    data plane); ``kind == "shm"`` carries only the segment name plus the
    row selection, and the worker slices the shared block itself;
    ``kind == "tcp"`` additionally carries the block store's ``(host,
    port)`` so workers on *other machines* fetch the block over a socket
    and slice locally.
    """

    kind: str                          # "inline" | "shm" | "tcp"
    shape: tuple[int, ...]             # shape of the *source* array
    dtype: str
    data: np.ndarray | None = None     # inline payload (already sliced)
    block: str | None = None           # segment name / block-store id
    rows: np.ndarray | None = None     # row indices into the source
    host: str | None = None            # block store address (tcp only)
    port: int | None = None

    @property
    def num_rows(self) -> int:
        if self.rows is not None:
            return int(self.rows.shape[0])
        if self.data is not None:
            return int(self.data.shape[0])
        return int(self.shape[0]) if self.shape else 0

    @property
    def payload_bytes(self) -> int:
        """Bytes this descriptor adds to a pickled task payload."""
        size = REF_HEADER_BYTES
        if self.data is not None:
            size += int(self.data.nbytes)
        if self.rows is not None:
            size += int(self.rows.nbytes)
        return size


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to a named segment without taking tracker ownership.

    On Python >= 3.13 ``track=False`` skips resource-tracker
    registration entirely.  On older versions attaching re-registers the
    name with the resource tracker; because fork/spawn pool workers
    share the coordinator's tracker process (the fd travels in the spawn
    preparation data) and the tracker keeps a *set* per resource type,
    that re-registration is an idempotent no-op and the coordinator's
    ``unlink()`` at teardown removes the single entry — so no "leaked
    shared_memory" warnings and no premature unlinks.  Only the
    publishing side ever unlinks.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track flag; see docstring
        return shared_memory.SharedMemory(name=name)


def resolve_array_ref(ref) -> np.ndarray:
    """Materialize a descriptor into a concrete array (worker-side).

    Top-level and self-contained on purpose (spawn-safe).  Accepts plain
    ndarrays unchanged so legacy payloads keep working.  The returned
    array never aliases shared memory — workers may outlive segments.
    """
    if isinstance(ref, np.ndarray):
        return ref
    if ref.kind == "inline":
        arr = ref.data
        if arr is None:
            arr = np.empty(ref.shape, dtype=np.dtype(ref.dtype))
        if ref.rows is not None:
            arr = arr[ref.rows]
        return arr
    if ref.kind == "tcp":
        from ..net.blockstore import fetch_block_array

        with current_tracer().span("resolve_ref", cat="transport",
                                   kind="tcp", block=ref.block,
                                   rows=ref.num_rows):
            arr = fetch_block_array(ref.host, ref.port, ref.block,
                                    shape=ref.shape,
                                    dtype=np.dtype(ref.dtype))
            # The fetched block is a (read-only) process-wide cache
            # entry; fancy indexing copies, .copy() covers the
            # whole-array case.
            return arr[ref.rows] if ref.rows is not None else arr.copy()
    if ref.kind != "shm":
        raise ConfigError(f"unknown ArrayRef kind {ref.kind!r}")
    with current_tracer().span("resolve_ref", cat="transport",
                               kind="shm", block=ref.block,
                               rows=ref.num_rows):
        seg = _attach_segment(ref.block)
        try:
            view = np.ndarray(ref.shape, dtype=np.dtype(ref.dtype),
                              buffer=seg.buf)
            # Fancy indexing copies; .copy() covers the whole-array case.
            arr = view[ref.rows] if ref.rows is not None else view.copy()
        finally:
            seg.close()
    return arr


@dataclass
class TransportStats:
    """What one transport epoch moved, from the coordinator's view.

    ``published_bytes`` are bytes staged into shared/remote blocks (one
    memcpy per source array; shm and tcp only); ``shipped_bytes`` are
    bytes that enter pickled task payloads — full partitions under
    pickle, descriptor bytes (row indices + header) under shm/tcp.  The
    acceptance check for the descriptor-only planes is
    ``shipped_bytes(shm|tcp) < shipped_bytes(pickle)`` on the same run.

    ``fetched_blocks``/``fetched_bytes`` count what workers pulled back
    out of the staging area (tcp only: the block store's GET counters,
    collected at teardown); ``freed_blocks`` counts blocks reclaimed at
    teardown (shm segments unlinked, tcp blocks freed).
    """

    published_blocks: int = 0
    published_bytes: int = 0
    shipped_refs: int = 0
    shipped_bytes: int = 0
    fetched_blocks: int = 0
    fetched_bytes: int = 0
    freed_blocks: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "published_blocks": self.published_blocks,
            "published_bytes": self.published_bytes,
            "shipped_refs": self.shipped_refs,
            "shipped_bytes": self.shipped_bytes,
            "fetched_blocks": self.fetched_blocks,
            "fetched_bytes": self.fetched_bytes,
            "freed_blocks": self.freed_blocks,
        }


class Transport(ABC):
    """Stages source arrays and mints worker-facing descriptors.

    Thread-safety contract (pipelined epochs): ``publish``, ``make_ref``
    and ``teardown`` may be called from concurrent coordinator threads —
    the parallel routing pool publishes sources while the streaming
    scheduler mints descriptors.  Implementations serialize staging and
    stats updates on :attr:`_lock` (a re-entrant lock, so a locked
    ``publish`` may call locked helpers).  Workers only *resolve* refs
    (read-only) and need no lock.
    """

    name: str = "abstract"

    def __init__(self):
        self.stats = TransportStats()
        #: Final counters of the most recent non-empty epoch, frozen by
        #: ``teardown()``.  Engines read this *after* releasing the
        #: epoch's resources, so per-run ``data_plane`` reports include
        #: teardown-time counters (blocks freed, bytes workers fetched).
        self.last_epoch = TransportStats()
        #: Serializes publish/make_ref/teardown across coordinator
        #: threads (see class docstring).
        self._lock = threading.RLock()
        #: Optional per-query epoch id (stamped by
        #: :class:`repro.runtime.executor.ExecutorView`).  The scheduler
        #: prefixes publish keys with it, so queries running concurrently
        #: against one shared staging area never collide on key names.
        self.epoch: str | None = None

    def setup(self) -> None:
        """Acquire transport resources (idempotent; optional)."""

    @abstractmethod
    def publish(self, key: str, array: np.ndarray) -> str:
        """Stage ``array`` under ``key`` (idempotent per key)."""

    @abstractmethod
    def make_ref(self, key: str, rows: np.ndarray | None = None
                 ) -> ArrayRef:
        """A descriptor for ``rows`` of the array published under ``key``."""

    def teardown(self) -> None:
        """Release everything published this epoch (idempotent).

        Freezes the epoch's counters — possibly all zero, for an epoch
        that never published — into :attr:`last_epoch` and starts a
        fresh :attr:`stats` epoch.  Engines read :attr:`last_epoch`
        immediately after their own teardown, so per-run ``data_plane``
        reports include teardown-time counters.

        Also folds the frozen epoch into the global ``transport.*``
        metrics counters (see docs/observability.md): subclasses finish
        their own stat updates (segments freed, fetch counters
        collected) *before* delegating here, so the metrics see final
        numbers.  Repeat teardowns freeze an all-zero epoch and record
        nothing.
        """
        with self._lock:
            self.last_epoch = self.stats
            self.stats = TransportStats()
            for stat_name, value in self.last_epoch.as_dict().items():
                if value:
                    METRICS.counter(f"transport.{stat_name}").inc(value)

    def __enter__(self) -> "Transport":
        self.setup()
        return self

    def __exit__(self, *exc) -> None:
        self.teardown()

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"

    # -- shared helpers --------------------------------------------------------

    def _record_shipped(self, ref: ArrayRef) -> ArrayRef:
        with self._lock:
            self.stats.shipped_refs += 1
            self.stats.shipped_bytes += ref.payload_bytes
        return ref

    @staticmethod
    def _normalize_rows(rows) -> np.ndarray | None:
        if rows is None:
            return None
        return np.ascontiguousarray(np.asarray(rows, dtype=np.int64))


class PickleTransport(Transport):
    """The historical data plane: partitions travel inside the pickle."""

    name = "pickle"

    def __init__(self):
        super().__init__()
        self._published: dict[str, np.ndarray] = {}

    def publish(self, key: str, array: np.ndarray) -> str:
        with self._lock:
            if key not in self._published:
                with current_tracer().span("publish", cat="transport",
                                           transport=self.name, key=key,
                                           bytes=int(array.nbytes)):
                    self._published[key] = np.ascontiguousarray(array)
        return key

    def make_ref(self, key: str, rows: np.ndarray | None = None
                 ) -> ArrayRef:
        with self._lock:
            src = self._published[key]
        rows = self._normalize_rows(rows)
        part = src if rows is None else np.ascontiguousarray(src[rows])
        ref = ArrayRef(kind="inline", shape=tuple(part.shape),
                       dtype=str(part.dtype), data=part)
        return self._record_shipped(ref)

    def teardown(self) -> None:
        with self._lock:
            self._published.clear()
            super().teardown()


class SharedMemoryTransport(Transport):
    """Zero-copy plane: sources live in shared memory, refs carry rows."""

    name = "shm"

    def __init__(self):
        super().__init__()
        # key -> (segment name | None for empty arrays, shape, dtype)
        self._meta: dict[str, tuple[str | None, tuple[int, ...], str]] = {}
        self._segments: dict[str, shared_memory.SharedMemory] = {}

    @property
    def active_segments(self) -> tuple[str, ...]:
        """Names of segments currently owned (empty after teardown)."""
        return tuple(self._segments)

    def publish(self, key: str, array: np.ndarray) -> str:
        with self._lock:
            if key in self._meta:
                return key
            arr = np.ascontiguousarray(array)
            if arr.nbytes == 0:
                # SharedMemory cannot hold zero bytes; empty arrays ship
                # as (tiny) inline refs instead.
                self._meta[key] = (None, tuple(arr.shape), str(arr.dtype))
                return key
            with current_tracer().span("publish", cat="transport",
                                       transport=self.name, key=key,
                                       bytes=int(arr.nbytes)):
                seg = shared_memory.SharedMemory(create=True,
                                                 size=arr.nbytes)
                np.ndarray(arr.shape, dtype=arr.dtype,
                           buffer=seg.buf)[...] = arr
            self._segments[seg.name] = seg
            self._meta[key] = (seg.name, tuple(arr.shape), str(arr.dtype))
            self.stats.published_blocks += 1
            self.stats.published_bytes += int(arr.nbytes)
        return key

    def make_ref(self, key: str, rows: np.ndarray | None = None
                 ) -> ArrayRef:
        with self._lock:
            block, shape, dtype = self._meta[key]
        rows = self._normalize_rows(rows)
        if block is None or (rows is not None and rows.shape[0] == 0):
            empty_shape = ((0,) + shape[1:]) if rows is not None else shape
            ref = ArrayRef(kind="inline", shape=empty_shape, dtype=dtype,
                           data=np.empty(empty_shape, dtype=np.dtype(dtype)))
        else:
            ref = ArrayRef(kind="shm", shape=shape, dtype=dtype,
                           block=block, rows=rows)
        return self._record_shipped(ref)

    def teardown(self) -> None:
        with self._lock:
            for seg in self._segments.values():
                try:
                    seg.close()
                    seg.unlink()
                    self.stats.freed_blocks += 1
                except FileNotFoundError:  # pragma: no cover - gone
                    pass
            self._segments.clear()
            self._meta.clear()
            super().teardown()


@dataclass(frozen=True)
class TransportSpec:
    """One registered transport: key, class path, one-line summary.

    ``module``/``attr`` keep the registration lazy — registering ``tcp``
    must not import :mod:`repro.net` (and certainly not open sockets)
    until someone actually asks for it.
    """

    key: str
    module: str
    attr: str
    summary: str = ""

    def load(self) -> type:
        import importlib

        return getattr(importlib.import_module(self.module), self.attr)


_TRANSPORT_REGISTRY: dict[str, TransportSpec] = {}


def register_transport(key: str, cls: type | None = None, *,
                       lazy: str | None = None, summary: str = "") -> None:
    """Register a transport class under ``key``.

    Pass either a concrete ``cls`` or a ``lazy`` ``"module:attr"`` path
    (resolved on first :func:`create_transport` call).  Mirrors
    :mod:`repro.engines.registry`: re-registering an existing key is a
    :class:`ConfigError`.
    """
    if key in _TRANSPORT_REGISTRY:
        raise ConfigError(f"transport {key!r} is already registered")
    if (cls is None) == (lazy is None):
        raise ConfigError("register_transport needs exactly one of "
                          "cls= or lazy='module:attr'")
    if cls is not None:
        # Already imported, so load() is a cheap sys.modules lookup.
        module, attr = cls.__module__, cls.__qualname__
    else:
        module, _, attr = lazy.partition(":")
    _TRANSPORT_REGISTRY[key] = TransportSpec(key=key, module=module,
                                             attr=attr, summary=summary)


def available_transports() -> tuple[str, ...]:
    """Registered transport keys, in registration order."""
    return tuple(_TRANSPORT_REGISTRY)


def transport_class(name: str) -> type:
    """The :class:`Transport` subclass registered under ``name``."""
    try:
        spec = _TRANSPORT_REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown transport {name!r}; "
            f"choose from {available_transports()}") from None
    return spec.load()


def default_transport_name(fallback: str = "pickle") -> str:
    """Transport name from ``REPRO_TRANSPORT`` (default ``fallback``)."""
    name = os.environ.get(TRANSPORT_ENV_VAR, fallback)
    if name not in _TRANSPORT_REGISTRY:
        raise ConfigError(
            f"{TRANSPORT_ENV_VAR} must be one of {available_transports()}, "
            f"got {name!r}")
    return name


def create_transport(name: "str | Transport | None" = None) -> Transport:
    """Instantiate a transport by name (``pickle``/``shm``/``tcp``).

    ``None`` resolves through :func:`default_transport_name`; an existing
    :class:`Transport` instance passes through unchanged.  Unknown names
    — whether from an argument or from ``REPRO_TRANSPORT`` — raise
    :class:`ConfigError` naming the registered transports.
    """
    if isinstance(name, Transport):
        return name
    if name is None:
        name = default_transport_name()
    return transport_class(name)()


register_transport("pickle", PickleTransport,
                   summary="partitions travel inside pickled payloads")
register_transport("shm", SharedMemoryTransport,
                   summary="zero-copy shared-memory blocks, same host")
register_transport("tcp", lazy="repro.net.transport:TcpTransport",
                   summary="TCP block store for multi-machine clusters")
