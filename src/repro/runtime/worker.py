"""Worker-side task payloads and the top-level task functions.

Everything in this module must stay pickle-friendly and importable from a
fresh interpreter: process backends ship :class:`WorkerTask` objects to
spawned/forked workers and call the *top-level* functions below by
reference.  Keep task functions at module scope (no closures, no lambdas,
no bound methods) — that is the spawn-safety rule documented in
docs/runtime.md.

Task payload arrays arrive either as plain ``int64`` matrices (the
pickle data plane) or as :class:`repro.runtime.transport.ArrayRef`
descriptors (the shared-memory data plane); every task function resolves
them through :func:`repro.runtime.transport.resolve_array_ref`, so the
worker-side code is transport-agnostic.

A task deliberately never raises across the process boundary.  The two
modelled failure modes are encoded in the returned
:class:`WorkerTaskResult` (``failure="budget"``) or detected before tasks
are built (OOM happens at shuffle time in the coordinator); anything else
is reported as ``failure="crash"`` with a reason string.  The scheduler
re-raises the right :mod:`repro.errors` type in the coordinator, so
pickling exotic exception objects is never needed.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass, field

import numpy as np

from ..data.database import Database
from ..data.relation import Relation
from ..errors import BudgetExceeded
from ..kernels import create_kernel
from ..kernels.binary import hash_join
from ..obs.tracing import current_tracer, set_thread_tracer, task_tracer
from ..query.query import JoinQuery
from ..wcoj.cache import IntersectionCache
from ..wcoj.leapfrog import LeapfrogStats, build_tries, leapfrog_join
from .transport import resolve_array_ref

__all__ = ["WorkerTask", "WorkerTaskResult", "execute_worker_task",
           "BagTask", "BagTaskResult", "materialize_bag_task",
           "PartitionJoinTask", "join_partition_pair_task",
           "join_partition_task"]


@dataclass
class WorkerTask:
    """One worker's share of a one-round plan: its cubes, ready to run.

    ``cubes`` holds, per owned hypercube, one entry per atom of the
    (localized) query: either a plain numpy column batch (pickle data
    plane) or an :class:`~repro.runtime.transport.ArrayRef` descriptor
    the worker resolves locally (shared-memory data plane).

    ``cache_capacity`` (values) builds a fresh per-cube
    :class:`~repro.wcoj.cache.IntersectionCache` on the worker — caches
    are worker-local state and never cross the process boundary.
    """

    worker: int
    query: JoinQuery                      # localized query (unique names)
    order: tuple[str, ...]
    cubes: list[tuple] = field(default_factory=list)
    budget: int | None = None             # intersection-work cap (total)
    cache_capacity: int | None = None     # per-cube intersection cache
    trace: dict | None = None             # obs.tracing trace context
    kernel: str = "wcoj"                  # repro.kernels key (plain str
                                          # so it survives spawn/remote)

    @property
    def num_tuples(self) -> int:
        total = 0
        for cube in self.cubes:
            for a in cube:
                total += int(a.shape[0]) if isinstance(a, np.ndarray) \
                    else a.num_rows
        return total


@dataclass
class WorkerTaskResult:
    """What one task produced, plus measured per-phase wall-clock."""

    worker: int
    count: int = 0
    level_tuples: list[int] = field(default_factory=list)
    intersection_work: int = 0
    cubes_run: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    build_seconds: float = 0.0
    join_seconds: float = 0.0
    total_seconds: float = 0.0
    failure: str | None = None            # None | "budget" | "crash"
    failure_info: tuple = ()
    spans: list = field(default_factory=list)  # worker-recorded spans

    @property
    def ok(self) -> bool:
        return self.failure is None


def execute_worker_task(task: WorkerTask) -> WorkerTaskResult:
    """Run Leapfrog over every cube of ``task`` (build tries, join, sum).

    Top-level and self-contained on purpose: safe to call through any
    executor backend, including spawned processes.

    When ``task.trace`` asks for tracing and no recording tracer is
    current (a fresh worker process), spans are collected locally and
    shipped home in ``result.spans`` — even when the task fails, so
    crashed tasks still contribute to the merged timeline.  On backends
    sharing the coordinator's process the spans go straight into the
    current tracer instead.
    """
    local = task_tracer(task.trace)
    if not local.enabled:
        return _execute_worker_task(task)
    previous = set_thread_tracer(local)
    try:
        result = _execute_worker_task(task)
    finally:
        set_thread_tracer(previous)
    result.spans = local.export_payload()
    return result


def _execute_worker_task(task: WorkerTask) -> WorkerTaskResult:
    start = time.perf_counter()
    tracer = current_tracer()
    result = WorkerTaskResult(worker=task.worker,
                              level_tuples=[0] * len(task.order))
    try:
        atoms = task.query.atoms
        for refs in task.cubes:
            arrays = tuple(resolve_array_ref(r) for r in refs)
            db = Database(
                Relation(atom.relation, atom.attributes, arr, dedup=False)
                for atom, arr in zip(atoms, arrays))
            remaining = None
            if task.budget is not None:
                remaining = task.budget - result.intersection_work
                if remaining <= 0:
                    raise BudgetExceeded(result.intersection_work,
                                         task.budget)
            cache = None
            if task.kernel == "wcoj" and task.cache_capacity is not None:
                cache = IntersectionCache(task.cache_capacity)
            t0 = time.perf_counter()
            # With a cache, leapfrog builds its own tries (mirrors the
            # inline cached path exactly, so hit/miss counts match).
            # Non-wcoj kernels build no tries (and have no cache).
            tries = None
            if task.kernel == "wcoj" and cache is None:
                with tracer.span("build_tries", cat="task",
                                 worker=task.worker):
                    tries = build_tries(task.query, db, task.order)
            t1 = time.perf_counter()
            stats = LeapfrogStats()
            try:
                if task.kernel == "wcoj":
                    with tracer.span("leapfrog", cat="task",
                                     worker=task.worker):
                        join = leapfrog_join(task.query, db, task.order,
                                             tries=tries, cache=cache,
                                             budget=remaining,
                                             stats=stats)
                else:
                    with tracer.span("kernel", cat="task",
                                     worker=task.worker,
                                     kernel=task.kernel):
                        join = create_kernel(task.kernel).execute(
                            task.query, db, task.order,
                            budget=remaining, stats=stats)
            finally:
                # Partial work still counts toward the budget on failure.
                result.intersection_work += stats.intersection_work
                for d in range(len(task.order)):
                    if d < len(stats.level_tuples):
                        result.level_tuples[d] += stats.level_tuples[d]
                result.build_seconds += t1 - t0
                result.join_seconds += time.perf_counter() - t1
                if cache is not None:
                    result.cache_hits += cache.hits
                    result.cache_misses += cache.misses
            result.count += join.count
            result.cubes_run += 1
    except BudgetExceeded as exc:
        result.failure = "budget"
        result.failure_info = (int(exc.work_done), int(exc.budget))
    except Exception as exc:
        result.failure = "crash"
        result.failure_info = (
            f"{type(exc).__name__}: {exc}",
            traceback.format_exc(limit=5),
        )
    result.total_seconds = time.perf_counter() - start
    # The whole-task span is synthesized after the fact so it can carry
    # the task's outcome (count, cubes run, failure mode) in its args.
    tracer.add_span("worker_task", time.time() - result.total_seconds,
                    result.total_seconds, cat="task", worker=task.worker,
                    cubes=result.cubes_run, count=result.count,
                    failure=result.failure or "ok")
    return result


@dataclass
class BagTask:
    """Materialize one GHD bag worst-case-optimally (Yannakakis phase 1).

    ``arrays`` holds one entry per atom of ``query`` — a plain array or a
    transport descriptor of the *whole* source relation (bags never
    pre-partition their inputs; under shm the broadcast is zero-copy).
    """

    index: int
    query: JoinQuery
    order: tuple[str, ...]
    arrays: tuple = ()
    budget: int | None = None
    trace: dict | None = None             # obs.tracing trace context
    kernel: str = "wcoj"                  # repro.kernels key for this bag


@dataclass
class BagTaskResult:
    """One materialized bag (or how its task failed)."""

    index: int
    attrs: tuple[str, ...] = ()
    data: np.ndarray | None = None
    work: int = 0
    total_seconds: float = 0.0
    failure: str | None = None            # None | "budget" | "crash"
    failure_info: tuple = ()
    spans: list = field(default_factory=list)  # worker-recorded spans

    @property
    def ok(self) -> bool:
        return self.failure is None


def materialize_bag_task(task: BagTask) -> BagTaskResult:
    """Worst-case-optimally join one bag's atoms (top-level, spawn-safe).

    Trace handling mirrors :func:`execute_worker_task`: a fresh worker
    process records into a local tracer and ships ``result.spans`` home.
    """
    local = task_tracer(task.trace)
    if not local.enabled:
        return _materialize_bag_task(task)
    previous = set_thread_tracer(local)
    try:
        result = _materialize_bag_task(task)
    finally:
        set_thread_tracer(previous)
    result.spans = local.export_payload()
    return result


def _materialize_bag_task(task: BagTask) -> BagTaskResult:
    start = time.perf_counter()
    result = BagTaskResult(index=task.index, attrs=tuple(task.order))
    try:
        relations: dict[str, Relation] = {}
        for atom, ref in zip(task.query.atoms, task.arrays):
            if atom.relation not in relations:
                relations[atom.relation] = Relation(
                    atom.relation, atom.attributes,
                    resolve_array_ref(ref), dedup=False)
        db = Database(relations.values())
        if task.kernel == "wcoj":
            with current_tracer().span("leapfrog", cat="task",
                                       bag=task.index):
                res = leapfrog_join(task.query, db, order=task.order,
                                    materialize=True, budget=task.budget)
        else:
            with current_tracer().span("kernel", cat="task",
                                       bag=task.index, kernel=task.kernel):
                res = create_kernel(task.kernel).execute(
                    task.query, db, task.order, materialize=True,
                    budget=task.budget)
        result.data = res.relation.data
        result.work = res.stats.intersection_work
    except BudgetExceeded as exc:
        result.failure = "budget"
        result.failure_info = (int(exc.work_done), int(exc.budget))
    except Exception as exc:
        result.failure = "crash"
        result.failure_info = (
            f"{type(exc).__name__}: {exc}",
            traceback.format_exc(limit=5),
        )
    result.total_seconds = time.perf_counter() - start
    current_tracer().add_span(
        "bag_task", time.time() - result.total_seconds,
        result.total_seconds, cat="task", bag=task.index,
        failure=result.failure or "ok")
    return result


@dataclass
class PartitionJoinTask:
    """One co-partitioned (left, right) pair of a SparkSQL-style step."""

    left: object                           # ndarray | ArrayRef
    left_attrs: tuple[str, ...]
    left_name: str
    right: object
    right_attrs: tuple[str, ...]
    right_name: str


def join_partition_pair_task(task: PartitionJoinTask) -> Relation:
    """Natural-join one co-partitioned pair shipped as descriptors.

    Both sides were hash-partitioned on their shared attributes, so
    partition outputs are disjoint and the coordinator may concatenate
    them without re-deduplication.
    """
    left = Relation(task.left_name, task.left_attrs,
                    resolve_array_ref(task.left), dedup=False)
    right = Relation(task.right_name, task.right_attrs,
                     resolve_array_ref(task.right), dedup=False)
    return hash_join(left, right)


def join_partition_task(pair: tuple[Relation, Relation]) -> Relation:
    """Natural-join one co-partitioned (left, right) pair of Relations.

    Legacy entry point predating the transport data plane; kept for
    callers that already hold materialized partitions.
    """
    left, right = pair
    return hash_join(left, right)
