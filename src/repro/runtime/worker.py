"""Worker-side task payloads and the top-level task functions.

Everything in this module must stay pickle-friendly and importable from a
fresh interpreter: process backends ship :class:`WorkerTask` objects to
spawned/forked workers and call the *top-level* functions below by
reference.  Keep task functions at module scope (no closures, no lambdas,
no bound methods) — that is the spawn-safety rule documented in
docs/runtime.md.

A task deliberately never raises across the process boundary.  The two
modelled failure modes are encoded in the returned
:class:`WorkerTaskResult` (``failure="budget"``) or detected before tasks
are built (OOM happens at shuffle time in the coordinator); anything else
is reported as ``failure="crash"`` with a reason string.  The scheduler
re-raises the right :mod:`repro.errors` type in the coordinator, so
pickling exotic exception objects is never needed.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass, field

import numpy as np

from ..data.database import Database
from ..data.relation import Relation
from ..errors import BudgetExceeded
from ..query.query import JoinQuery
from ..wcoj.leapfrog import LeapfrogStats, build_tries, leapfrog_join

__all__ = ["WorkerTask", "WorkerTaskResult", "execute_worker_task",
           "join_partition_task"]


@dataclass
class WorkerTask:
    """One worker's share of a one-round plan: its cubes, ready to run.

    ``cubes`` holds, per owned hypercube, one numpy column batch per atom
    of the (localized) query — the exact partitions an HCube shuffle
    routed to this worker.  Arrays are plain ``int64`` matrices, so the
    payload pickles compactly for process backends.
    """

    worker: int
    query: JoinQuery                      # localized query (unique names)
    order: tuple[str, ...]
    cubes: list[tuple[np.ndarray, ...]] = field(default_factory=list)
    budget: int | None = None             # intersection-work cap (total)

    @property
    def num_tuples(self) -> int:
        return sum(int(a.shape[0]) for cube in self.cubes for a in cube)


@dataclass
class WorkerTaskResult:
    """What one task produced, plus measured per-phase wall-clock."""

    worker: int
    count: int = 0
    level_tuples: list[int] = field(default_factory=list)
    intersection_work: int = 0
    cubes_run: int = 0
    build_seconds: float = 0.0
    join_seconds: float = 0.0
    total_seconds: float = 0.0
    failure: str | None = None            # None | "budget" | "crash"
    failure_info: tuple = ()

    @property
    def ok(self) -> bool:
        return self.failure is None


def execute_worker_task(task: WorkerTask) -> WorkerTaskResult:
    """Run Leapfrog over every cube of ``task`` (build tries, join, sum).

    Top-level and self-contained on purpose: safe to call through any
    executor backend, including spawned processes.
    """
    start = time.perf_counter()
    result = WorkerTaskResult(worker=task.worker,
                              level_tuples=[0] * len(task.order))
    try:
        atoms = task.query.atoms
        for arrays in task.cubes:
            db = Database(
                Relation(atom.relation, atom.attributes, arr, dedup=False)
                for atom, arr in zip(atoms, arrays))
            remaining = None
            if task.budget is not None:
                remaining = task.budget - result.intersection_work
                if remaining <= 0:
                    raise BudgetExceeded(result.intersection_work,
                                         task.budget)
            t0 = time.perf_counter()
            tries = build_tries(task.query, db, task.order)
            t1 = time.perf_counter()
            stats = LeapfrogStats()
            try:
                join = leapfrog_join(task.query, db, task.order,
                                     tries=tries, budget=remaining,
                                     stats=stats)
            finally:
                # Partial work still counts toward the budget on failure.
                result.intersection_work += stats.intersection_work
                for d in range(len(task.order)):
                    if d < len(stats.level_tuples):
                        result.level_tuples[d] += stats.level_tuples[d]
                result.build_seconds += t1 - t0
                result.join_seconds += time.perf_counter() - t1
            result.count += join.count
            result.cubes_run += 1
    except BudgetExceeded as exc:
        result.failure = "budget"
        result.failure_info = (int(exc.work_done), int(exc.budget))
    except Exception as exc:
        result.failure = "crash"
        result.failure_info = (
            f"{type(exc).__name__}: {exc}",
            traceback.format_exc(limit=5),
        )
    result.total_seconds = time.perf_counter() - start
    return result


def join_partition_task(pair: tuple[Relation, Relation]) -> Relation:
    """Natural-join one co-partitioned (left, right) pair.

    Used by the SparkSQL-style engine: both sides were hash-partitioned
    on their shared attributes, so partition outputs are disjoint and the
    coordinator may concatenate them without re-deduplication.
    """
    left, right = pair
    return left.natural_join(right)
