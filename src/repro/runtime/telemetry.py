"""Measured wall-clock telemetry, side by side with the cost model.

Every engine run already produces a *modeled* :class:`CostBreakdown`
(deterministic counters converted through calibrated rates).  Once plans
execute on a real backend (:mod:`repro.runtime.executor`) we can also
*measure* each phase with ``time.perf_counter``.  A
:class:`RuntimeTelemetry` collects those measurements so benchmarks can
report modeled-vs-measured numbers in one table and catch the places
where the model and the hardware disagree (GIL contention, pickling
overhead, cache effects).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["RuntimeTelemetry", "modeled_vs_measured"]


@dataclass
class RuntimeTelemetry:
    """Measured seconds per phase for one engine run.

    ``phase_seconds`` is wall-clock observed by the coordinating process
    (parallel phases therefore record elapsed time, not CPU time summed
    over workers).  ``worker_seconds`` holds per-worker task durations so
    stragglers are visible; ``worker_cpu_seconds`` sums the busy time the
    workers reported, which exceeds the elapsed wall-clock whenever real
    parallelism happened.
    """

    backend: str = "serial"
    num_workers: int = 1
    phase_seconds: dict[str, float] = field(default_factory=dict)
    worker_seconds: dict[int, float] = field(default_factory=dict)
    tasks_executed: int = 0
    #: Wall-clock during which task *production* (routing/publishing/
    #: descriptor minting on the coordinator) and task *execution*
    #: coexisted — the pipelined-epoch overlap window.  Not a phase:
    #: it measures concurrency between phases, so it is excluded from
    #: :attr:`total` (which would double-count it).  Zero on the
    #: barrier path by construction.
    overlap_seconds: float = 0.0

    @property
    def total(self) -> float:
        return sum(self.phase_seconds.values())

    @property
    def worker_cpu_seconds(self) -> float:
        return sum(self.worker_seconds.values())

    @property
    def straggler_seconds(self) -> float:
        """Duration of the slowest worker task (the parallel makespan)."""
        return max(self.worker_seconds.values(), default=0.0)

    def record(self, phase: str, seconds: float) -> None:
        self.phase_seconds[phase] = \
            self.phase_seconds.get(phase, 0.0) + seconds

    def record_worker(self, worker: int, seconds: float) -> None:
        self.worker_seconds[worker] = \
            self.worker_seconds.get(worker, 0.0) + seconds
        self.tasks_executed += 1

    def record_overlap(self, seconds: float) -> None:
        """Accumulate pipelined mint/execute overlap (see field doc)."""
        self.overlap_seconds += max(0.0, seconds)

    @contextmanager
    def measure(self, phase: str):
        """Time a ``with`` block into ``phase`` (exceptions still count)."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.record(phase, time.perf_counter() - start)

    def as_row(self) -> dict[str, float]:
        row = {f"measured_{k}": v for k, v in self.phase_seconds.items()}
        row["measured_total"] = self.total
        row["measured_overlap"] = self.overlap_seconds
        row["measured_straggler"] = self.straggler_seconds
        return row

    def __str__(self) -> str:
        phases = ", ".join(f"{k}={v:.4f}s"
                           for k, v in self.phase_seconds.items())
        return (f"RuntimeTelemetry({self.backend} x{self.num_workers}: "
                f"{phases}, total={self.total:.4f}s)")


def modeled_vs_measured(breakdown, telemetry: RuntimeTelemetry | None
                        ) -> dict[str, float | None]:
    """One flat record pairing modeled seconds with measured wall-clock.

    ``breakdown`` is a :class:`repro.distributed.metrics.CostBreakdown`;
    ``telemetry`` may be None (purely simulated run), in which case the
    measured columns are None.

    ``measured_overlap`` (pipelined mint/execute overlap window) and
    ``straggler_seconds`` (slowest worker task — the parallel makespan)
    ride along so bench tables show pipeline wins and load imbalance
    without digging through per-run telemetry objects.
    """
    return {
        "modeled_seconds": breakdown.total,
        "measured_seconds": telemetry.total if telemetry else None,
        "measured_overlap": telemetry.overlap_seconds if telemetry
        else None,
        "straggler_seconds": telemetry.straggler_seconds if telemetry
        else None,
        "backend": telemetry.backend if telemetry else "simulated",
    }
