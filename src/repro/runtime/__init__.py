"""Parallel execution runtime: run HCube plans on real worker pools.

The rest of the library *models* a distributed cluster (cost ledgers,
simulated shuffles).  This subsystem adds the missing execution
substrate: an :class:`Executor` abstraction with ``serial``, ``threads``,
``processes`` and ``remote`` (:mod:`repro.net`) backends, a pluggable
data-plane :class:`Transport` (``pickle`` payloads, zero-copy ``shm``
descriptors, or multi-machine ``tcp`` block refs), a scheduler that
turns HCube routing assignments into per-worker :class:`WorkerTask`
batches, spawn-safe worker task functions, and wall-clock telemetry
recorded next to the modeled cost breakdowns.

See docs/runtime.md for backend selection and spawn-safety rules, and
docs/data_plane.md for transport selection and shared-memory lifetime
rules.
"""

from .executor import (
    PIPELINE_ENV_VAR,
    Executor,
    ExecutorView,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    available_backends,
    available_parallelism,
    create_executor,
    default_pipeline,
    executor_for,
)
from .scheduler import (
    MergedOutcome,
    build_routed_tasks,
    build_worker_tasks,
    iter_routed_tasks,
    merge_task_results,
    run_streamed,
    run_streamed_tasks,
    run_worker_tasks,
)
from .telemetry import RuntimeTelemetry, modeled_vs_measured
from .transport import (
    ArrayRef,
    PickleTransport,
    SharedMemoryTransport,
    Transport,
    TransportStats,
    available_transports,
    create_transport,
    default_transport_name,
    register_transport,
    resolve_array_ref,
)
from .worker import (
    BagTask,
    BagTaskResult,
    PartitionJoinTask,
    WorkerTask,
    WorkerTaskResult,
    execute_worker_task,
    join_partition_pair_task,
    join_partition_task,
    materialize_bag_task,
)

__all__ = [
    "Executor",
    "ExecutorView",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "available_backends",
    "available_parallelism",
    "create_executor",
    "default_pipeline",
    "executor_for",
    "PIPELINE_ENV_VAR",
    "MergedOutcome",
    "build_routed_tasks",
    "build_worker_tasks",
    "iter_routed_tasks",
    "merge_task_results",
    "run_streamed",
    "run_streamed_tasks",
    "run_worker_tasks",
    "RuntimeTelemetry",
    "modeled_vs_measured",
    "ArrayRef",
    "Transport",
    "TransportStats",
    "PickleTransport",
    "SharedMemoryTransport",
    "available_transports",
    "create_transport",
    "default_transport_name",
    "register_transport",
    "resolve_array_ref",
    "BagTask",
    "BagTaskResult",
    "PartitionJoinTask",
    "WorkerTask",
    "WorkerTaskResult",
    "execute_worker_task",
    "join_partition_pair_task",
    "join_partition_task",
    "materialize_bag_task",
]
