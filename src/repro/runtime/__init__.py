"""Parallel execution runtime: run HCube plans on real worker pools.

The rest of the library *models* a distributed cluster (cost ledgers,
simulated shuffles).  This subsystem adds the missing execution
substrate: an :class:`Executor` abstraction with ``serial``, ``threads``
and ``processes`` backends, a scheduler that turns an HCube shuffle into
per-worker :class:`WorkerTask` batches, spawn-safe worker task functions,
and wall-clock telemetry recorded next to the modeled cost breakdowns.

See docs/runtime.md for backend selection and spawn-safety rules.
"""

from .executor import (
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    available_parallelism,
    create_executor,
    executor_for,
)
from .scheduler import (
    MergedOutcome,
    build_worker_tasks,
    merge_task_results,
    run_worker_tasks,
)
from .telemetry import RuntimeTelemetry, modeled_vs_measured
from .worker import (
    WorkerTask,
    WorkerTaskResult,
    execute_worker_task,
    join_partition_task,
)

__all__ = [
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "available_parallelism",
    "create_executor",
    "executor_for",
    "MergedOutcome",
    "build_worker_tasks",
    "merge_task_results",
    "run_worker_tasks",
    "RuntimeTelemetry",
    "modeled_vs_measured",
    "WorkerTask",
    "WorkerTaskResult",
    "execute_worker_task",
    "join_partition_task",
]
