"""Length-prefixed binary frames: the one wire format of repro.net.

Every message between a coordinator and a block store or worker agent is
one frame::

    u32  length     (big-endian; bytes that follow, excluding itself)
    u8   opcode     (one of the OP_* constants)
    u32  meta_len
    ...  meta       (UTF-8 JSON object: ids, dtypes, shapes, counters)
    ...  payload    (raw bytes: array data or pickled tasks/results)

JSON meta keeps the protocol debuggable (``tcpdump`` shows readable
headers) while payloads stay raw — array bytes are never base64'd or
pickled twice.  Frames are capped at :data:`MAX_FRAME_BYTES` so a
corrupt length prefix fails loudly instead of attempting a huge read.

Request opcodes: HELLO (handshake), PING (heartbeat), PUT/GET/LIST/FREE
/STAT (block store), TASK (worker agent), BYE (end of session), EXPO
(Prometheus-style text exposition of the peer's metrics registry —
the continuous-export opcode ``repro top`` polls), QUERY (run one
query on a :class:`~repro.net.service.QueryServer`) and CANCEL
(best-effort cancel of a queued QUERY ticket).
Response opcodes: OK (meta only), DATA (meta + payload), ERR (meta
carries ``error`` and ``message``), RESULT (a QUERY's outcome: count,
data-plane stats, cache disposition).

:class:`FrameServer` is the tiny threaded TCP server both the
:class:`~repro.net.blockstore.BlockStoreServer` and the
:class:`~repro.net.agent.WorkerAgent` build on: one accept loop, one
thread per client connection, ``stop()`` closes every socket.

Trust model: TASK payloads are unpickled by the agent, exactly like
Python's own ``multiprocessing`` workers.  repro.net is a data plane for
a cluster you own, not a service to expose to untrusted networks — bind
to loopback or a private interface (the default bind host is
``127.0.0.1``).
"""

from __future__ import annotations

import json
import socket
import struct
import threading

from ..errors import BlockNotFound, NetError

__all__ = [
    "PROTOCOL_VERSION", "MAX_FRAME_BYTES",
    "OP_HELLO", "OP_PING", "OP_PUT", "OP_GET", "OP_LIST", "OP_FREE",
    "OP_STAT", "OP_TASK", "OP_BYE", "OP_EXPO", "OP_QUERY", "OP_CANCEL",
    "OP_OK", "OP_DATA", "OP_ERR", "OP_RESULT",
    "send_frame", "recv_frame", "request", "connect", "FrameServer",
]

PROTOCOL_VERSION = 1

#: Upper bound on one frame (1 GiB) — far above any block this
#: reproduction ships, low enough to reject garbage length prefixes.
MAX_FRAME_BYTES = 1 << 30

OP_HELLO = 1
OP_PING = 2
OP_PUT = 3
OP_GET = 4
OP_LIST = 5
OP_FREE = 6
OP_STAT = 7
OP_TASK = 8
OP_BYE = 9
OP_EXPO = 10
OP_QUERY = 11
OP_CANCEL = 12
OP_OK = 64
OP_DATA = 65
OP_ERR = 66
OP_RESULT = 67

_PREFIX = struct.Struct("!I")
_HEADER = struct.Struct("!BI")        # opcode, meta_len


def send_frame(sock: socket.socket, op: int, meta: dict | None = None,
               payload: bytes = b"") -> None:
    """Serialize and send one frame (single ``sendall`` per part)."""
    meta_bytes = json.dumps(meta or {}, separators=(",", ":")).encode()
    length = _HEADER.size + len(meta_bytes) + len(payload)
    if length > MAX_FRAME_BYTES:
        raise NetError(f"frame of {length} bytes exceeds the "
                       f"{MAX_FRAME_BYTES}-byte cap")
    sock.sendall(_PREFIX.pack(length) + _HEADER.pack(op, len(meta_bytes))
                 + meta_bytes)
    if payload:
        sock.sendall(payload)


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes; EOFError on clean close at offset 0."""
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if remaining == n:
                # repro: lint-ignore[error-taxonomy] clean close at frame boundary is stream-end protocol, which is exactly what EOFError means
                raise EOFError("connection closed")
            raise NetError(f"truncated frame: peer closed with "
                           f"{remaining} of {n} bytes missing")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> tuple[int, dict, bytes]:
    """Read one frame; ``EOFError`` on clean close between frames."""
    (length,) = _PREFIX.unpack(_recv_exact(sock, _PREFIX.size))
    if not _HEADER.size <= length <= MAX_FRAME_BYTES:
        raise NetError(f"invalid frame length {length}")
    body = _recv_exact(sock, length)
    op, meta_len = _HEADER.unpack_from(body)
    if _HEADER.size + meta_len > length:
        raise NetError("invalid frame: meta_len exceeds frame length")
    meta_bytes = body[_HEADER.size:_HEADER.size + meta_len]
    try:
        meta = json.loads(meta_bytes) if meta_len else {}
    except ValueError as exc:
        raise NetError(f"invalid frame meta: {exc}") from None
    return op, meta, body[_HEADER.size + meta_len:]


def request(sock: socket.socket, op: int, meta: dict | None = None,
            payload: bytes = b"") -> tuple[int, dict, bytes]:
    """One request/response round-trip; ERR replies raise.

    ``error == "not-found"`` maps to :class:`BlockNotFound`; every other
    ERR becomes a :class:`NetError` carrying the peer's message.  The
    raised exception carries the full reply meta as ``exc.meta`` so
    callers can recover side-channel fields an ERR frame still delivers
    (a failing agent ships its recorded trace spans this way).
    """
    send_frame(sock, op, meta, payload)
    reply_op, reply_meta, reply_payload = recv_frame(sock)
    if reply_op == OP_ERR:
        error = reply_meta.get("error", "error")
        message = reply_meta.get("message", "")
        if error == "not-found":
            exc: NetError = BlockNotFound(reply_meta.get("block", "?"),
                                          message)
        else:
            exc = NetError(f"{error}: {message}")
        exc.meta = reply_meta
        raise exc
    return reply_op, reply_meta, reply_payload


def connect(host: str, port: int, timeout: float | None = 10.0
            ) -> socket.socket:
    """A connected TCP socket with small-frame latency disabled."""
    sock = socket.create_connection((host, port), timeout=timeout)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return sock


class FrameServer:
    """Threaded TCP server speaking the frame protocol.

    Subclasses implement ``handle(sock, op, meta, payload) -> bool``
    (return False to end that client's connection).  ``port=0`` binds an
    ephemeral port — read the real one from :attr:`port` after
    :meth:`start`.  ``stop()`` closes the listener and every client
    socket, so serving threads (all daemonic) unblock and exit; it is
    idempotent and leaves no listening port behind.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0):
        self.host = host
        self.port = port
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._clients: set[socket.socket] = set()
        self._lock = threading.Lock()
        self._stopped = threading.Event()

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "FrameServer":
        if self._listener is not None:
            return self
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(64)
        self.port = listener.getsockname()[1]
        self._listener = listener
        self._stopped.clear()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, daemon=True,
            name=f"{type(self).__name__}-accept")
        self._accept_thread.start()
        return self

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    @property
    def running(self) -> bool:
        return self._listener is not None and not self._stopped.is_set()

    def stop(self) -> None:
        self._stopped.set()
        listener, self._listener = self._listener, None
        if listener is not None:
            # close() alone does not wake a thread blocked in accept()
            # (the kernel keeps the listening socket alive until accept
            # returns, so the port would stay open).  A dummy connect
            # deterministically unblocks it first.
            dial = "127.0.0.1" if self.host == "0.0.0.0" else self.host
            try:
                socket.create_connection((dial, self.port),
                                         timeout=0.5).close()
            except OSError:
                pass
            try:
                listener.close()
            except OSError:  # pragma: no cover - close() rarely fails
                pass
        with self._lock:
            clients, self._clients = set(self._clients), set()
        for sock in clients:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:  # pragma: no cover
                pass
        thread, self._accept_thread = self._accept_thread, None
        if thread is not None:
            thread.join(timeout=5.0)

    def __enter__(self) -> "FrameServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- serving -------------------------------------------------------------

    def handle(self, sock: socket.socket, op: int, meta: dict,
               payload: bytes) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def _accept_loop(self) -> None:
        listener = self._listener
        while not self._stopped.is_set() and listener is not None:
            try:
                sock, _addr = listener.accept()
            except OSError:      # listener closed by stop()
                return
            if self._stopped.is_set():   # the stop() wake-up connect
                sock.close()
                return
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            with self._lock:
                self._clients.add(sock)
            threading.Thread(target=self._client_loop, args=(sock,),
                             daemon=True,
                             name=f"{type(self).__name__}-client").start()

    def _client_loop(self, sock: socket.socket) -> None:
        try:
            while not self._stopped.is_set():
                try:
                    op, meta, payload = recv_frame(sock)
                except (EOFError, OSError, NetError):
                    return
                try:
                    keep_going = self.handle(sock, op, meta, payload)
                except (BrokenPipeError, ConnectionError):
                    return
                except Exception as exc:   # never kill the serving thread
                    try:
                        send_frame(sock, OP_ERR,
                                   {"error": type(exc).__name__,
                                    "message": str(exc)})
                    except OSError:
                        return
                    continue
                if not keep_going:
                    return
        finally:
            with self._lock:
                self._clients.discard(sock)
            try:
                sock.close()
            except OSError:  # pragma: no cover
                pass
