"""TcpTransport: the multi-machine data plane behind the Transport seam.

Implements :class:`repro.runtime.transport.Transport` so the scheduler,
the engines and the executors need zero protocol changes: ``publish``
PUTs each source array into a :class:`~repro.net.blockstore.BlockStore
Server` (owned by this transport by default, or an external one shared
by several coordinators), and ``make_ref`` mints descriptors carrying
``(host, port, block_id, dtype, shape, rows)`` — workers anywhere fetch
the block over TCP and slice their own partitions.

Epoch lifecycle (mirrors the shm rules in docs/data_plane.md):

- ``publish`` lazily stands the store up (or connects to the external
  one) and stages each key exactly once under a fresh uuid-suffixed
  block id — ids are single-use, so worker-side fetch caches can never
  serve a stale epoch.
- ``teardown`` collects the server's GET counters into
  ``stats.fetched_blocks``/``fetched_bytes`` (what workers physically
  pulled — accounted to the block store, not the task payload), FREEs
  every published block, closes the client socket, and stops the owned
  server.  It is idempotent, robust against a store that already died,
  and leaves no listening port behind.

Addressing: the store binds ``bind_host`` (default ``127.0.0.1``;
``REPRO_BIND_HOST`` or ``0.0.0.0`` for real multi-machine runs) and
descriptors advertise ``advertise_host`` (``REPRO_ADVERTISE_HOST``) —
the address *workers* should dial, which differs from the bind address
exactly when binding a wildcard interface.
"""

from __future__ import annotations

import os
import uuid

import numpy as np

from ..errors import BlockNotFound, NetError
from ..obs.log import get_logger, kv
from ..obs.tracing import current_tracer
from ..runtime.transport import ArrayRef, Transport
from .blockstore import BlockStoreClient, BlockStoreServer

log = get_logger("repro.net.transport")

__all__ = ["TcpTransport", "BIND_HOST_ENV_VAR", "ADVERTISE_HOST_ENV_VAR"]

BIND_HOST_ENV_VAR = "REPRO_BIND_HOST"
ADVERTISE_HOST_ENV_VAR = "REPRO_ADVERTISE_HOST"


def _parse_addr(store) -> tuple[str, int] | None:
    if store is None:
        return None
    if isinstance(store, str):
        host, _, port = store.rpartition(":")
        return (host, int(port))
    host, port = store
    return (str(host), int(port))


class TcpTransport(Transport):
    """Sources live in a TCP block store; refs carry (host, port, id)."""

    name = "tcp"

    def __init__(self, store: "str | tuple[str, int] | None" = None,
                 bind_host: str | None = None,
                 advertise_host: str | None = None):
        super().__init__()
        #: External store address; None means this transport owns one.
        self._external = _parse_addr(store)
        self._bind_host = bind_host or os.environ.get(
            BIND_HOST_ENV_VAR, "127.0.0.1")
        self._advertise = advertise_host or os.environ.get(
            ADVERTISE_HOST_ENV_VAR)
        self._server: BlockStoreServer | None = None
        self._client: BlockStoreClient | None = None
        self._addr: tuple[str, int] | None = None
        #: Server GET counters at connect time — an external store is
        #: shared and monotonic, so per-epoch fetch stats are deltas.
        self._stat_base: tuple[int, int] = (0, 0)
        # key -> (block id | None for empty arrays, shape, dtype)
        self._meta: dict[str, tuple[str | None, tuple[int, ...], str]] = {}

    @property
    def store_address(self) -> tuple[str, int] | None:
        """(host, port) workers dial this epoch; None when torn down."""
        return self._addr

    # -- epoch lifecycle -----------------------------------------------------

    def setup(self) -> None:
        self._ensure_store()

    def _ensure_store(self) -> BlockStoreClient:
        if self._client is not None:
            return self._client
        if self._external is not None:
            self._addr = self._external
        else:
            self._server = BlockStoreServer(host=self._bind_host)
            self._server.start()
            host = self._advertise
            if host is None:
                # A wildcard bind is unreachable as a dial address.
                host = ("127.0.0.1" if self._bind_host == "0.0.0.0"
                        else self._bind_host)
            self._addr = (host, self._server.port)
        self._client = BlockStoreClient(*self._addr)
        if self._external is not None:
            try:
                stat = self._client.stat()
                self._stat_base = (int(stat.get("gets", 0)),
                                   int(stat.get("bytes_out", 0)))
            except (NetError, OSError, EOFError):  # pragma: no cover
                self._stat_base = (0, 0)
        else:
            self._stat_base = (0, 0)
        return self._client

    def publish(self, key: str, array: np.ndarray) -> str:
        # The lock (Transport._lock) serializes the whole PUT: the
        # client socket is shared, so two coordinator threads must not
        # interleave frames on it.
        with self._lock:
            if key in self._meta:
                return key
            client = self._ensure_store()
            arr = np.ascontiguousarray(array)
            if arr.nbytes == 0:
                # Empty arrays ship as (tiny) inline refs, like shm.
                self._meta[key] = (None, tuple(arr.shape), str(arr.dtype))
                return key
            block = f"{key}@{uuid.uuid4().hex[:12]}"
            with current_tracer().span("publish", cat="transport",
                                       transport=self.name, key=key,
                                       bytes=int(arr.nbytes)):
                client.put(block, arr)
            log.debug("block published %s",
                      kv(block=block, bytes=int(arr.nbytes)))
            self._meta[key] = (block, tuple(arr.shape), str(arr.dtype))
            self.stats.published_blocks += 1
            self.stats.published_bytes += int(arr.nbytes)
        return key

    def make_ref(self, key: str, rows: np.ndarray | None = None
                 ) -> ArrayRef:
        with self._lock:
            block, shape, dtype = self._meta[key]
        rows = self._normalize_rows(rows)
        if block is None or (rows is not None and rows.shape[0] == 0):
            empty_shape = ((0,) + shape[1:]) if rows is not None else shape
            ref = ArrayRef(kind="inline", shape=empty_shape, dtype=dtype,
                           data=np.empty(empty_shape, dtype=np.dtype(dtype)))
        else:
            host, port = self._addr
            ref = ArrayRef(kind="tcp", shape=shape, dtype=dtype,
                           block=block, rows=rows, host=host, port=port)
        return self._record_shipped(ref)

    def teardown(self) -> None:
        with self._lock:
            self._teardown_locked()

    def _teardown_locked(self) -> None:
        client, self._client = self._client, None
        if client is not None:
            try:
                stat = client.stat()
                # Coordinator-side traffic is PUT-only, so the server's
                # GET counters (relative to the connect-time baseline)
                # are exactly what workers fetched this epoch.
                self.stats.fetched_blocks += max(
                    0, int(stat.get("gets", 0)) - self._stat_base[0])
                self.stats.fetched_bytes += max(
                    0, int(stat.get("bytes_out", 0)) - self._stat_base[1])
                for block, _shape, _dtype in self._meta.values():
                    if block is None:
                        continue
                    try:
                        client.free(block)
                        self.stats.freed_blocks += 1
                    except BlockNotFound:  # pragma: no cover - freed twice
                        pass
            except (NetError, OSError, EOFError):
                # The store died (or an external one vanished) — there
                # is nothing left to free; still stop our server below.
                pass
            finally:
                client.close()
        server, self._server = self._server, None
        if server is not None:
            server.stop()
        self._addr = None
        self._meta.clear()
        super().teardown()
