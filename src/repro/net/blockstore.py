"""TCP block store: the staging area of the multi-machine data plane.

The coordinator PUTs routed column blocks once; workers — local or on
other machines — GET the blocks they were handed descriptors for and
slice their own partitions.  That keeps task payloads descriptor-only
(the HCube design goal) even when no shared memory exists between
coordinator and worker.

Ops (see :mod:`repro.net.protocol` for the frame format):

- ``PUT  {block, dtype, shape} + bytes`` — stage a block; duplicate ids
  are refused (block ids are single-assignment within an epoch).
- ``GET  {block}`` — fetch a staged block; unknown ids are refused
  (:class:`~repro.errors.BlockNotFound`), never answered with garbage.
- ``LIST`` — ids and sizes of everything currently held.
- ``FREE {block}`` — release one block; double-frees are refused.
- ``STAT`` — server-side counters (puts/gets/frees, bytes in/out), the
  source of the per-run ``fetched_bytes`` a coordinator reports.
- ``PING`` / ``BYE`` — liveness and polite disconnect.

The server handles clients concurrently (one thread per connection,
store guarded by a lock) and ``stop()`` closes every socket — a stopped
store leaves no listening port.
"""

from __future__ import annotations

import os
import socket
import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ..errors import NetError
from ..obs.log import get_logger, kv
from ..obs.metrics import METRICS
from ..obs.tracing import current_tracer
from .protocol import (
    OP_BYE,
    OP_DATA,
    OP_ERR,
    OP_FREE,
    OP_GET,
    OP_HELLO,
    OP_LIST,
    OP_OK,
    OP_PING,
    OP_PUT,
    OP_STAT,
    PROTOCOL_VERSION,
    FrameServer,
    connect,
    request,
    send_frame,
)

__all__ = ["BlockStoreStats", "BlockStoreServer", "BlockStoreClient",
           "fetch_block_array", "clear_fetch_cache"]

log = get_logger("repro.net.blockstore")


@dataclass
class BlockStoreStats:
    """What one store moved, from the server's view."""

    puts: int = 0
    gets: int = 0
    frees: int = 0
    bytes_in: int = 0
    bytes_out: int = 0

    def as_dict(self) -> dict[str, int]:
        return {"puts": self.puts, "gets": self.gets, "frees": self.frees,
                "bytes_in": self.bytes_in, "bytes_out": self.bytes_out}


class BlockStoreServer(FrameServer):
    """Concurrent in-memory block server for routed column blocks."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0):
        super().__init__(host, port)
        # block id -> (bytes, dtype str, shape tuple)
        self._blocks: dict[str, tuple[bytes, str, tuple[int, ...]]] = {}
        self._store_lock = threading.Lock()
        self.stats = BlockStoreStats()

    @property
    def blocks(self) -> tuple[str, ...]:
        with self._store_lock:
            return tuple(self._blocks)

    def stop(self) -> None:
        was_running = self.running
        super().stop()
        if was_running:
            log.info("block store stopped %s",
                     kv(port=self.port, **self.stats.as_dict()))

    def handle(self, sock: socket.socket, op: int, meta: dict,
               payload: bytes) -> bool:
        if op == OP_PUT:
            block = meta["block"]
            with self._store_lock:
                if block in self._blocks:
                    send_frame(sock, OP_ERR,
                               {"error": "exists", "block": block,
                                "message": f"block {block!r} was already "
                                           f"put; ids are single-use"})
                    return True
                self._blocks[block] = (payload, meta["dtype"],
                                       tuple(meta["shape"]))
                self.stats.puts += 1
                self.stats.bytes_in += len(payload)
            send_frame(sock, OP_OK, {"block": block})
        elif op == OP_GET:
            block = meta["block"]
            with self._store_lock:
                entry = self._blocks.get(block)
                if entry is not None:
                    self.stats.gets += 1
                    self.stats.bytes_out += len(entry[0])
            if entry is None:
                send_frame(sock, OP_ERR,
                           {"error": "not-found", "block": block,
                            "message": "never put, or already freed"})
            else:
                data, dtype, shape = entry
                send_frame(sock, OP_DATA,
                           {"block": block, "dtype": dtype,
                            "shape": list(shape)}, data)
        elif op == OP_LIST:
            with self._store_lock:
                listing = {b: len(e[0]) for b, e in self._blocks.items()}
            send_frame(sock, OP_OK, {"blocks": listing})
        elif op == OP_FREE:
            block = meta["block"]
            with self._store_lock:
                entry = self._blocks.pop(block, None)
                if entry is not None:
                    self.stats.frees += 1
            if entry is None:
                send_frame(sock, OP_ERR,
                           {"error": "not-found", "block": block,
                            "message": "double-free or never put"})
            else:
                send_frame(sock, OP_OK, {"block": block})
        elif op == OP_STAT:
            with self._store_lock:
                stat = dict(self.stats.as_dict(),
                            blocks_held=len(self._blocks))
            send_frame(sock, OP_OK, stat)
        elif op in (OP_PING, OP_HELLO):
            send_frame(sock, OP_OK, {"version": PROTOCOL_VERSION,
                                     "service": "blockstore"})
        elif op == OP_BYE:
            send_frame(sock, OP_OK, {})
            return False
        else:
            send_frame(sock, OP_ERR,
                       {"error": "unknown-op",
                        "message": f"opcode {op} is not a block store op"})
        return True


class BlockStoreClient:
    """One connection to a block store; methods mirror the ops."""

    def __init__(self, host: str, port: int,
                 timeout: float | None = 10.0):
        self.host = host
        self.port = port
        self._sock = connect(host, port, timeout=timeout)

    def put(self, block: str, array: np.ndarray) -> None:
        arr = np.ascontiguousarray(array)
        request(self._sock, OP_PUT,
                {"block": block, "dtype": str(arr.dtype),
                 "shape": list(arr.shape)}, arr.tobytes())

    def get(self, block: str) -> np.ndarray:
        _op, meta, payload = request(self._sock, OP_GET, {"block": block})
        arr = np.frombuffer(payload, dtype=np.dtype(meta["dtype"]))
        return arr.reshape(tuple(meta["shape"]))   # read-only view

    def list(self) -> dict[str, int]:
        _op, meta, _ = request(self._sock, OP_LIST)
        return meta["blocks"]

    def free(self, block: str) -> None:
        request(self._sock, OP_FREE, {"block": block})

    def stat(self) -> dict[str, int]:
        _op, meta, _ = request(self._sock, OP_STAT)
        return meta

    def ping(self) -> bool:
        op, _meta, _ = request(self._sock, OP_PING)
        return op == OP_OK

    def close(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                send_frame(sock, OP_BYE)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:  # pragma: no cover
                pass

    def __enter__(self) -> "BlockStoreClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# -- worker-side cached fetch -------------------------------------------------

#: Blocks a worker process keeps around between descriptor resolutions.
#: One WorkerTask carries a ref per (atom, cube), so the same source
#: block is typically resolved many times — the cache turns that into
#: one GET per block per worker process.  Block ids embed a per-epoch
#: uuid (see TcpTransport.publish), so stale entries can never be
#: requested again and FIFO eviction is safe.  The cap is in *bytes*
#: (REPRO_NET_CACHE_BYTES, default 256 MiB): long-lived worker
#: processes see a fresh set of block ids every epoch, so an
#: entry-count cap would let large dead blocks pile up indefinitely.
_FETCH_CACHE_MAX_BYTES = int(float(os.environ.get(
    "REPRO_NET_CACHE_BYTES", 256 * 1024 * 1024)))
_fetch_cache: OrderedDict[tuple[str, int, str], np.ndarray] = OrderedDict()
_fetch_cache_bytes = 0
_fetch_lock = threading.Lock()


def clear_fetch_cache() -> None:
    """Drop every cached block (tests / long-lived agents)."""
    global _fetch_cache_bytes
    with _fetch_lock:
        _fetch_cache.clear()
        _fetch_cache_bytes = 0


def fetch_block_array(host: str, port: int, block: str, *,
                      shape: tuple[int, ...] | None = None,
                      dtype: np.dtype | None = None) -> np.ndarray:
    """GET ``block`` from the store at ``(host, port)``, with caching.

    Returns a read-only array (callers slice or copy — exactly what
    :func:`repro.runtime.transport.resolve_array_ref` does).  ``shape``
    and ``dtype`` are cross-checked against the server's metadata when
    given: a mismatch means the descriptor and the store disagree, which
    is a protocol bug worth failing loudly on.
    """
    global _fetch_cache_bytes
    key = (host, port, block)
    with _fetch_lock:
        cached = _fetch_cache.get(key)
    if cached is not None:
        METRICS.counter("net.fetch_cache_hits").inc()
    if cached is None:
        with current_tracer().span("fetch_block", cat="net",
                                   block=block, store=f"{host}:{port}"):
            with BlockStoreClient(host, port) as client:
                cached = client.get(block)
        METRICS.counter("net.fetched_blocks").inc()
        METRICS.counter("net.fetched_bytes").inc(cached.nbytes)
        if cached.nbytes <= _FETCH_CACHE_MAX_BYTES:
            with _fetch_lock:
                if key not in _fetch_cache:
                    _fetch_cache[key] = cached
                    _fetch_cache_bytes += cached.nbytes
                while _fetch_cache_bytes > _FETCH_CACHE_MAX_BYTES \
                        and len(_fetch_cache) > 1:
                    _, evicted = _fetch_cache.popitem(last=False)
                    _fetch_cache_bytes -= evicted.nbytes
    if shape is not None and tuple(cached.shape) != tuple(shape):
        raise NetError(f"block {block!r}: descriptor shape {tuple(shape)} "
                       f"!= stored shape {tuple(cached.shape)}")
    if dtype is not None and cached.dtype != np.dtype(dtype):
        raise NetError(f"block {block!r}: descriptor dtype {dtype} "
                       f"!= stored dtype {cached.dtype}")
    return cached
