"""repro.net — the multi-machine data plane and cluster protocol.

Everything the single-host runtime (:mod:`repro.runtime`) needs to span
real machines, behind the seams that already exist:

- :mod:`repro.net.protocol` — length-prefixed binary frames (one wire
  format for every service) and the threaded :class:`FrameServer` base;
- :mod:`repro.net.blockstore` — a TCP block store the coordinator
  publishes routed column blocks into (PUT/GET/LIST/FREE/STAT), plus
  the worker-side cached fetch;
- :mod:`repro.net.transport` — :class:`TcpTransport`, the ``tcp`` entry
  in the transport registry: descriptors carry ``(host, port,
  block_id, dtype, shape, rows)`` so remote workers fetch and slice
  their own partitions;
- :mod:`repro.net.agent` — the :class:`WorkerAgent` behind ``python -m
  repro serve``: HELLO handshake, PING heartbeats, pickled TASK frames;
- :mod:`repro.net.executor` — :class:`RemoteExecutor`, the ``remote``
  runtime backend driving a mixed local+remote cluster from
  ``RunConfig.hosts`` / ``REPRO_HOSTS``;
- :mod:`repro.net.service` — the :class:`QueryServer` behind ``python
  -m repro serve-sql`` and its :class:`ServiceClient`: QUERY/CANCEL/
  RESULT frames over a warm multi-tenant
  :class:`~repro.service.QueryService` (see docs/service.md).

See docs/net.md for the wire protocol, the handshake and the failure
semantics, and README.md for a two-terminal loopback walkthrough.
"""

from .agent import WorkerAgent, agent_stats
from .blockstore import (
    BlockStoreClient,
    BlockStoreServer,
    BlockStoreStats,
    fetch_block_array,
)
from .executor import (
    HOSTS_ENV_VAR,
    HostSpec,
    RemoteExecutor,
    default_hosts,
    parse_host_specs,
)
from .protocol import PROTOCOL_VERSION, FrameServer
from .service import QueryServer, ServiceClient, default_service_port
from .transport import TcpTransport

__all__ = [
    "PROTOCOL_VERSION",
    "FrameServer",
    "BlockStoreServer",
    "BlockStoreClient",
    "BlockStoreStats",
    "fetch_block_array",
    "TcpTransport",
    "WorkerAgent",
    "agent_stats",
    "QueryServer",
    "ServiceClient",
    "default_service_port",
    "RemoteExecutor",
    "HostSpec",
    "parse_host_specs",
    "default_hosts",
    "HOSTS_ENV_VAR",
]
