"""The query service's wire front door: QUERY/CANCEL/RESULT frames.

``python -m repro serve-sql --port N`` stands up a :class:`QueryServer`
— a :class:`~repro.net.protocol.FrameServer` wrapping one warm
:class:`~repro.service.QueryService` — and ``python -m repro query
HOST:PORT "Q(a,b,c) :- R(a,b), S(b,c)"`` (or the bare-address REPL)
drives it through :class:`ServiceClient`.

One QUERY frame runs one query.  The request meta carries either a
paper-catalog name (``{"query": "Q1", "dataset": "wb"}``) or datalog
text, plus engine/tenant/cache knobs; the RESULT reply meta carries the
count, the per-query ``data_plane`` stats and the cache disposition —
counts only, so no payload bytes.  Concurrency comes from connections:
the server handles each connection on its own thread (the
:class:`FrameServer` model), and the service underneath bounds actual
execution at ``max_concurrent`` with ``queue_depth`` more waiting.

Backpressure on the wire: an :class:`~repro.errors.AdmissionError`
becomes an ERR frame with ``error="admission-rejected"`` and
``status=429`` — :class:`ServiceClient` converts it back into an
:class:`AdmissionError`, so callers see the same exception locally and
remotely.  CANCEL is best-effort: it can only stop a ticket that is
still waiting for a driver slot (meta ``{"cancelled": bool}`` says
whether it won the race).

The server also answers HELLO/PING/STAT/EXPO like every other repro.net
service, so ``repro top`` and the CI scraper work unchanged against a
query server; ``--expo-port`` additionally serves the Prometheus text
over HTTP.

Same trust model as the rest of repro.net: bind to loopback or a
private interface (queries are parsed, never unpickled, but the
service is still a cluster-internal tool, not a hardened endpoint).
"""

from __future__ import annotations

import itertools
import os
import socket
import threading
from concurrent.futures import CancelledError, Future

from ..data.datasets import load_dataset
from ..engines.base import EngineResult
from ..errors import AdmissionError, ConfigError, NetError
from ..obs.expo import CONTENT_TYPE_TEXT, prometheus_text, \
    start_http_exposition
from ..obs.log import get_logger, kv
from ..obs.metrics import METRICS
from ..query.catalog import PAPER_QUERIES
from ..query.parser import parse_query
from ..service import QueryService
from ..workloads.generators import graph_database_for, make_testcase
from .protocol import (
    OP_BYE,
    OP_CANCEL,
    OP_DATA,
    OP_ERR,
    OP_EXPO,
    OP_HELLO,
    OP_OK,
    OP_PING,
    OP_QUERY,
    OP_RESULT,
    OP_STAT,
    PROTOCOL_VERSION,
    FrameServer,
    connect,
    request,
    send_frame,
)

__all__ = ["QueryServer", "ServiceClient", "SERVICE_PORT_ENV_VAR",
           "default_service_port", "result_to_meta"]

log = get_logger("repro.net.service")

#: Environment variable for the default ``repro serve-sql`` port.
SERVICE_PORT_ENV_VAR = "REPRO_SERVICE_PORT"

_DEFAULT_SERVICE_PORT = 7075

#: Dataset scale used when a QUERY frame names no scale — matches the
#: CLI's interactive default so ad-hoc queries finish in seconds.
DEFAULT_WIRE_SCALE = 2e-5


def default_service_port() -> int:
    """Port for ``repro serve-sql`` from ``REPRO_SERVICE_PORT``."""
    raw = os.environ.get(SERVICE_PORT_ENV_VAR)
    if raw is None:
        return _DEFAULT_SERVICE_PORT
    try:
        port = int(raw)
    except ValueError:
        raise ConfigError(f"{SERVICE_PORT_ENV_VAR} must be an integer, "
                          f"got {raw!r}") from None
    if not 0 <= port <= 65535:
        raise ConfigError(f"{SERVICE_PORT_ENV_VAR} must be a port "
                          f"number, got {raw!r}")
    return port


def result_to_meta(result: EngineResult) -> dict:
    """The JSON-safe RESULT meta for one finished run (counts only)."""
    b = result.breakdown
    meta = {
        "ok": result.ok,
        "engine": result.engine,
        "query": result.query,
        "count": result.count,
        "failure": result.failure,
        "rounds": result.rounds,
        "seconds": b.total,
        "breakdown": {"optimization": b.optimization,
                      "precompute": b.precompute,
                      "communication": b.communication,
                      "computation": b.computation},
        "cached": result.extra.get("result_cache") == "hit",
    }
    if result.data_plane is not None:
        meta["data_plane"] = dict(result.data_plane)
    if result.measured_seconds is not None:
        meta["measured_seconds"] = result.measured_seconds
    for key in ("query_id", "leapfrog_work"):
        if key in result.extra:
            meta[key] = result.extra[key]
    return meta


class QueryServer(FrameServer):
    """Serves HELLO/PING/QUERY/CANCEL/STAT/EXPO/BYE over one warm
    :class:`~repro.service.QueryService`.

    Construct with an existing ``service`` to share it, or let the
    server own a fresh one built from ``config`` and
    ``service_kwargs`` (tenant budgets, concurrency bounds...).  Test
    cases are cached per ``(query, dataset, scale, seed)``, so a
    repeated QUERY hits the same :class:`~repro.data.database.Database`
    object — its memoized fingerprint makes the service's result cache
    effective over the wire too.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 service: QueryService | None = None, config=None,
                 expo_port: int | None = None, **service_kwargs):
        super().__init__(host, port)
        self._owns_service = service is None
        self.service = service or QueryService(config=config,
                                               **service_kwargs)
        #: When set, ``start()`` also serves the Prometheus exposition
        #: over HTTP (``repro serve-sql --expo-port``).
        self.expo_port = expo_port
        self._expo_server = None
        self._cases: dict[tuple, tuple] = {}
        self._cases_lock = threading.Lock()
        self._tickets: "dict[str, Future]" = {}
        self._ticket_seq = itertools.count()
        self._tickets_lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "QueryServer":
        super().start()
        if self.expo_port is not None:
            self._expo_server = start_http_exposition(
                self.host, self.expo_port, self.exposition)
        log.info("query server listening %s",
                 kv(host=self.host, port=self.port,
                    max_concurrent=self.service.max_concurrent,
                    pid=os.getpid(), expo_port=self.expo_port))
        return self

    def stop(self) -> None:
        was_running = self.running
        server, self._expo_server = self._expo_server, None
        if server is not None:
            server.shutdown()
            server.server_close()
        super().stop()
        if self._owns_service:
            self.service.close()
        if was_running:
            log.info("query server stopped %s", kv(port=self.port))

    def exposition(self) -> str:
        """Prometheus text: process metrics plus live service gauges."""
        stats = self.service.stats()
        return prometheus_text(METRICS, extra={
            "service_active": stats["active"],
            "service_queued": stats["queued"],
            "service_max_concurrent": stats["max_concurrent"],
        })

    # -- query resolution ----------------------------------------------------

    def _resolve_case(self, meta: dict) -> tuple:
        """(query, db) for a QUERY frame, cached for object identity."""
        text = meta.get("query")
        if not text or not isinstance(text, str):
            raise ConfigError("QUERY meta needs a 'query' string (a "
                              "paper query name or datalog text)")
        dataset = meta.get("dataset", "wb")
        scale = meta.get("scale")
        if scale is None:
            scale = DEFAULT_WIRE_SCALE
        seed = meta.get("seed")
        key = (text, dataset, scale, seed)
        with self._cases_lock:
            case = self._cases.get(key)
        if case is not None:
            return case
        if text.upper() in PAPER_QUERIES:
            query, db = make_testcase(dataset, text.upper(), scale=scale,
                                      seed=seed)
        else:
            query = parse_query(text)
            edges = load_dataset(dataset, scale=scale, seed=seed)
            db = graph_database_for(query, edges)
        with self._cases_lock:
            # First resolver wins so every connection shares one
            # Database object (memoized fingerprint).
            case = self._cases.setdefault(key, (query, db))
        return case

    # -- frame handling ------------------------------------------------------

    def _handle_query(self, sock: socket.socket, meta: dict) -> None:
        ticket = str(meta.get("id") or f"t{next(self._ticket_seq)}")
        try:
            query, db = self._resolve_case(meta)
            future = self.service.submit(
                query, db,
                engine=meta.get("engine", "adj"),
                tenant=meta.get("tenant", "default"),
                use_cache=bool(meta.get("use_cache", True)),
                profile=bool(meta.get("profile", False)))
        except AdmissionError as exc:
            METRICS.counter("service.wire_rejected").inc()
            send_frame(sock, OP_ERR, {
                "error": "admission-rejected", "message": str(exc),
                "reason": exc.reason, "tenant": exc.tenant,
                "status": 429, "id": ticket})
            return
        with self._tickets_lock:
            self._tickets[ticket] = future
        try:
            result = future.result()
        except CancelledError:
            send_frame(sock, OP_ERR, {"error": "cancelled",
                                      "message": f"ticket {ticket} was "
                                                 f"cancelled while "
                                                 f"queued",
                                      "id": ticket})
            return
        except AdmissionError as exc:
            # The queue/no-window budget policies reject from the
            # driver thread, after admission.
            METRICS.counter("service.wire_rejected").inc()
            send_frame(sock, OP_ERR, {
                "error": "admission-rejected", "message": str(exc),
                "reason": exc.reason, "tenant": exc.tenant,
                "status": 429, "id": ticket})
            return
        finally:
            with self._tickets_lock:
                self._tickets.pop(ticket, None)
        reply = result_to_meta(result)
        reply["id"] = ticket
        remaining = self.service.tenant_remaining(
            meta.get("tenant", "default"))
        if remaining is not None:
            reply["tenant_remaining"] = remaining
        send_frame(sock, OP_RESULT, reply)

    def handle(self, sock: socket.socket, op: int, meta: dict,
               payload: bytes) -> bool:
        if op == OP_HELLO:
            send_frame(sock, OP_OK, {"version": PROTOCOL_VERSION,
                                     "service": "query-service",
                                     "max_concurrent":
                                         self.service.max_concurrent,
                                     "engines": "registry",
                                     "pid": os.getpid()})
        elif op == OP_PING:
            send_frame(sock, OP_OK, {"pid": os.getpid()})
        elif op == OP_QUERY:
            self._handle_query(sock, meta)
        elif op == OP_CANCEL:
            ticket = str(meta.get("id", ""))
            with self._tickets_lock:
                future = self._tickets.get(ticket)
            cancelled = future.cancel() if future is not None else False
            if cancelled:
                METRICS.counter("service.wire_cancelled").inc()
            send_frame(sock, OP_OK, {"id": ticket,
                                     "cancelled": cancelled})
        elif op == OP_STAT:
            stats = self.service.stats()
            stats["service"] = "query-service"
            stats["pid"] = os.getpid()
            stats["metrics"] = METRICS.snapshot()
            send_frame(sock, OP_OK, stats)
        elif op == OP_EXPO:
            send_frame(sock, OP_DATA,
                       {"content_type": CONTENT_TYPE_TEXT},
                       self.exposition().encode())
        elif op == OP_BYE:
            send_frame(sock, OP_OK, {})
            return False
        else:
            send_frame(sock, OP_ERR,
                       {"error": "unknown-op",
                        "message": f"opcode {op} is not a query-service "
                                   f"op"})
        return True


class ServiceClient:
    """One connection to a :class:`QueryServer`.

    :meth:`run` is synchronous — QUERY out, RESULT back — so drive
    concurrency with one client per thread (connections are cheap;
    the server bounds actual execution).  Admission rejections raise
    :class:`~repro.errors.AdmissionError` exactly like the in-process
    service; every other ERR raises :class:`~repro.errors.NetError`.
    """

    def __init__(self, host: str, port: int,
                 timeout: float | None = 10.0):
        self.host = host
        self.port = port
        self._sock = connect(host, port, timeout=timeout)
        try:
            _op, self.hello, _payload = request(self._sock, OP_HELLO, {})
            if self.hello.get("service") != "query-service":
                raise NetError(
                    f"{host}:{port} is a "
                    f"{self.hello.get('service', 'unknown')!r} "
                    f"endpoint, not a query service")
        except BaseException:
            self._sock.close()
            raise
        # Queries may legitimately run for minutes; only the dial and
        # handshake above are bounded.
        self._sock.settimeout(None)

    def run(self, query: str, dataset: str = "wb", *,
            engine: str = "adj", tenant: str = "default",
            scale: float | None = None, seed: int | None = None,
            use_cache: bool = True, profile: bool = False,
            ticket: str | None = None) -> dict:
        """Run one query (paper name or datalog text); RESULT meta back."""
        meta = {"query": query, "dataset": dataset, "engine": engine,
                "tenant": tenant, "use_cache": use_cache,
                "profile": profile}
        if scale is not None:
            meta["scale"] = scale
        if seed is not None:
            meta["seed"] = seed
        if ticket is not None:
            meta["id"] = ticket
        try:
            op, reply, _payload = request(self._sock, OP_QUERY, meta)
        except NetError as exc:
            err = getattr(exc, "meta", None) or {}
            if err.get("error") == "admission-rejected":
                raise AdmissionError(
                    err.get("message", str(exc)),
                    reason=err.get("reason", "capacity"),
                    tenant=err.get("tenant")) from None
            raise
        if op != OP_RESULT:
            raise NetError(f"expected RESULT reply, got opcode {op}")
        return reply

    def cancel(self, ticket: str, timeout: float | None = 10.0) -> bool:
        """Best-effort cancel of a queued ticket.

        Uses its own short-lived connection, so it works while this
        client (or any other) is blocked inside :meth:`run`.
        """
        sock = connect(self.host, self.port, timeout=timeout)
        try:
            _op, meta, _payload = request(sock, OP_CANCEL, {"id": ticket})
            send_frame(sock, OP_BYE, {})
            return bool(meta.get("cancelled"))
        finally:
            sock.close()

    def stats(self) -> dict:
        """The server's live :meth:`QueryService.stats` snapshot."""
        _op, meta, _payload = request(self._sock, OP_STAT, {})
        return meta

    def expo(self) -> str:
        """One Prometheus-text scrape over the frame protocol."""
        _op, _meta, payload = request(self._sock, OP_EXPO, {})
        return payload.decode()

    def close(self) -> None:
        sock, self._sock = self._sock, None
        if sock is None:
            return
        try:
            send_frame(sock, OP_BYE, {})
        except OSError:
            pass
        finally:
            sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
