"""Worker agent: one long-lived process per worker host.

``python -m repro serve --port N`` stands one of these up.  A
coordinator (the :class:`~repro.net.executor.RemoteExecutor` behind
``backend="remote"``) dials in, performs the HELLO handshake — protocol
version, advertised worker ``slots``, pid — and then streams TASK
frames: pickled ``(task_function, task)`` pairs, the exact objects the
process backend would ship to a local pool.  Task payload arrays arrive
as descriptors (under the ``tcp`` transport), so the agent fetches its
partitions from the coordinator's block store itself; the task frame
stays descriptor-only.

Concurrency model: the agent serves each connection on its own thread,
and the coordinator opens one task connection per advertised slot — so
per-host parallelism is exactly the slot count, with no queueing logic
on the agent.  Task *execution* happens on a ``slots``-wide process
pool (spawn context — the agent process itself is multi-threaded), so
CPU-bound Leapfrog work actually uses the host's cores instead of being
GIL-serialized; ``mode="inline"`` keeps execution on the connection
thread for debugging and cheap tests.  An agent outlives coordinator
sessions: BYE (or a dropped connection) ends one session's connection,
the listener keeps serving the next session.

Failure contract: a task function that raises is answered with an ERR
frame (type name + message) — the agent thread never dies, and the
coordinator converts the ERR into :class:`~repro.errors.WorkerCrashed`.
The same trust model as ``multiprocessing`` applies: TASK frames are
unpickled, so only bind to interfaces you trust (see docs/net.md).
"""

from __future__ import annotations

import os
import pickle
import socket
import threading
import time
from collections import deque
from concurrent.futures.process import BrokenProcessPool

from ..errors import ConfigError
from ..obs.expo import CONTENT_TYPE_TEXT, prometheus_text, \
    start_http_exposition
from ..obs.log import get_logger, kv
from ..obs.metrics import METRICS
from ..obs.tracing import current_tracer, set_thread_tracer, task_tracer
from ..runtime.executor import available_parallelism
from .protocol import (
    OP_BYE,
    OP_DATA,
    OP_ERR,
    OP_EXPO,
    OP_HELLO,
    OP_OK,
    OP_PING,
    OP_STAT,
    OP_TASK,
    PROTOCOL_VERSION,
    FrameServer,
    connect,
    request,
    send_frame,
)

__all__ = ["WorkerAgent", "agent_stats", "agent_expo"]

#: STAT-history ring capacity: at the default sample interval this is
#: ~20 minutes of continuous history per agent, O(1) memory forever.
HISTORY_SIZE = 256

log = get_logger("repro.net.agent")


class WorkerAgent(FrameServer):
    """Serves HELLO/PING/STAT/TASK/EXPO/BYE; runs tasks on a process
    pool.

    Continuous export: a background sampler appends the task counters
    to a bounded ring buffer every ``history_interval`` seconds (STAT
    meta ``{"history": n}`` returns the last ``n`` samples), the EXPO
    opcode answers with a Prometheus text exposition of this process's
    metrics plus agent gauges (slots, busy slots), and ``expo_port``
    serves the same document over HTTP for real scrapers
    (``repro serve --expo-port``).  ``repro top`` polls all of it.

    Observability: a TASK frame whose meta carries a ``trace`` context
    makes the agent record spans — its own ``agent_task`` dispatch span
    plus whatever the task function records (inline mode) or ships back
    in ``result.spans`` (process mode) — and return them in the reply
    meta (``spans``) of the DATA *or* ERR frame, so crashed tasks still
    contribute to the coordinator's merged timeline.  A STAT frame
    answers with live counters (tasks run/failed, slots, pid) plus this
    process's metrics snapshot; see :func:`agent_stats`.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 slots: int | None = None, mode: str = "processes",
                 expo_port: int | None = None,
                 history_interval: float = 5.0):
        super().__init__(host, port)
        #: Task slots this host advertises (the coordinator opens this
        #: many task connections).  Defaults to the usable CPU count.
        self.slots = int(slots) if slots else available_parallelism()
        if mode not in ("processes", "inline"):
            raise ConfigError(f"unknown agent mode {mode!r}; "
                              f"choose from ('processes', 'inline')")
        self.mode = mode
        #: When set, ``start()`` also serves the Prometheus exposition
        #: over HTTP on this port (``repro serve --expo-port``).
        self.expo_port = expo_port
        self.tasks_run = 0
        self.tasks_failed = 0
        self.tasks_active = 0
        self._counter_lock = threading.Lock()
        self._pool = None
        self._pool_lock = threading.Lock()
        #: Ring buffer of periodic counter samples — the continuous
        #: STAT history a monitor fetches via STAT meta
        #: ``{"history": n}`` without having polled the whole time.
        self._history: deque[dict] = deque(maxlen=HISTORY_SIZE)
        self._history_interval = max(0.1, float(history_interval))
        self._sampler_stop = threading.Event()
        self._sampler: threading.Thread | None = None
        self._expo_server = None

    def _run_task(self, fn, task):
        if self.mode == "inline":
            return fn(task)
        with self._pool_lock:
            if self._pool is None:
                # Spawn, not fork: the agent process is multi-threaded
                # (one serving thread per connection), and forking a
                # threaded process is unsafe / deprecated on 3.12+.
                import multiprocessing
                from concurrent.futures import ProcessPoolExecutor

                self._pool = ProcessPoolExecutor(
                    max_workers=self.slots,
                    mp_context=multiprocessing.get_context("spawn"))
            pool = self._pool
        try:
            return pool.submit(fn, task).result()
        except BrokenProcessPool:
            # A dead pool worker breaks the whole pool; replace it so
            # the next task gets a fresh one, then report the failure.
            with self._pool_lock:
                if self._pool is pool:
                    pool.shutdown(wait=False, cancel_futures=True)
                    self._pool = None
            raise

    def start(self) -> "WorkerAgent":
        super().start()
        self._sampler_stop.clear()
        self._sampler = threading.Thread(
            target=self._sample_loop,
            name=f"repro-agent-history-{self.port}", daemon=True)
        self._sampler.start()
        if self.expo_port is not None:
            self._expo_server = start_http_exposition(
                self.host, self.expo_port, self.exposition)
        log.info("agent listening %s",
                 kv(host=self.host, port=self.port, slots=self.slots,
                    mode=self.mode, pid=os.getpid(),
                    expo_port=self.expo_port))
        return self

    def stop(self) -> None:
        was_running = self.running
        self._sampler_stop.set()
        sampler, self._sampler = self._sampler, None
        if sampler is not None:
            sampler.join(timeout=2.0)
        server, self._expo_server = self._expo_server, None
        if server is not None:
            server.shutdown()
            server.server_close()
        super().stop()
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
        if was_running:
            log.info("agent stopped %s",
                     kv(port=self.port, tasks_run=self.tasks_run,
                        tasks_failed=self.tasks_failed))

    # -- continuous export ---------------------------------------------------

    def _counters(self) -> dict:
        with self._counter_lock:
            return {"tasks_run": self.tasks_run,
                    "tasks_failed": self.tasks_failed,
                    "tasks_active": self.tasks_active}

    def _sample_loop(self) -> None:
        """Append one counter sample per interval into the ring buffer."""
        while not self._sampler_stop.is_set():
            sample = self._counters()
            sample["ts"] = time.time()
            self._history.append(sample)
            self._sampler_stop.wait(self._history_interval)

    def history(self, limit: int | None = None) -> list[dict]:
        """The most recent ring-buffer samples (oldest first)."""
        samples = list(self._history)
        if limit is not None and limit >= 0:
            samples = samples[-limit:]
        return samples

    def exposition(self) -> str:
        """Prometheus text: process metrics plus agent-level gauges."""
        counters = self._counters()
        return prometheus_text(METRICS, extra={
            "agent_slots": self.slots,
            "agent_tasks_active": counters["tasks_active"],
            "agent_tasks_run": counters["tasks_run"],
            "agent_tasks_failed": counters["tasks_failed"],
        })

    def _stat_meta(self, history: int | None = None) -> dict:
        meta = {"service": "worker-agent", "pid": os.getpid(),
                "slots": self.slots, "mode": self.mode,
                "metrics": METRICS.snapshot()}
        meta.update(self._counters())
        if history:
            meta["history"] = self.history(int(history))
        return meta

    def _handle_task(self, sock: socket.socket, meta: dict,
                     payload: bytes) -> None:
        ctx = meta.get("trace")
        tracer = task_tracer(ctx)
        # When a same-process tracer is already current (an in-process
        # agent under test), task_tracer returns NOOP so worker spans
        # record directly — the dispatch span should follow them there
        # instead of vanishing.
        recorder = tracer if tracer.enabled else (
            current_tracer() if ctx else tracer)
        previous = set_thread_tracer(tracer) if tracer.enabled else None
        with self._counter_lock:
            self.tasks_active += 1
        start = time.perf_counter()
        try:
            try:
                with recorder.span("agent_task", cat="agent",
                                   slot=meta.get("slot", -1),
                                   mode=self.mode):
                    fn, task = pickle.loads(payload)
                    result = self._run_task(fn, task)
                    reply = pickle.dumps(result,
                                         protocol=pickle.HIGHEST_PROTOCOL)
            except Exception as exc:
                with self._counter_lock:
                    self.tasks_failed += 1
                log.warning("task failed %s",
                            kv(slot=meta.get("slot", -1),
                               error=type(exc).__name__, message=exc))
                err_meta = {"error": type(exc).__name__,
                            "message": str(exc)}
                if tracer.enabled:
                    err_meta["spans"] = tracer.export_payload()
                send_frame(sock, OP_ERR, err_meta)
            else:
                with self._counter_lock:
                    self.tasks_run += 1
                log.debug("task done %s",
                          kv(slot=meta.get("slot", -1),
                             reply_bytes=len(reply)))
                ok_meta = {}
                if tracer.enabled:
                    ok_meta["spans"] = tracer.export_payload()
                send_frame(sock, OP_DATA, ok_meta, reply)
                METRICS.counter("agent.reply_bytes").inc(len(reply))
        finally:
            # The agent-process view of task latency/load — recorded
            # here (not in the pool child) so STAT/EXPO serve it in
            # both pool modes; what `repro top`'s p95 column reads.
            METRICS.histogram("agent.task_seconds").observe(
                time.perf_counter() - start)
            with self._counter_lock:
                self.tasks_active -= 1
            if tracer.enabled:
                set_thread_tracer(previous)

    def handle(self, sock: socket.socket, op: int, meta: dict,
               payload: bytes) -> bool:
        if op == OP_HELLO:
            send_frame(sock, OP_OK, {"version": PROTOCOL_VERSION,
                                     "service": "worker-agent",
                                     "slots": self.slots,
                                     "pid": os.getpid()})
        elif op == OP_PING:
            send_frame(sock, OP_OK, {"pid": os.getpid()})
        elif op == OP_STAT:
            send_frame(sock, OP_OK,
                       self._stat_meta(history=meta.get("history")))
        elif op == OP_EXPO:
            send_frame(sock, OP_DATA,
                       {"content_type": CONTENT_TYPE_TEXT},
                       self.exposition().encode())
        elif op == OP_TASK:
            self._handle_task(sock, meta, payload)
        elif op == OP_BYE:
            send_frame(sock, OP_OK, {})
            return False
        else:
            send_frame(sock, OP_ERR,
                       {"error": "unknown-op",
                        "message": f"opcode {op} is not a worker-agent "
                                   f"op"})
        return True


def agent_stats(host: str, port: int, timeout: float | None = 10.0
                ) -> dict:
    """Live STAT snapshot of a running ``repro serve`` agent.

    One short-lived connection: STAT, BYE, close.  The reply meta holds
    task counters (``tasks_run``/``tasks_failed``), ``slots``, ``pid``,
    ``mode`` and the agent process's ``metrics`` snapshot.
    """
    sock = connect(host, port, timeout=timeout)
    try:
        _op, meta, _payload = request(sock, OP_STAT, {})
        send_frame(sock, OP_BYE, {})
        return meta
    finally:
        sock.close()


def agent_expo(host: str, port: int, timeout: float | None = 10.0
               ) -> str:
    """One Prometheus-text scrape of an agent over the frame protocol.

    The EXPO opcode's answer: the same exposition document the agent's
    ``--expo-port`` HTTP listener serves, fetched over the existing
    agent port — what ``repro top`` polls when no scraper is running.
    """
    sock = connect(host, port, timeout=timeout)
    try:
        _op, _meta, payload = request(sock, OP_EXPO, {})
        send_frame(sock, OP_BYE, {})
        return payload.decode()
    finally:
        sock.close()
