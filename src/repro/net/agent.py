"""Worker agent: one long-lived process per worker host.

``python -m repro serve --port N`` stands one of these up.  A
coordinator (the :class:`~repro.net.executor.RemoteExecutor` behind
``backend="remote"``) dials in, performs the HELLO handshake — protocol
version, advertised worker ``slots``, pid — and then streams TASK
frames: pickled ``(task_function, task)`` pairs, the exact objects the
process backend would ship to a local pool.  Task payload arrays arrive
as descriptors (under the ``tcp`` transport), so the agent fetches its
partitions from the coordinator's block store itself; the task frame
stays descriptor-only.

Concurrency model: the agent serves each connection on its own thread,
and the coordinator opens one task connection per advertised slot — so
per-host parallelism is exactly the slot count, with no queueing logic
on the agent.  Task *execution* happens on a ``slots``-wide process
pool (spawn context — the agent process itself is multi-threaded), so
CPU-bound Leapfrog work actually uses the host's cores instead of being
GIL-serialized; ``mode="inline"`` keeps execution on the connection
thread for debugging and cheap tests.  An agent outlives coordinator
sessions: BYE (or a dropped connection) ends one session's connection,
the listener keeps serving the next session.

Failure contract: a task function that raises is answered with an ERR
frame (type name + message) — the agent thread never dies, and the
coordinator converts the ERR into :class:`~repro.errors.WorkerCrashed`.
The same trust model as ``multiprocessing`` applies: TASK frames are
unpickled, so only bind to interfaces you trust (see docs/net.md).
"""

from __future__ import annotations

import os
import pickle
import socket
import threading
from concurrent.futures.process import BrokenProcessPool

from ..errors import ConfigError
from ..runtime.executor import available_parallelism
from .protocol import (
    OP_BYE,
    OP_DATA,
    OP_ERR,
    OP_HELLO,
    OP_OK,
    OP_PING,
    OP_TASK,
    PROTOCOL_VERSION,
    FrameServer,
    send_frame,
)

__all__ = ["WorkerAgent"]


class WorkerAgent(FrameServer):
    """Serves HELLO/PING/TASK/BYE; executes tasks on a process pool."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 slots: int | None = None, mode: str = "processes"):
        super().__init__(host, port)
        #: Task slots this host advertises (the coordinator opens this
        #: many task connections).  Defaults to the usable CPU count.
        self.slots = int(slots) if slots else available_parallelism()
        if mode not in ("processes", "inline"):
            raise ConfigError(f"unknown agent mode {mode!r}; "
                              f"choose from ('processes', 'inline')")
        self.mode = mode
        self.tasks_run = 0
        self.tasks_failed = 0
        self._counter_lock = threading.Lock()
        self._pool = None
        self._pool_lock = threading.Lock()

    def _run_task(self, fn, task):
        if self.mode == "inline":
            return fn(task)
        with self._pool_lock:
            if self._pool is None:
                # Spawn, not fork: the agent process is multi-threaded
                # (one serving thread per connection), and forking a
                # threaded process is unsafe / deprecated on 3.12+.
                import multiprocessing
                from concurrent.futures import ProcessPoolExecutor

                self._pool = ProcessPoolExecutor(
                    max_workers=self.slots,
                    mp_context=multiprocessing.get_context("spawn"))
            pool = self._pool
        try:
            return pool.submit(fn, task).result()
        except BrokenProcessPool:
            # A dead pool worker breaks the whole pool; replace it so
            # the next task gets a fresh one, then report the failure.
            with self._pool_lock:
                if self._pool is pool:
                    pool.shutdown(wait=False, cancel_futures=True)
                    self._pool = None
            raise

    def stop(self) -> None:
        super().stop()
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def handle(self, sock: socket.socket, op: int, meta: dict,
               payload: bytes) -> bool:
        if op == OP_HELLO:
            send_frame(sock, OP_OK, {"version": PROTOCOL_VERSION,
                                     "service": "worker-agent",
                                     "slots": self.slots,
                                     "pid": os.getpid()})
        elif op == OP_PING:
            send_frame(sock, OP_OK, {"pid": os.getpid()})
        elif op == OP_TASK:
            try:
                fn, task = pickle.loads(payload)
                result = self._run_task(fn, task)
                reply = pickle.dumps(result,
                                     protocol=pickle.HIGHEST_PROTOCOL)
            except Exception as exc:
                with self._counter_lock:
                    self.tasks_failed += 1
                send_frame(sock, OP_ERR, {"error": type(exc).__name__,
                                          "message": str(exc)})
            else:
                with self._counter_lock:
                    self.tasks_run += 1
                send_frame(sock, OP_DATA, {}, reply)
        elif op == OP_BYE:
            send_frame(sock, OP_OK, {})
            return False
        else:
            send_frame(sock, OP_ERR,
                       {"error": "unknown-op",
                        "message": f"opcode {op} is not a worker-agent "
                                   f"op"})
        return True
