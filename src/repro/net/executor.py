"""RemoteExecutor: run worker tasks on a mixed local+remote cluster.

The fourth runtime backend (``backend="remote"`` next to serial /
threads / processes).  Hosts come from ``RunConfig.hosts``, the
``REPRO_HOSTS`` environment variable or the CLI ``--hosts`` flag, as a
comma-separated list of specs:

- ``"host:port"`` — a :class:`~repro.net.agent.WorkerAgent` stood up
  with ``python -m repro serve``; its HELLO handshake advertises how
  many task slots the host contributes;
- ``"local"`` / ``"local:N"`` — N (default 1) slots that run tasks
  inline on coordinator threads, so one machine can join its own
  cluster (mixed local+remote).

Scheduling is a free-slot queue: every remote slot is one dedicated
task connection, every local slot a token; a pool thread takes whichever
slot frees up first, so fast hosts naturally absorb more tasks.  A
background heartbeat PINGs each remote host's control connection and
marks unresponsive hosts dead; a task that hits a dead/broken connection
surfaces as :class:`~repro.errors.WorkerCrashed` (the executors' shared
failure contract) rather than hanging — and ``close()`` still tears down
every socket and whatever the transport published.

The default data plane here is ``tcp`` (descriptor-only task frames,
workers fetch partitions from the coordinator's block store); ``pickle``
works too (partitions inline in the task frame), and ``shm`` only when
every agent runs on the coordinator's machine.
"""

from __future__ import annotations

import os
import pickle
import queue
import threading
import time
from dataclasses import dataclass
from functools import partial

from ..errors import ConfigError, NetError, WorkerCrashed
from ..obs.log import get_logger, kv
from ..obs.metrics import METRICS
from ..obs.tracing import current_tracer, trace_context
from ..runtime.executor import _PoolExecutor
from ..runtime.transport import TRANSPORT_ENV_VAR, Transport
from .protocol import (
    OP_BYE,
    OP_HELLO,
    OP_PING,
    OP_TASK,
    PROTOCOL_VERSION,
    connect,
    request,
    send_frame,
)

__all__ = ["RemoteExecutor", "HostSpec", "parse_host_specs",
           "HOSTS_ENV_VAR", "default_hosts"]

log = get_logger("repro.net.executor")

#: Environment variable naming the cluster, e.g.
#: ``REPRO_HOSTS=127.0.0.1:7070,127.0.0.1:7071,local:2``.
HOSTS_ENV_VAR = "REPRO_HOSTS"


def default_hosts() -> tuple[str, ...] | None:
    """Host specs from ``REPRO_HOSTS`` (None when unset/empty)."""
    raw = os.environ.get(HOSTS_ENV_VAR)
    if raw is None:
        return None
    specs = tuple(part.strip() for part in raw.split(",") if part.strip())
    return specs or None


@dataclass(frozen=True)
class HostSpec:
    """One parsed cluster member."""

    kind: str                  # "local" | "tcp"
    host: str = ""
    port: int = 0
    slots: int = 1             # local only; remote slots come from HELLO

    @property
    def label(self) -> str:
        return ("local" if self.kind == "local"
                else f"{self.host}:{self.port}")


def parse_host_specs(hosts) -> tuple[HostSpec, ...]:
    """Parse ``"h:p,local:2"`` (or an iterable of specs) into HostSpecs."""
    if hosts is None:
        raise ConfigError(
            f"the remote backend needs worker hosts; set "
            f"RunConfig.hosts / {HOSTS_ENV_VAR} / --hosts, e.g. "
            f"'127.0.0.1:7070,127.0.0.1:7071' (start agents with "
            f"'python -m repro serve --port 7070')")
    if isinstance(hosts, str):
        hosts = [part.strip() for part in hosts.split(",") if part.strip()]
    specs: list[HostSpec] = []
    for raw in hosts:
        if isinstance(raw, HostSpec):
            specs.append(raw)
            continue
        text = str(raw).strip()
        if text == "local" or text.startswith("local:"):
            _, _, n = text.partition(":")
            try:
                slots = int(n) if n else 1
            except ValueError:
                raise ConfigError(
                    f"bad local host spec {text!r}; use 'local' or "
                    f"'local:<slots>'") from None
            if slots < 1:
                raise ConfigError(f"local slots must be >= 1 in {text!r}")
            specs.append(HostSpec(kind="local", slots=slots))
            continue
        host, sep, port = text.rpartition(":")
        try:
            port_num = int(port) if sep else -1
        except ValueError:
            port_num = -1
        if not sep or not host or not 0 < port_num < 65536:
            raise ConfigError(
                f"bad host spec {text!r}; expected 'host:port', 'local' "
                f"or 'local:<slots>'")
        specs.append(HostSpec(kind="tcp", host=host, port=port_num))
    if not specs:
        raise ConfigError("the remote backend needs at least one host")
    return tuple(specs)


class _AgentConnection:
    """One socket to a worker agent (a task slot or the control line).

    ``op_timeout`` bounds each send/recv after the connection is
    established: task connections pass None (a remote task may compute
    for minutes without sending a byte), the control connection keeps a
    bound so heartbeats cannot wedge on a hung host.
    """

    def __init__(self, spec: HostSpec, timeout: float,
                 op_timeout: float | None = None):
        self.spec = spec
        self._sock = connect(spec.host, spec.port, timeout=timeout)
        self._sock.settimeout(op_timeout)

    def _live_sock(self):
        """The socket, or ConnectionError if abort()/close() ran.

        A dead host's idle slots can still sit in the free-slot queue
        after its sockets were aborted; raising an OSError subclass here
        routes that case through the normal dead-host handling (host
        label and all) instead of an anonymous AttributeError.
        """
        sock = self._sock
        if sock is None:
            # repro: lint-ignore[error-taxonomy] must be an OSError subclass so the dead-host handler catches it like a real socket failure
            raise ConnectionError(
                f"connection to {self.spec.label} is closed")
        return sock

    def hello(self) -> dict:
        _op, meta, _ = request(self._live_sock(), OP_HELLO)
        version = meta.get("version")
        if version != PROTOCOL_VERSION:
            raise ConfigError(
                f"worker agent {self.spec.label} speaks protocol "
                f"{version!r}, this coordinator speaks "
                f"{PROTOCOL_VERSION}")
        if meta.get("service") != "worker-agent":
            raise ConfigError(
                f"{self.spec.label} is a {meta.get('service', 'unknown')!r}"
                f" service, not a worker agent — did you point --hosts at "
                f"a block store?")
        return meta

    def ping(self) -> None:
        request(self._live_sock(), OP_PING)

    def run_task(self, fn, task, meta: dict | None = None):
        """Ship one task; returns ``(result, reply_meta)``.

        ``meta`` rides in the TASK frame (trace context, slot index);
        the reply meta may carry agent-recorded ``spans``.
        """
        sock = self._live_sock()
        payload = pickle.dumps((fn, task),
                               protocol=pickle.HIGHEST_PROTOCOL)
        _op, reply_meta, reply = request(sock, OP_TASK, meta=meta,
                                         payload=payload)
        return pickle.loads(reply), reply_meta

    def close(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                send_frame(sock, OP_BYE)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:  # pragma: no cover
                pass

    def abort(self) -> None:
        """Hard-close without BYE; wakes a recv blocked on this socket."""
        sock, self._sock = self._sock, None
        if sock is not None:
            import socket as socket_mod

            try:
                sock.shutdown(socket_mod.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:  # pragma: no cover
                pass


class RemoteExecutor(_PoolExecutor):
    """Task slots on worker agents (plus optional local threads)."""

    name = "remote"

    def __init__(self, max_workers: int | None = None,
                 transport: "Transport | str | None" = None,
                 pipeline: bool | None = None,
                 hosts=None, heartbeat_interval: float = 5.0,
                 connect_timeout: float = 10.0,
                 slot_timeout: float = 60.0):
        if transport is None:
            # The remote backend's natural data plane is the block
            # store; an explicit REPRO_TRANSPORT still wins.
            transport = os.environ.get(TRANSPORT_ENV_VAR, "tcp")
        super().__init__(max_workers, transport=transport,
                         pipeline=pipeline)
        self.host_specs = parse_host_specs(
            hosts if hosts is not None else default_hosts())
        self.heartbeat_interval = heartbeat_interval
        self.connect_timeout = connect_timeout
        #: How long a task waits for a free slot before concluding the
        #: cluster has no live workers left (keeps dead-host runs from
        #: blocking forever).
        self.slot_timeout = slot_timeout
        self._slots: "queue.Queue[tuple[str, _AgentConnection | None]]" \
            = queue.Queue()
        self._connections: list[_AgentConnection] = []
        self._conns_by_spec: dict[HostSpec, list[_AgentConnection]] = {}
        self._control: dict[HostSpec, _AgentConnection] = {}
        self._dead: set[HostSpec] = set()
        self._dead_lock = threading.Lock()
        self._hb_stop = threading.Event()
        self._hb_thread: threading.Thread | None = None
        self._connected = False

    # -- cluster wiring ------------------------------------------------------

    def _connect_cluster(self) -> None:
        if self._connected:
            return
        total_slots = 0
        for spec in self.host_specs:
            if spec.kind == "local":
                for _ in range(spec.slots):
                    self._slots.put(("local", None))
                total_slots += spec.slots
                continue
            try:
                control = _AgentConnection(spec, self.connect_timeout,
                                           op_timeout=self.connect_timeout)
                meta = control.hello()
                slots = max(1, int(meta.get("slots", 1)))
                conns = [_AgentConnection(spec, self.connect_timeout)
                         for _ in range(slots)]
                for slot, conn in enumerate(conns):
                    conn.slot = slot
                log.info("host connected %s",
                         kv(host=spec.label, slots=slots,
                            agent_pid=meta.get("pid")))
            except ConfigError:
                self.close()
                raise
            except (OSError, EOFError, NetError) as exc:
                self.close()
                raise ConfigError(
                    f"cannot reach worker agent {spec.label}: "
                    f"{type(exc).__name__}: {exc} — is 'python -m repro "
                    f"serve' running there?") from exc
            # Control conns are tracked with the task conns so close()
            # reaches every socket even if a host is listed twice.
            self._control[spec] = control
            self._connections.append(control)
            self._connections.extend(conns)
            self._conns_by_spec.setdefault(spec, []).extend(conns)
            for conn in conns:
                self._slots.put(("remote", conn))
            total_slots += slots
        # Exactly one pool thread per slot: with more threads than
        # slots, surplus threads would sit in _slots.get() and trip
        # slot_timeout on a merely *busy* (not dead) cluster.
        self.max_workers = max(1, total_slots)
        self._connected = True
        if any(s.kind == "tcp" for s in self.host_specs) \
                and self.heartbeat_interval > 0:
            self._hb_stop.clear()
            self._hb_thread = threading.Thread(
                target=self._heartbeat_loop, daemon=True,
                name="repro-remote-heartbeat")
            self._hb_thread.start()

    def _heartbeat_loop(self) -> None:
        while not self._hb_stop.wait(self.heartbeat_interval):
            for spec, control in list(self._control.items()):
                with self._dead_lock:
                    if spec in self._dead:
                        continue
                try:
                    start = time.perf_counter()
                    control.ping()
                    # Each host's latest heartbeat round-trip becomes a
                    # live gauge — the cluster-latency signal the trace
                    # timeline can't show between epochs.
                    METRICS.gauge(
                        f"net.heartbeat_rtt_seconds.{spec.label}").set(
                        time.perf_counter() - start)
                except Exception:   # includes a socket close() raced away
                    self._mark_dead(spec)

    def _mark_dead(self, spec: HostSpec) -> None:
        with self._dead_lock:
            if spec in self._dead:
                return
            self._dead.add(spec)
        log.warning("host marked dead %s", kv(host=spec.label))
        # Abort the host's task sockets: a silently-lost host (power
        # cut, partition) sends no FIN, so a task blocked in recv with
        # no timeout would hang forever; shutdown() wakes it into an
        # OSError -> WorkerCrashed.
        for conn in self._conns_by_spec.get(spec, ()):
            conn.abort()

    def host_status(self) -> dict[str, bool]:
        """``{label: alive}`` for every remote host (telemetry/tests)."""
        with self._dead_lock:
            return {spec.label: spec not in self._dead
                    for spec in self.host_specs if spec.kind == "tcp"}

    # -- execution -----------------------------------------------------------

    def _make_pool(self):
        from concurrent.futures import ThreadPoolExecutor

        self._connect_cluster()
        return ThreadPoolExecutor(max_workers=max(1, self.max_workers),
                                  thread_name_prefix="repro-remote")

    def _run_one(self, fn, task):
        try:
            kind, conn = self._slots.get(timeout=self.slot_timeout)
        except queue.Empty:
            raise WorkerCrashed(
                -1, "no live worker slots (every connected host is dead "
                    "or busy beyond slot_timeout)") from None
        if kind == "local":
            try:
                return fn(task)
            finally:
                self._slots.put((kind, conn))
        ctx = trace_context()
        task_meta = None
        if ctx is not None:
            task_meta = {"trace": ctx,
                         "slot": getattr(conn, "slot", -1)}
        try:
            result, reply_meta = conn.run_task(fn, task, meta=task_meta)
        except NetError as exc:
            # The agent answered with an ERR frame: the task raised
            # remotely, but the connection itself is still healthy.
            # The ERR meta still delivers the agent's spans, so even a
            # crashed remote task lands on the merged timeline.
            current_tracer().merge_payload(
                (getattr(exc, "meta", None) or {}).get("spans"),
                host=conn.spec.label)
            self._slots.put((kind, conn))
            raise WorkerCrashed(conn.spec.port,
                                f"remote task on {conn.spec.label} "
                                f"failed: {exc}") from exc
        except (OSError, EOFError) as exc:
            # The connection died — retire the slot and flag the host.
            self._mark_dead(conn.spec)
            conn.close()
            raise WorkerCrashed(conn.spec.port,
                                f"worker agent {conn.spec.label} died: "
                                f"{type(exc).__name__}: {exc}") from exc
        current_tracer().merge_payload(reply_meta.get("spans"),
                                       host=conn.spec.label)
        self._slots.put((kind, conn))
        return result

    def map_tasks(self, fn, tasks):
        # The partial stays in this process: super() runs it on a local
        # thread pool, and only (fn.__name__, task) crosses the wire.
        # repro: lint-ignore[spawn-safety] the partial never pickles; the thread pool calls it in-process and ships the task by name
        return super().map_tasks(partial(self._run_one, fn), tasks)

    def submit_tasks(self, fn, tasks):
        # Streamed tasks ride the same free-slot queue: each streamed
        # task grabs whichever agent slot frees first, so remote hosts
        # start executing while the coordinator is still routing and
        # publishing later relations (network overlap, not just memcpy).
        # repro: lint-ignore[spawn-safety] the partial never pickles; the thread pool calls it in-process and ships the task by name
        return super().submit_tasks(partial(self._run_one, fn), tasks)

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        self._hb_stop.set()
        thread, self._hb_thread = self._hb_thread, None
        if thread is not None:
            thread.join(timeout=2.0)
        for conn in self._connections:
            conn.close()
        self._connections.clear()
        self._conns_by_spec.clear()
        for control in self._control.values():
            control.close()
        self._control.clear()
        # Drain the slot queue and forget dead-host flags so a reopened
        # executor starts clean — a host that was flagged during the
        # previous run gets fresh connections and fresh heartbeats.
        while True:
            try:
                self._slots.get_nowait()
            except queue.Empty:
                break
        with self._dead_lock:
            self._dead.clear()
        self._connected = False
        super().close()

    def __repr__(self) -> str:
        labels = ",".join(s.label for s in self.host_specs)
        return f"RemoteExecutor(hosts=[{labels}])"
