"""Shared exception types for the repro library.

Keeping the hierarchy in one module lets callers catch ``ReproError`` for
any library-level failure while engines and benches discriminate on the
specific subclasses (e.g. the paper's OOM / 12-hour-timeout failure modes
map onto :class:`OutOfMemory` and :class:`BudgetExceeded`).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class SchemaError(ReproError):
    """A relation or query was constructed with an inconsistent schema."""


class QueryParseError(ReproError):
    """The textual query could not be parsed."""


class ConfigError(ReproError, ValueError):
    """An environment variable or configuration value is invalid.

    Subclasses :class:`ValueError` as well so callers that predate the
    dedicated type (``except ValueError``) keep working.
    """


class PlanError(ReproError):
    """A query plan is invalid (bad traversal order, uncovered relation...)."""


class DecompositionError(ReproError):
    """No valid hypertree decomposition could be constructed."""


class EstimationError(ReproError):
    """The sampling-based cardinality estimator could not produce a value."""


class OutOfMemory(ReproError):
    """A simulated server exceeded its memory budget.

    Mirrors the paper's OOM failures (Sec. VII-C: "If an approach failed in
    a test-case due to insufficient memory, the figure will show a space
    instead of a bar").
    """

    def __init__(self, server_id: int, used: int, budget: int):
        self.server_id = server_id
        self.used = used
        self.budget = budget
        super().__init__(
            f"server {server_id} exceeded memory budget: used {used} tuples, "
            f"budget {budget} tuples"
        )


class WorkerCrashed(ReproError):
    """A runtime worker task died unexpectedly.

    Raised by :mod:`repro.runtime` when a task on a thread/process backend
    fails for any reason other than the two modelled failure modes
    (:class:`OutOfMemory`, :class:`BudgetExceeded`) — e.g. the worker
    process was killed, or the task function raised.  Engines surface it
    as a clean failure instead of hanging or propagating backend
    internals.
    """

    def __init__(self, worker: int, reason: str):
        self.worker = worker
        self.reason = reason
        super().__init__(f"worker {worker} crashed: {reason}")


class NetError(ReproError):
    """A :mod:`repro.net` wire-protocol operation failed.

    Raised for truncated/oversized frames, protocol-version mismatches,
    and error replies from a block store or worker agent.  Plain socket
    failures (``OSError``) are *not* converted — callers that need to
    distinguish "the peer said no" from "the peer is gone" can.
    """


class BlockNotFound(NetError):
    """A block-store GET or FREE named a block the store does not hold.

    Covers both never-published ids and double-frees — the store refuses
    rather than silently ignoring either, so lifetime bugs surface at
    the call site instead of as wrong answers later.
    """

    def __init__(self, block: str, detail: str = ""):
        self.block = block
        msg = f"block {block!r} is not in the store"
        super().__init__(f"{msg} ({detail})" if detail else msg)


class AdmissionError(ReproError):
    """The query service refused to admit a request (the 429 analogue).

    ``reason`` says why: ``"capacity"`` (the bounded admission queue is
    full — back off and retry) or ``"budget"`` (the tenant's work
    budget is exhausted under the ``reject`` policy).  Admission
    rejections are *backpressure*, not failures: the service and every
    other tenant's queries keep running.
    """

    def __init__(self, message: str, *, reason: str = "capacity",
                 tenant: str | None = None):
        self.reason = reason
        self.tenant = tenant
        super().__init__(message)


class BudgetExceeded(ReproError):
    """An engine exceeded its work budget.

    Mirrors the paper's 12-hour timeout ("we show a bar reaching the
    frame-top"); our budget is counted in deterministic work units instead
    of wall-clock hours.
    """

    def __init__(self, work_done: int, budget: int):
        self.work_done = work_done
        self.budget = budget
        super().__init__(
            f"work budget exceeded: {work_done} work units > budget {budget}"
        )
