"""Skew and straggler diagnostics.

Sec. VII-B attributes Q5's limited scalability to skew: "the 'last
straggler' effect plays a bigger role in determining the elapsed time".
These helpers quantify that effect for any per-worker load or work
distribution, and power the skew ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..errors import ConfigError

__all__ = ["SkewReport", "skew_report", "straggler_slowdown"]


@dataclass(frozen=True)
class SkewReport:
    """Distributional summary of per-worker load/work."""

    num_workers: int
    total: float
    mean: float
    maximum: float
    imbalance: float       # max / mean; 1.0 = perfectly balanced
    cv: float              # coefficient of variation
    gini: float            # 0 = equal, -> 1 = one worker does everything

    def __str__(self) -> str:
        return (f"SkewReport(workers={self.num_workers}, "
                f"imbalance={self.imbalance:.2f}, cv={self.cv:.2f}, "
                f"gini={self.gini:.2f})")


def _gini(values: np.ndarray) -> float:
    if values.sum() == 0:
        return 0.0
    sorted_vals = np.sort(values)
    n = sorted_vals.shape[0]
    ranks = np.arange(1, n + 1)
    return float((2 * ranks - n - 1).dot(sorted_vals)
                 / (n * sorted_vals.sum()))


def skew_report(loads: Mapping[int, float] | Sequence[float]) -> SkewReport:
    """Summarize a per-worker load distribution."""
    if isinstance(loads, Mapping):
        values = np.array(list(loads.values()), dtype=float)
    else:
        values = np.array(list(loads), dtype=float)
    if values.size == 0:
        raise ConfigError("need at least one worker load")
    mean = float(values.mean())
    maximum = float(values.max())
    return SkewReport(
        num_workers=int(values.size),
        total=float(values.sum()),
        mean=mean,
        maximum=maximum,
        imbalance=(maximum / mean) if mean > 0 else 1.0,
        cv=float(values.std() / mean) if mean > 0 else 0.0,
        gini=_gini(values),
    )


def straggler_slowdown(loads: Mapping[int, float] | Sequence[float]
                       ) -> float:
    """Parallel-time penalty of skew: makespan / ideal makespan.

    1.0 means the work could not have been spread better; k means the
    straggler made the phase k times slower than a perfect re-balance.
    """
    report = skew_report(loads)
    if report.total == 0:
        return 1.0
    ideal = report.total / report.num_workers
    return report.maximum / ideal
