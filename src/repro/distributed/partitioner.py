"""HCube share optimization (Eq. 3 of the paper).

HCube hashes each attribute ``A`` into ``p_A`` partitions; the share
vector ``p`` determines how many servers receive each tuple:

    dup(R, p)  = prod_{A not in attrs(R)} p_A        (copies per tuple)
    frac(R, p) = 1 / prod_{A in attrs(R)} p_A        (fraction per server)

The optimizer minimizes total communication  sum_R |R| * dup(R, p)
subject to  prod_A p_A <= #cubes  and the per-server memory constraint
``M - sum_R |R| * frac(R, p) >= 0``.  Query sizes here are small enough
for exact enumeration of the integer vectors, which also serves as the
ground truth the tests compare against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

from ..errors import OutOfMemory, PlanError
from ..query.query import JoinQuery

__all__ = ["Shares", "dup_factor", "frac_factor", "enumerate_share_vectors",
           "optimize_shares"]


@dataclass(frozen=True)
class Shares:
    """An optimized share vector ``p`` over the query attributes."""

    shares: tuple[tuple[str, int], ...]   # (attribute, p_A) pairs
    tuple_copies: int                     # sum_R |R| * dup(R, p)
    max_server_load: float                # sum_R |R| * frac(R, p)

    @property
    def as_dict(self) -> dict[str, int]:
        return dict(self.shares)

    @property
    def num_cubes(self) -> int:
        out = 1
        for _, p in self.shares:
            out *= p
        return out

    def __str__(self) -> str:
        inner = ", ".join(f"{a}={p}" for a, p in self.shares)
        return f"Shares({inner}; cubes={self.num_cubes})"


def dup_factor(atom_attrs: Sequence[str], shares: Mapping[str, int]) -> int:
    """dup(R, p): copies of each tuple of R under shares p."""
    out = 1
    for attr, p in shares.items():
        if attr not in atom_attrs:
            out *= p
    return out


def frac_factor(atom_attrs: Sequence[str], shares: Mapping[str, int]) -> float:
    """frac(R, p): expected fraction of R landing on one server."""
    out = 1.0
    for attr in atom_attrs:
        out /= shares[attr]
    return out


def enumerate_share_vectors(num_attrs: int, max_product: int
                            ) -> Iterator[tuple[int, ...]]:
    """All integer vectors (p_1..p_n), p_i >= 1, with product <= max_product."""
    if num_attrs == 0:
        yield ()
        return

    def rec(i: int, remaining: int, prefix: tuple[int, ...]):
        if i == num_attrs:
            yield prefix
            return
        for p in range(1, remaining + 1):
            yield from rec(i + 1, remaining // p, prefix + (p,))

    yield from rec(0, max_product, ())


def optimize_shares(query: JoinQuery, sizes: Mapping[str, int],
                    num_cubes: int,
                    memory_tuples: float | None = None,
                    exact: bool = True) -> Shares:
    """Exact share optimization by enumeration.

    Parameters
    ----------
    query:
        The join query; shares are assigned to its attributes.
    sizes:
        Relation size (tuples) per *atom index key* ``f"#{i}"`` or atom
        relation name — we accept either; see ``_atom_size``.
    num_cubes:
        Number of hypercubes, typically the worker/core count.
    memory_tuples:
        Optional per-server memory budget (in tuples).  Vectors whose
        expected per-server load exceeds it are discarded (Eq. 3).
    exact:
        Require ``prod p == num_cubes`` (the standard HCube setting: all
        workers used).  With ``exact=False`` any product <= num_cubes is
        allowed, and minimizing copies then degenerates towards p = 1 —
        exposed for studying that trade-off.
    """
    attrs = query.attributes
    atom_sizes = [_atom_size(query, i, sizes) for i in range(query.num_atoms)]
    best: tuple | None = None
    for vector in enumerate_share_vectors(len(attrs), num_cubes):
        if exact and _product(vector) != num_cubes:
            continue
        shares = dict(zip(attrs, vector))
        copies = 0
        load = 0.0
        for atom, size in zip(query.atoms, atom_sizes):
            copies += size * dup_factor(atom.attributes, shares)
            load += size * frac_factor(atom.attributes, shares)
        if memory_tuples is not None and load > memory_tuples:
            continue
        # Prefer fewer copies; break ties toward more cubes (more
        # parallelism), then lexicographically for determinism.
        key = (copies, -_product(vector), vector)
        if best is None or key < best[0]:
            best = (key, vector, copies, load)
    if best is None:
        if memory_tuples is not None:
            # Every vector breaks Eq. 3: the cluster genuinely cannot
            # hold this query — the paper's OOM failure mode.
            raise OutOfMemory(-1, 0, int(memory_tuples))
        raise PlanError(f"no feasible share vector for {query.name}")
    _, vector, copies, load = best
    return Shares(tuple(zip(attrs, vector)), int(copies), float(load))


def _product(vector: Sequence[int]) -> int:
    out = 1
    for v in vector:
        out *= v
    return out


def _atom_size(query: JoinQuery, index: int, sizes: Mapping[str, int]) -> int:
    atom = query.atoms[index]
    for key in (f"#{index}", atom.relation):
        if key in sizes:
            return int(sizes[key])
    raise PlanError(
        f"no size given for atom {index} ({atom.relation}); "
        f"keys available: {sorted(sizes)}")
