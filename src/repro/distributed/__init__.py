"""Distributed substrate: cluster simulator, HCube, hash shuffles, metrics."""

from .cluster import Cluster, default_workers
from .hcube import (
    HCubeRouting,
    HCubeShuffleResult,
    HypercubeGrid,
    hcube_route,
    hcube_shuffle,
    local_atom_name,
    localized_query,
    mix_hash,
    modulo_hash,
)
from .metrics import CostBreakdown, CostLedger, CostModelParams, ShuffleStats
from .partitioner import (
    Shares,
    dup_factor,
    enumerate_share_vectors,
    frac_factor,
    optimize_shares,
)
from .shuffle import broadcast_stats, hash_partition, hash_partition_rows
from .skew import SkewReport, skew_report, straggler_slowdown

__all__ = [
    "SkewReport",
    "skew_report",
    "straggler_slowdown",
    "Cluster",
    "default_workers",
    "HCubeRouting",
    "HCubeShuffleResult",
    "HypercubeGrid",
    "hcube_route",
    "hcube_shuffle",
    "local_atom_name",
    "localized_query",
    "mix_hash",
    "modulo_hash",
    "CostBreakdown",
    "CostLedger",
    "CostModelParams",
    "ShuffleStats",
    "Shares",
    "dup_factor",
    "enumerate_share_vectors",
    "frac_factor",
    "optimize_shares",
    "broadcast_stats",
    "hash_partition",
    "hash_partition_rows",
]
